// Example: streaming text analytics (tokenize -> bigram count -> top-k)
// across a two-site grid — a local LAN pair plus a remote fast machine
// behind a WAN link. The scheduler must weigh the remote node's speed
// against the WAN transfer cost, the same trade-off as the calibration
// table's last row.
//
//   ./examples/text_index

#include <iostream>
#include <map>

#include "core/adaptive_pipeline.hpp"
#include "grid/builders.hpp"
#include "util/table.hpp"
#include "workload/streams.hpp"
#include "workload/textproc.hpp"

int main() {
  using namespace gridpipe;

  // Site 0: two 1.0-speed machines on a fast LAN. Site 1: one 6x machine
  // across a 30 ms / 10 MB/s WAN.
  const grid::Grid g = grid::multi_site_grid(
      {{2, 1.0, 1e-4, 1e9}, {1, 6.0, 1e-4, 1e9}},
      /*wan_latency=*/0.03, /*wan_bandwidth=*/1e7);

  core::AdaptivePipelineOptions options;
  options.runtime.time_scale = 0.01;
  core::AdaptivePipeline pipeline(
      g, workload::text_pipeline(/*k=*/5, /*avg_bytes=*/4096.0), options);

  const auto plan = pipeline.plan();
  std::cout << "chosen mapping " << plan.mapping.to_string()
            << " (nodes 1-2 = local site, node 3 = remote 6x machine)\n"
            << "modeled throughput "
            << util::format_double(plan.breakdown.throughput, 2)
            << " docs/s\n";

  // 200 synthetic documents of ~60 words.
  const auto report = pipeline.run(workload::text_items(200, 60, 7));
  std::cout << report.summary() << "\n";

  // Merge the per-document top-k lists into a corpus-level ranking.
  std::map<std::string, std::uint64_t> corpus;
  for (const auto& out : report.outputs) {
    const auto& top = std::any_cast<
        const std::vector<std::pair<std::string, std::uint32_t>>&>(out);
    for (const auto& [ngram, count] : top) corpus[ngram] += count;
  }
  std::vector<std::pair<std::string, std::uint64_t>> ranked(corpus.begin(),
                                                            corpus.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::cout << "top corpus bigrams:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    std::cout << "  " << ranked[i].first << "  x" << ranked[i].second << "\n";
  }
  return 0;
}
