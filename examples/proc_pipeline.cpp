// proc_pipeline — the process-per-node runtime in one small program.
//
// Forks one real worker process per grid node (look for them in `ps`
// while it runs), streams items through a three-stage pipeline over
// Unix-domain sockets, then lets the controller remap the pipeline away
// from a node that picks up competing load mid-run. Every stage appends
// the pid of the process that executed it, so the output stream is a
// visible record of which OS process ran what — and of the migration.

#include <cstring>
#include <iostream>
#include <set>

#include <unistd.h>

#include "grid/builders.hpp"
#include "proc/process_executor.hpp"
#include "util/table.hpp"

using namespace gridpipe;
using core::Bytes;

namespace {

void append_pid(core::ByteSpan in, Bytes& out) {
  const std::int32_t pid = static_cast<std::int32_t>(getpid());
  const std::size_t off = out.size();
  out.resize(off + in.size() + sizeof(pid));
  if (!in.empty()) std::memcpy(out.data() + off, in.data(), in.size());
  std::memcpy(out.data() + off + in.size(), &pid, sizeof(pid));
}

}  // namespace

int main() {
  // Three equal nodes; node 1 picks up 8x competing load at t = 4 s.
  auto grid = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(
      grid, 1,
      std::make_shared<grid::StepLoad>(
          std::vector<grid::StepLoad::Step>{{4.0, 8.0}}));

  std::vector<core::DistStage> stages;
  for (const char* name : {"ingest", "transform", "publish"}) {
    stages.push_back({name, append_pid, 0.03, 64});
  }

  proc::ProcExecutorConfig config;
  config.time_scale = 0.005;
  config.adapt.epoch = 2.0;
  config.adapt.trigger = control::AdaptationTrigger::kOnChange;
  config.adapt.change_threshold = 0.4;
  config.adapt.policy.hysteresis_epochs = 1;
  config.adapt.policy.min_gain_ratio = 0.2;
  config.adapt.policy.restart_latency = 0.1;

  proc::ProcessExecutor executor(
      grid, stages, sched::Mapping(std::vector<grid::NodeId>{0, 1, 2}),
      config);

  std::vector<Bytes> inputs(200);
  const auto report = executor.run(std::move(inputs));

  std::set<std::int32_t> pids;
  for (const auto& any_out : report.outputs) {
    const auto& out = std::any_cast<const Bytes&>(any_out);
    for (std::size_t off = 0; off + 4 <= out.size(); off += 4) {
      std::int32_t pid;
      std::memcpy(&pid, out.data() + off, sizeof(pid));
      pids.insert(pid);
    }
  }

  std::cout << "parent pid " << getpid() << ", stages executed by "
            << pids.size() << " distinct worker processes:";
  for (const std::int32_t pid : pids) std::cout << " " << pid;
  std::cout << "\n" << report.summary() << "\n";
  for (const auto& remap : report.remaps) {
    std::cout << "  t=" << util::format_double(remap.time, 1) << "s  remap "
              << remap.from << " -> " << remap.to << "\n";
  }

  // Exit non-zero if the run was degenerate, so a CTest smoke run of
  // this example means something: all items, real separate processes,
  // and the remap the StepLoad scenario is engineered to force.
  const bool ok =
      report.items == 200 && pids.size() >= 3 && !report.remaps.empty();
  if (!ok) std::cerr << "unexpected: missing items, processes, or remap\n";
  return ok ? 0 : 1;
}
