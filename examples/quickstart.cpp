// Quickstart: the smallest complete gridpipe program.
//
// Builds a three-node heterogeneous "grid", describes a three-stage
// pipeline with cost annotations, lets the scheduler plan a mapping, and
// runs a stream of integers through the threaded runtime.
//
//   ./examples/quickstart

#include <any>
#include <iostream>

#include "core/adaptive_pipeline.hpp"
#include "grid/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace gridpipe;

  // 1. The resources: one fast machine and two standard ones, on a LAN.
  const grid::Grid grid =
      grid::heterogeneous_cluster({2.0, 1.0, 1.0}, /*latency=*/1e-3,
                                  /*bandwidth=*/1e8);

  // 2. The application: parse -> transform -> render, one output per
  //    input. `work` is in the same units as node speeds above.
  core::PipelineSpec spec;
  spec.stage(
          "parse",
          [](std::any item) { return std::any(std::any_cast<int>(item) + 1); },
          /*work=*/0.05)
      .stage(
          "transform",
          [](std::any item) { return std::any(std::any_cast<int>(item) * 3); },
          /*work=*/0.20)
      .stage(
          "render",
          [](std::any item) { return std::any(std::any_cast<int>(item) - 2); },
          /*work=*/0.05);

  // 3. Plan: where should the stages run right now?
  core::AdaptivePipelineOptions options;
  options.runtime.time_scale = 0.01;  // run 100x faster than modeled time
  core::AdaptivePipeline pipeline(grid, std::move(spec), options);
  const auto plan = pipeline.plan();
  std::cout << "planned mapping " << plan.mapping.to_string()
            << " with modeled throughput "
            << util::format_double(plan.breakdown.throughput, 2)
            << " items/s\n";

  // 4. Run a stream.
  std::vector<std::any> inputs;
  for (int i = 0; i < 50; ++i) inputs.emplace_back(i);
  const auto report = pipeline.run(std::move(inputs));

  std::cout << report.summary() << "\n";
  std::cout << "f(7) = " << std::any_cast<int>(report.outputs[7])
            << " (expected " << ((7 + 1) * 3 - 2) << ")\n";
  return 0;
}
