// typed_stream — one typed pipeline, four substrates, one API.
//
// Builds a three-stage typed (non-Bytes) pipeline and streams the same
// items through the simulator, the threaded runtime, the message-passing
// runtime and the process-per-node runtime, switching ONLY the
// rt::RuntimeKind handed to rt::make_runtime. Items flow through the
// streaming session API (Session::push / try_pop); the program verifies
// all four substrates return identical ordered outputs and exits
// non-zero otherwise, so CTest can smoke-run it.
//
//   ./examples/typed_stream

#include <iostream>
#include <vector>

#include "grid/builders.hpp"
#include "rt/runtime.hpp"

int main() {
  using namespace gridpipe;

  // One fast machine and two standard ones on a LAN.
  const grid::Grid grid =
      grid::heterogeneous_cluster({2.0, 1.0, 1.0}, /*latency=*/1e-3,
                                  /*bandwidth=*/1e8);

  // parse -> score -> render: int64 in, std::string out. Typed stages
  // carry Codec<T> wire codecs, so the serialized runtimes (dist,
  // process) run the very same spec as the in-process ones.
  auto make_spec = [] {
    core::PipelineSpec spec;
    spec.stage<std::int64_t, std::int64_t>(
            "parse", [](std::int64_t v) { return v * v + 1; }, /*work=*/0.05)
        .stage<std::int64_t, double>(
            "score",
            [](std::int64_t v) { return static_cast<double>(v) / 2.0; },
            /*work=*/0.20)
        .stage<double, std::string>(
            "render",
            [](double v) { return "score=" + std::to_string(v); },
            /*work=*/0.05);
    return spec;
  };

  constexpr std::int64_t kItems = 16;
  std::vector<std::vector<std::string>> per_runtime;

  for (rt::RuntimeKind kind : rt::kAllRuntimeKinds) {
    rt::RuntimeOptions options;
    options.time_scale = 0.002;  // live runtimes: 500x faster than modeled
    auto runtime = rt::make_runtime(kind, grid, make_spec(), options);
    auto session = runtime->open();

    // Stream: push items, pop opportunistically while the stream is
    // still open (the sim's virtual-time feeder yields only after
    // close(); the live runtimes yield as items complete).
    std::vector<std::string> outputs;
    for (std::int64_t i = 0; i < kItems; ++i) {
      session->push(std::any(i));
      if (auto out = session->try_pop()) {
        outputs.push_back(std::any_cast<std::string>(std::move(*out)));
      }
    }
    session->close();
    const core::RunReport report = session->report();  // blocks till drained
    while (auto out = session->try_pop()) {
      outputs.push_back(std::any_cast<std::string>(std::move(*out)));
    }

    std::cout << rt::to_string(kind) << ": " << report.items << " items, "
              << "mapping " << report.initial_mapping << ", first "
              << outputs.front() << ", last " << outputs.back() << "\n";
    per_runtime.push_back(std::move(outputs));
  }

  for (std::size_t r = 1; r < per_runtime.size(); ++r) {
    if (per_runtime[r] != per_runtime[0]) {
      std::cerr << "outputs differ between " << rt::to_string(rt::kAllRuntimeKinds[0])
                << " and " << rt::to_string(rt::kAllRuntimeKinds[r]) << "\n";
      return 1;
    }
    if (per_runtime[r].size() != static_cast<std::size_t>(kItems)) {
      std::cerr << "lost items on " << rt::to_string(rt::kAllRuntimeKinds[r])
                << "\n";
      return 1;
    }
  }
  std::cout << "all four runtimes produced identical ordered outputs\n";
  return 0;
}
