// Example: virtual-time what-if analysis with the simulator API.
//
// Before deploying on a real grid, rehearse the pipeline against the
// scenario catalogue and compare schedulers: how much does adaptation buy
// under each kind of resource dynamics, and how close does it get to the
// perfect-knowledge oracle? This is the planning workflow the
// AdaptivePipeline::simulate() entry point exists for.
//
//   ./examples/grid_adaptation_demo

#include <iostream>

#include "sim/drivers.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace gridpipe;

  constexpr std::uint64_t kItems = 3000;
  std::cout << "rehearsing " << kItems
            << "-item streams over the scenario catalogue...\n";

  util::Table table({"scenario", "static thr", "adaptive thr", "oracle thr",
                     "adaptive gain", "of oracle gain"});
  for (const workload::Scenario& s : workload::scenario_catalog(11)) {
    sim::SimConfig config;
    config.num_items = kItems;
    config.probe_interval = 5.0;

    auto run = [&](sim::DriverKind kind) {
      sim::DriverOptions options;
      options.driver = kind;
      options.adapt.epoch = 10.0;
      return sim::run_pipeline(s.grid, s.profile, config, options);
    };
    const auto st = run(sim::DriverKind::kStaticOptimal);
    const auto ad = run(sim::DriverKind::kAdaptive);
    const auto or_ = run(sim::DriverKind::kOracle);

    const double adaptive_gain = ad.mean_throughput / st.mean_throughput;
    const double oracle_gain = or_.mean_throughput / st.mean_throughput;
    table.row()
        .add(s.name)
        .add(st.mean_throughput, 3)
        .add(ad.mean_throughput, 3)
        .add(or_.mean_throughput, 3)
        .add(adaptive_gain, 2)
        .add(oracle_gain > 1.0
                 ? util::format_double(
                       (adaptive_gain - 1.0) / (oracle_gain - 1.0), 2)
                 : std::string("-"));
  }
  std::cout << table.to_string();
  std::cout << "\n'of oracle gain' = share of the perfect-knowledge "
               "improvement the monitor-driven pattern captures.\n";
  return 0;
}
