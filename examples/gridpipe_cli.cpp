// gridpipe_cli — run any catalogue scenario on any execution substrate
// from the command line. The "explore the design space without writing
// code" entry point. Every substrate is driven through the one
// rt::make_runtime factory, so `--runtime` is the only thing that
// changes between a virtual-time rehearsal and a process-per-node run.
//
//   gridpipe_cli [--scenario NAME] [--runtime KIND] [--driver KIND]
//                [--items N] [--epoch S] [--trigger periodic|on-change]
//                [--arrivals saturated|poisson] [--rate R]
//                [--seed S] [--time-scale S] [--timeline WINDOW]
//                [--trace-out FILE] [--metrics-out FILE]
//                [--status-out FILE] [--status-interval S]
//                [--recover] [--respawn-max N] [--respawn-backoff-ms MS]
//                [--inject-fault SPEC]
//                [--explain-epochs] [--log-level LEVEL] [--list]
//
//   --list                 print the scenario catalogue and exit
//   --runtime              sim | threads | dist | process
//   --driver               naive | static | adaptive | oracle (sim only)
//   --time-scale S         live runtimes: real seconds per virtual second
//   --timeline W           also print throughput per W-second window
//   --trace-out FILE       write a Chrome trace-event JSON of the run
//                          (open in Perfetto / chrome://tracing)
//   --metrics-out FILE     write the uniform metrics snapshot as JSON
//   --status-out FILE      rewrite FILE (atomically) with a JSON status
//                          snapshot every --status-interval real seconds
//                          while the run is live
//   --status-interval S    status file refresh period (default 1.0s)
//   --recover              process runtime: survive worker deaths (replay
//                          journal + respawn supervisor + dedup)
//   --respawn-max N        respawns per node before degrading (default 3)
//   --respawn-backoff-ms   delay before the first respawn of a node,
//                          doubling per subsequent one (default 0)
//   --inject-fault SPEC    kill workers on purpose, e.g. "kill=1@25"
//                          (node 1 dies at its 25th item) or
//                          "rate=0.01;seed=7"; implies --recover
//   --explain-epochs       print one human-readable reason line per
//                          adaptation epoch after the run
//   --log-level LEVEL      debug|info|warn|error|off (GRIDPIPE_LOG also
//                          works; the flag wins)
//
// SIGUSR1 dumps the same JSON status snapshot to stderr mid-run (and to
// --status-out when set) without stopping anything: the handler only
// sets a flag; a watcher thread does the actual snapshot.
//
// All output paths (--trace-out/--metrics-out/--status-out) are probed
// for writability before the run starts, so a typo'd directory fails in
// milliseconds rather than after the stream drains.
//
// The scenario's profile runs as typed passthrough stages with emulated
// compute, starting from the mapping a deployment-time planner would
// pick; adaptation uses the same epoch / trigger knobs everywhere.
// Large --items take real wall time on the live runtimes
// (items × bottleneck-service × time-scale seconds).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>

#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "recover/fault.hpp"
#include "rt/runtime.hpp"
#include "util/fsio.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"
#include "workload/substrate.hpp"

namespace {

using namespace gridpipe;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario NAME] [--runtime sim|threads|dist|process]\n"
               "       [--driver naive|static|adaptive|oracle]\n"
               "       [--items N] [--epoch S] [--trigger periodic|on-change]\n"
               "       [--arrivals saturated|poisson] [--rate R] [--seed S]\n"
               "       [--time-scale S] [--timeline WINDOW]\n"
               "       [--trace-out FILE] [--metrics-out FILE]\n"
               "       [--status-out FILE] [--status-interval S]\n"
               "       [--recover] [--respawn-max N] [--respawn-backoff-ms MS]\n"
               "       [--inject-fault SPEC]\n"
               "       [--explain-epochs]\n"
               "       [--log-level debug|info|warn|error|off] [--list]\n";
  return 2;
}

/// Set by the SIGUSR1 handler, consumed by the status watcher thread —
/// the handler itself is async-signal-safe (one volatile store).
volatile std::sig_atomic_t g_status_requested = 0;

void on_sigusr1(int) { g_status_requested = 1; }

/// Background thread that services SIGUSR1 requests and, when
/// `status_out` is set, rewrites the status file every `interval` real
/// seconds. Start it only after the session is open: the process
/// runtime forks its fleet at open(), and fork must not copy a live
/// watcher thread (or its lock states) into the children.
class StatusWatcher {
 public:
  StatusWatcher(std::string status_out, double interval)
      : status_out_(std::move(status_out)),
        interval_(interval),
        thread_([this] { loop(); }) {}

  ~StatusWatcher() {
    stop_.store(true);
    thread_.join();
    if (!status_out_.empty()) write_snapshot();  // final state on disk
  }

 private:
  void write_snapshot() const {
    const std::string doc = obs::StatusHub::global().snapshot_json() + "\n";
    if (!status_out_.empty()) {
      if (std::string err = util::write_file_atomic(status_out_, doc);
          !err.empty()) {
        std::cerr << "--status-out: " << err << "\n";
      }
    }
    if (g_status_requested) {
      g_status_requested = 0;
      std::cerr << doc;
    }
  }

  void loop() {
    using Clock = std::chrono::steady_clock;
    auto next_periodic = Clock::now() + std::chrono::duration_cast<
        Clock::duration>(std::chrono::duration<double>(interval_));
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      const bool requested = g_status_requested != 0;
      const bool periodic =
          !status_out_.empty() && Clock::now() >= next_periodic;
      if (periodic) {
        next_periodic = Clock::now() + std::chrono::duration_cast<
            Clock::duration>(std::chrono::duration<double>(interval_));
      }
      if (requested || periodic) write_snapshot();
    }
  }

  std::string status_out_;
  double interval_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

void print_report(const workload::Scenario& s, rt::RuntimeKind kind,
                  const rt::RuntimeOptions& options,
                  const core::RunReport& report, double timeline_window) {
  std::size_t decisions = 0;
  for (const auto& e : report.epochs) decisions += e.decided;
  std::cout << "scenario   " << s.name << " (" << s.description << ")\n"
            << "runtime    " << rt::to_string(kind);
  if (kind == rt::RuntimeKind::kSim) {
    std::cout << ", driver " << to_string(options.sim_driver);
  }
  std::cout << ", epoch " << options.adapt.epoch << "s, trigger "
            << to_string(options.adapt.trigger) << ", mapper "
            << to_string(options.adapt.mapper) << "\n"
            << "result     " << report.summary() << "\n"
            << "latency    mean "
            << util::format_double(report.metrics.latency().mean(), 3)
            << "s  p95 "
            << util::format_double(report.metrics.latency_percentile(95), 3)
            << "s\n"
            << "epochs     " << report.epochs.size() << " (" << decisions
            << " full decisions)\n";
  for (const auto& remap : report.remaps) {
    std::cout << "  t=" << util::format_double(remap.time, 1) << "s  "
              << remap.from << " -> " << remap.to << " (pause "
              << util::format_double(remap.pause, 2) << "s)\n";
  }
  if (timeline_window > 0.0) {
    util::Table table({"t", "items/s"});
    const auto series = report.metrics.throughput_timeline(
        timeline_window, report.metrics.makespan());
    for (std::size_t w = 0; w < series.size(); ++w) {
      table.row()
          .add(static_cast<double>(w) * timeline_window, 0)
          .add(series[w], 3);
    }
    std::cout << table.to_string();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "load-step";
  std::string runtime_name = "sim";
  std::string driver_name = "adaptive";
  std::uint64_t items = 3000;
  double epoch = 10.0;
  std::string trigger = "periodic";
  std::string arrivals = "saturated";
  double rate = 0.2;
  std::uint64_t seed = 1;
  double time_scale = 0.002;
  double timeline_window = 0.0;
  std::string trace_out;
  std::string metrics_out;
  std::string status_out;
  double status_interval = 1.0;
  bool recover = false;
  std::size_t respawn_max = 3;
  double respawn_backoff_ms = 0.0;
  std::string fault_spec;
  bool explain_epochs = false;
  std::vector<const char*> sim_only_flags;  // explicit but ignored off-sim

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--list")) {
      for (const auto& s : workload::scenario_catalog(seed)) {
        std::cout << s.name << " — " << s.description << "\n";
      }
      return 0;
    } else if (!std::strcmp(argv[i], "--scenario")) {
      scenario_name = next("--scenario");
    } else if (!std::strcmp(argv[i], "--runtime")) {
      runtime_name = next("--runtime");
    } else if (!std::strcmp(argv[i], "--time-scale")) {
      time_scale = std::stod(next("--time-scale"));
    } else if (!std::strcmp(argv[i], "--driver")) {
      driver_name = next("--driver");
      sim_only_flags.push_back("--driver");
    } else if (!std::strcmp(argv[i], "--items")) {
      items = std::stoull(next("--items"));
    } else if (!std::strcmp(argv[i], "--epoch")) {
      epoch = std::stod(next("--epoch"));
    } else if (!std::strcmp(argv[i], "--trigger")) {
      trigger = next("--trigger");
    } else if (!std::strcmp(argv[i], "--arrivals")) {
      arrivals = next("--arrivals");
      sim_only_flags.push_back("--arrivals");
    } else if (!std::strcmp(argv[i], "--rate")) {
      rate = std::stod(next("--rate"));
      sim_only_flags.push_back("--rate");
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::stoull(next("--seed"));
    } else if (!std::strcmp(argv[i], "--timeline")) {
      timeline_window = std::stod(next("--timeline"));
    } else if (!std::strcmp(argv[i], "--trace-out")) {
      trace_out = next("--trace-out");
    } else if (!std::strcmp(argv[i], "--metrics-out")) {
      metrics_out = next("--metrics-out");
    } else if (!std::strcmp(argv[i], "--status-out")) {
      status_out = next("--status-out");
    } else if (!std::strcmp(argv[i], "--status-interval")) {
      status_interval = std::stod(next("--status-interval"));
    } else if (!std::strcmp(argv[i], "--recover")) {
      recover = true;
    } else if (!std::strcmp(argv[i], "--respawn-max")) {
      respawn_max = std::stoull(next("--respawn-max"));
    } else if (!std::strcmp(argv[i], "--respawn-backoff-ms")) {
      respawn_backoff_ms = std::stod(next("--respawn-backoff-ms"));
    } else if (!std::strcmp(argv[i], "--inject-fault")) {
      fault_spec = next("--inject-fault");
      recover = true;  // an injected kill without recovery just fails
    } else if (!std::strcmp(argv[i], "--explain-epochs")) {
      explain_epochs = true;
    } else if (!std::strcmp(argv[i], "--log-level")) {
      const char* name = next("--log-level");
      if (auto level = util::parse_log_level(name)) {
        util::set_log_level(*level);
      } else {
        std::cerr << "--log-level: unknown level '" << name << "'\n";
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }

  rt::RuntimeKind kind;
  try {
    kind = rt::parse_runtime_kind(runtime_name);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }

  rt::RuntimeOptions options;
  options.time_scale = time_scale;
  options.seed = seed;
  options.adapt.epoch = epoch;
  if (trigger == "on-change") {
    options.adapt.trigger = control::AdaptationTrigger::kOnChange;
  } else if (trigger != "periodic") {
    return usage(argv[0]);
  }

  if (driver_name == "naive") {
    options.sim_driver = sim::DriverKind::kStaticNaive;
  } else if (driver_name == "static") {
    options.sim_driver = sim::DriverKind::kStaticOptimal;
  } else if (driver_name == "adaptive") {
    options.sim_driver = sim::DriverKind::kAdaptive;
  } else if (driver_name == "oracle") {
    options.sim_driver = sim::DriverKind::kOracle;
  } else {
    return usage(argv[0]);
  }

  options.sim_config.seed = seed;
  options.sim_config.probe_interval = 5.0;
  if (arrivals == "poisson") {
    options.sim_config.arrivals = sim::SimConfig::Arrivals::kPoisson;
    options.sim_config.arrival_rate = rate;
  } else if (arrivals != "saturated") {
    return usage(argv[0]);
  }

  if (kind != rt::RuntimeKind::kSim) {
    // The live runtimes always run their adaptive controller (tune it
    // with --epoch/--trigger); driver selection and arrival shaping are
    // simulator concepts. Say so instead of silently ignoring them.
    for (const char* flag : sim_only_flags) {
      std::cerr << "note: " << flag << " applies to --runtime sim only; "
                << "ignored for --runtime " << rt::to_string(kind) << "\n";
    }
  }

  if (recover) {
    if (kind != rt::RuntimeKind::kProcess) {
      std::cerr << "note: --recover/--inject-fault apply to --runtime "
                   "process only; ignored for --runtime "
                << rt::to_string(kind) << "\n";
    }
    options.recovery.enabled = true;
    options.recovery.respawn.max_respawns = respawn_max;
    options.recovery.respawn.backoff_ms = respawn_backoff_ms;
    if (!fault_spec.empty()) {
      try {
        options.recovery.faults = recover::FaultPlan::parse(fault_spec);
      } catch (const std::invalid_argument& e) {
        std::cerr << "--inject-fault: " << e.what() << "\n";
        return usage(argv[0]);
      }
    }
  }

  if (!trace_out.empty() || !metrics_out.empty()) {
    options.obs = obs::Config::full();
  }

  // Fail fast on unwritable output paths: a typo'd directory should
  // abort in milliseconds, not after the whole stream drained.
  const std::pair<const char*, const std::string*> out_paths[] = {
      {"--trace-out", &trace_out},
      {"--metrics-out", &metrics_out},
      {"--status-out", &status_out}};
  for (const auto& [flag, path] : out_paths) {
    if (path->empty()) continue;
    if (std::string err = util::probe_writable(*path); !err.empty()) {
      std::cerr << flag << ": " << err << "\n";
      return 1;
    }
  }

  const workload::Scenario s = workload::find_scenario(scenario_name, seed);
  auto runtime = rt::make_runtime(
      kind, s.grid, workload::passthrough_pipeline(s.profile), options);

  std::signal(SIGUSR1, on_sigusr1);

  core::RunReport report;
  try {
    // Manual session streaming (rather than runtime->run()) so the
    // status watcher observes a live, registered session. Order matters:
    // open() first — the process runtime forks its fleet there and the
    // watcher thread must not exist yet — then start the watcher.
    auto session = runtime->open();
    StatusWatcher watcher(status_out, status_interval);
    for (std::uint64_t i = 0; i < items; ++i) session->push(std::any(i));
    session->close();
    report = session->report();
    report.outputs.reserve(report.items);
    while (auto out = session->try_pop()) {
      report.outputs.push_back(std::move(*out));
    }
  } catch (const std::exception& e) {
    std::cerr << "gridpipe_cli: run failed: " << e.what() << "\n";
    return 1;
  }

  print_report(s, kind, options, report, timeline_window);

  if (options.recovery.enabled && kind == rt::RuntimeKind::kProcess) {
    std::cout << "recovery   " << report.node_losses << " worker loss(es), "
              << report.respawns << " respawn(s), " << report.items_replayed
              << " item(s) replayed, " << report.items_deduped
              << " duplicate(s) dropped";
    if (!report.recovery_times.empty()) {
      double worst = 0.0;
      for (const double t : report.recovery_times) {
        worst = std::max(worst, t);
      }
      std::cout << ", worst recovery window " << worst << " virtual s";
    }
    std::cout << "\n";
  }

  if (explain_epochs) {
    std::cout << "decisions\n";
    for (const auto& e : report.epochs) {
      std::cout << "  " << e.explain() << "\n";
    }
    if (report.epochs.empty()) {
      std::cout << "  (no adaptation epochs ran)\n";
    }
  }

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "--trace-out: cannot open " << trace_out << "\n";
      return 1;
    }
    options.obs.tracer->write_chrome_trace(out);
    std::cout << "trace      " << trace_out << " ("
              << options.obs.tracer->size()
              << " events; open in Perfetto / chrome://tracing)\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "--metrics-out: cannot open " << metrics_out << "\n";
      return 1;
    }
    out << report.obs_metrics.to_json() << "\n";
    std::cout << "metrics    " << metrics_out << "\n";
  }
  return 0;
}
