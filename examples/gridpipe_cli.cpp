// gridpipe_cli — run any catalogue scenario under any driver from the
// command line (virtual-time simulation). The "explore the design space
// without writing code" entry point.
//
//   gridpipe_cli [--scenario NAME] [--driver KIND] [--items N]
//                [--epoch S] [--trigger periodic|on-change]
//                [--arrivals saturated|poisson] [--rate R]
//                [--seed S] [--timeline WINDOW] [--list]
//
//   --list                 print the scenario catalogue and exit
//   --driver               naive | static | adaptive | oracle
//   --timeline W           also print throughput per W-second window

#include <cstring>
#include <iostream>
#include <string>

#include "sim/drivers.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace gridpipe;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario NAME] [--driver naive|static|adaptive|oracle]\n"
               "       [--items N] [--epoch S] [--trigger periodic|on-change]\n"
               "       [--arrivals saturated|poisson] [--rate R] [--seed S]\n"
               "       [--timeline WINDOW] [--list]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "load-step";
  std::string driver_name = "adaptive";
  std::uint64_t items = 3000;
  double epoch = 10.0;
  std::string trigger = "periodic";
  std::string arrivals = "saturated";
  double rate = 0.2;
  std::uint64_t seed = 1;
  double timeline_window = 0.0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--list")) {
      for (const auto& s : workload::scenario_catalog(seed)) {
        std::cout << s.name << " — " << s.description << "\n";
      }
      return 0;
    } else if (!std::strcmp(argv[i], "--scenario")) {
      scenario_name = next("--scenario");
    } else if (!std::strcmp(argv[i], "--driver")) {
      driver_name = next("--driver");
    } else if (!std::strcmp(argv[i], "--items")) {
      items = std::stoull(next("--items"));
    } else if (!std::strcmp(argv[i], "--epoch")) {
      epoch = std::stod(next("--epoch"));
    } else if (!std::strcmp(argv[i], "--trigger")) {
      trigger = next("--trigger");
    } else if (!std::strcmp(argv[i], "--arrivals")) {
      arrivals = next("--arrivals");
    } else if (!std::strcmp(argv[i], "--rate")) {
      rate = std::stod(next("--rate"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::stoull(next("--seed"));
    } else if (!std::strcmp(argv[i], "--timeline")) {
      timeline_window = std::stod(next("--timeline"));
    } else {
      return usage(argv[0]);
    }
  }

  sim::DriverOptions options;
  if (driver_name == "naive") {
    options.driver = sim::DriverKind::kStaticNaive;
  } else if (driver_name == "static") {
    options.driver = sim::DriverKind::kStaticOptimal;
  } else if (driver_name == "adaptive") {
    options.driver = sim::DriverKind::kAdaptive;
  } else if (driver_name == "oracle") {
    options.driver = sim::DriverKind::kOracle;
  } else {
    return usage(argv[0]);
  }
  options.adapt.epoch = epoch;
  if (trigger == "on-change") {
    options.adapt.trigger = sim::AdaptationTrigger::kOnChange;
  } else if (trigger != "periodic") {
    return usage(argv[0]);
  }

  workload::Scenario s = workload::find_scenario(scenario_name, seed);
  sim::SimConfig config;
  config.num_items = items;
  config.seed = seed;
  config.probe_interval = 5.0;
  if (arrivals == "poisson") {
    config.arrivals = sim::SimConfig::Arrivals::kPoisson;
    config.arrival_rate = rate;
  } else if (arrivals != "saturated") {
    return usage(argv[0]);
  }

  const auto result = sim::run_pipeline(s.grid, s.profile, config, options);

  std::cout << "scenario   " << s.name << " (" << s.description << ")\n"
            << "driver     " << to_string(options.driver) << ", epoch "
            << epoch << "s, trigger " << to_string(options.adapt.trigger)
            << ", mapper " << to_string(options.adapt.mapper) << "\n"
            << "completed  " << result.metrics.items_completed() << "/"
            << items << " items in "
            << util::format_double(result.makespan, 1) << " virtual s\n"
            << "throughput " << util::format_double(result.mean_throughput, 4)
            << " items/s\n"
            << "latency    mean "
            << util::format_double(result.metrics.latency().mean(), 3)
            << "s  p95 "
            << util::format_double(result.metrics.latency_percentile(95), 3)
            << "s\n"
            << "mapping    " << result.initial_mapping.to_string();
  if (!(result.final_mapping == result.initial_mapping)) {
    std::cout << " -> " << result.final_mapping.to_string();
  }
  std::cout << "  (" << result.remap_count << " remaps)\n";
  for (const auto& remap : result.metrics.remaps()) {
    std::cout << "  t=" << util::format_double(remap.time, 1) << "s  "
              << remap.from << " -> " << remap.to << " (pause "
              << util::format_double(remap.pause, 2) << "s)\n";
  }

  if (timeline_window > 0.0) {
    util::Table table({"t", "items/s"});
    const auto series = result.metrics.throughput_timeline(
        timeline_window, result.makespan);
    for (std::size_t w = 0; w < series.size(); ++w) {
      table.row()
          .add(static_cast<double>(w) * timeline_window, 0)
          .add(series[w], 3);
    }
    std::cout << table.to_string();
  }
  return 0;
}
