// gridpipe_cli — run any catalogue scenario on any execution substrate
// from the command line. The "explore the design space without writing
// code" entry point.
//
//   gridpipe_cli [--scenario NAME] [--runtime KIND] [--driver KIND]
//                [--items N] [--epoch S] [--trigger periodic|on-change]
//                [--arrivals saturated|poisson] [--rate R]
//                [--seed S] [--time-scale S] [--timeline WINDOW] [--list]
//
//   --list                 print the scenario catalogue and exit
//   --runtime              sim | threads | dist | process
//   --driver               naive | static | adaptive | oracle (sim only)
//   --time-scale S         live runtimes: real seconds per virtual second
//   --timeline W           also print throughput per W-second window (sim)
//
// The live runtimes (threads, dist, process) run the scenario's profile
// as passthrough stages with emulated compute, starting from the mapping
// a deployment-time planner would pick; adaptation uses the same epoch /
// trigger knobs as the simulator. Large --items take real wall time
// there (items × bottleneck-service × time-scale seconds).

#include <cstring>
#include <iostream>
#include <string>

#include "core/executor.hpp"
#include "proc/process_executor.hpp"
#include "sim/drivers.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"
#include "workload/substrate.hpp"

namespace {

using namespace gridpipe;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario NAME] [--runtime sim|threads|dist|process]\n"
               "       [--driver naive|static|adaptive|oracle]\n"
               "       [--items N] [--epoch S] [--trigger periodic|on-change]\n"
               "       [--arrivals saturated|poisson] [--rate R] [--seed S]\n"
               "       [--time-scale S] [--timeline WINDOW] [--list]\n";
  return 2;
}

void print_live_report(const workload::Scenario& s, const char* runtime,
                       const control::AdaptationConfig& adapt,
                       const core::RunReport& report) {
  std::size_t decisions = 0;
  for (const auto& e : report.epochs) decisions += e.decided;
  std::cout << "scenario   " << s.name << " (" << s.description << ")\n"
            << "runtime    " << runtime << ", epoch " << adapt.epoch
            << "s, trigger " << to_string(adapt.trigger) << ", mapper "
            << to_string(adapt.mapper) << "\n"
            << "result     " << report.summary() << "\n"
            << "epochs     " << report.epochs.size() << " ("
            << decisions << " full decisions)\n";
  for (const auto& remap : report.remaps) {
    std::cout << "  t=" << util::format_double(remap.time, 1) << "s  "
              << remap.from << " -> " << remap.to << " (pause "
              << util::format_double(remap.pause, 2) << "s)\n";
  }
}

int run_live(const workload::Scenario& s, const std::string& runtime,
             std::uint64_t items, const control::AdaptationConfig& adapt,
             double time_scale) {
  const sched::Mapping initial =
      workload::planned_mapping(s.grid, s.profile, adapt);

  if (runtime == "threads") {
    core::ExecutorConfig config;
    config.time_scale = time_scale;
    config.adapt = adapt;
    core::Executor executor(s.grid, workload::passthrough_spec(s.profile),
                            initial, config);
    std::vector<std::any> inputs;
    for (std::uint64_t i = 0; i < items; ++i) {
      inputs.emplace_back(static_cast<int>(i));
    }
    print_live_report(s, "threads", adapt, executor.run(std::move(inputs)));
    return 0;
  }

  std::vector<core::Bytes> inputs(items, core::Bytes(64));
  if (runtime == "dist") {
    core::DistExecutorConfig config;
    config.time_scale = time_scale;
    config.adapt = adapt;
    core::DistributedExecutor executor(
        s.grid, workload::passthrough_dist_stages(s.profile), initial,
        config);
    print_live_report(s, "dist", adapt, executor.run(std::move(inputs)));
    return 0;
  }
  // process
  proc::ProcExecutorConfig config;
  config.time_scale = time_scale;
  config.adapt = adapt;
  proc::ProcessExecutor executor(
      s.grid, workload::passthrough_dist_stages(s.profile), initial, config);
  print_live_report(s, "process", adapt, executor.run(std::move(inputs)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "load-step";
  std::string runtime = "sim";
  std::string driver_name = "adaptive";
  std::uint64_t items = 3000;
  double epoch = 10.0;
  std::string trigger = "periodic";
  std::string arrivals = "saturated";
  double rate = 0.2;
  std::uint64_t seed = 1;
  double time_scale = 0.002;
  double timeline_window = 0.0;
  std::vector<const char*> sim_only_flags;  // explicit but ignored off-sim

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--list")) {
      for (const auto& s : workload::scenario_catalog(seed)) {
        std::cout << s.name << " — " << s.description << "\n";
      }
      return 0;
    } else if (!std::strcmp(argv[i], "--scenario")) {
      scenario_name = next("--scenario");
    } else if (!std::strcmp(argv[i], "--runtime")) {
      runtime = next("--runtime");
    } else if (!std::strcmp(argv[i], "--time-scale")) {
      time_scale = std::stod(next("--time-scale"));
    } else if (!std::strcmp(argv[i], "--driver")) {
      driver_name = next("--driver");
      sim_only_flags.push_back("--driver");
    } else if (!std::strcmp(argv[i], "--items")) {
      items = std::stoull(next("--items"));
    } else if (!std::strcmp(argv[i], "--epoch")) {
      epoch = std::stod(next("--epoch"));
    } else if (!std::strcmp(argv[i], "--trigger")) {
      trigger = next("--trigger");
    } else if (!std::strcmp(argv[i], "--arrivals")) {
      arrivals = next("--arrivals");
      sim_only_flags.push_back("--arrivals");
    } else if (!std::strcmp(argv[i], "--rate")) {
      rate = std::stod(next("--rate"));
      sim_only_flags.push_back("--rate");
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::stoull(next("--seed"));
    } else if (!std::strcmp(argv[i], "--timeline")) {
      timeline_window = std::stod(next("--timeline"));
      sim_only_flags.push_back("--timeline");
    } else {
      return usage(argv[0]);
    }
  }

  sim::DriverOptions options;
  if (driver_name == "naive") {
    options.driver = sim::DriverKind::kStaticNaive;
  } else if (driver_name == "static") {
    options.driver = sim::DriverKind::kStaticOptimal;
  } else if (driver_name == "adaptive") {
    options.driver = sim::DriverKind::kAdaptive;
  } else if (driver_name == "oracle") {
    options.driver = sim::DriverKind::kOracle;
  } else {
    return usage(argv[0]);
  }
  options.adapt.epoch = epoch;
  if (trigger == "on-change") {
    options.adapt.trigger = sim::AdaptationTrigger::kOnChange;
  } else if (trigger != "periodic") {
    return usage(argv[0]);
  }

  workload::Scenario s = workload::find_scenario(scenario_name, seed);

  if (runtime != "sim") {
    if (runtime != "threads" && runtime != "dist" && runtime != "process") {
      return usage(argv[0]);
    }
    // The live runtimes always run their adaptive controller (tune it
    // with --epoch/--trigger); driver selection and arrival shaping are
    // simulator concepts. Say so instead of silently ignoring them.
    for (const char* flag : sim_only_flags) {
      std::cerr << "note: " << flag << " applies to --runtime sim only; "
                << "ignored for --runtime " << runtime << "\n";
    }
    return run_live(s, runtime, items, options.adapt, time_scale);
  }
  sim::SimConfig config;
  config.num_items = items;
  config.seed = seed;
  config.probe_interval = 5.0;
  if (arrivals == "poisson") {
    config.arrivals = sim::SimConfig::Arrivals::kPoisson;
    config.arrival_rate = rate;
  } else if (arrivals != "saturated") {
    return usage(argv[0]);
  }

  const auto result = sim::run_pipeline(s.grid, s.profile, config, options);

  std::cout << "scenario   " << s.name << " (" << s.description << ")\n"
            << "driver     " << to_string(options.driver) << ", epoch "
            << epoch << "s, trigger " << to_string(options.adapt.trigger)
            << ", mapper " << to_string(options.adapt.mapper) << "\n"
            << "completed  " << result.metrics.items_completed() << "/"
            << items << " items in "
            << util::format_double(result.makespan, 1) << " virtual s\n"
            << "throughput " << util::format_double(result.mean_throughput, 4)
            << " items/s\n"
            << "latency    mean "
            << util::format_double(result.metrics.latency().mean(), 3)
            << "s  p95 "
            << util::format_double(result.metrics.latency_percentile(95), 3)
            << "s\n"
            << "mapping    " << result.initial_mapping.to_string();
  if (!(result.final_mapping == result.initial_mapping)) {
    std::cout << " -> " << result.final_mapping.to_string();
  }
  std::cout << "  (" << result.remap_count << " remaps)\n";
  for (const auto& remap : result.metrics.remaps()) {
    std::cout << "  t=" << util::format_double(remap.time, 1) << "s  "
              << remap.from << " -> " << remap.to << " (pause "
              << util::format_double(remap.pause, 2) << "s)\n";
  }

  if (timeline_window > 0.0) {
    util::Table table({"t", "items/s"});
    const auto series = result.metrics.throughput_timeline(
        timeline_window, result.makespan);
    for (std::size_t w = 0; w < series.size(); ++w) {
      table.row()
          .add(static_cast<double>(w) * timeline_window, 0)
          .add(series[w], 3);
    }
    std::cout << table.to_string();
  }
  return 0;
}
