// Example: frame-processing pipeline (blur -> sobel -> threshold) on an
// emulated heterogeneous grid whose fastest node becomes busy mid-run.
//
// Demonstrates:
//  * a realistic per-frame workload built from the imaging substrate,
//  * heterogeneity + dynamic load emulation on the threaded runtime,
//  * live adaptation: watch the mapping move when the load hits.
//
//   ./examples/image_pipeline

#include <iostream>

#include "core/adaptive_pipeline.hpp"
#include "grid/builders.hpp"
#include "util/table.hpp"
#include "util/logging.hpp"
#include "workload/imaging.hpp"

int main() {
  using namespace gridpipe;
  // Narrate remaps by default; GRIDPIPE_LOG still overrides.
  util::set_default_log_level(util::LogLevel::kInfo);

  // A fast node that will get busy at t = 5 virtual seconds, plus two
  // steady workers.
  grid::Grid g = grid::heterogeneous_cluster({4.0, 1.5, 1.5}, 1e-3, 1e8);
  grid::set_node_load(g, 0, std::make_shared<grid::StepLoad>(
                                std::vector<grid::StepLoad::Step>{
                                    {5.0, 12.0}}));

  constexpr std::size_t kWidth = 96, kHeight = 96;
  core::AdaptivePipelineOptions options;
  options.runtime.time_scale = 0.05;
  options.runtime.adapt.epoch = 3.0;  // adaptation check every 3 virtual s
  options.runtime.adapt.policy.restart_latency = 0.2;

  core::AdaptivePipeline pipeline(
      g, workload::image_pipeline(kWidth, kHeight), options);
  std::cout << "initial plan: " << pipeline.plan().mapping.to_string()
            << "\n";

  // 2000 synthetic frames (~20+ virtual seconds of stream).
  std::vector<std::any> frames;
  for (std::uint64_t f = 0; f < 2000; ++f) {
    frames.emplace_back(workload::make_test_image(kWidth, kHeight, f));
  }
  const auto report = pipeline.run(std::move(frames));

  std::cout << report.summary() << "\n";
  for (const auto& remap : report.remaps) {
    std::cout << "  remap at t=" << util::format_double(remap.time, 1)
              << "s: " << remap.from << " -> " << remap.to << " (pause "
              << util::format_double(remap.pause, 2) << "s)\n";
  }

  // Verify one frame against the inline reference.
  const auto& out = std::any_cast<const workload::Image&>(report.outputs[17]);
  const workload::Image expected = workload::threshold(
      workload::sobel(workload::box_blur(
          workload::make_test_image(kWidth, kHeight, 17))),
      0.5F);
  std::cout << "frame 17 checksum "
            << util::format_double(workload::mean_pixel(out), 6)
            << (out.pixels == expected.pixels ? " (verified)"
                                              : " (MISMATCH!)")
            << "\n";
  return 0;
}
