// mapping_planner — the AMoGeT workflow: read a grid + pipeline
// description file, generate every candidate mapping, evaluate each with
// the performance model, and print the ranked results (the "generate
// models / solve / compare" loop, with the analytic model in place of
// the PEPA workbench).
//
//   mapping_planner [FILE] [--at TIME] [--rate R] [--top N]
//
//   FILE       description file (omit to use a built-in demo)
//   --at TIME  evaluate the grid at virtual time TIME (default 0,
//              i.e. deployment time)
//   --rate R   also rank by modeled latency at offered rate R
//   --top N    show the N best mappings (default 8)

#include <algorithm>
#include <cstring>
#include <iostream>

#include "sched/description.hpp"
#include "sched/exhaustive.hpp"
#include "sched/latency_mapper.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kDemoDescription = R"(# built-in demo description
[nodes]
fast    2.0
worker1 1.0
worker2 1.0 load=step,150,8.0   # becomes busy at t=150s

[links]
default 1e-3 1e8
fast worker1 1e-4 1e9           # same rack

[pipeline]
parse   1.0 1e4
compute 4.0 1e4 4e6
render  1.0 1e4
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace gridpipe;

  std::string path;
  double at_time = 0.0;
  double rate = 0.0;
  std::size_t top = 8;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--at") && i + 1 < argc) {
      at_time = std::stod(argv[++i]);
    } else if (!std::strcmp(argv[i], "--rate") && i + 1 < argc) {
      rate = std::stod(argv[++i]);
    } else if (!std::strcmp(argv[i], "--top") && i + 1 < argc) {
      top = std::stoull(argv[++i]);
    } else if (argv[i][0] != '-') {
      path = argv[i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [FILE] [--at TIME] [--rate R] [--top N]\n";
      return 2;
    }
  }

  const sched::GridDescription description =
      path.empty() ? sched::parse_description(kDemoDescription)
                   : sched::load_description(path);
  if (path.empty()) {
    std::cout << "(no file given — using the built-in demo description)\n";
  }
  std::cout << description.grid.num_nodes() << " nodes, "
            << description.profile.num_stages()
            << " stages; evaluating at t=" << at_time << "s\n\n";

  const auto est =
      sched::ResourceEstimate::from_grid(description.grid, at_time);
  const sched::PerfModel model;

  // Enumerate and rank every mapping by modeled throughput.
  struct Ranked {
    sched::Mapping mapping;
    double throughput;
    double comm;
  };
  std::vector<Ranked> ranked;
  const std::size_t ns = description.profile.num_stages();
  const std::size_t np = description.grid.num_nodes();
  std::vector<grid::NodeId> assign(ns, 0);
  for (;;) {
    sched::Mapping candidate{assign};
    const auto bd = model.breakdown(description.profile, est, candidate);
    ranked.push_back({std::move(candidate), bd.throughput,
                      bd.total_comm_time});
    std::size_t digit = ns;
    bool done = true;
    while (digit > 0) {
      --digit;
      if (static_cast<std::size_t>(++assign[digit]) < np) {
        done = false;
        break;
      }
      assign[digit] = 0;
    }
    if (done) break;
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.throughput != b.throughput) return a.throughput > b.throughput;
    return a.comm < b.comm;
  });

  util::Table table({"rank", "mapping", "throughput", "comm s/item"});
  for (std::size_t i = 0; i < std::min(top, ranked.size()); ++i) {
    table.row()
        .add(i + 1)
        .add(ranked[i].mapping.to_string())
        .add(ranked[i].throughput, 4)
        .add(ranked[i].comm, 5);
  }
  std::cout << table.to_string();
  std::cout << ranked.size() << " candidate mappings evaluated\n";

  if (rate > 0.0) {
    const auto lat = sched::LatencyMapper(model).best(description.profile,
                                                      est, rate);
    if (lat) {
      std::cout << "\nlatency-optimal at rate " << rate << "/s: "
                << lat->mapping.to_string() << "  mean latency "
                << util::format_double(lat->latency, 3) << "s (capacity "
                << util::format_double(lat->throughput, 3) << "/s)\n";
    } else {
      std::cout << "\nno mapping can sustain rate " << rate << "/s\n";
    }
  }
  return 0;
}
