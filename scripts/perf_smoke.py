#!/usr/bin/env python3
"""Perf-smoke gate: fail CI when per-item substrate overhead regresses.

Compares a fresh ``bench_f2_overhead --json`` run against the committed
baseline (``bench_results/BENCH_F2.json``). The guarded quantity is the
per-item overhead each real substrate pays over the threads runtime,

    overhead(rt) = 1/throughput_off(rt) - 1/throughput_off(threads)

in virtual seconds per item. That is exactly what the zero-copy wire
work (pooled buffers, writev trains, shm rings) bought down, so it is
the number a transport regression moves first. The gate fails when a
substrate's overhead exceeds the baseline by more than --max-regress
(fractional, default 0.25) plus a small absolute epsilon that absorbs
scheduler noise in the wall-clock-derived throughputs.

The recovery gate works the same way over ``bench_r1_recovery --json``
output (``bench_results/BENCH_R1.json``): the guarded quantities are the
per-scenario recovery window (death detected -> last in-flight item
re-delivered) and the fault-free journal overhead. Pass
--recovery-candidate to enable it; either gate may run alone.

Usage:
    perf_smoke.py [CANDIDATE.json] [--baseline bench_results/BENCH_F2.json]
                  [--recovery-candidate R1.json]
                  [--recovery-baseline bench_results/BENCH_R1.json]
                  [--max-regress 0.25] [--noise-frac 0.02]
"""

import argparse
import json
import sys


def per_item_overheads(doc):
    """runtime -> per-item overhead vs threads (virtual s/item, >= 0)."""
    rows = {row["runtime"]: row for row in doc["substrate_overhead"]}
    if "threads" not in rows:
        raise SystemExit("perf_smoke: no 'threads' row in substrate_overhead")
    threads_item = 1.0 / rows["threads"]["throughput_off"]
    out = {}
    for runtime, row in rows.items():
        if runtime in ("sim", "threads"):
            continue  # sim has no transport; threads is the reference
        out[runtime] = max(0.0, 1.0 / row["throughput_off"] - threads_item)
    return out, threads_item


def per_item_obs_costs(doc):
    """runtime -> per-item cost of enabling full observability (tracer +
    metrics sinks over the always-on flight recorder), in virtual
    seconds per item: 1/throughput_obs - 1/throughput_off. Empty when
    the document predates the obs-enabled rows."""
    out = {}
    for row in doc["substrate_overhead"]:
        if row["runtime"] == "sim" or "throughput_obs" not in row:
            continue  # sim pays no live instrumentation cost
        out[row["runtime"]] = max(
            0.0, 1.0 / row["throughput_obs"] - 1.0 / row["throughput_off"]
        )
    return out


def recovery_windows(doc):
    """scenario -> recovery window (virtual s) for the fault scenarios."""
    return {
        row["scenario"]: row["recovery_window_vs"]
        for row in doc["recovery"]
        if row.get("node_losses", 0) > 0
    }


def check_recovery(cand_path, base_path, max_regress, noise_abs, failures):
    with open(base_path) as f:
        base_doc = json.load(f)
    with open(cand_path) as f:
        cand_doc = json.load(f)
    base = recovery_windows(base_doc)
    cand = recovery_windows(cand_doc)

    print(f"{'recovery':<12} {'baseline':>12} {'candidate':>12} {'allowed':>12}")
    for scenario in sorted(base):
        if scenario not in cand:
            failures.append(f"recovery {scenario}: missing from candidate run")
            continue
        allowed = base[scenario] * (1.0 + max_regress) + noise_abs
        verdict = "ok" if cand[scenario] <= allowed else "REGRESSED"
        print(
            f"{scenario:<12} {base[scenario]:>12.4f} {cand[scenario]:>12.4f} "
            f"{allowed:>12.4f}  {verdict}"
        )
        if cand[scenario] > allowed:
            failures.append(
                f"recovery {scenario}: window {cand[scenario]:.4f} > "
                f"allowed {allowed:.4f} (baseline {base[scenario]:.4f})"
            )

    # Journal overhead on the fault-free path: near-zero by design, so the
    # absolute slack does the work and a negative baseline clamps to 0.
    base_j = max(0.0, base_doc.get("journal_overhead_vs", 0.0))
    cand_j = cand_doc.get("journal_overhead_vs", 0.0)
    allowed = base_j * (1.0 + max_regress) + noise_abs
    verdict = "ok" if cand_j <= allowed else "REGRESSED"
    print(
        f"{'journal':<12} {base_j:>12.4f} {cand_j:>12.4f} "
        f"{allowed:>12.4f}  {verdict}"
    )
    if cand_j > allowed:
        failures.append(
            f"recovery journal: fault-free overhead {cand_j:.4f} > "
            f"allowed {allowed:.4f} (baseline {base_j:.4f})"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "candidate",
        nargs="?",
        default=None,
        help="fresh bench_f2_overhead --json output",
    )
    parser.add_argument("--baseline", default="bench_results/BENCH_F2.json")
    parser.add_argument(
        "--recovery-candidate",
        default=None,
        help="fresh bench_r1_recovery --json output (enables the recovery gate)",
    )
    parser.add_argument(
        "--recovery-baseline", default="bench_results/BENCH_R1.json"
    )
    parser.add_argument(
        "--recovery-noise-abs",
        type=float,
        default=0.5,
        help="absolute slack on recovery windows in virtual seconds "
        "(wall-clock-derived, so scheduler noise is absolute, not relative)",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.25,
        help="allowed fractional overhead growth vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--noise-frac",
        type=float,
        default=0.02,
        help="absolute slack as a fraction of the threads per-item time, "
        "so near-zero baselines do not fail on scheduler noise",
    )
    args = parser.parse_args()
    if args.candidate is None and args.recovery_candidate is None:
        parser.error("nothing to gate: pass CANDIDATE.json and/or "
                     "--recovery-candidate")

    failures = []
    if args.recovery_candidate is not None:
        check_recovery(
            args.recovery_candidate,
            args.recovery_baseline,
            args.max_regress,
            args.recovery_noise_abs,
            failures,
        )
    if args.candidate is None:
        if failures:
            print("perf_smoke: FAIL", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("perf_smoke: ok (recovery gate only)")
        return 0

    with open(args.baseline) as f:
        base_doc = json.load(f)
    with open(args.candidate) as f:
        cand_doc = json.load(f)

    base, base_threads_item = per_item_overheads(base_doc)
    cand, _ = per_item_overheads(cand_doc)
    epsilon = args.noise_frac * base_threads_item

    print(f"{'runtime':<10} {'baseline':>12} {'candidate':>12} {'allowed':>12}")
    for runtime in sorted(base):
        if runtime not in cand:
            failures.append(f"{runtime}: missing from candidate run")
            continue
        allowed = base[runtime] * (1.0 + args.max_regress) + epsilon
        verdict = "ok" if cand[runtime] <= allowed else "REGRESSED"
        print(
            f"{runtime:<10} {base[runtime]:>12.4f} {cand[runtime]:>12.4f} "
            f"{allowed:>12.4f}  {verdict}"
        )
        if cand[runtime] > allowed:
            failures.append(
                f"{runtime}: per-item overhead {cand[runtime]:.4f} > "
                f"allowed {allowed:.4f} (baseline {base[runtime]:.4f})"
            )

    # Observability-enabled gate: the cost of flipping the sinks on must
    # not balloon either. Skipped when the committed baseline predates
    # the obs-enabled rows (the next record_bench.sh run adds them).
    base_obs = per_item_obs_costs(base_doc)
    cand_obs = per_item_obs_costs(cand_doc)
    if base_obs:
        print(f"{'obs cost':<10} {'baseline':>12} {'candidate':>12} "
              f"{'allowed':>12}")
        for runtime in sorted(base_obs):
            if runtime not in cand_obs:
                failures.append(f"{runtime}: obs row missing from candidate")
                continue
            allowed = base_obs[runtime] * (1.0 + args.max_regress) + epsilon
            verdict = "ok" if cand_obs[runtime] <= allowed else "REGRESSED"
            print(
                f"{runtime:<10} {base_obs[runtime]:>12.4f} "
                f"{cand_obs[runtime]:>12.4f} {allowed:>12.4f}  {verdict}"
            )
            if cand_obs[runtime] > allowed:
                failures.append(
                    f"{runtime}: per-item obs cost {cand_obs[runtime]:.4f} > "
                    f"allowed {allowed:.4f} (baseline {base_obs[runtime]:.4f})"
                )
    else:
        print("perf_smoke: baseline has no obs-enabled rows; obs gate skipped")

    if failures:
        print("perf_smoke: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf_smoke: ok (units: virtual seconds per item vs threads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
