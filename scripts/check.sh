#!/usr/bin/env bash
# Tier-1 gate: header self-containment check → configure → build
# (warnings are errors) → ctest, then a ThreadSanitizer pass over the
# concurrency-heavy suites (test_core, test_dist_executor,
# test_integration, test_comm, test_shm_ring) and an ASan+UBSan pass
# over the fork/socket-heavy ones (test_proc_executor, test_comm,
# test_dist_executor, test_shm_ring) — lifetime bugs live where
# processes, shared mappings and fds do. When a clang++ is available two
# static-analysis stages follow: a clang build with
# -Wthread-safety -Werror (the annotation gate) and clang-tidy over
# src/ (curated checks from .clang-tidy, warnings are errors). Mirrors
# the one-command verify line in README.md, with -Werror added so the
# tree stays warning-clean.
#
#   SKIP_TSAN=1 SKIP_ASAN=1 ./scripts/check.sh   # only the regular gate
#   TSAN_ONLY=1 ./scripts/check.sh               # only the TSan stage
#   ASAN_ONLY=1 ./scripts/check.sh               # only the ASan stage
#   HEADERS_ONLY=1 ./scripts/check.sh            # only the header check
#   CLANG_ONLY=1 ./scripts/check.sh              # only the clang -Wthread-safety build
#   TIDY_ONLY=1 ./scripts/check.sh               # only the clang-tidy stage
#   SKIP_CLANG=1 SKIP_TIDY=1 ./scripts/check.sh  # skip the clang stages
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
CLANG_BUILD_DIR="${CLANG_BUILD_DIR:-build-clang}"
JOBS="$(nproc 2>/dev/null || echo 4)"
CXX_BIN="${CXX:-g++}"

# Only-stage selectors are mutually exclusive shortcuts; each one implies
# skipping every other stage.
ONLY_SET="${TSAN_ONLY:-}${ASAN_ONLY:-}${CLANG_ONLY:-}${TIDY_ONLY:-}"

find_clangxx() {
  if [[ -n "${CLANGXX:-}" ]]; then echo "$CLANGXX"; return; fi
  local c
  for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
           clang++-16 clang++-15 clang++-14; do
    if command -v "$c" >/dev/null 2>&1; then echo "$c"; return; fi
  done
}

if [[ -z "${ONLY_SET}" && -z "${SKIP_HEADERS:-}" ]]; then
  # Header self-containment: every public header must compile standalone
  # (a user includes rt/runtime.hpp alone and expects it to work; a
  # header that leans on its includer's includes rots silently).
  echo "== header self-containment (src/**/*.hpp) =="
  # Compile a one-line TU per header (not the header itself: GCC warns
  # on #pragma once in a main file).
  find src -name '*.hpp' | sort | while read -r header; do
    echo "#include \"${header#src/}\"" |
      "$CXX_BIN" -std=c++20 -fsyntax-only -Wall -Wextra -Werror -Isrc \
        -x c++ - ||
      { echo "not self-contained: $header"; exit 1; }
  done
fi
if [[ -n "${HEADERS_ONLY:-}" ]]; then exit 0; fi

if [[ -z "${ONLY_SET}" ]]; then
  # Pin the options the gate depends on (the smoke test needs examples),
  # so a build dir whose cache was configured differently still verifies
  # the full suites + smoke contract.
  cmake -B "$BUILD_DIR" -S . -DGRIDPIPE_WERROR=ON \
    -DGRIDPIPE_BUILD_TESTS=ON -DGRIDPIPE_BUILD_EXAMPLES=ON
  cmake --build "$BUILD_DIR" -j"$JOBS"
  # cd instead of ctest --test-dir: the latter needs CTest >= 3.20 and the
  # project supports CMake 3.16.
  (cd "$BUILD_DIR" && ctest --output-on-failure -j"$JOBS")
fi

if [[ -z "${SKIP_TSAN:-}" && ( -z "${ONLY_SET}" || -n "${TSAN_ONLY:-}" ) ]]; then
  cmake -B "$TSAN_BUILD_DIR" -S . -DGRIDPIPE_TSAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGRIDPIPE_BUILD_BENCH=OFF -DGRIDPIPE_BUILD_EXAMPLES=OFF
  cmake --build "$TSAN_BUILD_DIR" -j"$JOBS" \
    --target test_core test_dist_executor test_integration test_comm \
    test_shm_ring test_flight
  # RUN_SERIAL already orders these; -R narrows to the threaded suites so
  # the TSan stage stays fast. The wall-clock throughput-band tests are
  # excluded: TSan's 5-15x slowdown makes their bands meaningless, and a
  # retry loop that would absorb their flakiness could equally swallow a
  # nondeterministic race report. Every failure here is terminal.
  # shm_ring rides along for its two-thread SPSC stress (the ring's
  # acquire/release pairing is exactly what TSan checks); its fork-based
  # cases are excluded — TSan does not support multi-threaded fork. The
  # flight suite's concurrent writer/reader snapshot stress is likewise
  # exactly TSan's territory; its fork case is excluded the same way.
  (cd "$TSAN_BUILD_DIR" &&
    GTEST_FILTER='-Executor.HeterogeneityEmulationSlowsThroughput:Executor.ThroughputTracksModelPrediction:DistributedExecutor.HeterogeneityChangesThroughput:DesVsThreads.ThroughputAgreesWithinBand:ShmRingMesh.CrossProcessPushPopThroughFork:FlightRecorder.ParentReadsKilledChildsLaneAfterFork' \
    ctest --output-on-failure -R '^(core|dist_executor|integration|comm|shm_ring|flight)$')
fi

if [[ -z "${SKIP_ASAN:-}" && ( -z "${ONLY_SET}" || -n "${ASAN_ONLY:-}" ) ]]; then
  cmake -B "$ASAN_BUILD_DIR" -S . -DGRIDPIPE_ASAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGRIDPIPE_BUILD_BENCH=OFF -DGRIDPIPE_BUILD_EXAMPLES=OFF
  cmake --build "$ASAN_BUILD_DIR" -j"$JOBS" \
    --target test_proc_executor test_comm test_dist_executor test_shm_ring \
    test_flight test_recover
  # The proc suite forks real worker processes under ASan (fork is fine
  # with ASan, unlike TSan; children _exit so LeakSanitizer only audits
  # the parent). flight rides along for its mmap lifetime and its own
  # fork + SIGKILL forensics case; recover SIGKILLs workers mid-stream
  # and audits the respawn/replay teardown paths. The wall-clock
  # throughput-band test is excluded for the same reason as under TSan:
  # sanitizer slowdown voids its band.
  (cd "$ASAN_BUILD_DIR" &&
    GTEST_FILTER='-DistributedExecutor.HeterogeneityChangesThroughput' \
    ctest --output-on-failure -R '^(proc_executor|comm|dist_executor|shm_ring|flight|recover)$')
fi

if [[ -z "${SKIP_CLANG:-}" && ( -z "${ONLY_SET}" || -n "${CLANG_ONLY:-}" ) ]]; then
  CLANGXX_BIN="$(find_clangxx)"
  if [[ -z "${CLANGXX_BIN}" ]]; then
    echo "== clang thread-safety stage: no clang++ found, skipping =="
  else
    echo "== clang -Wthread-safety build (${CLANGXX_BIN}) =="
    cmake -B "$CLANG_BUILD_DIR" -S . \
      -DCMAKE_CXX_COMPILER="$CLANGXX_BIN" \
      -DGRIDPIPE_THREAD_SAFETY=ON -DGRIDPIPE_WERROR=ON \
      -DGRIDPIPE_BUILD_TESTS=ON -DGRIDPIPE_BUILD_BENCH=ON \
      -DGRIDPIPE_BUILD_EXAMPLES=ON
    cmake --build "$CLANG_BUILD_DIR" -j"$JOBS"
    # The annotation gate can't be allowed to rot into no-ops: assert the
    # seeded violation probe still fails to compile.
    (cd "$CLANG_BUILD_DIR" && ctest --output-on-failure -R '^thread_safety_gate$')
  fi
fi

if [[ -z "${SKIP_TIDY:-}" && ( -z "${ONLY_SET}" || -n "${TIDY_ONLY:-}" ) ]]; then
  RUN_TIDY=""
  for c in run-clang-tidy run-clang-tidy-20 run-clang-tidy-19 run-clang-tidy-18 \
           run-clang-tidy-17 run-clang-tidy-16 run-clang-tidy-15 run-clang-tidy-14; do
    if command -v "$c" >/dev/null 2>&1; then RUN_TIDY="$c"; break; fi
  done
  if [[ -z "${RUN_TIDY}" ]]; then
    echo "== clang-tidy stage: no run-clang-tidy found, skipping =="
  else
    echo "== clang-tidy over src/ (${RUN_TIDY}) =="
    # Needs a compile_commands.json; the regular gate's build dir exports
    # one (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
    if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
      cmake -B "$BUILD_DIR" -S . -DGRIDPIPE_BUILD_TESTS=ON \
        -DGRIDPIPE_BUILD_EXAMPLES=ON
    fi
    # .clang-tidy sets WarningsAsErrors: '*', so any finding fails here.
    "$RUN_TIDY" -quiet -p "$BUILD_DIR" 'src/.*\.cpp$'
  fi
fi
