#!/usr/bin/env bash
# Tier-1 gate: configure → build (warnings are errors) → ctest.
# Mirrors the one-command verify line in README.md, with -Werror added so
# the tree stays warning-clean.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Pin the options the gate depends on (the smoke test needs examples),
# so a build dir whose cache was configured differently still verifies
# the full 16-suites + smoke contract.
cmake -B "$BUILD_DIR" -S . -DGRIDPIPE_WERROR=ON \
  -DGRIDPIPE_BUILD_TESTS=ON -DGRIDPIPE_BUILD_EXAMPLES=ON
cmake --build "$BUILD_DIR" -j"$JOBS"
# cd instead of ctest --test-dir: the latter needs CTest >= 3.20 and the
# project supports CMake 3.16.
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$JOBS")
