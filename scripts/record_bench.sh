#!/usr/bin/env bash
# Persist the bench baselines the ROADMAP asks for: run the benches that
# emit machine-readable output and collect their JSON under
# bench_results/. Re-run on a perf-relevant change and commit the diff —
# that is the whole perf trajectory story.
#
#   ./scripts/record_bench.sh            # build (if needed) + record all
#   OUT_DIR=/tmp/b ./scripts/record_bench.sh
#
# Outputs:
#   bench_results/BENCH_F2.json  adaptation + per-substrate overhead
#   bench_results/BENCH_M1.json  microbenchmarks (google-benchmark JSON)
#   bench_results/BENCH_R1.json  fault-tolerance cost (recovery windows)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-bench_results}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DGRIDPIPE_BUILD_BENCH=ON > /dev/null
cmake --build "$BUILD_DIR" -j"$JOBS" --target bench_f2_overhead bench_m1_micro \
  bench_r1_recovery

mkdir -p "$OUT_DIR"

echo "== EXP-F2 (adaptation + substrate overhead) =="
"$BUILD_DIR"/bench/bench_f2_overhead --json "$OUT_DIR/BENCH_F2.json"

echo "== EXP-M1 (microbenchmarks) =="
# benchmark_repetitions kept low: the baseline tracks orders of
# magnitude across commits, not single-digit percents.
"$BUILD_DIR"/bench/bench_m1_micro \
  --benchmark_out="$OUT_DIR/BENCH_M1.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.05

echo "== EXP-R1 (fault-tolerance cost) =="
"$BUILD_DIR"/bench/bench_r1_recovery --json "$OUT_DIR/BENCH_R1.json"

python3 -m json.tool "$OUT_DIR/BENCH_F2.json" > /dev/null
python3 -m json.tool "$OUT_DIR/BENCH_M1.json" > /dev/null
python3 -m json.tool "$OUT_DIR/BENCH_R1.json" > /dev/null
echo "baselines written to $OUT_DIR/"
