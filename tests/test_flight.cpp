// Tests for the forensic layer: flight-recorder ring semantics (create/
// attach, wrap, tail ordering, inert handles, concurrent snapshots, and
// post-mortem readout across fork + SIGKILL), the health record codec
// and stall tracker edges, the status hub's provider lifecycle, and the
// fsio helpers the CLI's fail-fast path rides on.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "json_checker.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/status.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace gridpipe::obs {
namespace {

using test_support::JsonChecker;

// Backing storage for a standalone ring: zeroed, 8-byte aligned.
std::vector<std::uint64_t> ring_storage(std::size_t capacity) {
  return std::vector<std::uint64_t>(
      (FlightRing::region_bytes(capacity) + 7) / 8, 0);
}

// ------------------------------------------------------------ FlightRing

TEST(FlightRing, DefaultHandleIsInert) {
  FlightRing ring;
  EXPECT_FALSE(ring.valid());
  EXPECT_EQ(ring.capacity(), 0u);
  EXPECT_EQ(ring.count(), 0u);
  ring.record(FlightKind::kAdmit, 1.0, 0, 42);  // must not crash
  EXPECT_TRUE(ring.tail(16).empty());
}

TEST(FlightRing, CreateRecordAttachRoundTrips) {
  auto storage = ring_storage(8);
  FlightRing writer = FlightRing::create(storage.data(), 8);
  ASSERT_TRUE(writer.valid());
  EXPECT_EQ(writer.capacity(), 8u);

  writer.record(FlightKind::kAdmit, 1.0, 0, 7);
  writer.record(FlightKind::kTaskStart, 1.5, 2, 7);
  writer.record(FlightKind::kComplete, 2.0, 0, 7);

  // A second handle over the same region sees the same events: this is
  // exactly what the parent does with a dead child's lane.
  FlightRing reader = FlightRing::attach(storage.data());
  ASSERT_TRUE(reader.valid());
  EXPECT_EQ(reader.count(), 3u);
  const std::vector<FlightEvent> events = reader.tail(16);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightKind::kAdmit);
  EXPECT_EQ(events[1].kind, FlightKind::kTaskStart);
  EXPECT_EQ(events[1].arg, 2u);
  EXPECT_EQ(events[1].a, 7u);
  EXPECT_EQ(events[2].kind, FlightKind::kComplete);
  EXPECT_EQ(events[2].time, 2.0);
}

TEST(FlightRing, AttachRejectsUninitializedRegion) {
  auto storage = ring_storage(8);  // zeroed: no magic
  EXPECT_FALSE(FlightRing::attach(storage.data()).valid());
  EXPECT_FALSE(FlightRing::attach(nullptr).valid());
  EXPECT_FALSE(FlightRing::create(nullptr, 8).valid());
  EXPECT_FALSE(FlightRing::create(storage.data(), 0).valid());
}

TEST(FlightRing, TailIsOldestFirstAndDropsOverwrittenEvents) {
  auto storage = ring_storage(4);
  FlightRing ring = FlightRing::create(storage.data(), 4);
  for (std::uint64_t item = 0; item < 6; ++item) {
    ring.record(FlightKind::kAdmit, static_cast<double>(item), 0, item);
  }
  EXPECT_EQ(ring.count(), 6u);  // total ever recorded, not clamped

  const std::vector<FlightEvent> events = ring.tail(16);
  ASSERT_EQ(events.size(), 4u);  // capacity wins over max_events
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, i + 2) << "oldest-first after wrap";
  }

  const std::vector<FlightEvent> last_two = ring.tail(2);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two[0].a, 4u);
  EXPECT_EQ(last_two[1].a, 5u);
}

TEST(FlightRing, UnknownKindDecodesAsNone) {
  auto storage = ring_storage(4);
  FlightRing ring = FlightRing::create(storage.data(), 4);
  ring.record(static_cast<FlightKind>(99), 1.0);
  const std::vector<FlightEvent> events = ring.tail(4);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightKind::kNone);
}

TEST(FlightRing, ConcurrentSnapshotsSeeOnlyDecodableEvents) {
  auto storage = ring_storage(16);
  FlightRing ring = FlightRing::create(storage.data(), 16);
  std::thread writer([&ring] {
    for (std::uint64_t i = 0; i < 50000; ++i) {
      ring.record(FlightKind::kTaskStart, static_cast<double>(i), 1, i);
    }
  });
  // Reader races the writer: every snapshot must be well-formed (bounded
  // size, kinds within the enum) even if the oldest slot is torn.
  FlightRing reader = FlightRing::attach(storage.data());
  for (int pass = 0; pass < 2000; ++pass) {
    const std::vector<FlightEvent> events = reader.tail(8);
    ASSERT_LE(events.size(), 8u);
    for (const FlightEvent& e : events) {
      ASSERT_LE(static_cast<std::uint32_t>(e.kind), kMaxFlightKind);
    }
  }
  writer.join();
  EXPECT_EQ(ring.count(), 50000u);
}

// ------------------------------------------------------------ formatting

TEST(FlightFormat, RendersKindSpecificFields) {
  FlightEvent done;
  done.kind = FlightKind::kTaskDone;
  done.arg = 3;
  done.a = 41;
  done.b = std::bit_cast<std::uint64_t>(0.25);
  EXPECT_EQ(format_event(done), "task-done stage=3 item=41 dur=0.2500s");

  FlightEvent credit;
  credit.kind = FlightKind::kCredit;
  credit.a = 8;
  credit.b = 8;
  EXPECT_EQ(format_event(credit), "credit in-flight=8 window=8");

  FlightEvent epoch;
  epoch.kind = FlightKind::kEpoch;
  epoch.arg = 3;  // decided | remapped
  EXPECT_EQ(format_event(epoch), "epoch decided remapped");
  epoch.arg = 0;
  EXPECT_EQ(format_event(epoch), "epoch quiet");

  FlightEvent close;
  close.kind = FlightKind::kClose;
  EXPECT_EQ(format_event(close), "close");
}

TEST(FlightFormat, MultiLineDumpPrefixesTimestamps) {
  FlightEvent e;
  e.kind = FlightKind::kAdmit;
  e.time = 1.5;
  e.a = 9;
  const std::string dump = format_events({e, e});
  EXPECT_NE(dump.find("  [t=1.5000s] admit item=9\n"), std::string::npos)
      << dump;
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
  EXPECT_TRUE(format_events({}).empty());
}

// -------------------------------------------------------- FlightRecorder

TEST(FlightRecorder, DisabledRecorderHandsOutInertRings) {
  FlightRecorder off;
  EXPECT_FALSE(off.valid());
  EXPECT_FALSE(off.ring(0).valid());
  EXPECT_TRUE(off.tail(0, 8).empty());
  EXPECT_TRUE(off.format_tail(0, 8).empty());

  FlightRecorder zero(4, 0);  // events_per_lane = 0 is the off switch
  EXPECT_FALSE(zero.valid());
  EXPECT_FALSE(zero.ring(0).valid());
}

TEST(FlightRecorder, LanesAreIndependent) {
  FlightRecorder recorder(3, 8);
  ASSERT_TRUE(recorder.valid());
  EXPECT_EQ(recorder.lanes(), 3u);
  EXPECT_EQ(recorder.events_per_lane(), 8u);

  for (std::size_t lane = 0; lane < 3; ++lane) {
    recorder.ring(lane).record(FlightKind::kAdmit, 1.0, 0, lane);
  }
  for (std::size_t lane = 0; lane < 3; ++lane) {
    const std::vector<FlightEvent> events = recorder.tail(lane, 8);
    ASSERT_EQ(events.size(), 1u) << "lane " << lane;
    EXPECT_EQ(events[0].a, lane);
  }
  EXPECT_FALSE(recorder.ring(3).valid()) << "out-of-range lane is inert";
}

TEST(FlightRecorder, MoveTransfersTheMapping) {
  FlightRecorder a(2, 8);
  a.ring(1).record(FlightKind::kClose, 4.0);
  FlightRecorder b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from is inert
  ASSERT_TRUE(b.valid());
  ASSERT_EQ(b.tail(1, 8).size(), 1u);
  EXPECT_EQ(b.tail(1, 8)[0].kind, FlightKind::kClose);
}

TEST(FlightRecorder, ParentReadsKilledChildsLaneAfterFork) {
  // The core forensic promise: the recorder is constructed pre-fork, a
  // child writes its lane and dies by SIGKILL (no cleanup, no flush),
  // and the parent still reads the child's last events out of the
  // MAP_SHARED pages.
  FlightRecorder recorder(2, 32);
  ASSERT_TRUE(recorder.valid());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FlightRing lane = recorder.ring(1);
    lane.record(FlightKind::kTaskStart, 1.0, 0, 100);
    lane.record(FlightKind::kTaskDone, 1.5, 0, 100,
                std::bit_cast<std::uint64_t>(0.5));
    lane.record(FlightKind::kTaskStart, 2.0, 0, 101);  // died mid-task
    ::raise(SIGKILL);
    ::_exit(127);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  const std::vector<FlightEvent> events = recorder.tail(1, 32);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightKind::kTaskStart);
  EXPECT_EQ(events[2].kind, FlightKind::kTaskStart);
  EXPECT_EQ(events[2].a, 101u) << "last act before SIGKILL preserved";

  const std::string tail = recorder.format_tail(1, 32);
  EXPECT_NE(tail.find("task-start stage=0 item=101"), std::string::npos)
      << tail;
}

// ---------------------------------------------------------- health codec

HealthRecord sample_health() {
  HealthRecord record;
  record.node = 3;
  record.time = 12.25;
  record.last_progress = 11.5;
  record.tasks_executed = 42;
  record.queue_depth = 2;
  record.ring_bytes = 4096;
  record.rss_kb = 10240;
  return record;
}

TEST(Health, CodecRoundTrips) {
  const Bytes wire = encode_health(sample_health());
  ASSERT_EQ(wire.size(), kHealthWireBytes);
  EXPECT_EQ(decode_health(wire), sample_health());
}

TEST(Health, DecodeRejectsWrongSizes) {
  Bytes wire = encode_health(sample_health());
  Bytes shorter(wire.begin(), wire.end() - 1);
  EXPECT_THROW(decode_health(shorter), std::invalid_argument);
  wire.push_back(std::byte{0});
  EXPECT_THROW(decode_health(wire), std::invalid_argument);
  EXPECT_THROW(decode_health(Bytes{}), std::invalid_argument);
}

TEST(Health, SelfRssIsPositive) {
  EXPECT_GT(self_rss_kb(), 0u);
}

// -------------------------------------------------------- HealthTracker

TEST(HealthTracker, SilenceStallIsEdgeTriggeredWithRecovery) {
  HealthTracker tracker;
  tracker.reset(2, 0.0);

  EXPECT_TRUE(tracker.check(10.0, 15.0).empty()) << "inside the window";

  const auto stalls = tracker.check(16.0, 15.0);
  ASSERT_EQ(stalls.size(), 2u);
  EXPECT_TRUE(stalls[0].stalled);
  EXPECT_FALSE(stalls[0].no_progress) << "silence shape, not wedged";
  EXPECT_GT(stalls[0].silent_for, 15.0);

  EXPECT_TRUE(tracker.check(17.0, 15.0).empty()) << "edge, not level";

  tracker.on_frame(0, 18.0);  // any frame proves liveness
  const auto recoveries = tracker.check(18.5, 15.0);
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_EQ(recoveries[0].node, 0u);
  EXPECT_FALSE(recoveries[0].stalled);

  EXPECT_FALSE(tracker.nodes()[0].stalled);
  EXPECT_EQ(tracker.nodes()[0].stall_count, 1u);
  EXPECT_TRUE(tracker.nodes()[1].stalled);
}

TEST(HealthTracker, NoProgressWedgeRequiresQueuedWork) {
  HealthTracker tracker;
  tracker.reset(1, 0.0);

  // Heartbeats keep arriving (never silent), but last_progress froze
  // while the queue stays nonempty: the wedged shape.
  HealthRecord beat;
  beat.node = 0;
  beat.last_progress = 1.0;
  beat.queue_depth = 2;
  for (double now = 2.0; now <= 20.0; now += 2.0) {
    beat.time = now;
    tracker.on_health(beat, now);
    const auto transitions = tracker.check(now, 15.0);
    if (now - beat.last_progress <= 15.0) {
      EXPECT_TRUE(transitions.empty()) << "at t=" << now;
    } else if (!transitions.empty()) {
      EXPECT_TRUE(transitions[0].stalled);
      EXPECT_TRUE(transitions[0].no_progress);
    }
  }
  EXPECT_TRUE(tracker.nodes()[0].stalled);

  // Same silence pattern with an empty queue is idle, not wedged.
  HealthTracker idle;
  idle.reset(1, 0.0);
  beat.queue_depth = 0;
  for (double now = 2.0; now <= 20.0; now += 2.0) {
    beat.time = now;
    idle.on_health(beat, now);
    EXPECT_TRUE(idle.check(now, 15.0).empty()) << "at t=" << now;
  }
}

TEST(HealthTracker, NonPositiveThresholdDisablesDetection) {
  HealthTracker tracker;
  tracker.reset(1, 0.0);
  EXPECT_TRUE(tracker.check(1000.0, 0.0).empty());
  EXPECT_TRUE(tracker.check(1000.0, -1.0).empty());
  EXPECT_FALSE(tracker.nodes()[0].stalled);
}

TEST(HealthTracker, ToJsonIsWellFormedAndCarriesTheRecord) {
  HealthTracker tracker;
  tracker.reset(2, 0.0);
  tracker.on_health(sample_health(), 12.5);  // node 3: out of range, dropped
  HealthRecord record = sample_health();
  record.node = 1;
  tracker.on_health(record, 12.5);

  const std::string text = tracker.to_json(13.0).dump(2);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"queue_depth\": 2"), std::string::npos) << text;
  EXPECT_NE(text.find("\"rss_kb\": 10240"), std::string::npos) << text;
}

// ------------------------------------------------------------- StatusHub

TEST(StatusHub, SnapshotCoversProvidersInRegistrationOrder) {
  StatusHub& hub = StatusHub::global();
  const std::size_t baseline = hub.size();

  const int first = hub.add("alpha", [] {
    util::Json status = util::Json::object();
    status["items"] = std::uint64_t{7};
    return status;
  });
  const int second = hub.add("beta", [] { return util::Json::object(); });
  EXPECT_EQ(hub.size(), baseline + 2);

  const std::string text = hub.snapshot_json();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  const std::size_t alpha_pos = text.find("\"alpha\"");
  const std::size_t beta_pos = text.find("\"beta\"");
  ASSERT_NE(alpha_pos, std::string::npos);
  ASSERT_NE(beta_pos, std::string::npos);
  EXPECT_LT(alpha_pos, beta_pos);
  EXPECT_NE(text.find("\"items\": 7"), std::string::npos) << text;

  hub.remove(first);
  hub.remove(second);
  EXPECT_EQ(hub.size(), baseline);
  EXPECT_EQ(hub.snapshot_json().find("\"alpha\""), std::string::npos);
}

TEST(StatusHub, ThrowingProviderBecomesErrorEntry) {
  StatusHub& hub = StatusHub::global();
  const int id = hub.add("doomed", []() -> util::Json {
    throw std::runtime_error("provider exploded");
  });
  const std::string text = hub.snapshot_json();  // must not throw
  hub.remove(id);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("provider exploded"), std::string::npos) << text;
}

TEST(StatusHub, RegistrationIsRaiiAndMovable) {
  StatusHub& hub = StatusHub::global();
  const std::size_t baseline = hub.size();
  {
    StatusRegistration reg("scoped", [] { return util::Json::object(); });
    EXPECT_EQ(hub.size(), baseline + 1);
    StatusRegistration moved(std::move(reg));
    EXPECT_EQ(hub.size(), baseline + 1) << "move must not re-register";
    StatusRegistration assigned;
    assigned = std::move(moved);
    EXPECT_EQ(hub.size(), baseline + 1);
  }
  EXPECT_EQ(hub.size(), baseline);
}

// ------------------------------------------------------------------ fsio

TEST(Fsio, ProbeWritableAcceptsCreatableAndRejectsBadDirectories) {
  const std::string path = ::testing::TempDir() + "gridpipe_probe_test.json";
  std::remove(path.c_str());
  EXPECT_EQ(util::probe_writable(path), "") << "creatable file";
  EXPECT_EQ(util::probe_writable(path), "") << "existing file";
  std::remove(path.c_str());

  const std::string err =
      util::probe_writable("/nonexistent-dir-gridpipe/x/status.json");
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("/nonexistent-dir-gridpipe/x/status.json"),
            std::string::npos)
      << "error names the path: " << err;
}

TEST(Fsio, WriteFileAtomicReplacesContent) {
  const std::string path = ::testing::TempDir() + "gridpipe_atomic_test.json";
  EXPECT_EQ(util::write_file_atomic(path, "{\"v\": 1}\n"), "");
  EXPECT_EQ(util::write_file_atomic(path, "{\"v\": 2}\n"), "");

  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"v\": 2}\n");
  std::remove(path.c_str());

  EXPECT_NE(util::write_file_atomic("/nonexistent-dir-gridpipe/x.json", "{}"),
            "");
}

}  // namespace
}  // namespace gridpipe::obs
