// Unit and property tests for gridpipe::util (RNG, stats, tables).

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace gridpipe::util {
namespace {

// ---------------------------------------------------------------- RNG

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 parent(7);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Uniform01, InHalfOpenUnitInterval) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanNearHalf) {
  Xoshiro256 rng(42);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(uniform01(rng));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(UniformInt, RespectsInclusiveBounds) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = uniform_int(rng, 3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformInt, DegenerateRangeReturnsLo) {
  Xoshiro256 rng(9);
  EXPECT_EQ(uniform_int(rng, 5, 5), 5u);
}

TEST(Exponential, MeanMatchesRate) {
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(exponential(rng, 4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Normal, MeanAndStddev) {
  Xoshiro256 rng(13);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(normal(rng, 3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(BoundedPareto, StaysInSupport) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 10'000; ++i) {
    const double v = bounded_pareto(rng, 1.5, 1.0, 100.0);
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 100.0 + 1e-9);
  }
}

TEST(Shuffle, IsAPermutation) {
  Xoshiro256 rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  shuffle(rng, shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = normal(rng, 1.0, 5.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.last(), 10.0);
  EXPECT_DOUBLE_EQ(w.back(2), 2.0);
}

TEST(SlidingWindow, MedianOddAndEven) {
  SlidingWindow w(5);
  for (const double x : {5.0, 1.0, 3.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);
  w.add(7.0);
  EXPECT_DOUBLE_EQ(w.median(), 4.0);
}

TEST(SlidingWindow, BackOutOfRangeThrows) {
  SlidingWindow w(2);
  w.add(1.0);
  EXPECT_THROW(w.back(1), std::out_of_range);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(TimeSeries, WindowAggregation) {
  TimeSeries ts;
  ts.add(0.5, 1.0);
  ts.add(1.5, 2.0);
  ts.add(2.5, 3.0);
  ts.add(2.75, 4.0);
  EXPECT_DOUBLE_EQ(ts.sum_in(0.0, 2.0), 3.0);
  EXPECT_EQ(ts.count_in(2.0, 3.0), 2u);
  EXPECT_DOUBLE_EQ(ts.mean_in(2.0, 3.0), 3.5);
  const auto rates = ts.rate_per_window(1.0, 3.0);
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 1.0);
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
}

TEST(TimeSeries, RejectsNonMonotonicTime) {
  TimeSeries ts;
  ts.add(1.0, 0.0);
  EXPECT_THROW(ts.add(0.5, 0.0), std::invalid_argument);
}

TEST(MeanAbsoluteError, Basic) {
  EXPECT_DOUBLE_EQ(mean_absolute_error({1, 2, 3}, {2, 2, 1}), 1.0);
  EXPECT_THROW(mean_absolute_error({1}, {1, 2}), std::invalid_argument);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 2);
  t.row().add("b").add(std::size_t{42});
  const std::string ascii = t.to_string();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("1.50"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("b,42"), std::string::npos);
}

TEST(Table, OverfullRowThrows) {
  Table t({"one"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), std::logic_error);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

// Property sweep: RunningStats variance matches the two-pass formula for
// several distributions.
class StatsProperty : public ::testing::TestWithParam<int> {};

TEST_P(StatsProperty, WelfordMatchesTwoPass) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    const double x = GetParam() % 2 ? exponential(rng, 0.5)
                                    : normal(rng, -2.0, 3.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9 * std::abs(mean) + 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-9 * var + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace gridpipe::util
