// Negative-compile probe: touches a GRIDPIPE_GUARDED_BY member without
// holding its mutex. Under clang -Wthread-safety -Werror this TU MUST
// fail to compile; if it ever compiles, the annotation macros have
// rotted into no-ops (or the gate lost -Werror) and the CTest wrapper
// run_probe.sh fails the build.

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  int read_without_lock() { return value_; }  // the seeded violation

 private:
  gridpipe::util::Mutex mutex_;
  int value_ GRIDPIPE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.read_without_lock();
}
