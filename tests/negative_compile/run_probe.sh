#!/usr/bin/env sh
# Asserts the thread-safety gate is alive: a seeded GUARDED_BY violation
# must FAIL to compile under clang -Wthread-safety -Werror, and a clean
# twin must PASS (proving the failure comes from the annotation, not a
# broken toolchain). Exits 77 (CTest SKIP_RETURN_CODE) when no clang++
# is available — the analysis is Clang-only.
#
# Usage: run_probe.sh <repo-src-dir>   (the directory added with -I)
# Env:   CLANGXX=/path/to/clang++ overrides discovery.

set -u

src_root=${1:?usage: run_probe.sh <repo-src-dir>}
probe_dir=$(dirname "$0")

clangxx=${CLANGXX:-}
if [ -z "$clangxx" ]; then
  for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                   clang++-16 clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      clangxx=$candidate
      break
    fi
  done
fi
if [ -z "$clangxx" ]; then
  echo "run_probe.sh: no clang++ found; skipping (thread-safety analysis is Clang-only)"
  exit 77
fi

flags="-std=c++20 -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror -I$src_root"

echo "run_probe.sh: using $clangxx"

# 1. The clean twin must compile.
if ! $clangxx $flags "$probe_dir/guarded_by_clean.cpp"; then
  echo "FAIL: clean probe did not compile — toolchain/flags broken, gate unverifiable"
  exit 1
fi

# 2. The seeded violation must NOT compile.
if $clangxx $flags "$probe_dir/guarded_by_violation.cpp" 2>/dev/null; then
  echo "FAIL: seeded GUARDED_BY violation compiled — the thread-safety gate is a no-op"
  exit 1
fi

echo "PASS: clean probe compiles, seeded violation rejected"
exit 0
