// Control probe for run_probe.sh: identical shape to
// guarded_by_violation.cpp but locks correctly, so it MUST compile
// under clang -Wthread-safety -Werror. If this one fails, the failure
// of the violation probe proves nothing (the toolchain or flags are
// broken, not the annotation).

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  int read_with_lock() {
    const gridpipe::util::MutexLock lock(mutex_);
    return value_;
  }

 private:
  gridpipe::util::Mutex mutex_;
  int value_ GRIDPIPE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.read_with_lock();
}
