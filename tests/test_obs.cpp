// Tests for the observability layer: histogram bucketing accuracy and
// quantile error bounds, registry snapshots and their JSON form, Chrome
// trace-event emission, the telemetry batch codec (round-trip plus
// rejection of every malformed shape), apply_telemetry merging, and the
// guarantee that disabled sinks cost one branch and zero allocations.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "json_checker.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

// ------------------------------------------------- allocation counting
// Replacing the global allocator lets DisabledPathDoesNotAllocate pin
// down the "disabled telemetry is a branch" contract instead of
// trusting a code read. The counter only ever increments; tests compare
// before/after around the region of interest.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// noinline: if the optimizer inlines these down to malloc/free at a
// call site, GCC's -Wmismatched-new-delete pairs the raw free against
// the (still symbolic) operator new and reports a false mismatch.
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace gridpipe::obs {
namespace {

// JSON validation lives in the shared tests/json_checker.hpp (also used
// by the flight-recorder and rt status suites).
using test_support::JsonChecker;

std::size_t count_occurrences(std::string_view haystack,
                              std::string_view needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string_view::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ----------------------------------------------------------- histogram

TEST(ObsHistogram, BucketSchemeRelativeErrorBound) {
  // The midpoint representative must stay within 1/(2·kSubBuckets) of
  // the true value across the full dynamic range — that is the whole
  // "percentiles without samples" bargain.
  const double bound = 0.5 / Histogram::kSubBuckets + 1e-9;
  for (double v = 2e-9; v < 1e3; v *= 1.037) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    const double rep = Histogram::bucket_value(idx);
    EXPECT_LE(std::abs(rep - v) / v, bound) << "value " << v;
  }
}

TEST(ObsHistogram, DegenerateValuesLandInEdgeBuckets) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(Histogram::kMinValue), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kNumBuckets - 1);
}

TEST(ObsHistogram, PercentilesTrackExactQuantiles) {
  Histogram h;
  // A deterministic linear ramp: sorted by construction, so the exact
  // nearest-rank quantiles are just reads.
  constexpr int kN = 10000;
  std::vector<double> values;
  values.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const double v = 1e-4 * (1.0 + i);
    values.push_back(v);
    h.record(v);
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kN));
  EXPECT_DOUBLE_EQ(h.min(), values.front());
  EXPECT_DOUBLE_EQ(h.max(), values.back());
  const double exact_mean = (values.front() + values.back()) / 2.0;
  EXPECT_NEAR(h.mean(), exact_mean, exact_mean * 1e-9);

  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * kN));
    const double exact = values[rank - 1];
    EXPECT_NEAR(h.percentile(p), exact, exact * 0.04)
        << "p" << p << " estimate " << h.percentile(p);
    EXPECT_GE(h.percentile(p), h.min());
    EXPECT_LE(h.percentile(p), h.max());
  }
}

TEST(ObsHistogram, SingleSamplePercentileIsExact) {
  // The clamp into [min, max] makes a one-sample histogram exact even
  // though the bucket midpoint is ~3% off.
  Histogram h;
  h.record(0.123);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.123);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 0.123);
}

TEST(ObsHistogram, EmptyHistogramReadsZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

// ------------------------------------------------------------ registry

TEST(ObsRegistry, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("a");
  Counter& c2 = registry.counter("a");
  EXPECT_EQ(&c1, &c2);
  EXPECT_NE(&registry.counter("b"), &c1);
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
}

TEST(ObsRegistry, SnapshotAndFindHelpers) {
  MetricsRegistry registry;
  registry.counter(names::kItemsCompleted).add(7);
  registry.gauge("queue_depth").set(3.5);
  registry.histogram(names::kItemLatency).record(0.25);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_FALSE(snap.empty());
  ASSERT_NE(snap.find_counter(names::kItemsCompleted), nullptr);
  EXPECT_EQ(snap.find_counter(names::kItemsCompleted)->value, 7u);
  EXPECT_EQ(snap.find_counter("no_such_counter"), nullptr);
  ASSERT_NE(snap.find_histogram(names::kItemLatency), nullptr);
  EXPECT_EQ(snap.find_histogram(names::kItemLatency)->count, 1u);
  EXPECT_DOUBLE_EQ(snap.find_histogram(names::kItemLatency)->min, 0.25);
  EXPECT_EQ(snap.find_histogram("no_such_histogram"), nullptr);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.5);
}

TEST(ObsRegistry, SnapshotToJsonIsValidDocument) {
  MetricsRegistry registry;
  registry.counter(names::kItemsPushed).add(100);
  registry.histogram(names::kItemLatency).record(0.5);
  registry.gauge("g\"needs escaping\\").set(-1.0);

  const std::string json = registry.snapshot().to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("items_pushed"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsRegistry, StandardMetricsBind) {
  StandardMetrics metrics;
  EXPECT_EQ(metrics.items_completed, nullptr);

  MetricsRegistry registry;
  metrics.bind(&registry);
  ASSERT_NE(metrics.items_pushed, nullptr);
  ASSERT_NE(metrics.item_latency, nullptr);
  metrics.items_pushed->add(2);
  metrics.item_latency->record(1.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find_counter(names::kItemsPushed)->value, 2u);
  EXPECT_EQ(snap.find_histogram(names::kItemLatency)->count, 1u);

  metrics.bind(nullptr);  // back to disabled: every handle null again
  EXPECT_EQ(metrics.items_pushed, nullptr);
  EXPECT_EQ(metrics.stage_service, nullptr);
}

// -------------------------------------------------------------- tracer

TEST(ObsTracer, RecordSpanForwardsEveryField) {
  Tracer tracer;
  record_span(&tracer, SpanKind::kWire, "hop", 1.5, 0.25, 3, 7, 2);
  ASSERT_EQ(tracer.size(), 1u);
  TraceEvent expected;
  expected.name = "hop";
  expected.kind = SpanKind::kWire;
  expected.start = 1.5;
  expected.duration = 0.25;
  expected.tid = 3;
  expected.item = 7;
  expected.stage = 2;
  EXPECT_EQ(tracer.events()[0], expected);
}

TEST(ObsTracer, RecordIsVirtualSoTestsCanInstrument) {
  struct CountingTracer : Tracer {
    std::atomic<int> singles{0};
    std::atomic<int> batches{0};
    void record(TraceEvent event) override {
      ++singles;
      Tracer::record(std::move(event));
    }
    void record_batch(std::vector<TraceEvent> events) override {
      ++batches;
      Tracer::record_batch(std::move(events));
    }
  };
  CountingTracer tracer;
  record_span(&tracer, SpanKind::kItem, "item", 0.0, 1.0, 0, 1);
  tracer.record_batch({TraceEvent{}, TraceEvent{}});
  EXPECT_EQ(tracer.singles.load(), 1);
  EXPECT_EQ(tracer.batches.load(), 1);
  EXPECT_EQ(tracer.size(), 3u);
}

TEST(ObsTracer, ChromeTraceIsValidJsonWithMetadataAndSpans) {
  Tracer tracer;
  record_span(&tracer, SpanKind::kEpoch, "epoch", 0.0, 2.0, 0);
  record_span(&tracer, SpanKind::kStage, "filter", 0.5, 0.1, 2, 42, 1);
  record_span(&tracer, SpanKind::kWait, "wait", 1.0, 0.2, 0, 42);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string trace = os.str();

  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"X\""), 3u);
  // Metadata: one process_name plus one thread_name per distinct lane.
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"M\""), 3u);
  EXPECT_NE(trace.find("\"controller\""), std::string::npos);
  EXPECT_NE(trace.find("\"node 1\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"stage\""), std::string::npos);
  EXPECT_NE(trace.find("\"item\":42"), std::string::npos);
  EXPECT_NE(trace.find("\"stage\":1"), std::string::npos);
}

TEST(ObsTracer, EmptyTraceIsStillValidJson) {
  const Tracer tracer;
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// -------------------------------------------------------- disabled path

TEST(ObsDisabled, DisabledPathDoesNotAllocate) {
  // The per-item contract across all four substrates: with null sinks,
  // every telemetry hook is one pointer test — no allocation at all.
  StandardMetrics metrics;  // unbound: all handles null
  const Sinks sinks;
  EXPECT_FALSE(sinks.any());

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    record_span(sinks.tracer, SpanKind::kStage, "stage",
                static_cast<double>(i), 1e-3, 1, static_cast<std::uint64_t>(i),
                0);
    record_span(sinks.tracer, SpanKind::kAdmit, "admit",
                static_cast<double>(i), 0.0, 0);
    if (metrics.items_completed) metrics.items_completed->add(1);
    if (metrics.item_latency) metrics.item_latency->record(1e-3);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(ObsDisabled, DefaultConfigIsOff) {
  const Config config;
  EXPECT_FALSE(config.enabled());
  EXPECT_FALSE(config.sinks().any());
  const Config full = Config::full();
  EXPECT_TRUE(full.enabled());
  EXPECT_TRUE(full.sinks().any());
  EXPECT_EQ(full.sinks().tracer, full.tracer.get());
  EXPECT_EQ(full.sinks().metrics, full.metrics.get());
}

// ------------------------------------------------------ telemetry codec

TelemetryBatch sample_batch() {
  TelemetryBatch batch;
  TraceEvent stage;
  stage.name = "filter";
  stage.kind = SpanKind::kStage;
  stage.start = 1.25;
  stage.duration = 0.5;
  stage.tid = 2;
  stage.item = 42;
  stage.stage = 1;
  batch.events.push_back(stage);
  TraceEvent bare;  // defaults: kNoItem / kNoStage, empty name
  batch.events.push_back(bare);
  batch.counters.push_back({"stage_executions", 17});
  batch.counters.push_back({"empty", 0});
  return batch;
}

TEST(ObsTelemetry, RoundTripsEventsAndCounters) {
  const TelemetryBatch batch = sample_batch();
  EXPECT_EQ(decode_telemetry(encode_telemetry(batch)), batch);
}

TEST(ObsTelemetry, RoundTripsEmptyBatchAndMaxName) {
  const TelemetryBatch empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(decode_telemetry(encode_telemetry(empty)), empty);

  TelemetryBatch max_name;
  max_name.counters.push_back({std::string(kMaxTelemetryName, 'x'), 1});
  EXPECT_EQ(decode_telemetry(encode_telemetry(max_name)), max_name);

  TelemetryBatch too_long;
  too_long.counters.push_back({std::string(kMaxTelemetryName + 1, 'x'), 1});
  EXPECT_THROW(encode_telemetry(too_long), std::invalid_argument);
}

TEST(ObsTelemetry, EveryTruncationThrows) {
  const Bytes good = encode_telemetry(sample_batch());
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_THROW(
        decode_telemetry(Bytes(good.begin(),
                               good.begin() +
                                   static_cast<std::ptrdiff_t>(cut))),
        std::invalid_argument)
        << "cut at " << cut;
  }
}

TEST(ObsTelemetry, TrailingBytesRejected) {
  Bytes wire = encode_telemetry(sample_batch());
  wire.push_back(std::byte{0});
  EXPECT_THROW(decode_telemetry(wire), std::invalid_argument);
}

TEST(ObsTelemetry, UnknownSpanKindRejected) {
  Bytes wire = encode_telemetry(sample_batch());
  wire[4] = std::byte{99};  // first event's kind byte, after [u32 n_events]
  EXPECT_THROW(decode_telemetry(wire), std::invalid_argument);
}

TEST(ObsTelemetry, AbsurdCountsRejectedWithoutAllocating) {
  // Claims 2^30 events in 8 bytes — the count-vs-remaining check must
  // refuse before reserving anything.
  Bytes lie(8);
  const std::uint32_t events = 1u << 30;
  std::memcpy(lie.data(), &events, 4);
  EXPECT_THROW(decode_telemetry(lie), std::invalid_argument);

  Bytes counters_lie(8);
  const std::uint32_t counters = 1u << 30;
  std::memcpy(counters_lie.data() + 4, &counters, 4);
  EXPECT_THROW(decode_telemetry(counters_lie), std::invalid_argument);
}

TEST(ObsTelemetry, OversizedNameLengthRejected) {
  // n_events = 0, n_counters = 1, name_len just over the cap: garbage,
  // even though the u32 itself decoded fine.
  Bytes wire(12);
  const std::uint32_t n_counters = 1;
  const auto name_len = static_cast<std::uint32_t>(kMaxTelemetryName + 1);
  std::memcpy(wire.data() + 4, &n_counters, 4);
  std::memcpy(wire.data() + 8, &name_len, 4);
  EXPECT_THROW(decode_telemetry(wire), std::invalid_argument);
}

TEST(ObsTelemetry, ApplyMergesIntoBothSinks) {
  Tracer tracer;
  MetricsRegistry registry;
  const Sinks sinks{&tracer, &registry};

  apply_telemetry(sample_batch(), sinks);
  EXPECT_EQ(tracer.size(), 2u);
  MetricsSnapshot snap = registry.snapshot();
  // The one kStage event's duration rebuilt the service histogram.
  ASSERT_NE(snap.find_histogram(names::kStageService), nullptr);
  EXPECT_EQ(snap.find_histogram(names::kStageService)->count, 1u);
  EXPECT_DOUBLE_EQ(snap.find_histogram(names::kStageService)->max, 0.5);
  EXPECT_EQ(snap.find_counter("stage_executions")->value, 17u);
  EXPECT_EQ(snap.find_counter(names::kTelemetryBatches)->value, 1u);
  // Zero deltas are skipped entirely, not materialized as counters.
  EXPECT_EQ(snap.find_counter("empty"), nullptr);

  apply_telemetry(sample_batch(), sinks);
  snap = registry.snapshot();
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(snap.find_counter("stage_executions")->value, 34u);
  EXPECT_EQ(snap.find_counter(names::kTelemetryBatches)->value, 2u);
}

TEST(ObsTelemetry, ApplyWithNullSinksIsNoop) {
  apply_telemetry(sample_batch(), Sinks{});

  Tracer tracer;
  apply_telemetry(sample_batch(), Sinks{&tracer, nullptr});
  EXPECT_EQ(tracer.size(), 2u);
}

// ---------------------------------------------- telemetry epoch section

control::EpochRecord sample_epoch() {
  control::EpochRecord e;
  e.time = 12.5;
  e.deployed_estimate = 1.5;
  e.candidate_estimate = 1.8;
  e.decided = true;
  e.remapped = true;
  e.reason.trigger = "on-change";
  e.reason.mapper = "auto";
  e.reason.gate_changed = true;
  e.reason.searched = true;
  e.reason.gain_ratio = 1.2;
  e.reason.verdict = "gain above threshold, remap";
  return e;
}

TEST(ObsTelemetry, EpochSectionRoundTripsDecisionReason) {
  TelemetryBatch batch = sample_batch();
  batch.epochs.push_back(sample_epoch());
  control::EpochRecord quiet;  // undecided epoch: strings mostly empty
  quiet.time = 22.5;
  quiet.reason.trigger = "on-change";
  quiet.reason.verdict = "quiet: resources unchanged, decision fresh";
  batch.epochs.push_back(quiet);

  const TelemetryBatch round = decode_telemetry(encode_telemetry(batch));
  ASSERT_EQ(round.epochs.size(), 2u);
  EXPECT_EQ(round, batch);  // decision-field equality
  // EpochRecord's operator== deliberately ignores the reason, so check
  // the explainability payload explicitly.
  EXPECT_EQ(round.epochs[0].reason, batch.epochs[0].reason);
  EXPECT_EQ(round.epochs[1].reason, batch.epochs[1].reason);
}

TEST(ObsTelemetry, EpochFreeBatchEncodesByteIdenticallyToLegacyWriter) {
  // The epochs section is optional on the wire: an epoch-free batch must
  // encode exactly as the pre-epochs writer did, and an epoch-carrying
  // one must extend that encoding, not restructure it.
  const Bytes legacy = encode_telemetry(sample_batch());
  TelemetryBatch with_epochs = sample_batch();
  with_epochs.epochs.push_back(sample_epoch());
  const Bytes extended = encode_telemetry(with_epochs);
  ASSERT_GT(extended.size(), legacy.size());
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), extended.begin()));
}

TEST(ObsTelemetry, EpochSectionEveryTruncationThrows) {
  TelemetryBatch batch = sample_batch();
  batch.epochs.push_back(sample_epoch());
  const Bytes good = encode_telemetry(batch);
  const std::size_t boundary = encode_telemetry(sample_batch()).size();
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    // A cut exactly at the section boundary is a valid legacy batch;
    // every other prefix must be rejected.
    if (cut == boundary) continue;
    EXPECT_THROW(
        decode_telemetry(Bytes(good.begin(),
                               good.begin() +
                                   static_cast<std::ptrdiff_t>(cut))),
        std::invalid_argument)
        << "cut at " << cut;
  }
}

TEST(ObsTelemetry, EpochCountLieRejected) {
  // Claims 2^30 epochs in 4 bytes: the count-vs-remaining sanity check
  // must refuse before reserving anything.
  Bytes wire = encode_telemetry(sample_batch());
  const std::uint32_t lie = 1u << 30;
  const std::size_t off = wire.size();
  wire.resize(off + 4);
  std::memcpy(wire.data() + off, &lie, 4);
  EXPECT_THROW(decode_telemetry(wire), std::invalid_argument);
}

TEST(ObsTelemetry, ApplyRecordsShippedEpochSpans) {
  Tracer tracer;
  TelemetryBatch batch;
  batch.epochs.push_back(sample_epoch());
  apply_telemetry(batch, Sinks{&tracer, nullptr});
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(ObsTelemetry, ExplainRendersDecidedAndQuietEpochs) {
  const std::string decided = sample_epoch().explain();
  EXPECT_NE(decided.find("on-change"), std::string::npos) << decided;
  EXPECT_NE(decided.find("mapper=auto"), std::string::npos) << decided;
  EXPECT_NE(decided.find("remapped"), std::string::npos) << decided;
  EXPECT_NE(decided.find("gain above threshold"), std::string::npos)
      << decided;

  control::EpochRecord quiet;
  quiet.time = 5.0;
  EXPECT_NE(quiet.explain().find("quiet epoch"), std::string::npos)
      << quiet.explain();
}

}  // namespace
}  // namespace gridpipe::obs
