// Tests for the message-passing DistributedExecutor: wire formats,
// end-to-end correctness over the communicator, heterogeneity emulation
// and controller-driven adaptation.

#include <gtest/gtest.h>

#include <cstring>

#include "core/dist_executor.hpp"
#include "grid/builders.hpp"

namespace gridpipe::core {
namespace {

using grid::NodeId;

Bytes bytes_of_int(int v) {
  Bytes out(sizeof(int));
  std::memcpy(out.data(), &v, sizeof(int));
  return out;
}
int int_of_bytes(ByteSpan b) {
  int v = 0;
  std::memcpy(&v, b.data(), sizeof(int));
  return v;
}
void append_int(Bytes& out, int v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(int));
  std::memcpy(out.data() + off, &v, sizeof(int));
}

std::vector<DistStage> arithmetic_stages() {
  std::vector<DistStage> stages;
  stages.push_back({"inc",
                    [](ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) + 1);
                    },
                    0.02, 16});
  stages.push_back({"triple",
                    [](ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) * 3);
                    },
                    0.02, 16});
  stages.push_back({"dec",
                    [](ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) - 1);
                    },
                    0.02, 16});
  return stages;
}

// ------------------------------------------------------------ encoding

TEST(DistWire, TaskRoundTrip) {
  const Bytes payload = bytes_of_int(1234);
  const Bytes wire = DistributedExecutor::encode_task(77, 2, payload);
  std::uint64_t item;
  std::uint32_t stage;
  Bytes out;
  DistributedExecutor::decode_task(wire, item, stage, out);
  EXPECT_EQ(item, 77u);
  EXPECT_EQ(stage, 2u);
  EXPECT_EQ(out, payload);
}

TEST(DistWire, ShortTaskThrows) {
  std::uint64_t item;
  std::uint32_t stage;
  Bytes out;
  EXPECT_THROW(
      DistributedExecutor::decode_task(Bytes(4), item, stage, out),
      std::invalid_argument);
}

TEST(DistWire, MappingRoundTrip) {
  sched::Mapping mapping(std::vector<NodeId>{2, 0, 1});
  mapping.add_replica(1, 2);
  const Bytes wire = DistributedExecutor::encode_mapping(mapping);
  EXPECT_EQ(DistributedExecutor::decode_mapping(wire), mapping);
}

// ---------------------------------------------------------- end to end

DistExecutorConfig fast_dist_config() {
  DistExecutorConfig config;
  config.time_scale = 0.002;
  return config;
}

TEST(DistributedExecutor, OrderedCorrectOutputs) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  DistributedExecutor executor(g, arithmetic_stages(),
                               sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                               fast_dist_config());
  std::vector<Bytes> inputs;
  for (int i = 0; i < 60; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));
  ASSERT_EQ(report.items, 60u);
  for (int i = 0; i < 60; ++i) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1) << "item " << i;
  }
  EXPECT_EQ(report.remap_count, 0u);
  EXPECT_GT(report.throughput, 0.0);
}

TEST(DistributedExecutor, EmptyInput) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  DistributedExecutor executor(g, arithmetic_stages(),
                               sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                               fast_dist_config());
  EXPECT_EQ(executor.run({}).items, 0u);
}

TEST(DistributedExecutor, ColocatedMappingWorks) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  DistributedExecutor executor(g, arithmetic_stages(),
                               sched::Mapping::all_on(3, 1),
                               fast_dist_config());
  std::vector<Bytes> inputs;
  for (int i = 0; i < 20; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));
  EXPECT_EQ(report.items, 20u);
  EXPECT_EQ(report.final_mapping, "(2,2,2)");
}

TEST(DistributedExecutor, HeterogeneityChangesThroughput) {
  auto run_with = [&](double speed) {
    const auto g = grid::uniform_cluster(2, speed, 1e-3, 1e8);
    DistExecutorConfig config;
    config.time_scale = 0.01;
    DistributedExecutor executor(g, arithmetic_stages(),
                                 sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                                 config);
    std::vector<Bytes> inputs;
    for (int i = 0; i < 30; ++i) inputs.push_back(bytes_of_int(i));
    return executor.run(std::move(inputs)).throughput;
  };
  // Ideal ratio is 4x; loose band tolerates fixed per-item overheads
  // compressing the fast run on loaded machines (~1x means broken).
  EXPECT_GT(run_with(4.0), 1.5 * run_with(1.0));
}

TEST(DistributedExecutor, AdaptsAwayFromLoadedNode) {
  auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 1, std::make_shared<grid::ConstantLoad>(9.0));

  DistExecutorConfig config;
  config.time_scale = 0.002;
  config.adapt.epoch = 4.0;
  config.adapt.policy.hysteresis_epochs = 1;
  config.adapt.policy.min_gain_ratio = 0.2;
  config.adapt.policy.restart_latency = 0.1;

  DistributedExecutor executor(g, arithmetic_stages(),
                               sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                               config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 400; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  EXPECT_EQ(report.items, 400u);
  EXPECT_GE(report.remap_count, 1u);
  EXPECT_EQ(report.final_mapping.find('2'), std::string::npos)
      << "still on loaded node: " << report.final_mapping;
  // Spot-check results survived the live remap.
  for (int i : {0, 123, 399}) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1);
  }
}

TEST(DistributedExecutor, OnChangeTriggerSkipsQuietEpochs) {
  // Same contract as the threaded runtime: on a stable grid the change
  // gate swallows the mapping search after the first decision.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  DistExecutorConfig config;
  config.time_scale = 0.01;
  config.adapt.epoch = 2.0;
  config.adapt.trigger = control::AdaptationTrigger::kOnChange;
  config.adapt.change_threshold = 0.75;
  config.adapt.max_staleness = 1e9;
  DistributedExecutor executor(g, arithmetic_stages(),
                               sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                               config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 400; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  EXPECT_EQ(report.items, 400u);
  ASSERT_GE(report.epochs.size(), 2u);
  EXPECT_TRUE(report.epochs.front().decided);
  std::size_t decisions = 0;
  for (const auto& e : report.epochs) decisions += e.decided;
  EXPECT_LT(decisions, report.epochs.size());
  EXPECT_EQ(report.remap_count, 0u);
}

TEST(DistributedExecutor, OnChangeTriggerReactsToLoadStep) {
  auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 1, std::make_shared<grid::StepLoad>(
                                std::vector<grid::StepLoad::Step>{
                                    {4.0, 9.0}}));

  DistExecutorConfig config;
  config.time_scale = 0.01;
  config.adapt.epoch = 2.0;
  config.adapt.trigger = control::AdaptationTrigger::kOnChange;
  config.adapt.change_threshold = 0.4;
  config.adapt.max_staleness = 1e9;
  config.adapt.policy.hysteresis_epochs = 1;
  config.adapt.policy.min_gain_ratio = 0.2;
  config.adapt.policy.restart_latency = 0.1;
  DistributedExecutor executor(g, arithmetic_stages(),
                               sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                               config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 400; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  EXPECT_EQ(report.items, 400u);
  EXPECT_GE(report.remap_count, 1u);
  EXPECT_EQ(report.final_mapping.find('2'), std::string::npos)
      << "still on loaded node: " << report.final_mapping;
  std::size_t remapped_epochs = 0;
  for (const auto& e : report.epochs) remapped_epochs += e.remapped;
  EXPECT_EQ(remapped_epochs, report.remap_count);
  // Results survived the mid-stream remap.
  for (int i : {0, 123, 399}) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1);
  }
}

TEST(DistributedExecutor, RejectsBadConstruction) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  EXPECT_THROW(DistributedExecutor(g, {}, sched::Mapping{}, {}),
               std::invalid_argument);
  EXPECT_THROW(DistributedExecutor(
                   g, arithmetic_stages(),
                   sched::Mapping(std::vector<NodeId>{0, 1}),  // 2 != 3
                   fast_dist_config()),
               std::invalid_argument);
  DistExecutorConfig bad;
  bad.time_scale = 0.0;
  EXPECT_THROW(DistributedExecutor(g, arithmetic_stages(),
                                   sched::Mapping::all_on(3, 0), bad),
               std::invalid_argument);
}

TEST(DistributedExecutor, ProfileMatchesStages) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  DistributedExecutor executor(g, arithmetic_stages(),
                               sched::Mapping::all_on(3, 0),
                               fast_dist_config());
  const auto p = executor.profile();
  EXPECT_EQ(p.num_stages(), 3u);
  EXPECT_DOUBLE_EQ(p.stage_work[1], 0.02);
  EXPECT_NO_THROW(p.validate());
}

}  // namespace
}  // namespace gridpipe::core
