// Tests for the public skeleton API (PipelineSpec) and the threaded
// Executor: output correctness and ordering, heterogeneity emulation,
// live adaptation on real threads.

#include <gtest/gtest.h>

#include <chrono>
#include <future>

#include "core/adaptive_pipeline.hpp"
#include "core/executor.hpp"
#include "grid/builders.hpp"

namespace gridpipe::core {
namespace {

using grid::NodeId;

PipelineSpec arithmetic_spec() {
  PipelineSpec spec;
  spec.stage(
          "double",
          [](std::any item) {
            return std::any(std::any_cast<int>(item) * 2);
          },
          /*work=*/0.02, /*out_bytes=*/16)
      .stage(
          "add_three",
          [](std::any item) {
            return std::any(std::any_cast<int>(item) + 3);
          },
          0.02, 16)
      .stage(
          "square",
          [](std::any item) {
            const int v = std::any_cast<int>(item);
            return std::any(v * v);
          },
          0.02, 16);
  return spec;
}

std::vector<std::any> int_items(int n) {
  std::vector<std::any> items;
  for (int i = 0; i < n; ++i) items.emplace_back(i);
  return items;
}

// --------------------------------------------------------------- spec

TEST(PipelineSpec, BuilderAndProfile) {
  const PipelineSpec spec = arithmetic_spec();
  EXPECT_EQ(spec.num_stages(), 3u);
  EXPECT_EQ(spec.at(1).name, "add_three");
  const auto profile = spec.to_profile();
  EXPECT_EQ(profile.num_stages(), 3u);
  EXPECT_DOUBLE_EQ(profile.stage_work[0], 0.02);
  EXPECT_DOUBLE_EQ(profile.msg_bytes[1], 16.0);
}

TEST(PipelineSpec, RunInlineComposesStages) {
  const PipelineSpec spec = arithmetic_spec();
  // (4*2+3)^2 = 121
  EXPECT_EQ(std::any_cast<int>(spec.run_inline(std::any(4))), 121);
}

TEST(PipelineSpec, RejectsBadStages) {
  PipelineSpec spec;
  EXPECT_THROW(spec.stage("null", nullptr), std::invalid_argument);
  EXPECT_THROW(spec.stage("neg", [](std::any a) { return a; }, -1.0),
               std::invalid_argument);
  EXPECT_THROW(spec.to_profile(), std::invalid_argument);  // empty
}

// ------------------------------------------------------------ executor

ExecutorConfig fast_config() {
  ExecutorConfig config;
  config.time_scale = 0.002;  // 500x faster than modeled time
  return config;
}

TEST(Executor, ComputesCorrectOrderedOutputs) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  Executor executor(g, arithmetic_spec(),
                    sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                    fast_config());
  const auto report = executor.run(int_items(40));
  ASSERT_EQ(report.outputs.size(), 40u);
  const PipelineSpec reference = arithmetic_spec();
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(std::any_cast<int>(report.outputs[static_cast<std::size_t>(i)]),
              std::any_cast<int>(reference.run_inline(std::any(i))))
        << "item " << i;
  }
  EXPECT_EQ(report.items, 40u);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_EQ(report.remap_count, 0u);
}

TEST(Executor, EmptyInputReturnsEmptyReport) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  Executor executor(g, arithmetic_spec(),
                    sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                    fast_config());
  const auto report = executor.run({});
  EXPECT_EQ(report.items, 0u);
  EXPECT_TRUE(report.outputs.empty());
}

TEST(Executor, HeterogeneityEmulationSlowsThroughput) {
  // Same pipeline on a fast vs slow node: emulated service stretches.
  const auto run_with_speed = [&](double speed) {
    const auto g = grid::uniform_cluster(1, speed, 1e-3, 1e8);
    ExecutorConfig config;
    config.time_scale = 0.01;
    Executor executor(g, arithmetic_spec(),
                      sched::Mapping::all_on(3, 0), config);
    return executor.run(int_items(20)).throughput;
  };
  const double fast = run_with_speed(4.0);
  const double slow = run_with_speed(1.0);
  // Ideal ratio is 4x; fixed per-item overheads (thread wakeups,
  // sleep_until granularity) compress the fast run under machine load,
  // so assert a loose band — broken emulation would give ~1x.
  EXPECT_GT(fast, 1.5 * slow);
}

TEST(Executor, ThroughputTracksModelPrediction) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  const PipelineSpec spec = arithmetic_spec();
  const sched::Mapping m(std::vector<NodeId>{0, 1, 2});
  ExecutorConfig config;
  config.time_scale = 0.01;
  Executor executor(g, spec, m, config);
  const auto report = executor.run(int_items(60));

  const sched::PerfModel model;
  const double predicted = model.throughput(
      spec.to_profile(), sched::ResourceEstimate::from_grid(g, 0.0), m);
  // Thread scheduling noise on one core: accept a wide band.
  EXPECT_GT(report.throughput, 0.4 * predicted);
  EXPECT_LT(report.throughput, 1.5 * predicted);
}

TEST(Executor, AdaptsAwayFromLoadedNode) {
  // Node 1 is heavily loaded from the start but the initial mapping uses
  // it; with adaptation on, the executor must move off it.
  auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 1, std::make_shared<grid::ConstantLoad>(9.0));

  ExecutorConfig config;
  config.time_scale = 0.002;
  config.adapt.epoch = 4.0;  // virtual seconds
  config.adapt.policy.hysteresis_epochs = 1;
  config.adapt.policy.min_gain_ratio = 0.2;
  config.adapt.policy.restart_latency = 0.1;

  PipelineSpec spec = arithmetic_spec();
  Executor executor(g, spec, sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                    config);
  const auto report = executor.run(int_items(400));

  EXPECT_EQ(report.items, 400u);
  EXPECT_GE(report.remap_count, 1u);
  EXPECT_EQ(report.final_mapping.find('2'), std::string::npos)
      << "final mapping still uses loaded node: " << report.final_mapping;
  // Outputs still correct after live remaps.
  const PipelineSpec reference = arithmetic_spec();
  for (int i : {0, 57, 399}) {
    EXPECT_EQ(std::any_cast<int>(report.outputs[static_cast<std::size_t>(i)]),
              std::any_cast<int>(reference.run_inline(std::any(i))));
  }
}

TEST(Executor, OnChangeTriggerSkipsQuietEpochs) {
  // Stable uniform grid: after the first decision takes its snapshot, the
  // change gate must swallow the mapping search on quiet epochs. The
  // generous threshold keeps sleep-quantization noise in the observed
  // speeds from tripping the gate.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  ExecutorConfig config;
  config.time_scale = 0.01;
  config.adapt.epoch = 2.0;  // virtual seconds
  config.adapt.trigger = control::AdaptationTrigger::kOnChange;
  config.adapt.change_threshold = 0.75;
  config.adapt.max_staleness = 1e9;  // isolate the gate's effect
  Executor executor(g, arithmetic_spec(),
                    sched::Mapping(std::vector<NodeId>{0, 1, 2}), config);
  const auto report = executor.run(int_items(400));

  EXPECT_EQ(report.items, 400u);
  ASSERT_GE(report.epochs.size(), 2u);
  EXPECT_TRUE(report.epochs.front().decided);  // no snapshot yet
  std::size_t decisions = 0;
  for (const auto& e : report.epochs) decisions += e.decided;
  EXPECT_LT(decisions, report.epochs.size());  // some epoch was quiet
  EXPECT_LE(2 * decisions, report.epochs.size() + 2);
  EXPECT_EQ(report.remap_count, 0u);  // nothing moved, nothing to gain
}

TEST(Executor, OnChangeTriggerReactsToLoadStep) {
  // Node 1 gains 9x load at t = 4 virtual s: the resource move must fire
  // the gate, force a full decision, and migrate off the loaded node.
  auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 1, std::make_shared<grid::StepLoad>(
                                std::vector<grid::StepLoad::Step>{
                                    {4.0, 9.0}}));

  ExecutorConfig config;
  config.time_scale = 0.01;
  config.adapt.epoch = 2.0;
  config.adapt.trigger = control::AdaptationTrigger::kOnChange;
  config.adapt.change_threshold = 0.4;
  config.adapt.max_staleness = 1e9;
  config.adapt.policy.hysteresis_epochs = 1;
  config.adapt.policy.min_gain_ratio = 0.2;
  config.adapt.policy.restart_latency = 0.1;
  Executor executor(g, arithmetic_spec(),
                    sched::Mapping(std::vector<NodeId>{0, 1, 2}), config);
  const auto report = executor.run(int_items(400));

  EXPECT_EQ(report.items, 400u);
  EXPECT_GE(report.remap_count, 1u);
  EXPECT_EQ(report.final_mapping.find('2'), std::string::npos)
      << "final mapping still uses loaded node: " << report.final_mapping;
  // The remap shows up in the shared epoch timeline too.
  std::size_t remapped_epochs = 0;
  for (const auto& e : report.epochs) remapped_epochs += e.remapped;
  EXPECT_EQ(remapped_epochs, report.remap_count);
}

TEST(Executor, FreshAdaptationStateOnEachRun) {
  // run() restarts the virtual clock at 0, so the second run must not
  // inherit the first run's gate snapshot / staleness clock (which would
  // silently disable kOnChange adaptation for the whole second run).
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  ExecutorConfig config;
  config.time_scale = 0.005;
  config.adapt.epoch = 2.0;
  config.adapt.trigger = control::AdaptationTrigger::kOnChange;
  config.adapt.max_staleness = 1e9;
  Executor executor(g, arithmetic_spec(),
                    sched::Mapping(std::vector<NodeId>{0, 1, 0}), config);
  const auto first = executor.run(int_items(150));
  const auto second = executor.run(int_items(150));
  EXPECT_EQ(second.items, 150u);
  ASSERT_FALSE(first.epochs.empty());
  ASSERT_FALSE(second.epochs.empty());
  EXPECT_TRUE(second.epochs.front().decided);
  EXPECT_EQ(std::any_cast<int>(second.outputs[3]),
            std::any_cast<int>(first.outputs[3]));
}

TEST(Executor, RejectsBadConfig) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  ExecutorConfig config;
  config.time_scale = 0.0;
  EXPECT_THROW(Executor(g, arithmetic_spec(),
                        sched::Mapping(std::vector<NodeId>{0, 1, 0}), config),
               std::invalid_argument);
  EXPECT_THROW(Executor(g, arithmetic_spec(),
                        sched::Mapping(std::vector<NodeId>{0, 1}),
                        fast_config()),
               std::invalid_argument);
}

// ---------------------------------------------------- adaptive facade

TEST(AdaptivePipeline, PlanPicksFastNode) {
  const auto g = grid::heterogeneous_cluster({1.0, 8.0, 1.0}, 1e-4, 1e9);
  AdaptivePipeline pipeline(g, arithmetic_spec(), {});
  const auto plan = pipeline.plan();
  // All three cheap stages fit on the 8x node.
  EXPECT_EQ(plan.mapping.to_string(), "(2,2,2)");
}

TEST(AdaptivePipeline, RunProducesOrderedResults) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  AdaptivePipelineOptions options;
  options.runtime.time_scale = 0.002;
  AdaptivePipeline pipeline(g, arithmetic_spec(), options);
  const auto report = pipeline.run(int_items(30));
  ASSERT_EQ(report.items, 30u);
  EXPECT_EQ(std::any_cast<int>(report.outputs[5]), (5 * 2 + 3) * (5 * 2 + 3));
}

TEST(AdaptivePipeline, SimulateDelegatesToDes) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  AdaptivePipeline pipeline(g, arithmetic_spec(), {});
  sim::SimConfig sim_config;
  sim_config.num_items = 500;
  sim_config.probe_interval = 0.0;
  sim::DriverOptions driver_options;
  driver_options.driver = sim::DriverKind::kStaticOptimal;
  const auto result = pipeline.simulate(sim_config, driver_options);
  EXPECT_EQ(result.metrics.items_completed(), 500u);
  EXPECT_GT(result.mean_throughput, 0.0);
}

// Regression: stream_finish used to store done_ and notify each worker's
// condition variable WITHOUT holding that worker's mutex. A worker
// between its done_ check (under its own mutex) and its cv wait then
// lost the notify forever and stream_finish hung in join. The fix
// (Executor::signal_done) notifies under each worker's mutex; this test
// hammers the begin/close/finish edge where workers are going idle
// exactly as the stream ends, with a watchdog so the old bug reports as
// a failure instead of a ctest timeout. Found by the thread-safety
// annotation sweep; TSan doesn't flag lost wakeups, only the hang does.
TEST(Executor, StreamFinishNeverLosesShutdownWakeup) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  auto run_cycles = std::async(std::launch::async, [&g] {
    for (int cycle = 0; cycle < 300; ++cycle) {
      Executor executor(g, arithmetic_spec(),
                        sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                        fast_config());
      executor.stream_begin();
      // One item keeps a worker active right up to the shutdown edge;
      // the empty-stream cycles exercise workers that never woke at all.
      if (cycle % 2 == 0) executor.stream_push(std::any(cycle));
      executor.stream_close();
      const auto report = executor.stream_finish();
      if (cycle % 2 == 0 && report.items != 1u) return false;
    }
    return true;
  });
  ASSERT_EQ(run_cycles.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "stream_finish hung: a worker lost the done_ wakeup";
  EXPECT_TRUE(run_cycles.get());
}

TEST(RunReport, SummaryMentionsKeyNumbers) {
  RunReport report;
  report.items = 12;
  report.virtual_seconds = 3.0;
  report.wall_seconds = 0.3;
  report.throughput = 4.0;
  report.initial_mapping = "(1,2)";
  report.final_mapping = "(2,2)";
  report.remap_count = 1;
  const std::string s = report.summary();
  EXPECT_NE(s.find("12 items"), std::string::npos);
  EXPECT_NE(s.find("(1,2) -> (2,2)"), std::string::npos);
}

}  // namespace
}  // namespace gridpipe::core
