// Tests for the shared-memory SPSC ring that carries comm::wire frames
// between sibling worker processes: layout/validity, byte-stream
// integrity across the wrap point, all-or-nothing full behavior, close
// semantics on both sides, the mesh's pairwise isolation, and the real
// cross-process case over a forked producer/consumer pair.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "comm/wire.hpp"
#include "proc/shm_ring.hpp"

namespace gridpipe::proc {
namespace {

using comm::wire::Bytes;

Bytes pattern_bytes(std::size_t n, std::uint8_t seed) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(static_cast<std::uint8_t>(seed + i));
  }
  return out;
}

/// A ring over plain heap memory — the ring itself never cares whether
/// the pages are shared; only the mesh does.
struct LocalRing {
  explicit LocalRing(std::size_t capacity)
      : region(ShmRing::region_bytes(capacity)),
        ring(ShmRing::create(region.data(), capacity)) {}
  std::vector<std::byte> region;
  ShmRing ring;
};

TEST(ShmRing, InvalidRingIsInert) {
  ShmRing ring;
  EXPECT_FALSE(ring.valid());
  EXPECT_EQ(ring.capacity(), 0u);
  EXPECT_FALSE(ring.push(pattern_bytes(1, 0)));
  std::byte out[8];
  EXPECT_EQ(ring.pop(out, sizeof(out)), 0u);
  EXPECT_EQ(ring.readable(), 0u);
  EXPECT_FALSE(ring.producer_closed());
  EXPECT_FALSE(ring.consumer_closed());
  ring.close_producer();  // no-ops, no crash
  ring.close_consumer();
}

TEST(ShmRing, CreateThenAttachSeesSameRing) {
  std::vector<std::byte> region(ShmRing::region_bytes(256));
  ShmRing producer = ShmRing::create(region.data(), 256);
  ASSERT_TRUE(producer.valid());
  EXPECT_EQ(producer.capacity(), 256u);
  ASSERT_TRUE(producer.push(pattern_bytes(10, 3)));

  ShmRing consumer = ShmRing::attach(region.data());
  ASSERT_TRUE(consumer.valid());
  EXPECT_EQ(consumer.readable(), 10u);
  std::byte out[32];
  EXPECT_EQ(consumer.pop(out, sizeof(out)), 10u);
  EXPECT_EQ(std::memcmp(out, pattern_bytes(10, 3).data(), 10), 0);
}

TEST(ShmRing, AttachRejectsUninitializedMemory) {
  std::vector<std::byte> region(ShmRing::region_bytes(64), std::byte{0});
  EXPECT_FALSE(ShmRing::attach(region.data()).valid());
}

TEST(ShmRing, EmptyPopReturnsZero) {
  LocalRing r(64);
  std::byte out[16];
  EXPECT_EQ(r.ring.pop(out, sizeof(out)), 0u);
  EXPECT_EQ(r.ring.readable(), 0u);
}

TEST(ShmRing, FullRejectsPushAllOrNothing) {
  LocalRing r(32);
  ASSERT_TRUE(r.ring.push(pattern_bytes(30, 1)));
  // 2 bytes free: a 3-byte push must refuse and write *nothing*.
  EXPECT_FALSE(r.ring.push(pattern_bytes(3, 9)));
  EXPECT_EQ(r.ring.readable(), 30u);
  // But 2 bytes still fit exactly.
  EXPECT_TRUE(r.ring.push(pattern_bytes(2, 5)));
  EXPECT_FALSE(r.ring.push(pattern_bytes(1, 7)));  // now truly full
  // Larger than capacity outright: always refused, even when empty.
  LocalRing small(8);
  EXPECT_FALSE(small.ring.push(pattern_bytes(9, 0)));
}

TEST(ShmRing, WraparoundPreservesByteStream) {
  // Capacity deliberately not a multiple of the chunk size, so pushes
  // land on every offset; drain in a lockstep that forces wraps.
  LocalRing r(37);
  Bytes expect;
  Bytes got;
  std::uint8_t seed = 0;
  for (int round = 0; round < 200; ++round) {
    const Bytes chunk = pattern_bytes(1 + (round * 7) % 23, seed++);
    if (r.ring.push(chunk)) {
      expect.insert(expect.end(), chunk.begin(), chunk.end());
    }
    std::byte out[16];
    const std::size_t n = r.ring.pop(out, sizeof(out));
    got.insert(got.end(), out, out + n);
  }
  for (;;) {
    std::byte out[16];
    const std::size_t n = r.ring.pop(out, sizeof(out));
    if (n == 0) break;
    got.insert(got.end(), out, out + n);
  }
  EXPECT_EQ(got, expect);
}

TEST(ShmRing, FramesReassembleAcrossTheWrap) {
  // Whole wire frames pushed through a ring small enough to wrap
  // mid-frame must come out intact via a FrameReader.
  LocalRing r(64);
  comm::wire::FrameReader reader;
  std::size_t delivered = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    const comm::wire::Frame frame{comm::wire::FrameKind::kTask, i,
                                  pattern_bytes(11 + i % 17, static_cast<std::uint8_t>(i))};
    const Bytes encoded = comm::wire::encode_frame(frame);
    while (!r.ring.push(encoded)) {
      std::byte chunk[24];
      const std::size_t n = r.ring.pop(chunk, sizeof(chunk));
      ASSERT_GT(n, 0u) << "ring wedged";
      reader.feed(chunk, n);
      while (auto got = reader.next()) {
        EXPECT_EQ(got->node, static_cast<std::uint32_t>(delivered));
        ++delivered;
      }
    }
  }
  for (;;) {
    std::byte chunk[24];
    const std::size_t n = r.ring.pop(chunk, sizeof(chunk));
    if (n == 0) break;
    reader.feed(chunk, n);
    while (auto got = reader.next()) {
      EXPECT_EQ(got->node, static_cast<std::uint32_t>(delivered));
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 50u);
}

TEST(ShmRing, CloseSemantics) {
  LocalRing r(64);
  ASSERT_TRUE(r.ring.push(pattern_bytes(5, 1)));
  r.ring.close_producer();
  EXPECT_TRUE(r.ring.producer_closed());
  // Pending bytes stay poppable after producer close (EOF, not abort).
  std::byte out[8];
  EXPECT_EQ(r.ring.pop(out, sizeof(out)), 5u);

  r.ring.close_consumer();
  EXPECT_TRUE(r.ring.consumer_closed());
  // A closed consumer fails every push fast — the producer's cue to
  // fall back to the socket path.
  EXPECT_FALSE(r.ring.push(pattern_bytes(1, 0)));
}

TEST(ShmRing, SpscThreadedStressKeepsStreamIntact) {
  // One producer thread, one consumer thread, tiny ring: exercises the
  // acquire/release pairing under real concurrency (the TSan stage of
  // scripts/check.sh runs this suite).
  LocalRing r(61);
  constexpr std::size_t kTotal = 20000;
  std::thread producer([&] {
    std::uint8_t seed = 0;
    std::size_t sent = 0;
    while (sent < kTotal) {
      const std::size_t n = std::min<std::size_t>(1 + sent % 13, kTotal - sent);
      const Bytes chunk = pattern_bytes(n, seed);
      if (r.ring.push(chunk)) {
        sent += n;
        seed = static_cast<std::uint8_t>(seed + n);
      } else {
        std::this_thread::yield();
      }
    }
  });
  Bytes got;
  got.reserve(kTotal);
  while (got.size() < kTotal) {
    std::byte chunk[32];
    const std::size_t n = r.ring.pop(chunk, sizeof(chunk));
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    got.insert(got.end(), chunk, chunk + n);
  }
  producer.join();
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(got[i], static_cast<std::byte>(static_cast<std::uint8_t>(i)))
        << "byte " << i;
  }
}

TEST(ShmRingMesh, PairsGetDistinctRingsIncludingDiagonal) {
  ShmRingMesh mesh(3, 128);
  ASSERT_TRUE(mesh.valid());
  EXPECT_EQ(mesh.nodes(), 3u);
  for (std::size_t from = 0; from < 3; ++from) {
    for (std::size_t to = 0; to < 3; ++to) {
      ShmRing ring = mesh.ring(from, to);
      ASSERT_TRUE(ring.valid()) << from << "->" << to;
      const auto tag =
          static_cast<std::uint8_t>(from * 3 + to);
      ASSERT_TRUE(ring.push(pattern_bytes(4, tag)));
    }
  }
  // Each ring holds exactly its own bytes — no slot overlap.
  for (std::size_t from = 0; from < 3; ++from) {
    for (std::size_t to = 0; to < 3; ++to) {
      ShmRing ring = mesh.ring(from, to);
      std::byte out[8];
      ASSERT_EQ(ring.pop(out, sizeof(out)), 4u);
      const auto tag = static_cast<std::uint8_t>(from * 3 + to);
      EXPECT_EQ(std::memcmp(out, pattern_bytes(4, tag).data(), 4), 0);
    }
  }
  EXPECT_FALSE(mesh.ring(3, 0).valid());
  EXPECT_FALSE(mesh.ring(0, 3).valid());
}

TEST(ShmRingMesh, MoveTransfersOwnership) {
  ShmRingMesh a(2, 64);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(a.ring(0, 1).push(pattern_bytes(3, 2)));
  ShmRingMesh b = std::move(a);
  EXPECT_FALSE(a.valid());
  ASSERT_TRUE(b.valid());
  std::byte out[8];
  EXPECT_EQ(b.ring(0, 1).pop(out, sizeof(out)), 3u);
  b = ShmRingMesh{};
  EXPECT_FALSE(b.valid());
}

TEST(ShmRingMesh, CrossProcessPushPopThroughFork) {
  // The real deployment shape: map before fork, child produces, parent
  // consumes the exact byte stream. (The ASan stage of
  // scripts/check.sh runs this suite too.)
  ShmRingMesh mesh(2, 256);
  ASSERT_TRUE(mesh.valid());
  constexpr std::size_t kTotal = 5000;

  const int pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ShmRing to_parent = mesh.ring(1, 0);
    std::size_t sent = 0;
    while (sent < kTotal) {
      const std::size_t n = std::min<std::size_t>(1 + sent % 19, kTotal - sent);
      if (to_parent.push(pattern_bytes(n, static_cast<std::uint8_t>(sent)))) {
        sent += n;
      }
    }
    to_parent.close_producer();
    _exit(0);
  }

  ShmRing from_child = mesh.ring(1, 0);
  Bytes got;
  got.reserve(kTotal);
  while (got.size() < kTotal) {
    std::byte chunk[64];
    const std::size_t n = from_child.pop(chunk, sizeof(chunk));
    if (n == 0) continue;  // busy-wait is fine for a 5k-byte test
    got.insert(got.end(), chunk, chunk + n);
  }
  EXPECT_TRUE(from_child.producer_closed() || from_child.readable() == 0);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(got[i], static_cast<std::byte>(static_cast<std::uint8_t>(i)))
        << "byte " << i;
  }
}

TEST(ShmRingMesh, DeadConsumerFailsPushesAfterClose) {
  // Peer-death discipline: a consumer that exits cleanly closes its
  // side; the producer's next push fails fast (socket fallback cue).
  ShmRingMesh mesh(2, 64);
  ASSERT_TRUE(mesh.valid());

  const int pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    mesh.ring(0, 1).close_consumer();
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  ShmRing out = mesh.ring(0, 1);
  EXPECT_TRUE(out.consumer_closed());
  EXPECT_FALSE(out.push(pattern_bytes(1, 0)));
}

}  // namespace
}  // namespace gridpipe::proc
