// Tests for the process-per-node runtime: the shared comm::wire frame
// format (round-trips for every kind, malformed/truncated rejection),
// end-to-end correctness over real forked processes and Unix sockets,
// crash detection, controller-driven adaptation (the same kOnChange
// quiet-epoch/load-step scenarios the other runtimes pass), and decision
// parity with the DistributedExecutor.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "comm/wire.hpp"
#include "core/dist_executor.hpp"
#include "grid/builders.hpp"
#include "json_checker.hpp"
#include "obs/metrics.hpp"
#include "proc/process_executor.hpp"

namespace gridpipe::proc {
namespace {

using grid::NodeId;
namespace wire = comm::wire;

Bytes bytes_of_int(int v) {
  Bytes out(sizeof(int));
  std::memcpy(out.data(), &v, sizeof(int));
  return out;
}
int int_of_bytes(core::ByteSpan b) {
  int v = 0;
  std::memcpy(&v, b.data(), sizeof(int));
  return v;
}
void append_int(Bytes& out, int v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(int));
  std::memcpy(out.data() + off, &v, sizeof(int));
}

std::vector<core::DistStage> arithmetic_stages() {
  std::vector<core::DistStage> stages;
  stages.push_back({"inc",
                    [](core::ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) + 1);
                    },
                    0.02, 16});
  stages.push_back({"triple",
                    [](core::ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) * 3);
                    },
                    0.02, 16});
  stages.push_back({"dec",
                    [](core::ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) - 1);
                    },
                    0.02, 16});
  return stages;
}

// --------------------------------------------------------- wire frames

wire::Frame roundtrip_one(const wire::Frame& frame) {
  const Bytes encoded = wire::encode_frame(frame);
  wire::FrameReader reader;
  reader.feed(encoded.data(), encoded.size());
  auto decoded = reader.next();
  EXPECT_TRUE(decoded.has_value());
  EXPECT_FALSE(reader.next().has_value()) << "trailing frame";
  return *decoded;
}

TEST(ProcWire, EveryFrameKindRoundTrips) {
  const Bytes task = wire::encode_task(42, 1, bytes_of_int(7));
  const wire::Frame frames[] = {
      {wire::FrameKind::kTask, 2, task},
      {wire::FrameKind::kResult, 0, task},
      {wire::FrameKind::kRemap, 1,
       wire::encode_mapping(sched::Mapping(std::vector<NodeId>{1, 0, 2}))},
      {wire::FrameKind::kShutdown, 0, {}},
      {wire::FrameKind::kSpeedObs, 3, wire::encode_f64(1.75)},
      {wire::FrameKind::kTelemetry, 1, task},  // payload opaque to framing
      {wire::FrameKind::kHealth, 2, task},     // payload opaque to framing
  };
  for (const wire::Frame& frame : frames) {
    EXPECT_EQ(roundtrip_one(frame), frame) << wire::to_string(frame.kind);
  }
}

TEST(ProcWire, ReaderReassemblesSplitFrames) {
  // A frame arriving one byte at a time must stay pending until whole;
  // two frames in one feed must both pop.
  const wire::Frame a{wire::FrameKind::kTask, 1,
                      wire::encode_task(9, 0, bytes_of_int(5))};
  const wire::Frame b{wire::FrameKind::kSpeedObs, 2, wire::encode_f64(0.5)};
  Bytes stream = wire::encode_frame(a);
  const Bytes bb = wire::encode_frame(b);
  stream.insert(stream.end(), bb.begin(), bb.end());

  wire::FrameReader reader;
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    reader.feed(&stream[i], 1);
    if (i + 1 < wire::encode_frame(a).size()) {
      EXPECT_FALSE(reader.next().has_value()) << "byte " << i;
    }
  }
  reader.feed(&stream[stream.size() - 1], 1);
  EXPECT_EQ(reader.next(), a);
  EXPECT_EQ(reader.next(), b);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ProcWire, ReaderRejectsOversizedLength) {
  Bytes header(12);
  const std::uint32_t huge = wire::kMaxFramePayload + 1;
  const std::uint32_t kind = 1;
  std::memcpy(header.data(), &huge, 4);
  std::memcpy(header.data() + 4, &kind, 4);
  wire::FrameReader reader;
  reader.feed(header.data(), header.size());
  EXPECT_THROW(reader.next(), std::invalid_argument);
}

TEST(ProcWire, ReaderRejectsUnknownKind) {
  Bytes header(12);
  const std::uint32_t len = 0;
  const std::uint32_t kind = 99;
  std::memcpy(header.data(), &len, 4);
  std::memcpy(header.data() + 4, &kind, 4);
  wire::FrameReader reader;
  reader.feed(header.data(), header.size());
  EXPECT_THROW(reader.next(), std::invalid_argument);
}

TEST(ProcWire, TruncatedPayloadsThrow) {
  std::uint64_t item;
  std::uint32_t stage;
  Bytes payload;
  EXPECT_THROW(wire::decode_task(Bytes(4), item, stage, payload),
               std::invalid_argument);
  EXPECT_THROW(wire::decode_f64(Bytes(4)), std::invalid_argument);

  sched::Mapping mapping(std::vector<NodeId>{2, 0, 1});
  mapping.add_replica(1, 2);
  const Bytes good = wire::encode_mapping(mapping);
  EXPECT_EQ(wire::decode_mapping(good), mapping);
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_THROW(wire::decode_mapping(Bytes(good.begin(),
                                            good.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    cut))),
                 std::invalid_argument)
        << "cut at " << cut;
  }
}

TEST(ProcWire, MappingWithAbsurdCountsRejected) {
  // Claims 2^31 stages in 8 bytes: must throw, not allocate.
  Bytes lie(8);
  const std::uint32_t stages = 0x80000000u;
  std::memcpy(lie.data(), &stages, 4);
  EXPECT_THROW(wire::decode_mapping(lie), std::invalid_argument);
}

TEST(ProcWire, DistExecutorSpeaksTheSharedCodec) {
  // The DistributedExecutor helpers are delegates of comm::wire — the
  // bytes must be identical in both directions.
  const Bytes payload = bytes_of_int(1234);
  EXPECT_EQ(core::DistributedExecutor::encode_task(77, 2, payload),
            wire::encode_task(77, 2, payload));
  sched::Mapping mapping(std::vector<NodeId>{2, 0, 1});
  mapping.add_replica(0, 1);
  EXPECT_EQ(core::DistributedExecutor::encode_mapping(mapping),
            wire::encode_mapping(mapping));
  EXPECT_EQ(core::DistributedExecutor::decode_mapping(
                wire::encode_mapping(mapping)),
            mapping);
}

// ---------------------------------------------------------- end to end

ProcExecutorConfig fast_proc_config() {
  ProcExecutorConfig config;
  config.time_scale = 0.002;
  return config;
}

TEST(ProcessExecutor, OrderedCorrectOutputs) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                           fast_proc_config());
  std::vector<Bytes> inputs;
  for (int i = 0; i < 60; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));
  ASSERT_EQ(report.items, 60u);
  for (int i = 0; i < 60; ++i) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1) << "item " << i;
  }
  EXPECT_EQ(report.remap_count, 0u);
  EXPECT_GT(report.throughput, 0.0);
}

TEST(ProcessExecutor, EmptyInput) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                           fast_proc_config());
  EXPECT_EQ(executor.run({}).items, 0u);
}

TEST(ProcessExecutor, ColocatedMappingWorks) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping::all_on(3, 1),
                           fast_proc_config());
  std::vector<Bytes> inputs;
  for (int i = 0; i < 20; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));
  EXPECT_EQ(report.items, 20u);
  EXPECT_EQ(report.final_mapping, "(2,2,2)");
}

TEST(ProcessExecutor, ReplicatedStageFarmsAcrossProcesses) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  sched::Mapping mapping(std::vector<NodeId>{0, 1, 0});
  mapping.add_replica(1, 2);  // middle stage farmed over two processes
  ProcessExecutor executor(g, arithmetic_stages(), mapping,
                           fast_proc_config());
  std::vector<Bytes> inputs;
  for (int i = 0; i < 40; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));
  ASSERT_EQ(report.items, 40u);
  for (int i = 0; i < 40; ++i) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1) << "item " << i;
  }
}

TEST(ProcessExecutor, WorkerCrashSurfacesAsError) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  auto stages = arithmetic_stages();
  // Stage functions only ever run inside forked workers, so this kills
  // one real OS process mid-stream — the failure mode the in-process
  // runtimes cannot even express.
  stages[1].fn = [](core::ByteSpan in, Bytes& out) {
    if (int_of_bytes(in) == 14) _exit(7);  // item 13 after the +1 stage
    append_int(out, int_of_bytes(in) * 3);
  };
  ProcessExecutor executor(g, std::move(stages),
                           sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                           fast_proc_config());
  std::vector<Bytes> inputs;
  for (int i = 0; i < 30; ++i) inputs.push_back(bytes_of_int(i));
  try {
    executor.run(std::move(inputs));
    FAIL() << "expected a crash report";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exited mid-run"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("exit code 7"), std::string::npos)
        << e.what();
  }
}

TEST(ProcessExecutor, SigkilledWorkerErrorCarriesItsFlightTail) {
  // The tentpole forensic promise end to end: a worker killed by SIGKILL
  // gets no chance to flush or report anything, yet the crash error must
  // explain what it was doing — the parent reads the victim's flight
  // lane out of the pre-fork MAP_SHARED mapping.
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  auto stages = arithmetic_stages();
  // Wedge stage 1 on item 6 so its worker can never drain the stream:
  // items 0-5 complete (the lane has a story to tell), items 6+ stay
  // in flight, and the SIGKILL is guaranteed to land mid-run rather
  // than racing a clean finish.
  stages[1].fn = [](core::ByteSpan in, Bytes& out) {
    if (int_of_bytes(in) == 7) {  // item 6 after the +1 stage
      std::this_thread::sleep_for(std::chrono::seconds(60));
    }
    append_int(out, int_of_bytes(in) * 3);
  };
  ProcessExecutor executor(g, std::move(stages),
                           sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                           fast_proc_config());
  executor.stream_begin();
  const std::vector<int> pids = executor.worker_pids();
  ASSERT_EQ(pids.size(), 2u);

  // Let real work flow first so the victim's lane has a story to tell.
  for (int i = 0; i < 12; ++i) executor.stream_push(bytes_of_int(i));
  std::size_t popped = 0;
  while (popped < 6) {
    if (executor.stream_try_pop()) {
      ++popped;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(::kill(pids[1], SIGKILL), 0);
  executor.stream_close();
  try {
    executor.stream_finish();
    FAIL() << "expected a crash report";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker for node 1 exited mid-run"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("signal 9"), std::string::npos) << what;
    EXPECT_NE(what.find("last flight events:"), std::string::npos) << what;
    // The decoded tail holds the worker's own task events, recorded by
    // the dead process into shared memory.
    EXPECT_NE(what.find("task-done stage=1"), std::string::npos) << what;
  }
}

TEST(ProcessExecutor, WedgedWorkerTripsStallDetection) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  auto stages = arithmetic_stages();
  // Stage 1 wedges on one item: its worker goes silent mid-task (no
  // frames, no heartbeats) while the parent keeps polling — the silence
  // stall shape. At time_scale 0.002 the 200ms sleep is ~100 virtual
  // seconds of silence against a 10-second threshold.
  stages[1].fn = [](core::ByteSpan in, Bytes& out) {
    if (int_of_bytes(in) == 11) {  // item 10 after the +1 stage
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    append_int(out, int_of_bytes(in) * 3);
  };
  obs::MetricsRegistry metrics;
  ProcExecutorConfig config;
  config.time_scale = 0.002;
  config.health_interval = 1.0;
  config.stall_after = 10.0;
  config.obs.metrics = &metrics;
  ProcessExecutor executor(g, std::move(stages),
                           sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                           config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 30; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  EXPECT_EQ(report.items, 30u) << "a stall is a warning, not a failure";
  EXPECT_GE(metrics.counter(obs::names::kWorkerStalls).value(), 1u);
}

TEST(ProcessExecutor, StatusSnapshotIsWellFormedMidStream) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  ProcExecutorConfig config = fast_proc_config();
  config.health_interval = 0.5;
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                           config);
  executor.stream_begin();
  for (int i = 0; i < 20; ++i) executor.stream_push(bytes_of_int(i));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const std::string text = executor.status().dump(2);
  EXPECT_TRUE(test_support::JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"substrate\": \"process\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"mapping\": \"(1,2,1)\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"workers\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"worker_pids\""), std::string::npos) << text;

  executor.stream_close();
  const auto report = executor.stream_finish();
  EXPECT_EQ(report.items, 20u);
}

TEST(ProcessExecutor, RejectsBadConstruction) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  EXPECT_THROW(ProcessExecutor(g, {}, sched::Mapping{}, {}),
               std::invalid_argument);
  EXPECT_THROW(ProcessExecutor(
                   g, arithmetic_stages(),
                   sched::Mapping(std::vector<NodeId>{0, 1}),  // 2 != 3
                   fast_proc_config()),
               std::invalid_argument);
  ProcExecutorConfig bad;
  bad.time_scale = 0.0;
  EXPECT_THROW(ProcessExecutor(g, arithmetic_stages(),
                               sched::Mapping::all_on(3, 0), bad),
               std::invalid_argument);
}

TEST(ProcessExecutor, ProfileMatchesStages) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping::all_on(3, 0), fast_proc_config());
  const auto p = executor.profile();
  EXPECT_EQ(p.num_stages(), 3u);
  EXPECT_DOUBLE_EQ(p.stage_work[1], 0.02);
  EXPECT_NO_THROW(p.validate());
}

// ---------------------------------------------------------- adaptation

TEST(ProcessExecutor, AdaptsAwayFromLoadedNode) {
  auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 1, std::make_shared<grid::ConstantLoad>(9.0));

  ProcExecutorConfig config;
  config.time_scale = 0.002;
  config.adapt.epoch = 4.0;
  config.adapt.policy.hysteresis_epochs = 1;
  config.adapt.policy.min_gain_ratio = 0.2;
  config.adapt.policy.restart_latency = 0.1;

  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                           config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 400; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  EXPECT_EQ(report.items, 400u);
  EXPECT_GE(report.remap_count, 1u);
  EXPECT_EQ(report.final_mapping.find('2'), std::string::npos)
      << "still on loaded node: " << report.final_mapping;
  // Spot-check results survived the live remap.
  for (int i : {0, 123, 399}) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1);
  }
}

TEST(ProcessExecutor, OnChangeTriggerSkipsQuietEpochs) {
  // Same contract as the threaded and message-passing runtimes: on a
  // stable grid the change gate swallows the mapping search after the
  // first decision.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  ProcExecutorConfig config;
  config.time_scale = 0.01;
  config.adapt.epoch = 2.0;
  config.adapt.trigger = control::AdaptationTrigger::kOnChange;
  config.adapt.change_threshold = 0.75;
  config.adapt.max_staleness = 1e9;
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                           config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 400; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  EXPECT_EQ(report.items, 400u);
  ASSERT_GE(report.epochs.size(), 2u);
  EXPECT_TRUE(report.epochs.front().decided);
  std::size_t decisions = 0;
  for (const auto& e : report.epochs) decisions += e.decided;
  EXPECT_LT(decisions, report.epochs.size());
  EXPECT_EQ(report.remap_count, 0u);
}

TEST(ProcessExecutor, OnChangeTriggerReactsToLoadStep) {
  auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 1, std::make_shared<grid::StepLoad>(
                                std::vector<grid::StepLoad::Step>{
                                    {4.0, 9.0}}));

  ProcExecutorConfig config;
  config.time_scale = 0.01;
  config.adapt.epoch = 2.0;
  config.adapt.trigger = control::AdaptationTrigger::kOnChange;
  config.adapt.change_threshold = 0.4;
  config.adapt.max_staleness = 1e9;
  config.adapt.policy.hysteresis_epochs = 1;
  config.adapt.policy.min_gain_ratio = 0.2;
  config.adapt.policy.restart_latency = 0.1;
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                           config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 400; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  EXPECT_EQ(report.items, 400u);
  EXPECT_GE(report.remap_count, 1u);
  EXPECT_EQ(report.final_mapping.find('2'), std::string::npos)
      << "still on loaded node: " << report.final_mapping;
  std::size_t remapped_epochs = 0;
  for (const auto& e : report.epochs) remapped_epochs += e.remapped;
  EXPECT_EQ(remapped_epochs, report.remap_count);
  // Results survived the mid-stream remap.
  for (int i : {0, 123, 399}) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1);
  }
}

// ------------------------------------------------------ shm ring modes

TEST(ProcessExecutor, RingDisabledStillCorrect) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  ProcExecutorConfig config = fast_proc_config();
  config.shm_ring = false;  // pure socket-relay mode
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                           config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 40; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));
  ASSERT_EQ(report.items, 40u);
  for (int i = 0; i < 40; ++i) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1) << "item " << i;
  }
}

TEST(ProcessExecutor, TinyRingFallsBackToSocketPerFrame) {
  // A ring too small for even one frame forces the fallback branch on
  // every single hop — the stream must still be complete and ordered.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  ProcExecutorConfig config = fast_proc_config();
  config.shm_ring_bytes = 8;  // < one frame: every push fails
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                           config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 40; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));
  ASSERT_EQ(report.items, 40u);
  for (int i = 0; i < 40; ++i) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1) << "item " << i;
  }
}

TEST(ProcessExecutor, RingCarriesSelfHopsOnColocatedMapping) {
  // all_on: every hop is a self-hop through the diagonal ring.
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  ProcessExecutor executor(g, arithmetic_stages(),
                           sched::Mapping::all_on(3, 1),
                           fast_proc_config());
  std::vector<Bytes> inputs;
  for (int i = 0; i < 30; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));
  ASSERT_EQ(report.items, 30u);
  for (int i = 0; i < 30; ++i) {
    const auto& out =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(out), (i + 1) * 3 - 1) << "item " << i;
  }
}

TEST(ProcessExecutor, RingEnabledOutputsMatchDistGolden) {
  // Golden parity: byte-identical ordered outputs from the dist runtime
  // and the proc runtime with rings engaged, same scenario.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  const sched::Mapping mapping(std::vector<NodeId>{0, 1, 2});
  std::vector<Bytes> inputs;
  for (int i = 0; i < 50; ++i) inputs.push_back(bytes_of_int(i));

  core::DistExecutorConfig dist_config;
  dist_config.time_scale = 0.002;
  core::DistributedExecutor dist(g, arithmetic_stages(), mapping,
                                 dist_config);
  const auto dist_report = dist.run(inputs);

  ProcessExecutor proc(g, arithmetic_stages(), mapping, fast_proc_config());
  const auto proc_report = proc.run(inputs);

  ASSERT_EQ(proc_report.items, dist_report.items);
  ASSERT_EQ(proc_report.outputs.size(), dist_report.outputs.size());
  for (std::size_t i = 0; i < proc_report.outputs.size(); ++i) {
    EXPECT_EQ(std::any_cast<const Bytes&>(proc_report.outputs[i]),
              std::any_cast<const Bytes&>(dist_report.outputs[i]))
        << "item " << i;
  }
}

// -------------------------------------------------------------- parity

// The acceptance bar for "fourth runtime behind the same control layer":
// on the same deterministic scenario with the same AdaptationConfig, the
// process runtime's epoch timeline must make the same decisions the
// DistributedExecutor makes — substrate changed, control behavior did
// not.
TEST(ProcessExecutor, QuietScenarioDecisionParityWithDist) {
  control::AdaptationConfig adapt;
  adapt.epoch = 2.0;
  adapt.trigger = control::AdaptationTrigger::kOnChange;
  adapt.change_threshold = 0.75;
  adapt.max_staleness = 1e9;

  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  const sched::Mapping mapping(std::vector<NodeId>{0, 1, 2});
  std::vector<Bytes> inputs;
  for (int i = 0; i < 300; ++i) inputs.push_back(bytes_of_int(i));

  core::DistExecutorConfig dist_config;
  dist_config.time_scale = 0.01;
  dist_config.adapt = adapt;
  core::DistributedExecutor dist(g, arithmetic_stages(), mapping,
                                 dist_config);
  const auto dist_report = dist.run(inputs);

  ProcExecutorConfig proc_config;
  proc_config.time_scale = 0.01;
  proc_config.adapt = adapt;
  ProcessExecutor proc(g, arithmetic_stages(), mapping, proc_config);
  const auto proc_report = proc.run(inputs);

  ASSERT_EQ(proc_report.items, dist_report.items);
  EXPECT_EQ(proc_report.final_mapping, dist_report.final_mapping);
  EXPECT_EQ(proc_report.remap_count, dist_report.remap_count);

  // Same decision sequence epoch by epoch. Wall-clock jitter can give
  // one run a trailing epoch more than the other; the overlap must
  // agree exactly and both timelines must be non-trivial.
  const auto common =
      std::min(proc_report.epochs.size(), dist_report.epochs.size());
  ASSERT_GE(common, 2u);
  for (std::size_t i = 0; i < common; ++i) {
    EXPECT_EQ(proc_report.epochs[i].decided, dist_report.epochs[i].decided)
        << "epoch " << i;
    EXPECT_EQ(proc_report.epochs[i].remapped, dist_report.epochs[i].remapped)
        << "epoch " << i;
  }
}

}  // namespace
}  // namespace gridpipe::proc
