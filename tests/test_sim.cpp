// Tests for the discrete-event engine and PipelineSim: event ordering,
// conservation laws, throughput against the analytic model, live remap
// semantics, replication, and monitoring feeds.

#include <gtest/gtest.h>

#include <cmath>

#include "grid/builders.hpp"
#include "sim/pipeline_sim.hpp"

namespace gridpipe::sim {
namespace {

using grid::Grid;
using grid::NodeId;
using sched::Mapping;
using sched::PipelineProfile;

// --------------------------------------------------------- event queue

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> fired;
  q.push(2.0, [&] { fired.push_back(2); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(1.0, [&] { fired.push_back(10); });  // same time, later insert
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 10, 2}));
}

TEST(EventQueue, RejectsBadTimes) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.push(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(Simulator, AdvancesVirtualTime) {
  Simulator sim;
  double seen = -1.0;
  sim.after(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.after(1.0, tick);
  };
  sim.after(1.0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.after(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(0.5, [] {}), std::invalid_argument);
}

// -------------------------------------------------------- pipeline sim

SimConfig quiet_config(std::uint64_t items) {
  SimConfig config;
  config.num_items = items;
  config.probe_interval = 0.0;
  return config;
}

TEST(PipelineSim, ConservesItems) {
  const Grid g = grid::uniform_cluster(3, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(3, 0.1, 100.0);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1, 2}),
                  quiet_config(500));
  sim.start();
  sim.simulator().run();
  EXPECT_TRUE(sim.finished());
  EXPECT_EQ(sim.metrics().items_created(), 500u);
  EXPECT_EQ(sim.metrics().items_completed(), 500u);
  EXPECT_EQ(sim.in_flight(), 0u);
}

TEST(PipelineSim, ThroughputMatchesAnalyticModel) {
  const Grid g = grid::uniform_cluster(3, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(3, 0.1, 100.0);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;

  for (const auto& assignment :
       {std::vector<NodeId>{0, 1, 2}, std::vector<NodeId>{0, 0, 1},
        std::vector<NodeId>{0, 0, 0}}) {
    const Mapping m(assignment);
    PipelineSim sim(g, p, m, quiet_config(2000));
    sim.start();
    sim.simulator().run();
    const double predicted = model.throughput(p, est, m);
    EXPECT_NEAR(sim.metrics().mean_throughput(), predicted,
                0.05 * predicted)
        << m.to_string();
  }
}

TEST(PipelineSim, SlowNodeDominatesMakespan) {
  Grid g = grid::heterogeneous_cluster({1.0, 0.25}, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  quiet_config(1000));
  sim.start();
  sim.simulator().run();
  // Bottleneck: stage 1 at speed 0.25 → 0.4 s/item → ~2.5 items/s.
  EXPECT_NEAR(sim.metrics().mean_throughput(), 2.5, 0.15);
}

TEST(PipelineSim, ExternalLoadSlowsService) {
  Grid g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  grid::set_node_load(g, 1, std::make_shared<grid::ConstantLoad>(3.0));
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  quiet_config(500));
  sim.start();
  sim.simulator().run();
  // Loaded node serves at speed 1/(1+3) → 0.4 s/item.
  EXPECT_NEAR(sim.metrics().mean_throughput(), 2.5, 0.15);
}

TEST(PipelineSim, FifoOrderPreservedWithoutReplication) {
  const Grid g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.05, 100.0);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  quiet_config(200));
  sim.start();
  sim.simulator().run();
  const auto& ids = sim.metrics().completions().values();
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(ids[i - 1], ids[i]);
  }
}

TEST(PipelineSim, ReplicatedStageRaisesThroughput) {
  const Grid g = grid::uniform_cluster(4, 1.0, 1e-4, 1e9);
  PipelineProfile p;
  p.stage_work = {0.05, 0.4, 0.05};
  p.msg_bytes.assign(4, 100.0);
  p.state_bytes.assign(3, 0.0);

  PipelineSim plain(g, p, Mapping(std::vector<NodeId>{0, 1, 2}),
                    quiet_config(1000));
  plain.start();
  plain.simulator().run();

  Mapping replicated(std::vector<NodeId>{0, 1, 2});
  replicated.add_replica(1, 3);
  PipelineSim boosted(g, p, replicated, quiet_config(1000));
  boosted.start();
  boosted.simulator().run();

  EXPECT_GT(boosted.metrics().mean_throughput(),
            1.7 * plain.metrics().mean_throughput());
}

TEST(PipelineSim, ExponentialServiceStillConserves) {
  const Grid g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  SimConfig config = quiet_config(800);
  config.service_model = SimConfig::ServiceModel::kExponential;
  config.seed = 7;
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}), config);
  sim.start();
  sim.simulator().run();
  EXPECT_EQ(sim.metrics().items_completed(), 800u);
  // Stochastic service cannot beat the deterministic bound.
  EXPECT_LT(sim.metrics().mean_throughput(), 10.0);
}

TEST(PipelineSim, ExponentialSeedsReproducible) {
  const Grid g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  SimConfig config = quiet_config(300);
  config.service_model = SimConfig::ServiceModel::kExponential;
  config.seed = 11;
  auto run_once = [&] {
    PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}), config);
    sim.start();
    sim.simulator().run();
    return sim.metrics().makespan();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(PipelineSim, ApplyMappingMovesWork) {
  Grid g = grid::heterogeneous_cluster({1.0, 1.0, 8.0}, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  // Start on the slow pair, remap to the fast node mid-run.
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  quiet_config(2000));
  sim.start();
  sim.simulator().run_until(20.0);
  sim.apply_mapping(Mapping(std::vector<NodeId>{2, 2}), /*pause=*/1.0);
  sim.simulator().run();

  EXPECT_TRUE(sim.finished());
  EXPECT_EQ(sim.metrics().items_completed(), 2000u);
  ASSERT_EQ(sim.metrics().remaps().size(), 1u);
  EXPECT_EQ(sim.metrics().remaps()[0].to, "(3,3)");
  // Fast node serves both stages at 8 → thr 40/s vs 10/s before; the
  // overall mean must be well above the static slow-pair rate.
  EXPECT_GT(sim.metrics().mean_throughput(), 12.0);
}

TEST(PipelineSim, RemapFreezePausesService) {
  const Grid g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  quiet_config(100));
  sim.start();
  sim.simulator().run_until(1.0);
  const auto done_before = sim.metrics().items_completed();
  sim.apply_mapping(Mapping(std::vector<NodeId>{1, 0}), /*pause=*/5.0);
  // During the freeze, only already-in-service items may trickle out.
  sim.simulator().run_until(5.0);
  EXPECT_LE(sim.metrics().items_completed(), done_before + 2);
  sim.simulator().run();
  EXPECT_TRUE(sim.finished());
}

TEST(PipelineSim, SerializedLinksThrottleSharedEdge) {
  // Two stages on distinct nodes joined by a slow serialized link that is
  // the bottleneck.
  Grid g = grid::uniform_cluster(2, 1.0, 0.2, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.01, 100.0);
  SimConfig config = quiet_config(200);
  config.serialize_links = true;
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}), config);
  sim.start();
  sim.simulator().run();
  // Edge takes 0.2s serialized → ~5 items/s.
  EXPECT_NEAR(sim.metrics().mean_throughput(), 5.0, 0.5);
}

TEST(PipelineSim, MonitoringReceivesPassiveObservations) {
  const Grid g = grid::uniform_cluster(2, 2.0, 1e-3, 1e8);
  const auto p = PipelineProfile::uniform(2, 0.2, 1e4);
  monitor::MonitoringRegistry registry;
  SimConfig config = quiet_config(50);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}), config,
                  &registry);
  sim.start();
  sim.simulator().run();
  // Node speed sensors observed ~2.0 on both nodes.
  EXPECT_NEAR(registry.forecast({monitor::SensorKind::kNodeSpeed, 0, 0}, 0.0),
              2.0, 0.2);
  EXPECT_NEAR(registry.forecast({monitor::SensorKind::kNodeSpeed, 1, 0}, 0.0),
              2.0, 0.2);
  // Link 0→1 observed at catalog speed → inflation ≈ 1.
  EXPECT_NEAR(
      registry.forecast({monitor::SensorKind::kLinkInflation, 0, 1}, 0.0),
      1.0, 0.1);
}

TEST(PipelineSim, ProbesCoverIdleResources) {
  Grid g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 2, std::make_shared<grid::ConstantLoad>(4.0));
  const auto p = PipelineProfile::uniform(2, 0.1, 1e3);
  monitor::MonitoringRegistry registry;
  SimConfig config = quiet_config(400);
  config.probe_interval = 2.0;
  config.probe_noise = 0.0;
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}), config,
                  &registry);
  sim.start();
  sim.simulator().run();
  // Node 2 never ran a stage but probes saw its load.
  EXPECT_NEAR(registry.forecast({monitor::SensorKind::kNodeSpeed, 2, 0}, 0.0),
              0.2, 0.05);
}

TEST(PipelineSim, RejectsBadConstruction) {
  const Grid g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(3, 0.1, 100.0);
  EXPECT_THROW(PipelineSim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                           quiet_config(10)),
               std::invalid_argument);  // stage count mismatch
  PipelineSim ok(g, p, Mapping(std::vector<NodeId>{0, 1, 0}),
                 quiet_config(10));
  ok.start();
  EXPECT_THROW(ok.start(), std::logic_error);
  EXPECT_THROW(ok.apply_mapping(Mapping(std::vector<NodeId>{0, 1, 0}), -1.0),
               std::invalid_argument);
}

// Window sweep: larger credit windows cannot reduce throughput, and the
// pipeline conserves items at every window size.
class WindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowSweep, ConservationAtEveryWindow) {
  const Grid g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  const auto p = PipelineProfile::uniform(3, 0.1, 1e4);
  SimConfig config = quiet_config(300);
  config.window = GetParam();
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1, 2}), config);
  sim.start();
  sim.simulator().run();
  EXPECT_EQ(sim.metrics().items_completed(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

}  // namespace
}  // namespace gridpipe::sim
