// Tests for drift detection (PageHinkley), the ResourceChangeGate, and
// the kOnChange adaptation trigger end to end.

#include <gtest/gtest.h>

#include "grid/builders.hpp"
#include "monitor/drift.hpp"
#include "sim/drivers.hpp"
#include "util/rng.hpp"
#include "workload/scenarios.hpp"

namespace gridpipe {
namespace {

// --------------------------------------------------------- PageHinkley

TEST(PageHinkley, NoAlarmOnStationaryNoise) {
  monitor::PageHinkley detector(0.05, 2.0);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_FALSE(detector.observe(1.0 + util::normal(rng, 0.0, 0.02)))
        << "false alarm at sample " << i;
  }
}

TEST(PageHinkley, DetectsUpwardStep) {
  monitor::PageHinkley detector(0.05, 2.0);
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(detector.observe(1.0 + util::normal(rng, 0.0, 0.02)));
  }
  bool alarmed = false;
  for (int i = 0; i < 100 && !alarmed; ++i) {
    alarmed = detector.observe(2.0 + util::normal(rng, 0.0, 0.02));
  }
  EXPECT_TRUE(alarmed);
}

TEST(PageHinkley, DetectsDownwardStep) {
  monitor::PageHinkley detector(0.05, 2.0);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(detector.observe(2.0 + util::normal(rng, 0.0, 0.02)));
  }
  bool alarmed = false;
  for (int i = 0; i < 100 && !alarmed; ++i) {
    alarmed = detector.observe(0.5 + util::normal(rng, 0.0, 0.02));
  }
  EXPECT_TRUE(alarmed);
}

TEST(PageHinkley, ResetsAfterAlarmAndRearms) {
  monitor::PageHinkley detector(0.01, 1.0, 4);
  for (int i = 0; i < 50; ++i) detector.observe(1.0);
  bool alarmed = false;
  for (int i = 0; i < 50 && !alarmed; ++i) alarmed = detector.observe(3.0);
  ASSERT_TRUE(alarmed);
  EXPECT_EQ(detector.samples(), 0u);  // reset
  // Re-arms: a second shift triggers again.
  for (int i = 0; i < 50; ++i) detector.observe(3.0);
  alarmed = false;
  for (int i = 0; i < 50 && !alarmed; ++i) alarmed = detector.observe(1.0);
  EXPECT_TRUE(alarmed);
}

TEST(PageHinkley, RespectsWarmup) {
  monitor::PageHinkley detector(0.0, 0.001, 64);
  for (int i = 0; i < 63; ++i) {
    EXPECT_FALSE(detector.observe(i % 2 ? 10.0 : -10.0));
  }
}

TEST(PageHinkley, RejectsBadParameters) {
  EXPECT_THROW(monitor::PageHinkley(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(monitor::PageHinkley(0.1, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------- change gate

TEST(ResourceChangeGate, FirstCallAlwaysChanged) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  sched::ResourceChangeGate gate(0.25);
  EXPECT_FALSE(gate.has_snapshot());
  EXPECT_TRUE(gate.changed(est));
  gate.accept(est);
  EXPECT_TRUE(gate.has_snapshot());
  EXPECT_FALSE(gate.changed(est));
}

TEST(ResourceChangeGate, TriggersOnNodeSpeedMove) {
  auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  sched::ResourceChangeGate gate(0.25);
  gate.accept(sched::ResourceEstimate::from_grid(g, 0.0));

  grid::set_node_load(g, 1, std::make_shared<grid::ConstantLoad>(0.1));
  // 9% slowdown: below threshold.
  EXPECT_FALSE(gate.changed(sched::ResourceEstimate::from_grid(g, 0.0)));
  grid::set_node_load(g, 1, std::make_shared<grid::ConstantLoad>(1.0));
  // 50% slowdown: above threshold.
  EXPECT_TRUE(gate.changed(sched::ResourceEstimate::from_grid(g, 0.0)));
}

TEST(ResourceChangeGate, TriggersOnLinkMove) {
  auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  sched::ResourceChangeGate gate(0.25);
  gate.accept(sched::ResourceEstimate::from_grid(g, 0.0));
  g.set_link(0, 1, grid::Link(5e-3, 1e8));  // 5x latency
  EXPECT_TRUE(gate.changed(sched::ResourceEstimate::from_grid(g, 0.0)));
}

TEST(ResourceChangeGate, RejectsBadThreshold) {
  EXPECT_THROW(sched::ResourceChangeGate(0.0), std::invalid_argument);
}

// ------------------------------------------------- kOnChange end to end

TEST(OnChangeTrigger, SkipsQuietEpochsOnStableGrid) {
  const workload::Scenario s = workload::find_scenario("stable", 1);
  sim::SimConfig config;
  config.num_items = 2000;
  config.probe_interval = 5.0;
  config.probe_noise = 0.0;

  sim::DriverOptions options;
  options.driver = sim::DriverKind::kAdaptive;
  options.adapt.epoch = 10.0;
  options.adapt.trigger = sim::AdaptationTrigger::kOnChange;
  options.adapt.max_staleness = 1e9;  // isolate the gate's effect
  const auto result = sim::run_pipeline(s.grid, s.profile, config, options);

  std::size_t decisions = 0;
  for (const auto& e : result.epochs) decisions += e.decided;
  EXPECT_GT(result.epochs.size(), 10u);
  // Only the first epoch (no snapshot) should decide on a static grid.
  EXPECT_LE(decisions, 2u);
  EXPECT_EQ(result.metrics.items_completed(), 2000u);
}

TEST(OnChangeTrigger, StillReactsToLoadStep) {
  const workload::Scenario s = workload::find_scenario("load-step", 1);
  sim::SimConfig config;
  config.num_items = 2500;
  config.probe_interval = 5.0;
  config.probe_noise = 0.0;

  auto run_with = [&](sim::AdaptationTrigger trigger) {
    sim::DriverOptions options;
    options.driver = sim::DriverKind::kAdaptive;
    options.adapt.epoch = 10.0;
    options.adapt.trigger = trigger;
    return sim::run_pipeline(s.grid, s.profile, config, options);
  };
  const auto every = run_with(sim::AdaptationTrigger::kEveryEpoch);
  const auto on_change = run_with(sim::AdaptationTrigger::kOnChange);

  // Same reactivity (the step is a 10x move), far fewer decisions.
  EXPECT_GE(on_change.remap_count, 1u);
  EXPECT_NEAR(on_change.mean_throughput, every.mean_throughput,
              0.05 * every.mean_throughput);
  std::size_t every_decisions = 0, gated_decisions = 0;
  for (const auto& e : every.epochs) every_decisions += e.decided;
  for (const auto& e : on_change.epochs) gated_decisions += e.decided;
  EXPECT_LT(gated_decisions * 3, every_decisions);
}

TEST(OnChangeTrigger, MaxStalenessForcesPeriodicDecision) {
  const workload::Scenario s = workload::find_scenario("stable", 1);
  sim::SimConfig config;
  config.num_items = 2000;
  config.probe_interval = 5.0;
  config.probe_noise = 0.0;

  sim::DriverOptions options;
  options.driver = sim::DriverKind::kAdaptive;
  options.adapt.epoch = 10.0;
  options.adapt.trigger = sim::AdaptationTrigger::kOnChange;
  options.adapt.max_staleness = 50.0;
  const auto result = sim::run_pipeline(s.grid, s.profile, config, options);

  std::size_t decisions = 0;
  for (const auto& e : result.epochs) decisions += e.decided;
  // Roughly one decision per 50 s of the ~6000 s run.
  EXPECT_GE(decisions, result.epochs.size() / 6);
}

}  // namespace
}  // namespace gridpipe
