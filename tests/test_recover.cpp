// Tests for src/recover/ — the fault-tolerance subsystem. The unit half
// pins the pure pieces without a single fork (FaultPlan grammar and
// determinism, ReplayJournal at-least-once bookkeeping, Supervisor
// decision table, OrderedDedupBuffer exactly-once reordering, and the
// HealthTracker respawn re-arm). The integration half forks real
// worker fleets through the ProcessExecutor with recovery enabled and
// asserts the headline property end to end: a SIGKILLed worker
// mid-stream — whether respawned or degraded around — still yields
// output byte-identical to the crash-free run, exactly once, in order.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "core/dist_executor.hpp"
#include "core/ordered_buffer.hpp"
#include "grid/builders.hpp"
#include "obs/health.hpp"
#include "proc/process_executor.hpp"
#include "recover/fault.hpp"
#include "recover/journal.hpp"
#include "recover/supervisor.hpp"
#include "rt/runtime.hpp"

namespace gridpipe::recover {
namespace {

using grid::NodeId;

// ----------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParsesKillPointsRateAndSeed) {
  const FaultPlan plan = FaultPlan::parse("kill=1@25;kill=0@3;rate=0.25;seed=9");
  ASSERT_EQ(plan.kills.size(), 2u);
  EXPECT_EQ(plan.kills[0].node, 1u);
  EXPECT_EQ(plan.kills[0].item, 25u);
  EXPECT_EQ(plan.kills[1].node, 0u);
  EXPECT_EQ(plan.kills[1].item, 3u);
  EXPECT_DOUBLE_EQ(plan.kill_rate, 0.25);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_TRUE(plan.any());

  // to_string round-trips through parse.
  EXPECT_EQ(FaultPlan::parse(plan.to_string()), plan);

  // Comma separators work too; an empty plan is inert.
  EXPECT_EQ(FaultPlan::parse("kill=2@7,seed=3").kills.size(), 1u);
  EXPECT_FALSE(FaultPlan{}.any());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("kill=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill=x@2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rate=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rate=nope"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("frob=1"), std::invalid_argument);
}

TEST(FaultPlan, KillPointsFireOnceAtIncarnationZero) {
  const FaultPlan plan = FaultPlan::parse("kill=1@20");
  // Fires on the named (node, item) at any stage, first incarnation only.
  EXPECT_TRUE(plan.should_die(1, 20, 0, 0));
  EXPECT_TRUE(plan.should_die(1, 20, 2, 0));
  EXPECT_FALSE(plan.should_die(1, 20, 0, 1));  // respawn survives the replay
  EXPECT_FALSE(plan.should_die(0, 20, 0, 0));  // other node
  EXPECT_FALSE(plan.should_die(1, 19, 0, 0));  // other item
}

TEST(FaultPlan, RateDrawsAreDeterministicAndIncarnationSalted) {
  FaultPlan plan;
  plan.kill_rate = 0.5;
  plan.seed = 42;
  // Pure function of its arguments: two evaluations agree, and a plan
  // with the same parameters built elsewhere (the forked child's copy)
  // agrees with the parent's.
  FaultPlan copy = plan;
  bool any_death = false;
  bool incarnation_changes_a_draw = false;
  for (std::uint64_t item = 0; item < 64; ++item) {
    const bool die = plan.should_die(0, item, 1, 0);
    EXPECT_EQ(die, copy.should_die(0, item, 1, 0)) << "item " << item;
    any_death = any_death || die;
    if (die != plan.should_die(0, item, 1, 1)) {
      incarnation_changes_a_draw = true;
    }
  }
  EXPECT_TRUE(any_death) << "rate=0.5 over 64 draws produced no death";
  EXPECT_TRUE(incarnation_changes_a_draw)
      << "incarnation does not salt the hash: a respawn would re-die "
         "deterministically";
}

// ------------------------------------------------------- ReplayJournal

TEST(ReplayJournal, AdmitRetireAndDuplicateDetection) {
  ReplayJournal journal;
  const Bytes p0{std::byte{10}};
  const Bytes p1{std::byte{11}};
  journal.admit(0, p0, 1.0);
  journal.admit(1, p1, 2.0);
  EXPECT_EQ(journal.live(), 2u);
  EXPECT_TRUE(journal.contains(0));

  const ReplayJournal::Entry* entry = journal.find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->payload, p1);
  EXPECT_DOUBLE_EQ(entry->admitted_at, 2.0);

  EXPECT_TRUE(journal.retire(0));    // first delivery
  EXPECT_FALSE(journal.retire(0));   // duplicate delivery
  EXPECT_EQ(journal.find(0), nullptr);
  EXPECT_EQ(journal.live(), 1u);
  EXPECT_FALSE(journal.empty());
  EXPECT_TRUE(journal.retire(1));
  EXPECT_TRUE(journal.empty());
}

TEST(ReplayJournal, LiveSeqsAscendAndReplaysAreCounted) {
  ReplayJournal journal;
  for (const std::uint64_t seq : {7u, 2u, 5u}) {
    journal.admit(seq, Bytes{std::byte{1}}, 0.0);
  }
  EXPECT_EQ(journal.live_seqs(), (std::vector<std::uint64_t>{2, 5, 7}));
  journal.note_replay(5);
  journal.note_replay(5);
  EXPECT_EQ(journal.find(5)->replays, 2u);
  EXPECT_EQ(journal.total_replays(), 2u);
}

// ---------------------------------------------------------- Supervisor

TEST(Supervisor, RespawnBudgetBacksOffThenDegrades) {
  RespawnPolicy policy;
  policy.max_respawns = 2;
  policy.backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  Supervisor supervisor(policy, 3);

  Supervisor::Action a = supervisor.on_death(1);
  EXPECT_EQ(a.kind, Supervisor::ActionKind::kRespawn);
  EXPECT_DOUBLE_EQ(a.delay_ms, 10.0);
  a = supervisor.on_death(1);
  EXPECT_EQ(a.kind, Supervisor::ActionKind::kRespawn);
  EXPECT_DOUBLE_EQ(a.delay_ms, 20.0);  // doubles per respawn of this node
  EXPECT_EQ(supervisor.respawns(1), 2u);

  // Budget spent: third death degrades. Other nodes keep a full budget.
  EXPECT_EQ(supervisor.on_death(1).kind, Supervisor::ActionKind::kDegrade);
  a = supervisor.on_death(0);
  EXPECT_EQ(a.kind, Supervisor::ActionKind::kRespawn);
  EXPECT_DOUBLE_EQ(a.delay_ms, 10.0);
  EXPECT_EQ(supervisor.total_respawns(), 3u);
}

TEST(Supervisor, ExhaustWithoutDegradeFailsAndArrivalResets) {
  RespawnPolicy policy;
  policy.max_respawns = 0;
  policy.degrade_on_exhaust = false;
  Supervisor supervisor(policy, 2);
  EXPECT_EQ(supervisor.on_death(0).kind, Supervisor::ActionKind::kFail);

  policy.max_respawns = 1;
  policy.degrade_on_exhaust = true;
  supervisor.reset(policy, 2);
  EXPECT_EQ(supervisor.on_death(0).kind, Supervisor::ActionKind::kRespawn);
  EXPECT_EQ(supervisor.on_death(0).kind, Supervisor::ActionKind::kDegrade);
  // A later arrival (node rejoined the grid) restores the budget.
  supervisor.on_arrival(0);
  EXPECT_EQ(supervisor.respawns(0), 0u);
  EXPECT_EQ(supervisor.on_death(0).kind, Supervisor::ActionKind::kRespawn);
}

// ------------------------------------------------- OrderedDedupBuffer

TEST(OrderedDedupBuffer, ReordersAndRejectsDuplicates) {
  core::OrderedDedupBuffer out;
  const auto payload = [](int v) { return core::OrderedDedupBuffer::Bytes{std::byte(v)}; };

  EXPECT_TRUE(out.insert(1, payload(1)));
  EXPECT_FALSE(out.ready());  // seq 0 missing
  EXPECT_TRUE(out.insert(0, payload(0)));
  EXPECT_FALSE(out.insert(1, payload(99)));  // already buffered
  ASSERT_TRUE(out.ready());
  EXPECT_EQ(out.pop(), payload(0));
  EXPECT_EQ(out.pop(), payload(1));
  EXPECT_EQ(out.next(), 2u);

  EXPECT_FALSE(out.insert(0, payload(0)));  // already delivered
  EXPECT_FALSE(out.insert(1, payload(1)));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(out.insert(2, payload(2)));
  EXPECT_EQ(out.buffered(), 1u);
  out.reset();
  EXPECT_EQ(out.next(), 0u);
  EXPECT_TRUE(out.insert(0, payload(0)));
}

// ----------------------------------------------- HealthTracker re-arm

TEST(HealthTrackerRecovery, DownNodeSkipsStallCheckAndRespawnRearms) {
  obs::HealthTracker tracker;
  tracker.reset(2, /*now=*/0.0);

  // Node 1 goes silent long enough to stall once.
  tracker.on_frame(0, 19.0);
  auto edges = tracker.check(/*now=*/20.0, /*stall_after=*/15.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].node, 1u);
  EXPECT_TRUE(edges[0].stalled);
  EXPECT_EQ(tracker.nodes()[1].stall_count, 1u);

  // Marked down (supervisor reaped it): no further edges while dead.
  // (Node 0 keeps heartbeating so it contributes no edges of its own.)
  tracker.set_down(1, true);
  tracker.on_frame(0, 59.0);
  EXPECT_TRUE(tracker.check(60.0, 15.0).empty());

  // The respawn clears the latch and the stale record but keeps the
  // count, so a *new* stall of the replacement re-fires the edge.
  tracker.on_respawn(1, 61.0);
  EXPECT_FALSE(tracker.nodes()[1].down);
  EXPECT_FALSE(tracker.nodes()[1].stalled);
  EXPECT_TRUE(tracker.check(62.0, 15.0).empty());  // fresh, not stalled
  tracker.on_frame(0, 99.0);
  edges = tracker.check(100.0, 15.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].stalled);
  EXPECT_EQ(tracker.nodes()[1].stall_count, 2u);
}

// ------------------------------------------------- integration helpers

Bytes bytes_of_int(int v) {
  Bytes out(sizeof(int));
  std::memcpy(out.data(), &v, sizeof(int));
  return out;
}
int int_of_bytes(core::ByteSpan b) {
  int v = 0;
  std::memcpy(&v, b.data(), sizeof(int));
  return v;
}
void append_int(Bytes& out, int v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(int));
  std::memcpy(out.data() + off, &v, sizeof(int));
}

// Same 3-stage arithmetic pipeline the proc_executor suite uses:
// out(i) = (i + 1) * 3 - 1, so golden parity is checkable in closed form.
std::vector<core::DistStage> arithmetic_stages(double last_stage_work = 0.02) {
  std::vector<core::DistStage> stages;
  stages.push_back({"inc",
                    [](core::ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) + 1);
                    },
                    0.02, 16});
  stages.push_back({"triple",
                    [](core::ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) * 3);
                    },
                    0.02, 16});
  stages.push_back({"dec",
                    [](core::ByteSpan in, Bytes& out) {
                      append_int(out, int_of_bytes(in) - 1);
                    },
                    last_stage_work, 16});
  return stages;
}

proc::ProcExecutorConfig recovering_config() {
  proc::ProcExecutorConfig config;
  config.time_scale = 0.002;
  config.recovery.enabled = true;
  return config;
}

void expect_golden(const core::RunReport& report, int n) {
  ASSERT_EQ(report.outputs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& bytes =
        std::any_cast<const Bytes&>(report.outputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(int_of_bytes(bytes), (i + 1) * 3 - 1) << "item " << i;
  }
}

// ------------------------------------------------ integration: respawn

TEST(RecoverIntegration, RespawnRecoversSigkilledWorker) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  proc::ProcExecutorConfig config = recovering_config();
  config.recovery.faults.kills = {{/*node=*/1, /*item=*/7}};
  proc::ProcessExecutor executor(g, arithmetic_stages(),
                                 sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                                 config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 60; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  expect_golden(report, 60);
  EXPECT_EQ(report.node_losses, 1u);
  EXPECT_EQ(report.respawns, 1u);
  EXPECT_GE(report.items_replayed, 1u);
  ASSERT_EQ(report.recovery_times.size(), 1u);
  EXPECT_GT(report.recovery_times[0], 0.0);
  // The summary narrates the recovery so operators see it in CLI output.
  EXPECT_NE(report.summary().find("recovered from 1 worker loss"),
            std::string::npos);
}

TEST(RecoverIntegration, SigkillMidStreamMatchesGoldenOutput) {
  // The acceptance property: a worker SIGKILLed mid-stream (here by an
  // injected fault at several different points, including the stage-0
  // node holding admission state and the last-stage node holding
  // nearly-done results) completes with output identical to the
  // crash-free run.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  const FaultPlan::KillPoint points[] = {{0, 12}, {1, 7}, {2, 20}};
  for (const auto& point : points) {
    SCOPED_TRACE("kill node " + std::to_string(point.node) + " at item " +
                 std::to_string(point.item));
    proc::ProcExecutorConfig config = recovering_config();
    config.recovery.faults.kills = {point};
    proc::ProcessExecutor executor(g, arithmetic_stages(),
                                   sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                                   config);
    std::vector<Bytes> inputs;
    for (int i = 0; i < 48; ++i) inputs.push_back(bytes_of_int(i));
    const auto report = executor.run(std::move(inputs));
    expect_golden(report, 48);
    EXPECT_EQ(report.node_losses, 1u);
  }
}

TEST(RecoverIntegration, ExternalSigkillIsRecoveredToo) {
  // Not an injected fault: a real SIGKILL from outside, mid-stream, at
  // an arbitrary moment. Exercises the same EOF-driven detection path
  // the crash-forensics tests pin, but with recovery turned on.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  proc::ProcessExecutor executor(g, arithmetic_stages(),
                                 sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                                 recovering_config());
  executor.stream_begin();
  const std::vector<int> pids = executor.worker_pids();
  ASSERT_EQ(pids.size(), 3u);
  for (int i = 0; i < 60; ++i) executor.stream_push(bytes_of_int(i));

  // Let some outputs drain so the kill lands mid-pipeline, then murder
  // the middle-stage worker.
  std::vector<Bytes> outputs;
  while (outputs.size() < 6) {
    if (auto out = executor.stream_try_pop()) {
      outputs.push_back(std::move(*out));
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(::kill(pids[1], SIGKILL), 0);

  executor.stream_close();
  core::RunReport report = executor.stream_finish();
  while (auto out = executor.stream_try_pop()) outputs.push_back(std::move(*out));
  ASSERT_EQ(outputs.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(int_of_bytes(outputs[i]), (i + 1) * 3 - 1) << "item " << i;
  }
  EXPECT_EQ(report.node_losses, 1u);
  EXPECT_EQ(report.respawns, 1u);
}

TEST(RecoverIntegration, RespawnedWorkerReusesFlightLane) {
  // The replacement inherits the dead worker's flight-recorder lane:
  // after the run the lane shows the respawn stamp followed by task
  // events from the new incarnation — one forensic timeline per node,
  // not per pid.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  proc::ProcExecutorConfig config = recovering_config();
  config.recovery.faults.kills = {{/*node=*/1, /*item=*/7}};
  proc::ProcessExecutor executor(g, arithmetic_stages(),
                                 sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                                 config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 60; ++i) inputs.push_back(bytes_of_int(i));
  expect_golden(executor.run(std::move(inputs)), 60);

  // Lane 0 is the controller; worker lanes are 1 + node.
  const std::string tail = executor.flight_tail(/*lane=*/1 + 1, /*max=*/256);
  const std::size_t respawn_at = tail.find("respawn");
  ASSERT_NE(respawn_at, std::string::npos) << tail;
  EXPECT_NE(tail.find("task-done", respawn_at), std::string::npos)
      << "no post-respawn task events in the reused lane:\n"
      << tail;
}

// ------------------------------------- integration: dedup under replay

TEST(RecoverIntegration, DuplicateDeliveriesAreDeduped) {
  // Make the last stage slow so a backlog of mid-pipeline items is
  // guaranteed in flight when the middle node dies: those items finish
  // through the survivors *and* get replayed from stage 0, so the
  // replay's delivery is a forced duplicate the output buffer must drop.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  proc::ProcExecutorConfig config = recovering_config();
  config.time_scale = 0.01;
  config.recovery.faults.kills = {{/*node=*/1, /*item=*/10}};
  proc::ProcessExecutor executor(g, arithmetic_stages(/*last_stage_work=*/0.3),
                                 sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                                 config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 24; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  expect_golden(report, 24);
  EXPECT_GE(report.items_replayed, 1u);
  EXPECT_GE(report.items_deduped, 1u)
      << "no duplicate was dropped; replay raced nothing";
}

// ------------------------------------ integration: degrade and arrival

TEST(RecoverIntegration, DegradeRemapsAroundDeadNode) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  proc::ProcExecutorConfig config = recovering_config();
  config.recovery.respawn.max_respawns = 0;  // degrade on first death
  config.recovery.faults.kills = {{/*node=*/2, /*item=*/5}};
  proc::ProcessExecutor executor(g, arithmetic_stages(),
                                 sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                                 config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 40; ++i) inputs.push_back(bytes_of_int(i));
  const auto report = executor.run(std::move(inputs));

  expect_golden(report, 40);
  EXPECT_EQ(report.node_losses, 1u);
  EXPECT_EQ(report.respawns, 0u);
  // The final mapping routes around the dead node (1-based "3" in the
  // mapping tuple).
  EXPECT_EQ(report.final_mapping.find("3"), std::string::npos)
      << report.final_mapping;
}

TEST(RecoverIntegration, NodeArrivalRejoinsDegradedNode) {
  // Degrade node 1 away, then announce its return mid-stream: the
  // supervisor forks a fresh worker, the controller runs a node-arrival
  // churn epoch, and the stream finishes with golden output.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  proc::ProcExecutorConfig config = recovering_config();
  config.recovery.respawn.max_respawns = 0;
  config.recovery.faults.kills = {{/*node=*/1, /*item=*/5}};
  proc::ProcessExecutor executor(g, arithmetic_stages(),
                                 sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                                 config);
  executor.stream_begin();
  for (int i = 0; i < 30; ++i) executor.stream_push(bytes_of_int(i));

  // Wait for the degrade (the dead worker's pid slot flips to -1).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (executor.worker_pids().at(1) != -1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no degrade seen";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  executor.request_arrival(1);
  while (executor.worker_pids().at(1) <= 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no arrival fork";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (int i = 30; i < 60; ++i) executor.stream_push(bytes_of_int(i));
  executor.stream_close();
  core::RunReport report = executor.stream_finish();

  std::vector<Bytes> outputs;
  while (auto out = executor.stream_try_pop()) outputs.push_back(std::move(*out));
  ASSERT_EQ(outputs.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(int_of_bytes(outputs[i]), (i + 1) * 3 - 1) << "item " << i;
  }
  EXPECT_EQ(report.node_losses, 1u);
  EXPECT_EQ(report.respawns, 1u);  // the arrival fork counts as a respawn
}

TEST(RecoverIntegration, ArrivalRequestsAreValidated) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  proc::ProcessExecutor off(g, arithmetic_stages(),
                            sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                            proc::ProcExecutorConfig{.time_scale = 0.002});
  EXPECT_THROW(off.request_arrival(0), std::logic_error);

  proc::ProcessExecutor on(g, arithmetic_stages(),
                           sched::Mapping(std::vector<NodeId>{0, 1, 0}),
                           recovering_config());
  EXPECT_THROW(on.request_arrival(7), std::invalid_argument);
}

// --------------------------------------------- integration: rt plumbing

TEST(RecoverIntegration, RuntimeOptionsCarryRecoveryThroughSessions) {
  // The same fault-injected recovery, driven through the public
  // rt::make_runtime surface instead of the executor directly.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  core::PipelineSpec spec;
  spec.stage<std::int64_t, std::int64_t>(
          "inc", [](std::int64_t v) { return v + 1; }, 0.02, 16)
      .stage<std::int64_t, std::int64_t>(
          "triple", [](std::int64_t v) { return v * 3; }, 0.02, 16)
      .stage<std::int64_t, std::int64_t>(
          "dec", [](std::int64_t v) { return v - 1; }, 0.02, 16);

  rt::RuntimeOptions options;
  options.time_scale = 0.002;
  options.recovery.enabled = true;
  options.recovery.faults.kills = {{/*node=*/1, /*item=*/6}};
  auto runtime = rt::make_runtime(rt::RuntimeKind::kProcess, g,
                                  std::move(spec), options);
  std::vector<std::any> items;
  for (std::int64_t i = 0; i < 40; ++i) items.emplace_back(i);
  const core::RunReport report = runtime->run(std::move(items));

  ASSERT_EQ(report.outputs.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(std::any_cast<std::int64_t>(report.outputs[i]),
              static_cast<std::int64_t>(i + 1) * 3 - 1);
  }
  EXPECT_EQ(report.node_losses, 1u);
  EXPECT_EQ(report.respawns, 1u);
}

// The historical contract survives: with recovery off (the default), a
// worker death still fails the run with the crash-forensics error.
TEST(RecoverIntegration, RecoveryOffStillFailsOnCrash) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  proc::ProcExecutorConfig config;
  config.time_scale = 0.002;
  config.recovery.enabled = false;
  config.recovery.faults.kills = {{/*node=*/1, /*item=*/7}};
  proc::ProcessExecutor executor(g, arithmetic_stages(),
                                 sched::Mapping(std::vector<NodeId>{0, 1, 2}),
                                 config);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 40; ++i) inputs.push_back(bytes_of_int(i));
  try {
    executor.run(std::move(inputs));
    FAIL() << "crash with recovery off must fail the run";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("exited mid-run"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace gridpipe::recover
