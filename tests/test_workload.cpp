// Tests for the workload substrates: spin-work calibration, stream
// generators, the scenario catalogue, imaging and text pipelines.

#include <gtest/gtest.h>

#include "workload/imaging.hpp"
#include "workload/scenarios.hpp"
#include "workload/spinwork.hpp"
#include "workload/streams.hpp"
#include "workload/textproc.hpp"

namespace gridpipe::workload {
namespace {

// ------------------------------------------------------------ spinwork

TEST(SpinWork, DeterministicInInputs) {
  EXPECT_DOUBLE_EQ(spin_work(1000, 7), spin_work(1000, 7));
  EXPECT_NE(spin_work(1000, 7), spin_work(1000, 8));
}

TEST(SpinWork, CalibrationIsPositive) {
  const double rate = calibrate_spin_units_per_second(2);
  EXPECT_GT(rate, 0.0);
}

// ------------------------------------------------------------- streams

TEST(Streams, CounterItems) {
  const auto items = counter_items(5);
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(std::any_cast<std::uint64_t>(items[3]), 3u);
}

TEST(Streams, VectorItemsDeterministic) {
  const auto a = vector_items(3, 8, 42);
  const auto b = vector_items(3, 8, 42);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::any_cast<const std::vector<double>&>(a[i]),
              std::any_cast<const std::vector<double>&>(b[i]));
  }
  EXPECT_EQ(std::any_cast<const std::vector<double>&>(a[0]).size(), 8u);
}

TEST(Streams, TextItemsLookLikeText) {
  const auto items = text_items(4, 10, 1);
  for (const auto& item : items) {
    const auto& text = std::any_cast<const std::string&>(item);
    EXPECT_FALSE(text.empty());
    EXPECT_EQ(std::count(text.begin(), text.end(), ' '), 9);
  }
}

// ----------------------------------------------------------- scenarios

TEST(Scenarios, CatalogueHasSixNamedEntries) {
  const auto scenarios = scenario_catalog(1);
  ASSERT_EQ(scenarios.size(), 6u);
  for (const auto& s : scenarios) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.grid.num_nodes(), 0u);
    EXPECT_NO_THROW(s.profile.validate());
  }
}

TEST(Scenarios, LoadStepActuallySteps) {
  const Scenario s = find_scenario("load-step", 1);
  EXPECT_DOUBLE_EQ(s.grid.node(0).load_at(100.0), 0.0);
  EXPECT_DOUBLE_EQ(s.grid.node(0).load_at(200.0), 8.0);
}

TEST(Scenarios, LinkDegradedCongestsAtStep) {
  const Scenario s = find_scenario("link-degraded", 1);
  const double before = s.grid.link(0, 1).transfer_time(1e6, 100.0);
  const double after = s.grid.link(0, 1).transfer_time(1e6, 300.0);
  EXPECT_NEAR(after / before, 30.0, 0.01);
}

TEST(Scenarios, UnknownNameThrows) {
  EXPECT_THROW(find_scenario("nope", 1), std::invalid_argument);
}

// ------------------------------------------------------------- imaging

TEST(Imaging, TestImageDeterministicAndInRange) {
  const Image a = make_test_image(16, 12, 5);
  const Image b = make_test_image(16, 12, 5);
  EXPECT_EQ(a.pixels, b.pixels);
  EXPECT_EQ(a.width, 16u);
  EXPECT_EQ(a.height, 12u);
  for (const float p : a.pixels) {
    EXPECT_GE(p, 0.0F);
    EXPECT_LE(p, 1.0F);
  }
}

TEST(Imaging, BoxBlurPreservesConstantImage) {
  Image img;
  img.width = 8;
  img.height = 8;
  img.pixels.assign(64, 0.5F);
  const Image out = box_blur(img);
  for (const float p : out.pixels) EXPECT_NEAR(p, 0.5F, 1e-6F);
}

TEST(Imaging, BlurSmoothsVariance) {
  const Image img = make_test_image(32, 32, 9);
  const Image blurred = box_blur(img);
  auto variance = [](const Image& im) {
    const double mean = mean_pixel(im);
    double acc = 0.0;
    for (const float p : im.pixels) acc += (p - mean) * (p - mean);
    return acc / static_cast<double>(im.pixels.size());
  };
  EXPECT_LT(variance(blurred), variance(img));
}

TEST(Imaging, SobelFlatImageIsZero) {
  Image img;
  img.width = 8;
  img.height = 8;
  img.pixels.assign(64, 0.7F);
  const Image edges = sobel(img);
  for (const float p : edges.pixels) EXPECT_NEAR(p, 0.0F, 1e-6F);
}

TEST(Imaging, SobelDetectsVerticalEdge) {
  Image img;
  img.width = 8;
  img.height = 8;
  img.pixels.assign(64, 0.0F);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 4; x < 8; ++x) img.at(x, y) = 1.0F;
  }
  const Image edges = sobel(img);
  EXPECT_GT(edges.at(4, 4), 1.0F);   // on the edge
  EXPECT_NEAR(edges.at(1, 4), 0.0F, 1e-6F);  // far from it
}

TEST(Imaging, ThresholdBinarizes) {
  Image img = make_test_image(8, 8, 3);
  const Image out = threshold(img, 0.5F);
  for (const float p : out.pixels) {
    EXPECT_TRUE(p == 0.0F || p == 1.0F);
  }
}

TEST(Imaging, PipelineSpecMatchesDirectComposition) {
  const auto spec = image_pipeline(16, 16);
  const Image input = make_test_image(16, 16, 11);
  const auto out = spec.run_inline(std::any(input));
  const Image expected = threshold(sobel(box_blur(input)), 0.5F);
  EXPECT_EQ(std::any_cast<const Image&>(out).pixels, expected.pixels);
}

// ------------------------------------------------------------ textproc

TEST(TextProc, TokenizeNormalizes) {
  const auto tokens = tokenize("Hello, World! grid-pipe 42");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"hello", "world", "grid", "pipe",
                                      "42"}));
  EXPECT_TRUE(tokenize("  ,,, ").empty());
}

TEST(TextProc, CountNgrams) {
  const std::vector<std::string> tokens{"a", "b", "a", "b", "c"};
  const auto unigrams = count_ngrams(tokens, 1);
  EXPECT_EQ(unigrams.at("a"), 2u);
  EXPECT_EQ(unigrams.at("c"), 1u);
  const auto bigrams = count_ngrams(tokens, 2);
  EXPECT_EQ(bigrams.at("a_b"), 2u);
  EXPECT_EQ(bigrams.at("b_a"), 1u);
  EXPECT_TRUE(count_ngrams(tokens, 0).empty());
  EXPECT_TRUE(count_ngrams({"x"}, 2).empty());
}

TEST(TextProc, TopKOrdersByCountThenKey) {
  std::map<std::string, std::uint32_t> counts{
      {"b", 3}, {"a", 3}, {"c", 5}, {"d", 1}};
  const auto top = top_k(counts, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "c");
  EXPECT_EQ(top[1].first, "a");  // ties break alphabetically
  EXPECT_EQ(top[2].first, "b");
}

TEST(TextProc, PipelineSpecEndToEnd) {
  const auto spec = text_pipeline(2, 256.0);
  const auto out =
      spec.run_inline(std::any(std::string("a b a b a c")));
  const auto& top =
      std::any_cast<const std::vector<std::pair<std::string, std::uint32_t>>&>(
          out);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "a_b");
  EXPECT_EQ(top[0].second, 2u);
}

}  // namespace
}  // namespace gridpipe::workload
