// Tests for the MPI-like in-process communicator: matched receives, the
// non-overtaking rule, delay emulation, collectives, and shutdown under
// concurrency. Also the telemetry leg of the shared wire vocabulary:
// kTelemetry frames round-trip through the FrameReader, malformed
// payloads are rejected, and reserved-but-unknown frame kinds are
// skipped so an old reader survives a newer writer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <new>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/wire.hpp"
#include "grid/builders.hpp"
#include "obs/telemetry.hpp"

// ------------------------------------------------- allocation counting
// A counting global allocator lets the pooled-encode test assert "the
// steady-state hot path allocates nothing" instead of trusting a code
// read. The counter only increments; tests compare before/after.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// noinline: if the optimizer inlines these down to malloc/free at a
// call site, GCC's -Wmismatched-new-delete pairs the raw free against
// the (still symbolic) operator new and reports a false mismatch.
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace gridpipe::comm {
namespace {

std::vector<std::byte> bytes_of(int v) {
  std::vector<std::byte> out(sizeof(int));
  std::memcpy(out.data(), &v, sizeof(int));
  return out;
}

int int_of(const Message& m) { return Communicator::decode<int>(m); }

// ------------------------------------------------------------- queue

TEST(MessageQueue, FifoPerSourceAndTag) {
  MessageQueue q;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.source = 0;
    m.tag = 7;
    m.payload = bytes_of(i);
    q.push(std::move(m));
  }
  for (int i = 0; i < 5; ++i) {
    const auto m = q.try_pop(0, 7);
    ASSERT_TRUE(m);
    EXPECT_EQ(int_of(*m), i);
  }
}

TEST(MessageQueue, TagAndSourceFiltering) {
  MessageQueue q;
  Message a;
  a.source = 1;
  a.tag = 10;
  a.payload = bytes_of(100);
  Message b;
  b.source = 2;
  b.tag = 20;
  b.payload = bytes_of(200);
  q.push(std::move(a));
  q.push(std::move(b));

  EXPECT_FALSE(q.try_pop(1, 20));  // wrong combination
  const auto m = q.try_pop(kAnySource, 20);
  ASSERT_TRUE(m);
  EXPECT_EQ(m->source, 2);
  EXPECT_TRUE(q.try_pop(1, kAnyTag));
  EXPECT_EQ(q.size(), 0u);
}

TEST(MessageQueue, DelayedMessageNotVisibleEarly) {
  MessageQueue q;
  Message m;
  m.source = 0;
  m.tag = 0;
  m.payload = bytes_of(1);
  m.deliver_at = Clock::now() + std::chrono::milliseconds(50);
  q.push(std::move(m));
  EXPECT_FALSE(q.try_pop());  // not delivered yet
  const auto got = q.pop();   // blocks until delivery
  ASSERT_TRUE(got);
  EXPECT_GE(Clock::now(), got->deliver_at);
}

TEST(MessageQueue, CloseDrainsThenFails) {
  MessageQueue q;
  Message m;
  m.payload = bytes_of(5);
  q.push(std::move(m));
  q.close();
  EXPECT_TRUE(q.pop());          // drain
  EXPECT_FALSE(q.pop());         // closed and empty
  Message late;
  EXPECT_FALSE(q.push(std::move(late)));
}

TEST(MessageQueue, PushAfterCloseFails) {
  MessageQueue q;
  q.close();
  EXPECT_TRUE(q.closed());
  Message m;
  m.payload = bytes_of(1);
  EXPECT_FALSE(q.push(std::move(m)));
  std::vector<Message> batch(2);
  EXPECT_FALSE(q.push_n(std::move(batch)));
  EXPECT_EQ(q.size(), 0u);
}

TEST(MessageQueue, CloseDrainsAllDeliveredMessagesInOrder) {
  MessageQueue q;
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.source = i;  // three distinct pairs
    m.payload = bytes_of(i);
    q.push(std::move(m));
  }
  q.close();
  for (int i = 0; i < 3; ++i) {
    const auto m = q.pop();
    ASSERT_TRUE(m);
    EXPECT_EQ(int_of(*m), i);  // global arrival order survives close
  }
  EXPECT_FALSE(q.pop());
}

TEST(MessageQueue, PopUntilRespectsLateDelivery) {
  MessageQueue q;
  Message m;
  m.payload = bytes_of(1);
  m.deliver_at = Clock::now() + std::chrono::seconds(2);
  q.push(std::move(m));
  // The only message is delivered well after the deadline: timed pop must
  // give up at the deadline rather than return it early or block until
  // delivery. Margins are wide (30 ms deadline vs 2 s delivery, 1.5 s
  // upper bound) so scheduler jitter on a loaded CI machine cannot flip
  // the give-up path into the block-until-delivery path.
  const auto t0 = Clock::now();
  const auto got = q.pop_until(t0 + std::chrono::milliseconds(30));
  EXPECT_FALSE(got);
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_GE(elapsed, 0.025);
  EXPECT_LT(elapsed, 1.5);
  EXPECT_EQ(q.size(), 1u);  // still queued for a later pop
}

TEST(MessageQueue, UndeliveredHeadBlocksSamePairButNotOthers) {
  MessageQueue q;
  Message first;
  first.source = 0;
  first.tag = 0;
  first.payload = bytes_of(1);
  first.deliver_at = Clock::now() + std::chrono::milliseconds(60);
  q.push(std::move(first));
  Message second;
  second.source = 0;
  second.tag = 0;
  second.payload = bytes_of(2);
  q.push(std::move(second));
  Message other;
  other.source = 1;
  other.tag = 0;
  other.payload = bytes_of(3);
  q.push(std::move(other));

  // Non-overtaking: the delivered second message of pair (0,0) must not
  // overtake its undelivered head; an unrelated pair is unaffected.
  EXPECT_FALSE(q.try_pop(0, 0));
  const auto unrelated = q.try_pop(1, 0);
  ASSERT_TRUE(unrelated);
  EXPECT_EQ(int_of(*unrelated), 3);
  const auto head = q.pop(0, 0);  // waits out the delivery deadline
  ASSERT_TRUE(head);
  EXPECT_EQ(int_of(*head), 1);
  const auto tail = q.try_pop(0, 0);
  ASSERT_TRUE(tail);
  EXPECT_EQ(int_of(*tail), 2);
}

TEST(MessageQueue, PushNPopNRoundTripPreservesArrivalOrder) {
  MessageQueue q;
  std::vector<Message> batch;
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.source = i % 3;  // interleaved pairs
    m.tag = 7;
    m.payload = bytes_of(i);
    batch.push_back(std::move(m));
  }
  EXPECT_TRUE(q.push_n(std::move(batch)));
  EXPECT_EQ(q.size(), 10u);

  const auto first = q.pop_n(4, kAnySource, 7);
  ASSERT_EQ(first.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(int_of(first[i]), i);
  const auto rest = q.try_pop_n(100, kAnySource, 7);
  ASSERT_EQ(rest.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(int_of(rest[i]), i + 4);
  EXPECT_EQ(q.size(), 0u);
}

TEST(MessageQueue, PopNFiltersAndHonorsMax) {
  MessageQueue q;
  for (int i = 0; i < 6; ++i) {
    Message m;
    m.source = i % 2;
    m.tag = i % 2;
    m.payload = bytes_of(i);
    q.push(std::move(m));
  }
  const auto odd = q.try_pop_n(2, 1, 1);  // exact pair, capped at 2
  ASSERT_EQ(odd.size(), 2u);
  EXPECT_EQ(int_of(odd[0]), 1);
  EXPECT_EQ(int_of(odd[1]), 3);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_TRUE(q.try_pop_n(0, kAnySource, kAnyTag).empty());
}

TEST(MessageQueue, PopNReturnsEmptyOnCloseAndDrained) {
  MessageQueue q;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_TRUE(q.pop_n(8).empty());  // blocked, woken by close
  closer.join();
}

TEST(MessageQueue, PushNBlocksForCapacityUntilConsumerDrains) {
  MessageQueue q(4);
  std::vector<Message> batch(8);
  for (int i = 0; i < 8; ++i) batch[static_cast<std::size_t>(i)].payload =
      bytes_of(i);
  std::thread consumer([&] {
    int expected = 0;
    while (expected < 8) {
      const auto m = q.pop();
      ASSERT_TRUE(m);
      EXPECT_EQ(int_of(*m), expected++);
    }
  });
  EXPECT_TRUE(q.push_n(std::move(batch)));  // must not deadlock at 4
  consumer.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(MessageQueue, BlockedReceiverWokenBySend) {
  MessageQueue q;
  std::thread receiver([&] {
    const auto m = q.pop(kAnySource, 3);
    ASSERT_TRUE(m);
    EXPECT_EQ(int_of(*m), 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Message m;
  m.tag = 3;
  m.payload = bytes_of(42);
  q.push(std::move(m));
  receiver.join();
}

// ------------------------------------------------------- communicator

TEST(Communicator, PingPong) {
  Communicator comm(2);
  std::thread peer([&] {
    const auto m = comm.recv(1);
    ASSERT_TRUE(m);
    comm.send_value(1, 0, 1, int_of(*m) + 1);
  });
  comm.send_value(0, 1, 0, 41);
  const auto reply = comm.recv(0, 1, 1);
  peer.join();
  ASSERT_TRUE(reply);
  EXPECT_EQ(int_of(*reply), 42);
}

TEST(Communicator, NonOvertakingPerPair) {
  Communicator comm(2);
  for (int i = 0; i < 100; ++i) comm.send_value(0, 1, 5, i);
  for (int i = 0; i < 100; ++i) {
    const auto m = comm.recv(1, 0, 5);
    ASSERT_TRUE(m);
    EXPECT_EQ(int_of(*m), i);
  }
}

TEST(Communicator, BadRanksThrow) {
  Communicator comm(2);
  EXPECT_THROW(comm.send(0, 5, 0, {}), std::out_of_range);
  EXPECT_THROW(comm.recv(-1), std::out_of_range);
  EXPECT_THROW(Communicator(0), std::invalid_argument);
}

TEST(Communicator, GridDelayModelDelaysDelivery) {
  // 2 nodes with a 100 ms link (at time_scale 1).
  auto g = grid::uniform_cluster(2, 1.0, 0.1, 1e9);
  const GridDelayModel delays(g, {0, 1}, 1.0);
  Communicator comm(2, &delays);
  const auto t0 = Clock::now();
  comm.send_value(0, 1, 0, 1);
  EXPECT_FALSE(comm.try_recv(1));  // still in flight
  const auto m = comm.recv(1);
  ASSERT_TRUE(m);
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_GE(elapsed, 0.095);
  EXPECT_LT(elapsed, 0.5);
}

TEST(Communicator, LoopbackIsImmediate) {
  auto g = grid::uniform_cluster(2, 1.0, 0.2, 1e9);
  const GridDelayModel delays(g, {0, 0}, 1.0);  // both ranks on node 0
  Communicator comm(2, &delays);
  comm.send_value(0, 1, 0, 1);
  // Loopback latency is 0.1 ms — delivered almost at once.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(comm.try_recv(1));
}

TEST(Communicator, BarrierSynchronizesRanks) {
  constexpr int kRanks = 4;
  Communicator comm(kRanks);
  std::atomic<int> arrived{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      (void)r;
      arrived.fetch_add(1);
      comm.barrier();
      // After the barrier, every rank must have arrived.
      EXPECT_EQ(arrived.load(), kRanks);
    });
  }
  for (auto& t : threads) t.join();
}

// Regression: shutdown() used to set the shutdown_ flag and notify the
// barrier condition variable WITHOUT holding barrier_mutex_. A rank
// between its predicate check (generation unchanged, not shut down) and
// its cv re-block then lost the notify forever and barrier() hung on a
// communicator that was already shut down. The fix notifies under
// barrier_mutex_; this test races one blocked barrier waiter against
// shutdown many times, with a watchdog so the old bug reports as a
// failure instead of a ctest timeout. Found by the thread-safety
// annotation sweep; TSan doesn't flag lost wakeups, only the hang does.
TEST(Communicator, ShutdownAlwaysWakesBarrierWaiter) {
  auto run_cycles = std::async(std::launch::async, [] {
    for (int cycle = 0; cycle < 500; ++cycle) {
      Communicator comm(2);  // 2 ranks: one waiter never completes alone
      std::thread waiter([&comm] { comm.barrier(); });
      // No sleep: the point is to land shutdown() inside the waiter's
      // predicate-check-to-block window as often as possible.
      comm.shutdown();
      waiter.join();
    }
    return true;
  });
  ASSERT_EQ(run_cycles.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "barrier() hung: a waiter lost the shutdown wakeup";
  EXPECT_TRUE(run_cycles.get());
}

TEST(Communicator, BroadcastDistributesPayload) {
  constexpr int kRanks = 3;
  Communicator comm(kRanks);
  std::vector<std::thread> threads;
  std::vector<int> received(kRanks, -1);
  for (int r = 1; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      const auto payload = comm.broadcast(r, 0);
      ASSERT_EQ(payload.size(), sizeof(int));
      std::memcpy(&received[static_cast<std::size_t>(r)], payload.data(),
                  sizeof(int));
    });
  }
  comm.broadcast(0, 0, bytes_of(99));
  for (auto& t : threads) t.join();
  EXPECT_EQ(received[1], 99);
  EXPECT_EQ(received[2], 99);
}

TEST(Communicator, GatherCollectsByRank) {
  constexpr int kRanks = 3;
  Communicator comm(kRanks);
  std::vector<std::thread> threads;
  for (int r = 1; r < kRanks; ++r) {
    threads.emplace_back([&, r] { comm.gather(r, 0, bytes_of(r * 10)); });
  }
  const auto all = comm.gather(0, 0, bytes_of(0));
  for (auto& t : threads) t.join();
  ASSERT_EQ(all.size(), 3u);
  for (int r = 0; r < kRanks; ++r) {
    int v = -1;
    std::memcpy(&v, all[static_cast<std::size_t>(r)].data(), sizeof(int));
    EXPECT_EQ(v, r * 10);
  }
}

TEST(Communicator, SendNRecvNBatchRoundTrip) {
  Communicator comm(2);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 32; ++i) payloads.push_back(bytes_of(i));
  ASSERT_TRUE(comm.send_n(0, 1, 9, std::move(payloads)));

  int expected = 0;
  while (expected < 32) {
    const auto batch = comm.recv_n(1, 10, 0, 9);
    ASSERT_FALSE(batch.empty());
    ASSERT_LE(batch.size(), 10u);
    for (const Message& m : batch) {
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 9);
      EXPECT_EQ(int_of(m), expected++);
    }
  }
  EXPECT_TRUE(comm.try_recv_n(1, 10).empty());
}

TEST(Communicator, RecvNReturnsEmptyAfterShutdown) {
  Communicator comm(2);
  comm.shutdown();
  EXPECT_TRUE(comm.recv_n(1, 4).empty());
  EXPECT_FALSE(comm.send_n(0, 1, 0, {bytes_of(1)}));
}

TEST(Communicator, ShutdownWakesBlockedReceivers) {
  Communicator comm(2);
  std::thread receiver([&] {
    const auto m = comm.recv(1);
    EXPECT_FALSE(m);  // woken by shutdown, no message
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  comm.shutdown();
  receiver.join();
  EXPECT_FALSE(comm.send(0, 1, 0, {}));
}

TEST(Communicator, DecodeRejectsSizeMismatch) {
  Message m;
  m.payload = bytes_of(1);
  EXPECT_THROW(Communicator::decode<double>(m), std::invalid_argument);
}

// Stress: many senders, one receiver; every message arrives exactly once.
TEST(Communicator, ManyToOneStress) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 250;
  Communicator comm(kSenders + 1);
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        comm.send_value(s + 1, 0, 0, (s + 1) * 1000 + i);
      }
    });
  }
  std::vector<int> seen;
  for (int i = 0; i < kSenders * kPerSender; ++i) {
    const auto m = comm.recv(0);
    ASSERT_TRUE(m);
    seen.push_back(int_of(*m));
  }
  for (auto& t : senders) t.join();
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kSenders * kPerSender));
}

// ------------------------------------------------- telemetry wire leg

obs::TelemetryBatch sample_telemetry() {
  obs::TelemetryBatch batch;
  obs::TraceEvent e;
  e.name = "filter";
  e.kind = obs::SpanKind::kStage;
  e.start = 2.0;
  e.duration = 0.125;
  e.tid = 3;
  e.item = 11;
  e.stage = 1;
  batch.events.push_back(std::move(e));
  batch.counters.push_back({"stage_executions", 4});
  return batch;
}

TEST(TelemetryWire, FrameRoundTripsThroughReader) {
  const obs::TelemetryBatch batch = sample_telemetry();
  const wire::Frame frame{wire::FrameKind::kTelemetry, 2,
                          obs::encode_telemetry(batch)};
  const auto encoded = wire::encode_frame(frame);

  wire::FrameReader reader;
  reader.feed(encoded.data(), encoded.size());
  const auto decoded = reader.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, wire::FrameKind::kTelemetry);
  EXPECT_EQ(decoded->node, 2u);
  EXPECT_EQ(obs::decode_telemetry(decoded->payload), batch);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(TelemetryWire, MalformedPayloadInsideValidFrameRejected) {
  // The frame envelope can be perfectly well-formed around garbage
  // telemetry bytes — the payload decoder must still throw.
  auto payload = obs::encode_telemetry(sample_telemetry());
  payload.pop_back();  // truncated
  const wire::Frame frame{wire::FrameKind::kTelemetry, 0, payload};
  wire::FrameReader reader;
  const auto encoded = wire::encode_frame(frame);
  reader.feed(encoded.data(), encoded.size());
  const auto decoded = reader.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_THROW(obs::decode_telemetry(decoded->payload), std::invalid_argument);
}

TEST(TelemetryWire, ReservedKindsSkippedForForwardCompat) {
  // A newer writer may emit kinds in the reserved band (kHealth+1 ..
  // kMaxReservedKind); this reader must skip them, count them, and keep
  // decoding what it does understand. Anything past the band is stream
  // corruption and still throws.
  wire::FrameReader reader;
  for (const std::uint32_t kind : {8u, wire::kMaxReservedKind}) {
    std::vector<std::byte> future(12 + 3);
    const std::uint32_t len = 3;
    std::memcpy(future.data(), &len, 4);
    std::memcpy(future.data() + 4, &kind, 4);
    reader.feed(future.data(), future.size());
  }
  const wire::Frame understood{wire::FrameKind::kTelemetry, 1,
                               obs::encode_telemetry(sample_telemetry())};
  const auto encoded = wire::encode_frame(understood);
  reader.feed(encoded.data(), encoded.size());

  const auto decoded = reader.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, understood);
  EXPECT_EQ(reader.skipped_unknown(), 2u);
  EXPECT_EQ(reader.buffered(), 0u);

  std::vector<std::byte> corrupt(12);
  const std::uint32_t bad_kind = wire::kMaxReservedKind + 1;
  std::memcpy(corrupt.data() + 4, &bad_kind, 4);
  reader.feed(corrupt.data(), corrupt.size());
  EXPECT_THROW(reader.next(), std::invalid_argument);
}

TEST(TelemetryWire, BatchRidesTheCommunicatorAsTag6) {
  // In-process ranks don't need framing: the telemetry payload travels
  // as an ordinary tagged message, same as the dist executor ships it.
  const obs::TelemetryBatch batch = sample_telemetry();
  Communicator comm(2);
  ASSERT_TRUE(comm.send(1, 0, 6, obs::encode_telemetry(batch)));
  const auto m = comm.recv(0, 1, 6);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(obs::decode_telemetry(m->payload), batch);
}

// --------------------------------------------------- pooled zero-copy

TEST(BufferPool, RecyclesCapacityAndRespectsCaps) {
  wire::BufferPool pool(/*max_buffers=*/2, /*max_retained_bytes=*/1024);
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_TRUE(pool.acquire().empty());  // empty pool: fresh buffer

  wire::Bytes a(100);
  const std::byte* data = a.data();
  pool.release(std::move(a));
  EXPECT_EQ(pool.pooled(), 1u);
  wire::Bytes back = pool.acquire();
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_TRUE(back.empty()) << "recycled buffers come back cleared";
  EXPECT_GE(back.capacity(), 100u);
  EXPECT_EQ(back.data() == nullptr ? data : back.data(), data)
      << "same storage, no fresh allocation";

  // Oversized buffers are freed, not pooled.
  wire::Bytes big(2048);
  pool.release(std::move(big));
  EXPECT_EQ(pool.pooled(), 0u);
  // Zero-capacity buffers are not worth pooling either.
  pool.release(wire::Bytes{});
  EXPECT_EQ(pool.pooled(), 0u);
  // The pool holds at most max_buffers.
  pool.release(wire::Bytes(10));
  pool.release(wire::Bytes(10));
  pool.release(wire::Bytes(10));
  EXPECT_EQ(pool.pooled(), 2u);
}

TEST(BufferPool, SteadyStateTaskHopDoesNotAllocate) {
  // The tentpole contract: composing [frame header][task header][payload]
  // into a pooled buffer allocates nothing once the buffer grew to size.
  wire::BufferPool pool;
  const wire::Bytes payload(256, std::byte{7});
  const auto hop = [&] {
    wire::Bytes buf = pool.acquire();
    const std::size_t off =
        wire::begin_frame(buf, wire::FrameKind::kTask, 1);
    wire::encode_task_header_into(buf, 42, 3);
    const std::size_t at = buf.size();
    buf.resize(at + payload.size());
    std::memcpy(buf.data() + at, payload.data(), payload.size());
    wire::end_frame(buf, off);
    pool.release(std::move(buf));
  };
  for (int i = 0; i < 4; ++i) hop();  // warm the pooled buffer

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) hop();
  EXPECT_EQ(g_allocations.load(), before)
      << "steady-state pooled encode must be allocation-free";
}

TEST(WireSpan, TaskViewRoundTripsInPlace) {
  wire::Bytes buf;
  const wire::Bytes payload{std::byte{1}, std::byte{2}, std::byte{3}};
  wire::encode_task_into(buf, 77, 2, payload);
  EXPECT_EQ(buf, wire::encode_task(77, 2, payload));
  const wire::TaskView view = wire::decode_task(wire::ByteSpan(buf));
  EXPECT_EQ(view.item, 77u);
  EXPECT_EQ(view.stage, 2u);
  ASSERT_EQ(view.payload.size(), payload.size());
  // Zero copy: the view aliases the wire buffer itself.
  EXPECT_EQ(view.payload.data(), buf.data() + wire::kTaskHeaderBytes);
}

TEST(WireSpan, EveryTruncationOfEveryCodecThrows) {
  // Task: any prefix shorter than the fixed header must throw (beyond
  // the header every length is a valid payload).
  const wire::Bytes task = wire::encode_task(9, 1, wire::Bytes(5));
  for (std::size_t cut = 0; cut < wire::kTaskHeaderBytes; ++cut) {
    EXPECT_THROW(wire::decode_task(wire::ByteSpan(task.data(), cut)),
                 std::invalid_argument)
        << "cut at " << cut;
  }

  // f64: exactly 8 bytes, nothing else.
  const wire::Bytes f64 = wire::encode_f64(1.5);
  EXPECT_DOUBLE_EQ(wire::decode_f64(wire::ByteSpan(f64)), 1.5);
  for (std::size_t cut = 0; cut < f64.size(); ++cut) {
    EXPECT_THROW(wire::decode_f64(wire::ByteSpan(f64.data(), cut)),
                 std::invalid_argument)
        << "cut at " << cut;
  }

  // Mapping: every strict prefix of a replicated mapping must throw.
  sched::Mapping mapping(std::vector<grid::NodeId>{2, 0, 1});
  mapping.add_replica(1, 2);
  const wire::Bytes good = wire::encode_mapping(mapping);
  EXPECT_EQ(wire::decode_mapping(wire::ByteSpan(good)), mapping);
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_THROW(wire::decode_mapping(wire::ByteSpan(good.data(), cut)),
                 std::invalid_argument)
        << "cut at " << cut;
  }
}

TEST(WireSpan, FrameViewAliasesReaderBufferUntilNextFeed) {
  const wire::Frame frame{wire::FrameKind::kTask, 4,
                          wire::encode_task(1, 0, wire::Bytes(16))};
  const wire::Bytes encoded = wire::encode_frame(frame);
  wire::FrameReader reader;
  reader.feed(encoded.data(), encoded.size());
  const auto view = reader.next_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->kind, frame.kind);
  EXPECT_EQ(view->node, frame.node);
  EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                         frame.payload.begin(), frame.payload.end()));
  EXPECT_FALSE(reader.next_view().has_value());
}

TEST(WireSpan, BeginEndFrameMatchesEncodeFrame) {
  const wire::Frame frame{wire::FrameKind::kSpeedObs, 3,
                          wire::encode_f64(0.25)};
  wire::Bytes composed;
  const std::size_t off =
      wire::begin_frame(composed, frame.kind, frame.node);
  wire::encode_f64_into(composed, 0.25);
  wire::end_frame(composed, off);
  EXPECT_EQ(composed, wire::encode_frame(frame));

  // Two frames back to back in one buffer parse as two frames.
  const std::size_t off2 =
      wire::begin_frame(composed, wire::FrameKind::kShutdown, 1);
  wire::end_frame(composed, off2);
  wire::FrameReader reader;
  reader.feed(composed.data(), composed.size());
  EXPECT_EQ(reader.next(), frame);
  const auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->kind, wire::FrameKind::kShutdown);
  EXPECT_FALSE(reader.next().has_value());
}

}  // namespace
}  // namespace gridpipe::comm
