// Unit tests for gridpipe::grid (load models, nodes, links, topologies).

#include <gtest/gtest.h>

#include "grid/builders.hpp"
#include "grid/grid.hpp"

namespace gridpipe::grid {
namespace {

// ------------------------------------------------------------- loads

TEST(ConstantLoad, HoldsValue) {
  const ConstantLoad load(1.5);
  EXPECT_DOUBLE_EQ(load.load_at(0.0), 1.5);
  EXPECT_DOUBLE_EQ(load.load_at(1e6), 1.5);
  EXPECT_THROW(ConstantLoad(-1.0), std::invalid_argument);
}

TEST(StepLoad, StepsAtScheduledTimes) {
  const StepLoad load({{10.0, 2.0}, {20.0, 0.5}}, 0.0);
  EXPECT_DOUBLE_EQ(load.load_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(load.load_at(9.99), 0.0);
  EXPECT_DOUBLE_EQ(load.load_at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(load.load_at(19.0), 2.0);
  EXPECT_DOUBLE_EQ(load.load_at(25.0), 0.5);
  EXPECT_DOUBLE_EQ(load.load_at(1e9), 0.5);
}

TEST(StepLoad, SortsUnorderedSteps) {
  const StepLoad load({{20.0, 3.0}, {10.0, 1.0}}, 0.0);
  EXPECT_DOUBLE_EQ(load.load_at(15.0), 1.0);
  EXPECT_DOUBLE_EQ(load.load_at(21.0), 3.0);
}

TEST(SineLoad, NonNegativeAndPeriodic) {
  const SineLoad load(1.0, 2.0, 100.0);  // dips below zero → clamped
  for (double t = 0.0; t < 300.0; t += 1.0) {
    EXPECT_GE(load.load_at(t), 0.0);
  }
  EXPECT_NEAR(load.load_at(25.0), 3.0, 1e-9);  // peak at quarter period
}

TEST(RandomWalkLoad, DeterministicAndBounded) {
  const RandomWalkLoad a(5, 1.0, 0.3, 1.0, 100.0, 0.0, 2.0);
  const RandomWalkLoad b(5, 1.0, 0.3, 1.0, 100.0, 0.0, 2.0);
  for (double t = 0.0; t <= 120.0; t += 0.5) {
    EXPECT_DOUBLE_EQ(a.load_at(t), b.load_at(t));
    EXPECT_GE(a.load_at(t), 0.0);
    EXPECT_LE(a.load_at(t), 2.0);
  }
}

TEST(RandomWalkLoad, HoldsBeyondHorizon) {
  const RandomWalkLoad load(5, 1.0, 0.3, 1.0, 10.0);
  EXPECT_DOUBLE_EQ(load.load_at(1e6), load.load_at(11.0));
}

TEST(MarkovOnOffLoad, TogglesBetweenZeroAndOnLoad) {
  const MarkovOnOffLoad load(7, 3.0, 10.0, 10.0, 500.0);
  bool saw_on = false, saw_off = false;
  for (double t = 0.0; t < 500.0; t += 1.0) {
    const double v = load.load_at(t);
    EXPECT_TRUE(v == 0.0 || v == 3.0);
    saw_on |= v == 3.0;
    saw_off |= v == 0.0;
  }
  EXPECT_TRUE(saw_on);
  EXPECT_TRUE(saw_off);
}

TEST(TraceLoad, PlaysBackSamples) {
  const TraceLoad load({0.0, 1.0, 2.0}, 10.0);
  EXPECT_DOUBLE_EQ(load.load_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(load.load_at(15.0), 1.0);
  EXPECT_DOUBLE_EQ(load.load_at(29.0), 2.0);
  EXPECT_DOUBLE_EQ(load.load_at(1000.0), 2.0);
  EXPECT_THROW(TraceLoad({}, 1.0), std::invalid_argument);
}

TEST(SumLoad, AddsComponents) {
  const SumLoad load(std::make_shared<ConstantLoad>(1.0),
                     std::make_shared<ConstantLoad>(0.5));
  EXPECT_DOUBLE_EQ(load.load_at(0.0), 1.5);
}

// ------------------------------------------------------------- nodes

TEST(Node, EffectiveSpeedDividesByLoad) {
  Node node(0, "n0", 2.0, std::make_shared<ConstantLoad>(1.0));
  EXPECT_DOUBLE_EQ(node.effective_speed(0.0), 1.0);
  node.set_load_model(std::make_shared<ConstantLoad>(3.0));
  EXPECT_DOUBLE_EQ(node.effective_speed(0.0), 0.5);
  EXPECT_THROW(Node(0, "bad", 0.0), std::invalid_argument);
}

TEST(Node, DedicatedByDefault) {
  const Node node(0, "n0", 4.0);
  EXPECT_DOUBLE_EQ(node.effective_speed(123.0), 4.0);
}

// ------------------------------------------------------------- links

TEST(Link, TransferTimeLatencyPlusBandwidth) {
  const Link link(0.01, 1e6);
  EXPECT_NEAR(link.transfer_time(1e6, 0.0), 0.01 + 1.0, 1e-12);
  EXPECT_THROW(Link(-0.1, 1e6), std::invalid_argument);
  EXPECT_THROW(Link(0.1, 0.0), std::invalid_argument);
}

TEST(Link, CongestionScalesBothTerms) {
  Link link(0.01, 1e6);
  link.set_congestion(std::make_shared<ConstantLoad>(1.0));  // 2x
  EXPECT_NEAR(link.transfer_time(1e6, 0.0), 2.0 * (0.01 + 1.0), 1e-12);
}

TEST(Link, LoopbackIsFast) {
  const Link lo = Link::loopback();
  EXPECT_LT(lo.transfer_time(1e3, 0.0), 1e-3);
}

// ------------------------------------------------------------- grid

TEST(Grid, AddNodePreservesExistingLinks) {
  Grid grid;
  const NodeId a = grid.add_node("a", 1.0);
  const NodeId b = grid.add_node("b", 2.0);
  grid.set_link(a, b, Link(0.5, 1e6));
  const NodeId c = grid.add_node("c", 3.0);
  EXPECT_DOUBLE_EQ(grid.link(a, b).latency(), 0.5);   // preserved
  EXPECT_DOUBLE_EQ(grid.link(a, a).latency(), 1e-4);  // loopback
  EXPECT_GT(grid.link(a, c).latency(), 0.0);          // default remote
  EXPECT_EQ(grid.num_nodes(), 3u);
}

TEST(Grid, BadIdsThrow) {
  Grid grid;
  grid.add_node("a", 1.0);
  EXPECT_THROW(grid.node(5), std::out_of_range);
  EXPECT_THROW(grid.link(0, 5), std::out_of_range);
  EXPECT_THROW(grid.set_link(5, 0, Link(0.1, 1e6)), std::out_of_range);
}

TEST(Builders, UniformCluster) {
  const Grid grid = uniform_cluster(4, 2.0, 1e-3, 1e8);
  EXPECT_EQ(grid.num_nodes(), 4u);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(grid.node(n).base_speed(), 2.0);
  }
  EXPECT_DOUBLE_EQ(grid.link(0, 3).latency(), 1e-3);
  EXPECT_DOUBLE_EQ(grid.link(2, 2).latency(), 1e-4);  // loopback untouched
}

TEST(Builders, HeterogeneousCluster) {
  const Grid grid = heterogeneous_cluster({1.0, 2.0, 4.0}, 1e-3, 1e8);
  EXPECT_DOUBLE_EQ(grid.node(2).base_speed(), 4.0);
  EXPECT_THROW(heterogeneous_cluster({}, 1e-3, 1e8), std::invalid_argument);
}

TEST(Builders, MultiSiteGridWanVsLan) {
  const Grid grid = multi_site_grid(
      {{2, 1.0, 1e-4, 1e9}, {2, 2.0, 1e-4, 1e9}}, 0.05, 1e7);
  EXPECT_EQ(grid.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(grid.link(0, 1).latency(), 1e-4);  // intra-site
  EXPECT_DOUBLE_EQ(grid.link(0, 2).latency(), 0.05);  // cross-site
  EXPECT_DOUBLE_EQ(grid.node(2).base_speed(), 2.0);
}

TEST(Builders, RandomGridDeterministicInSeed) {
  RandomGridParams params;
  params.nodes = 5;
  const Grid a = random_grid(99, params);
  const Grid b = random_grid(99, params);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_DOUBLE_EQ(a.node(n).base_speed(), b.node(n).base_speed());
  }
  for (NodeId x = 0; x < 5; ++x) {
    for (NodeId y = 0; y < 5; ++y) {
      EXPECT_DOUBLE_EQ(a.link(x, y).latency(), b.link(x, y).latency());
    }
  }
}

TEST(Builders, RandomGridRespectsRanges) {
  RandomGridParams params;
  params.nodes = 8;
  const Grid grid = random_grid(1234, params);
  for (NodeId n = 0; n < params.nodes; ++n) {
    EXPECT_GE(grid.node(n).base_speed(), params.speed_lo);
    EXPECT_LE(grid.node(n).base_speed(), params.speed_hi);
  }
  for (NodeId a = 0; a < params.nodes; ++a) {
    for (NodeId b = 0; b < params.nodes; ++b) {
      if (a == b) continue;
      EXPECT_GE(grid.link(a, b).latency(), params.lat_lo * 0.999);
      EXPECT_LE(grid.link(a, b).latency(), params.lat_hi * 1.001);
    }
  }
}

TEST(Builders, SetNodeLoadInjectsDynamics) {
  Grid grid = uniform_cluster(2, 1.0, 1e-3, 1e8);
  set_node_load(grid, 1, std::make_shared<StepLoad>(
                             std::vector<StepLoad::Step>{{5.0, 4.0}}));
  EXPECT_DOUBLE_EQ(grid.effective_speed(1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(grid.effective_speed(1, 6.0), 0.2);
  EXPECT_DOUBLE_EQ(grid.effective_speed(0, 6.0), 1.0);  // untouched
}

}  // namespace
}  // namespace gridpipe::grid
