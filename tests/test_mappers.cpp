// Tests for the mapping search algorithms: exhaustive, DP-contiguous,
// greedy, local search, replication improvement — including the
// calibration-table regimes (DESIGN.md EXP-T1) and cross-mapper
// optimality properties on random instances.

#include <gtest/gtest.h>

#include "grid/builders.hpp"
#include "sched/adaptation_policy.hpp"
#include "sched/dp_contiguous.hpp"
#include "sched/exhaustive.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "sched/replica_router.hpp"

namespace gridpipe::sched {
namespace {

using grid::Grid;
using grid::NodeId;

// Builds the calibration setup: 3 stages of unit work, processor i
// completes a stage in t[i] seconds (speed = 1/t[i]), link latencies
// l12/l23/l13, negligible message sizes.
struct Calibration {
  Grid g;
  PipelineProfile p;
  ResourceEstimate est;

  Calibration(double l12, double l23, double l13, double t1, double t2,
              double t3) {
    g = grid::heterogeneous_cluster({1.0 / t1, 1.0 / t2, 1.0 / t3}, 1e-4,
                                    1e12);
    g.set_symmetric_link(0, 1, grid::Link(l12, 1e12));
    g.set_symmetric_link(1, 2, grid::Link(l23, 1e12));
    g.set_symmetric_link(0, 2, grid::Link(l13, 1e12));
    p = PipelineProfile::uniform(3, 1.0, 1.0);
    p.source_node = 0;
    est = ResourceEstimate::from_grid(g, 0.0);
  }
};

MapperResult exhaustive_best(const Calibration& c, const PerfModel& model) {
  ExhaustiveOptions opts;
  opts.pin_first_stage = true;  // the paper pins stage 1 on processor 1
  const ExhaustiveMapper mapper(model, opts);
  auto result = mapper.best(c.p, c.est);
  EXPECT_TRUE(result.has_value());
  return std::move(*result);
}

// Row 1-2 of the calibration table: identical processors, fast links →
// one stage per processor; doubling stage time halves throughput.
TEST(CalibrationTable, FastLinksSpreadStages) {
  const PerfModel model;
  Calibration fast(1e-4, 1e-4, 1e-4, 0.1, 0.1, 0.1);
  const auto best = exhaustive_best(fast, model);
  EXPECT_EQ(best.mapping.to_string(), "(1,2,3)");
  EXPECT_NEAR(best.breakdown.throughput, 10.0, 1e-6);

  Calibration slower(1e-4, 1e-4, 1e-4, 0.2, 0.2, 0.2);
  const auto best2 = exhaustive_best(slower, model);
  EXPECT_EQ(best2.mapping.to_string(), "(1,2,3)");
  EXPECT_NEAR(best2.breakdown.throughput, 5.0, 1e-6);
}

// Row 3: processor 3 became busy (t3 = 1): avoid it. The paper reports
// (1,2,1); our model scores (1,2,1) and (1,2,2) identically on
// throughput, so accept the equivalence class.
TEST(CalibrationTable, BusyProcessorAvoided) {
  const PerfModel model;
  Calibration c(1e-4, 1e-4, 1e-4, 0.1, 0.1, 1.0);
  const auto best = exhaustive_best(c, model);
  EXPECT_NEAR(best.breakdown.throughput, 5.0, 1e-6);
  const double paper_winner =
      model.throughput(c.p, c.est, Mapping(std::vector<NodeId>{0, 1, 0}));
  EXPECT_NEAR(best.breakdown.throughput, paper_winner, 1e-9);
  // Processor 3 must not be used.
  for (const NodeId n : best.mapping.nodes_used()) EXPECT_NE(n, 2u);
}

// Row 4: slow links (0.1 s) and busy processor 3 → fold consecutive
// stages, (1,2,2)-class.
TEST(CalibrationTable, SlowLinksFoldConsecutiveStages) {
  const PerfModel model;
  Calibration c(0.1, 0.1, 0.1, 0.1, 0.1, 1.0);
  const auto best = exhaustive_best(c, model);
  EXPECT_NEAR(best.breakdown.throughput, 5.0, 1e-6);
  const double paper_winner =
      model.throughput(c.p, c.est, Mapping(std::vector<NodeId>{0, 1, 1}));
  EXPECT_NEAR(best.breakdown.throughput, paper_winner, 1e-9);
}

// Row 5: very slow links (1 s) → everything on processor 1.
TEST(CalibrationTable, VerySlowLinksCollapseToOneNode) {
  const PerfModel model;
  Calibration c(1.0, 1.0, 1.0, 0.1, 0.1, 1.0);
  const auto best = exhaustive_best(c, model);
  EXPECT_EQ(best.mapping.to_string(), "(1,1,1)");
  EXPECT_NEAR(best.breakdown.throughput, 10.0 / 3.0, 1e-6);
}

// Row 6: only the 1-2 link is healthy → use processors 1 and 2.
TEST(CalibrationTable, OnlyHealthyLinkUsed) {
  const PerfModel model;
  Calibration c(0.1, 1.0, 1.0, 0.1, 0.1, 0.1);
  const auto best = exhaustive_best(c, model);
  EXPECT_NEAR(best.breakdown.throughput, 5.0, 1e-6);
  const double paper_winner =
      model.throughput(c.p, c.est, Mapping(std::vector<NodeId>{0, 1, 1}));
  EXPECT_NEAR(best.breakdown.throughput, paper_winner, 1e-9);
  for (const NodeId n : best.mapping.nodes_used()) EXPECT_NE(n, 2u);
}

// Row 7: processor 3 is 100x faster — worth the slow link: (1,3,3).
TEST(CalibrationTable, MuchFasterProcessorWorthSlowLink) {
  const PerfModel model;
  Calibration c(0.1, 1.0, 1.0, 1.0, 1.0, 0.01);
  const auto best = exhaustive_best(c, model);
  EXPECT_EQ(best.mapping.to_string(), "(1,3,3)");
  EXPECT_NEAR(best.breakdown.throughput, 1.0, 1e-6);
}

// ------------------------------------------------------------ mappers

TEST(ExhaustiveMapper, RefusesHugeSpaces) {
  const PerfModel model;
  const Grid g = grid::uniform_cluster(10, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(12, 1.0, 1.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  ExhaustiveOptions opts;
  opts.max_candidates = 1000;
  const ExhaustiveMapper mapper(model, opts);
  EXPECT_FALSE(mapper.best(p, est).has_value());
}

TEST(ExhaustiveMapper, CountsCandidates) {
  const PerfModel model;
  Calibration c(1e-4, 1e-4, 1e-4, 0.1, 0.1, 0.1);
  const ExhaustiveMapper mapper(model);
  const auto result = mapper.best(c.p, c.est);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->candidates_evaluated, 27u);  // 3^3
}

TEST(DpContiguousMapper, MatchesExhaustiveOnContiguousOptimum) {
  const PerfModel model;
  // Balanced work, fast links: the optimum (one stage per node) is
  // contiguous, so DP must find the same throughput as exhaustive.
  const Grid g = grid::heterogeneous_cluster({1.0, 2.0, 1.0}, 1e-3, 1e9);
  auto p = PipelineProfile::uniform(4, 1.0, 100.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const auto dp = DpContiguousMapper(model).best(p, est);
  const auto ex = ExhaustiveMapper(model).best(p, est);
  ASSERT_TRUE(dp && ex);
  EXPECT_NEAR(dp->breakdown.throughput, ex->breakdown.throughput, 1e-9);
}

TEST(DpContiguousMapper, RefusesTooManyNodes) {
  const PerfModel model;
  const Grid g = grid::uniform_cluster(14, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(3, 1.0, 1.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  EXPECT_FALSE(DpContiguousMapper(model).best(p, est).has_value());
}

TEST(DpContiguousMapper, ProducesContiguousIntervals) {
  const PerfModel model;
  const Grid g = grid::heterogeneous_cluster({2.0, 1.0, 3.0, 1.0}, 1e-3, 1e8);
  const auto p = PipelineProfile::uniform(8, 1.0, 1e4);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const auto dp = DpContiguousMapper(model).best(p, est);
  ASSERT_TRUE(dp);
  // Contiguity: once a node is left it never reappears.
  std::vector<NodeId> order;
  for (std::size_t i = 0; i < dp->mapping.num_stages(); ++i) {
    const NodeId n = dp->mapping.node_of(i);
    if (order.empty() || order.back() != n) order.push_back(n);
  }
  std::sort(order.begin(), order.end());
  EXPECT_TRUE(std::adjacent_find(order.begin(), order.end()) == order.end());
}

// The documented case where contiguity is suboptimal: fast links, slow
// third processor — exhaustive finds the non-contiguous (1,2,1).
TEST(DpContiguousMapper, NonContiguousOptimumCanBeatDp) {
  const PerfModel model;
  Calibration c(1e-4, 1e-4, 1e-4, 0.1, 0.1, 1.0);
  const auto dp = DpContiguousMapper(model).best(c.p, c.est);
  const auto ex = ExhaustiveMapper(model).best(c.p, c.est);
  ASSERT_TRUE(dp && ex);
  // (1,2,2) is contiguous and also achieves 5.0 here, so DP ties; the
  // invariant under test is DP <= exhaustive.
  EXPECT_LE(dp->breakdown.throughput, ex->breakdown.throughput + 1e-9);
}

TEST(GreedyMapper, ReasonableOnHeterogeneousCluster) {
  const PerfModel model;
  const Grid g = grid::heterogeneous_cluster({4.0, 1.0, 1.0}, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(3, 1.0, 1.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const auto result = GreedyMapper(model).best(p, est);
  EXPECT_GT(result.breakdown.throughput, 0.0);
  // Greedy must put at least one stage on the 4x node.
  EXPECT_GE(result.mapping.stages_on(0), 1u);
}

TEST(LocalSearchMapper, NeverWorseThanGreedy) {
  const PerfModel model;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    grid::RandomGridParams params;
    params.nodes = 4;
    const Grid g = grid::random_grid(seed, params);
    const auto p = PipelineProfile::uniform(6, 1.0, 1e4);
    const auto est = ResourceEstimate::from_grid(g, 0.0);
    const auto greedy = GreedyMapper(model).best(p, est);
    const auto local = LocalSearchMapper(model).best(p, est);
    EXPECT_GE(local.breakdown.throughput,
              greedy.breakdown.throughput - 1e-9)
        << "seed " << seed;
  }
}

// Property sweep: on random instances every heuristic is bounded by the
// exhaustive optimum, and local search gets within 25% of it.
class MapperOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperOptimality, HeuristicsBoundedByExhaustive) {
  const PerfModel model;
  grid::RandomGridParams params;
  params.nodes = 3;
  const Grid g = grid::random_grid(GetParam(), params);
  util::Xoshiro256 rng(GetParam() ^ 0xABCD);
  PipelineProfile p;
  for (int i = 0; i < 5; ++i) {
    p.stage_work.push_back(util::uniform(rng, 0.5, 4.0));
  }
  p.msg_bytes.assign(6, util::uniform(rng, 1e3, 1e6));
  p.state_bytes.assign(5, 0.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);

  const auto ex = ExhaustiveMapper(model).best(p, est);
  ASSERT_TRUE(ex);
  const double optimum = ex->breakdown.throughput;

  const auto dp = DpContiguousMapper(model).best(p, est);
  ASSERT_TRUE(dp);
  EXPECT_LE(dp->breakdown.throughput, optimum + 1e-9);

  const auto greedy = GreedyMapper(model).best(p, est);
  EXPECT_LE(greedy.breakdown.throughput, optimum + 1e-9);

  const auto local = LocalSearchMapper(model).best(p, est);
  EXPECT_LE(local.breakdown.throughput, optimum + 1e-9);
  EXPECT_GE(local.breakdown.throughput, 0.75 * optimum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperOptimality,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------- replication

TEST(ImproveWithReplication, LiftsHotStage) {
  const PerfModel model;
  const Grid g = grid::uniform_cluster(4, 1.0, 1e-4, 1e10);
  PipelineProfile p;
  p.stage_work = {0.1, 0.8, 0.1};
  p.msg_bytes.assign(4, 1.0);
  p.state_bytes.assign(3, 0.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const Mapping base(std::vector<NodeId>{0, 1, 2});

  const auto improved =
      improve_with_replication(model, p, est, base, /*max_total=*/5);
  EXPECT_GT(improved.breakdown.throughput,
            model.throughput(p, est, base) * 1.5);
  EXPECT_GE(improved.mapping.replica_count(1), 2u);
}

TEST(ImproveWithReplication, NoGainNoChange) {
  const PerfModel model;
  const Grid g = grid::uniform_cluster(3, 1.0, 1e-4, 1e10);
  const auto p = PipelineProfile::uniform(3, 1.0, 1.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const Mapping base(std::vector<NodeId>{0, 1, 2});
  // Equal stages on equal nodes: no replica can help (no idle node).
  const auto improved =
      improve_with_replication(model, p, est, base, /*max_total=*/3);
  EXPECT_EQ(improved.mapping, base);
}

// ---------------------------------------------------- adaptation policy

struct PolicyFixture {
  Grid g = grid::heterogeneous_cluster({1.0, 1.0, 4.0}, 1e-4, 1e9);
  PipelineProfile p = PipelineProfile::uniform(3, 1.0, 1.0, /*state=*/0.0);
  ResourceEstimate est = ResourceEstimate::from_grid(g, 0.0);
  PerfModel model;
  Mapping slow{std::vector<NodeId>{0, 0, 1}};
  Mapping fast{std::vector<NodeId>{0, 1, 2}};
};

TEST(AdaptationPolicy, ApprovesClearWinAfterHysteresis) {
  PolicyFixture f;
  AdaptationOptions opts;
  opts.hysteresis_epochs = 2;
  AdaptationPolicy policy(f.model, opts);
  const auto first = policy.decide(f.p, f.est, f.slow, f.fast);
  EXPECT_FALSE(first.remap);  // streak 1/2
  const auto second = policy.decide(f.p, f.est, f.slow, f.fast);
  EXPECT_TRUE(second.remap);
  EXPECT_GT(second.candidate_throughput, second.current_throughput);
}

TEST(AdaptationPolicy, HysteresisDisabledActsImmediately) {
  PolicyFixture f;
  AdaptationOptions opts;
  opts.enable_hysteresis = false;
  AdaptationPolicy policy(f.model, opts);
  EXPECT_TRUE(policy.decide(f.p, f.est, f.slow, f.fast).remap);
}

TEST(AdaptationPolicy, RejectsSmallGain) {
  PolicyFixture f;
  AdaptationOptions opts;
  opts.min_gain_ratio = 0.5;  // demand 50%
  opts.enable_hysteresis = false;
  AdaptationPolicy policy(f.model, opts);
  // slow: node0 busy 2s -> 0.5/s; fast: 1.0/s → gain 100% > 50%: remap.
  EXPECT_TRUE(policy.decide(f.p, f.est, f.slow, f.fast).remap);
  opts.min_gain_ratio = 1.5;  // demand 150%: 100% gain refused
  AdaptationPolicy strict(f.model, opts);
  const auto d = strict.decide(f.p, f.est, f.slow, f.fast);
  EXPECT_FALSE(d.remap);
  EXPECT_EQ(d.reason, "gain below min_gain_ratio");
}

TEST(AdaptationPolicy, CostGateBlocksExpensiveMigration) {
  PolicyFixture f;
  f.p.state_bytes.assign(3, 1e12);  // enormous state
  f.est = ResourceEstimate::from_grid(f.g, 0.0);
  AdaptationOptions opts;
  opts.enable_hysteresis = false;
  opts.amortization_horizon = 10.0;
  AdaptationPolicy policy(f.model, opts);
  const auto d = policy.decide(f.p, f.est, f.slow, f.fast);
  EXPECT_FALSE(d.remap);
  EXPECT_EQ(d.reason, "migration cost exceeds horizon gain");

  opts.enable_cost_gate = false;
  AdaptationPolicy reckless(f.model, opts);
  EXPECT_TRUE(reckless.decide(f.p, f.est, f.slow, f.fast).remap);
}

TEST(AdaptationPolicy, IdenticalMappingNeverRemaps) {
  PolicyFixture f;
  AdaptationOptions opts;
  opts.enable_hysteresis = false;
  AdaptationPolicy policy(f.model, opts);
  EXPECT_FALSE(policy.decide(f.p, f.est, f.fast, f.fast).remap);
}

TEST(AdaptationPolicy, StreakResetsOnFailedGate) {
  PolicyFixture f;
  AdaptationOptions opts;
  opts.hysteresis_epochs = 2;
  AdaptationPolicy policy(f.model, opts);
  EXPECT_FALSE(policy.decide(f.p, f.est, f.slow, f.fast).remap);  // streak 1
  EXPECT_FALSE(policy.decide(f.p, f.est, f.slow, f.slow).remap);  // reset
  EXPECT_FALSE(policy.decide(f.p, f.est, f.slow, f.fast).remap);  // streak 1
  EXPECT_TRUE(policy.decide(f.p, f.est, f.slow, f.fast).remap);   // streak 2
}

// ------------------------------------------------------- replica router

TEST(ReplicaRouter, RoundRobinsAcrossReplicas) {
  Mapping m(std::vector<NodeId>{0, 1});
  m.add_replica(1, 2);
  ReplicaRouter router(2);
  EXPECT_EQ(router.pick(m, 0), 0u);
  EXPECT_EQ(router.pick(m, 1), 1u);
  EXPECT_EQ(router.pick(m, 1), 2u);
  EXPECT_EQ(router.pick(m, 1), 1u);  // wraps
  router.reset(2);
  EXPECT_EQ(router.pick(m, 1), 1u);  // rotation restarts after a remap
}

}  // namespace
}  // namespace gridpipe::sched
