// Tests for the AMoGeT-style description-file parser.

#include <gtest/gtest.h>

#include "sched/description.hpp"
#include "sched/exhaustive.hpp"

namespace gridpipe::sched {
namespace {

constexpr const char* kValid = R"(
# demo
[nodes]
fast    2.0
worker1 1.0
worker2 1.0 load=step,150,8.0

[links]
default 1e-3 1e8
fast worker1 1e-4 1e9

[pipeline]
parse   1.0 1e4
compute 4.0 2e4 4e6
render  1.0 1e4
)";

TEST(Description, ParsesNodes) {
  const auto d = parse_description(kValid);
  ASSERT_EQ(d.grid.num_nodes(), 3u);
  EXPECT_EQ(d.node_names,
            (std::vector<std::string>{"fast", "worker1", "worker2"}));
  EXPECT_DOUBLE_EQ(d.grid.node(0).base_speed(), 2.0);
  EXPECT_DOUBLE_EQ(d.grid.node(2).load_at(100.0), 0.0);
  EXPECT_DOUBLE_EQ(d.grid.node(2).load_at(151.0), 8.0);
}

TEST(Description, ParsesLinksWithDefaultAndOverride) {
  const auto d = parse_description(kValid);
  EXPECT_DOUBLE_EQ(d.grid.link(0, 2).latency(), 1e-3);   // default
  EXPECT_DOUBLE_EQ(d.grid.link(0, 1).latency(), 1e-4);   // override
  EXPECT_DOUBLE_EQ(d.grid.link(1, 0).latency(), 1e-4);   // symmetric
  EXPECT_DOUBLE_EQ(d.grid.link(1, 1).latency(), 1e-4);   // loopback kept
}

TEST(Description, ParsesPipeline) {
  const auto d = parse_description(kValid);
  ASSERT_EQ(d.profile.num_stages(), 3u);
  EXPECT_EQ(d.stage_names[1], "compute");
  EXPECT_DOUBLE_EQ(d.profile.stage_work[1], 4.0);
  EXPECT_DOUBLE_EQ(d.profile.msg_bytes[2], 2e4);
  EXPECT_DOUBLE_EQ(d.profile.state_bytes[1], 4e6);
  EXPECT_DOUBLE_EQ(d.profile.state_bytes[0], 0.0);  // optional column
  EXPECT_NO_THROW(d.profile.validate());
}

TEST(Description, AllLoadModelsParse) {
  const auto d = parse_description(R"(
[nodes]
a 1.0 load=const,2.0
b 1.0 load=sine,1.0,0.5,240
c 1.0 load=walk,7,0.5,0.2,10,1000
d 1.0 load=onoff,7,3.0,60,120,1000
[pipeline]
s 1.0 1e3
)");
  EXPECT_DOUBLE_EQ(d.grid.node(0).load_at(0.0), 2.0);
  EXPECT_GE(d.grid.node(1).load_at(60.0), 0.0);
  EXPECT_GE(d.grid.node(2).load_at(500.0), 0.0);
  const double onoff = d.grid.node(3).load_at(500.0);
  EXPECT_TRUE(onoff == 0.0 || onoff == 3.0);
}

TEST(Description, ErrorsCarryLineNumbers) {
  try {
    parse_description("[nodes]\nbad\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Description, RejectsMalformedInput) {
  EXPECT_THROW(parse_description("x 1.0\n"), std::invalid_argument);
  EXPECT_THROW(parse_description("[nodes]\nn0 abc\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_description("[nodes]\nn0 1.0 load=nope,1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_description("[nodes]\nn0 1.0\n"),
               std::invalid_argument);  // no pipeline
  EXPECT_THROW(parse_description("[pipeline]\ns 1.0 1e3\n"),
               std::invalid_argument);  // no nodes
  EXPECT_THROW(
      parse_description("[nodes]\nn0 1.0\n[links]\nn0 nX 1e-3 1e8\n"
                        "[pipeline]\ns 1.0 1e3\n"),
      std::invalid_argument);  // unknown node in link
}

TEST(Description, ParsedGridIsSchedulable) {
  const auto d = parse_description(kValid);
  const auto est = ResourceEstimate::from_grid(d.grid, 0.0);
  const PerfModel model;
  const auto best = ExhaustiveMapper(model).best(d.profile, est);
  ASSERT_TRUE(best);
  EXPECT_GT(best->breakdown.throughput, 0.0);
  // At t=200 worker2 is 9x slower; the optimum must avoid it.
  const auto later = ResourceEstimate::from_grid(d.grid, 200.0);
  const auto best_later = ExhaustiveMapper(model).best(d.profile, later);
  for (const grid::NodeId n : best_later->mapping.nodes_used()) {
    EXPECT_NE(n, 2u);
  }
}

TEST(Description, LoadFromMissingFileThrows) {
  EXPECT_THROW(load_description("/nonexistent/path.grid"),
               std::runtime_error);
}

}  // namespace
}  // namespace gridpipe::sched
