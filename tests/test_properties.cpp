// Cross-cutting randomized property tests: invariances and monotonicity
// laws the model, mappers and simulator must obey on arbitrary inputs.

#include <gtest/gtest.h>

#include <algorithm>

#include "grid/builders.hpp"
#include "sched/latency_mapper.hpp"
#include "core/dist_executor.hpp"
#include "sim/pipeline_sim.hpp"
#include "workload/scenarios.hpp"

namespace gridpipe {
namespace {

using grid::Grid;
using grid::NodeId;
using sched::Mapping;
using sched::PipelineProfile;

PipelineProfile random_profile(util::Xoshiro256& rng, std::size_t ns) {
  PipelineProfile p;
  for (std::size_t i = 0; i < ns; ++i) {
    p.stage_work.push_back(util::uniform(rng, 0.2, 3.0));
  }
  p.msg_bytes.assign(ns + 1, util::uniform(rng, 1e3, 1e6));
  p.state_bytes.assign(ns, util::uniform(rng, 0.0, 1e6));
  return p;
}

class PropertySeed : public ::testing::TestWithParam<std::uint64_t> {};

// --- Invariance: renumbering the nodes (and the mapping with them) must
// not change the modeled throughput.
TEST_P(PropertySeed, ThroughputInvariantUnderNodePermutation) {
  util::Xoshiro256 rng(GetParam());
  grid::RandomGridParams params;
  params.nodes = 4;
  const Grid g = grid::random_grid(GetParam(), params);
  const auto p = random_profile(rng, 4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;

  std::vector<NodeId> perm{0, 1, 2, 3};
  util::shuffle(rng, perm);

  // Build the permuted estimate: node perm[n] gets node n's properties.
  sched::ResourceEstimate permuted = est;
  for (NodeId n = 0; n < 4; ++n) {
    permuted.node_speed[perm[n]] = est.node_speed[n];
  }
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      permuted.link_latency[perm[a] * 4 + perm[b]] =
          est.link_latency[a * 4 + b];
      permuted.link_bandwidth[perm[a] * 4 + perm[b]] =
          est.link_bandwidth[a * 4 + b];
    }
  }
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<NodeId> assign(4);
    for (auto& n : assign) {
      n = static_cast<NodeId>(util::uniform_int(rng, 0, 3));
    }
    std::vector<NodeId> permuted_assign(4);
    for (std::size_t i = 0; i < 4; ++i) permuted_assign[i] = perm[assign[i]];
    EXPECT_NEAR(model.throughput(p, est, Mapping(assign)),
                model.throughput(p, permuted, Mapping(permuted_assign)),
                1e-9);
  }
}

// --- Monotonicity: speeding up a node never lowers the exhaustive
// optimum.
TEST_P(PropertySeed, OptimumMonotoneInNodeSpeed) {
  util::Xoshiro256 rng(GetParam() ^ 0xBEEF);
  grid::RandomGridParams params;
  params.nodes = 3;
  const Grid g = grid::random_grid(GetParam(), params);
  const auto p = random_profile(rng, 4);
  auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  const sched::ExhaustiveMapper mapper(model);

  const double before = mapper.best(p, est)->breakdown.throughput;
  const auto victim =
      static_cast<std::size_t>(util::uniform_int(rng, 0, 2));
  est.node_speed[victim] *= 2.0;
  const double after = mapper.best(p, est)->breakdown.throughput;
  EXPECT_GE(after, before - 1e-9);
}

// --- Monotonicity: adding a node never lowers the exhaustive optimum.
TEST_P(PropertySeed, OptimumMonotoneInNodeCount) {
  util::Xoshiro256 rng(GetParam() ^ 0xCAFE);
  const auto speeds3 = std::vector<double>{
      util::uniform(rng, 0.5, 3.0), util::uniform(rng, 0.5, 3.0),
      util::uniform(rng, 0.5, 3.0)};
  auto speeds4 = speeds3;
  speeds4.push_back(util::uniform(rng, 0.5, 3.0));
  const auto p = random_profile(rng, 4);
  const sched::PerfModel model;
  const sched::ExhaustiveMapper mapper(model);

  const Grid g3 = grid::heterogeneous_cluster(speeds3, 1e-3, 1e8);
  const Grid g4 = grid::heterogeneous_cluster(speeds4, 1e-3, 1e8);
  const double small = mapper.best(p, sched::ResourceEstimate::from_grid(g3, 0))
                           ->breakdown.throughput;
  const double large = mapper.best(p, sched::ResourceEstimate::from_grid(g4, 0))
                           ->breakdown.throughput;
  EXPECT_GE(large, small - 1e-9);
}

// --- Scale law: doubling every node speed doubles the simulated
// throughput of a fixed mapping (compute-bound profile).
TEST_P(PropertySeed, SimThroughputScalesWithSpeed) {
  util::Xoshiro256 rng(GetParam() ^ 0xD00D);
  const double base = util::uniform(rng, 0.5, 2.0);
  auto run_at = [&](double scale) {
    const Grid g = grid::heterogeneous_cluster(
        {base * scale, 2.0 * base * scale}, 1e-4, 1e10);
    const auto p = PipelineProfile::uniform(2, 0.5, 1e3);
    sim::SimConfig config;
    config.num_items = 400;
    config.probe_interval = 0.0;
    sim::PipelineSim s(g, p, Mapping(std::vector<NodeId>{0, 1}), config);
    s.start();
    s.simulator().run();
    return s.metrics().mean_throughput();
  };
  EXPECT_NEAR(run_at(2.0), 2.0 * run_at(1.0), 0.05 * run_at(2.0));
}

// --- Wire-format round trip on random mappings (distributed executor).
TEST_P(PropertySeed, MappingWireRoundTrip) {
  util::Xoshiro256 rng(GetParam() ^ 0xABBA);
  const std::size_t ns = 1 + GetParam() % 6;
  std::vector<std::vector<NodeId>> assignment(ns);
  for (auto& reps : assignment) {
    const std::size_t count = 1 + util::uniform_int(rng, 0, 2);
    for (std::size_t r = 0; r < count; ++r) {
      const auto node = static_cast<NodeId>(util::uniform_int(rng, 0, 7));
      if (std::find(reps.begin(), reps.end(), node) == reps.end()) {
        reps.push_back(node);
      }
    }
  }
  const Mapping mapping(assignment);
  EXPECT_EQ(core::DistributedExecutor::decode_mapping(
                core::DistributedExecutor::encode_mapping(mapping)),
            mapping);
}

// --- Latency mapper: its choice is never worse (in modeled latency) than
// the throughput mapper's choice, and always feasible.
TEST_P(PropertySeed, LatencyMapperDominatesThroughputMapperOnLatency) {
  util::Xoshiro256 rng(GetParam() ^ 0xFEED);
  grid::RandomGridParams params;
  params.nodes = 3;
  params.lat_lo = 1e-3;
  params.lat_hi = 5e-2;
  const Grid g = grid::random_grid(GetParam(), params);
  const auto p = random_profile(rng, 3);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;

  const auto thr_best = sched::ExhaustiveMapper(model).best(p, est);
  ASSERT_TRUE(thr_best);
  const double rate = 0.3 * thr_best->breakdown.throughput;
  const auto lat_best = sched::LatencyMapper(model).best(p, est, rate);
  ASSERT_TRUE(lat_best);

  EXPECT_LE(lat_best->latency,
            model.latency_estimate(p, est, thr_best->mapping, rate) + 1e-9);
  EXPECT_GE(lat_best->throughput, rate);
}

// --- Conservation under randomized remap storms: spray arbitrary valid
// mappings at a running simulation; every item still arrives exactly
// once. (Completion *order* is not preserved across remaps — an item in
// transit to an old replica can be overtaken by a redirected successor;
// the runtimes restore stream order with their resequencer.)
TEST_P(PropertySeed, RemapStormNeverLosesItems) {
  util::Xoshiro256 rng(GetParam() ^ 0x5707);
  const Grid g = grid::uniform_cluster(4, 1.0, 1e-3, 1e8);
  const auto p = PipelineProfile::uniform(3, 0.1, 1e4);
  sim::SimConfig config;
  config.num_items = 300;
  config.probe_interval = 0.0;
  sim::PipelineSim s(g, p, Mapping(std::vector<NodeId>{0, 1, 2}), config);
  s.start();
  for (double t = 1.0; t < 30.0; t += 1.0) {
    s.simulator().run_until(t);
    if (s.finished()) break;
    std::vector<NodeId> assign(3);
    for (auto& n : assign) {
      n = static_cast<NodeId>(util::uniform_int(rng, 0, 3));
    }
    s.apply_mapping(Mapping(assign), util::uniform(rng, 0.0, 0.3));
  }
  s.simulator().run();
  EXPECT_EQ(s.metrics().items_completed(), 300u);
  // Exactly-once: all 300 distinct ids present.
  std::vector<double> ids = s.metrics().completions().values();
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(ids[i], static_cast<double>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace gridpipe
