// Tests for sched::Mapping, PipelineProfile, ResourceEstimate and the
// analytic PerfModel — including the closed-form cases the model must get
// exactly right.

#include <gtest/gtest.h>

#include "grid/builders.hpp"
#include "sched/perf_model.hpp"

namespace gridpipe::sched {
namespace {

using grid::Grid;
using grid::NodeId;

// ------------------------------------------------------------- mapping

TEST(Mapping, BuildersAndAccessors) {
  const Mapping rr = Mapping::round_robin(5, 2);
  EXPECT_EQ(rr.node_of(0), 0u);
  EXPECT_EQ(rr.node_of(1), 1u);
  EXPECT_EQ(rr.node_of(4), 0u);
  EXPECT_EQ(rr.stages_on(0), 3u);

  const Mapping blk = Mapping::block(6, 3);
  EXPECT_EQ(blk.node_of(0), 0u);
  EXPECT_EQ(blk.node_of(1), 0u);
  EXPECT_EQ(blk.node_of(2), 1u);
  EXPECT_EQ(blk.node_of(5), 2u);

  const Mapping one = Mapping::all_on(4, 2);
  EXPECT_EQ(one.nodes_used(), std::vector<NodeId>{2});
}

TEST(Mapping, BlockWithMoreNodesThanStages) {
  const Mapping blk = Mapping::block(2, 8);
  EXPECT_EQ(blk.node_of(0), 0u);
  EXPECT_EQ(blk.node_of(1), 1u);
}

TEST(Mapping, ReplicationAccounting) {
  Mapping m(std::vector<NodeId>{0, 1, 1});
  EXPECT_FALSE(m.has_replication());
  m.add_replica(1, 2);
  m.add_replica(1, 2);  // duplicate ignored
  EXPECT_TRUE(m.has_replication());
  EXPECT_EQ(m.replica_count(1), 2u);
  EXPECT_EQ(m.stages_on(2), 1u);
  m.reassign(1, 0);
  EXPECT_EQ(m.replica_count(1), 1u);
  EXPECT_EQ(m.node_of(1), 0u);
}

TEST(Mapping, MovedStages) {
  const Mapping a(std::vector<NodeId>{0, 1, 2});
  Mapping b = a;
  EXPECT_TRUE(Mapping::moved_stages(a, b).empty());
  b.reassign(1, 2);
  EXPECT_EQ(Mapping::moved_stages(a, b), std::vector<std::size_t>{1});
}

TEST(Mapping, ValidateCatchesErrors) {
  const Mapping ok(std::vector<NodeId>{0, 1});
  EXPECT_NO_THROW(ok.validate(2));
  EXPECT_THROW(ok.validate(1), std::invalid_argument);  // node 1 missing
  EXPECT_THROW(Mapping{}.validate(2), std::invalid_argument);
  const Mapping dup(std::vector<std::vector<NodeId>>{{0, 0}});
  EXPECT_THROW(dup.validate(2), std::invalid_argument);
}

TEST(Mapping, PaperStyleToString) {
  const Mapping m(std::vector<NodeId>{0, 1, 1});
  EXPECT_EQ(m.to_string(), "(1,2,2)");
  Mapping r = m;
  r.add_replica(2, 2);
  EXPECT_EQ(r.to_string(), "(1,2,[2|3])");
}

// ------------------------------------------------------------- profile

TEST(PipelineProfile, UniformAndValidate) {
  const auto p = PipelineProfile::uniform(3, 2.0, 100.0, 50.0);
  EXPECT_EQ(p.num_stages(), 3u);
  EXPECT_EQ(p.msg_bytes.size(), 4u);
  EXPECT_NO_THROW(p.validate());

  PipelineProfile bad = p;
  bad.msg_bytes.pop_back();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.stage_work[1] = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ estimate

TEST(ResourceEstimate, FromGridReflectsLoadAndCongestion) {
  Grid g = grid::uniform_cluster(2, 4.0, 0.01, 1e6);
  grid::set_node_load(g, 1, std::make_shared<grid::ConstantLoad>(1.0));
  grid::Link congested(0.01, 1e6,
                       std::make_shared<grid::ConstantLoad>(1.0));
  g.set_link(0, 1, std::move(congested));

  const auto est = ResourceEstimate::from_grid(g, 0.0);
  EXPECT_DOUBLE_EQ(est.node_speed[0], 4.0);
  EXPECT_DOUBLE_EQ(est.node_speed[1], 2.0);
  EXPECT_DOUBLE_EQ(est.latency(0, 1), 0.02);
  EXPECT_DOUBLE_EQ(est.bandwidth(0, 1), 5e5);
  EXPECT_DOUBLE_EQ(est.latency(1, 0), 0.01);  // reverse link untouched
}

TEST(ResourceEstimate, FromMonitorFallsBackToCatalog) {
  const Grid g = grid::uniform_cluster(2, 3.0, 0.01, 1e6);
  monitor::MonitoringRegistry reg;
  // Only node 0 has observations.
  for (int i = 0; i < 10; ++i) {
    reg.record({monitor::SensorKind::kNodeSpeed, 0, 0}, i, 1.5);
  }
  const auto est = ResourceEstimate::from_monitor(reg, g);
  EXPECT_NEAR(est.node_speed[0], 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(est.node_speed[1], 3.0);  // catalog fallback
  EXPECT_DOUBLE_EQ(est.latency(0, 1), 0.01);
}

TEST(ResourceEstimate, FromMonitorAppliesLinkInflation) {
  const Grid g = grid::uniform_cluster(2, 3.0, 0.01, 1e6);
  monitor::MonitoringRegistry reg;
  for (int i = 0; i < 10; ++i) {
    reg.record({monitor::SensorKind::kLinkInflation, 0, 1}, i, 2.0);
  }
  const auto est = ResourceEstimate::from_monitor(reg, g);
  EXPECT_NEAR(est.latency(0, 1), 0.02, 1e-9);
  EXPECT_NEAR(est.bandwidth(0, 1), 5e5, 1e-3);
}

// ----------------------------------------------------------- perfmodel

// Three unit-speed nodes, negligible network, three 0.1-work stages.
struct ModelFixture {
  Grid g = grid::uniform_cluster(3, 1.0, 1e-4, 1e12);
  PipelineProfile p = PipelineProfile::uniform(3, 0.1, 1.0);
  ResourceEstimate est = ResourceEstimate::from_grid(g, 0.0);
  PerfModel model;
};

TEST(PerfModel, OneStagePerNodeIsWorkBound) {
  ModelFixture f;
  const Mapping m(std::vector<NodeId>{0, 1, 2});
  EXPECT_NEAR(f.model.throughput(f.p, f.est, m), 10.0, 1e-6);
}

TEST(PerfModel, ColocatedStagesSerialize) {
  ModelFixture f;
  EXPECT_NEAR(f.model.throughput(f.p, f.est,
                                 Mapping(std::vector<NodeId>{0, 0, 1})),
              5.0, 1e-6);
  EXPECT_NEAR(f.model.throughput(f.p, f.est, Mapping::all_on(3, 0)),
              10.0 / 3.0, 1e-6);
}

TEST(PerfModel, SlowLinkCapsThroughput) {
  ModelFixture f;
  f.g.set_link(1, 2, grid::Link(0.5, 1e12));
  f.est = ResourceEstimate::from_grid(f.g, 0.0);
  const Mapping m(std::vector<NodeId>{0, 1, 2});
  EXPECT_NEAR(f.model.throughput(f.p, f.est, m), 2.0, 1e-6);
}

TEST(PerfModel, ReplicationLiftsHotStage) {
  // Stage 1 is 4x hotter; replicating it on two nodes doubles its cap.
  Grid g = grid::uniform_cluster(4, 1.0, 1e-4, 1e12);
  PipelineProfile p;
  p.stage_work = {0.1, 0.4, 0.1};
  p.msg_bytes.assign(4, 1.0);
  p.state_bytes.assign(3, 0.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const PerfModel model;

  Mapping base(std::vector<NodeId>{0, 1, 2});
  const double thr_base = model.throughput(p, est, base);
  EXPECT_NEAR(thr_base, 2.5, 1e-6);

  Mapping replicated = base;
  replicated.add_replica(1, 3);
  const double thr_rep = model.throughput(p, est, replicated);
  EXPECT_NEAR(thr_rep, 5.0, 1e-6);
}

TEST(PerfModel, NetworkSerializationAddsGlobalCap) {
  Grid g = grid::uniform_cluster(3, 1.0, 0.2, 1e12);
  const auto p = PipelineProfile::uniform(3, 0.1, 1.0);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const Mapping m(std::vector<NodeId>{0, 1, 2});

  const PerfModel parallel_net;  // two 0.2s edges, parallel: cap 5
  EXPECT_NEAR(parallel_net.throughput(p, est, m), 5.0, 1e-6);

  PerfModelOptions opts;
  opts.network_serialization = true;  // shared network: 1/(0.2+0.2)
  const PerfModel serial_net(opts);
  EXPECT_NEAR(serial_net.throughput(p, est, m), 2.5, 1e-6);
}

TEST(PerfModel, IoEdgesOnlyWhenEnabled) {
  Grid g = grid::uniform_cluster(2, 1.0, 1e-4, 1e12);
  auto p = PipelineProfile::uniform(2, 0.1, 1.0);
  p.source_node = 0;
  p.sink_node = 0;
  auto est = ResourceEstimate::from_grid(g, 0.0);
  // Make the source->stage0 path catastrophically slow via a huge input.
  p.msg_bytes[0] = 1e12;  // 1 second at 1e12 B/s
  const Mapping m(std::vector<NodeId>{1, 0});
  const PerfModel model;
  EXPECT_NEAR(model.throughput(p, est, m), 10.0, 1e-6);
  p.count_io_edges = true;
  EXPECT_LT(model.throughput(p, est, m), 1.01);
}

TEST(PerfModel, BreakdownIsConsistent) {
  ModelFixture f;
  const Mapping m(std::vector<NodeId>{0, 0, 1});
  const auto bd = f.model.breakdown(f.p, f.est, m);
  EXPECT_NEAR(bd.node_busy[0], 0.2, 1e-9);
  EXPECT_NEAR(bd.node_busy[1], 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(bd.node_busy[2], 0.0);
  EXPECT_NEAR(bd.node_cap, 5.0, 1e-6);
  EXPECT_DOUBLE_EQ(bd.throughput,
                   f.model.throughput(f.p, f.est, m));
}

TEST(PerfModel, MismatchedStagesThrow) {
  ModelFixture f;
  EXPECT_THROW(f.model.throughput(f.p, f.est,
                                  Mapping(std::vector<NodeId>{0, 1})),
               std::invalid_argument);
}

TEST(PerfModel, BetterPrefersThroughputThenCommThenNodes) {
  ModelFixture f;
  const PerfModel& model = f.model;
  ThroughputBreakdown hi, lo;
  hi.throughput = 2.0;
  lo.throughput = 1.0;
  EXPECT_TRUE(model.better(hi, 3, lo, 1));
  EXPECT_FALSE(model.better(lo, 1, hi, 3));
  // Tie on throughput: fewer comm seconds wins.
  ThroughputBreakdown a = hi, b = hi;
  a.total_comm_time = 0.1;
  b.total_comm_time = 0.2;
  EXPECT_TRUE(model.better(a, 3, b, 1));
  // Tie on both: fewer nodes wins.
  b.total_comm_time = 0.1;
  EXPECT_TRUE(model.better(a, 1, b, 2));
  EXPECT_FALSE(model.better(a, 2, b, 2));
}

// ------------------------------------------------------- migration cost

TEST(MigrationCost, ZeroWhenUnchanged) {
  ModelFixture f;
  const Mapping m(std::vector<NodeId>{0, 1, 2});
  EXPECT_DOUBLE_EQ(migration_cost(f.p, f.est, m, m, 0.5), 0.0);
}

TEST(MigrationCost, ChargesSlowestMovedStage) {
  Grid g = grid::uniform_cluster(3, 1.0, 0.0, 1e6);  // 1 MB/s, no latency
  PipelineProfile p = PipelineProfile::uniform(3, 0.1, 1.0, /*state=*/2e6);
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const Mapping from(std::vector<NodeId>{0, 1, 2});
  Mapping to = from;
  to.reassign(1, 2);  // move 2 MB across a 1 MB/s link → 2 s
  EXPECT_NEAR(migration_cost(p, est, from, to, 0.5), 2.5, 1e-6);
}

TEST(MigrationCost, ParallelStageMigrationsTakeMax) {
  Grid g = grid::uniform_cluster(4, 1.0, 0.0, 1e6);
  PipelineProfile p = PipelineProfile::uniform(3, 0.1, 1.0, 1e6);
  p.state_bytes = {1e6, 3e6, 1e6};
  const auto est = ResourceEstimate::from_grid(g, 0.0);
  const Mapping from(std::vector<NodeId>{0, 1, 2});
  const Mapping to(std::vector<NodeId>{1, 2, 3});  // all three move
  // Slowest stage state is 3 MB → 3 s, plus 0.5 restart.
  EXPECT_NEAR(migration_cost(p, est, from, to, 0.5), 3.5, 1e-6);
}

}  // namespace
}  // namespace gridpipe::sched
