// Cross-module integration and property tests:
//  * analytic model vs DES agreement on random static grids,
//  * failure injection (node dies, link rots) with adaptive recovery,
//  * DES vs threaded-runtime agreement on the same configuration,
//  * conservation and baseline-ordering properties on random dynamic
//    scenarios.

#include <gtest/gtest.h>

#include "core/adaptive_pipeline.hpp"
#include "core/executor.hpp"
#include "grid/builders.hpp"
#include "sched/local_search.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

namespace gridpipe {
namespace {

using grid::Grid;
using grid::NodeId;
using sched::Mapping;
using sched::PipelineProfile;

// ----------------------------------------------- model vs DES property

class ModelVsSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelVsSim, StaticGridSimMatchesAnalyticThroughput) {
  grid::RandomGridParams params;
  params.nodes = 4;
  // Keep latencies modest so the credit window is not the binding
  // constraint (the analytic model has no window term).
  params.lat_lo = 1e-4;
  params.lat_hi = 5e-3;
  const Grid g = grid::random_grid(GetParam(), params);

  util::Xoshiro256 rng(GetParam() ^ 0x5EED);
  PipelineProfile p;
  const std::size_t ns = 3 + GetParam() % 3;
  for (std::size_t i = 0; i < ns; ++i) {
    p.stage_work.push_back(util::uniform(rng, 0.2, 2.0));
  }
  p.msg_bytes.assign(ns + 1, util::uniform(rng, 1e3, 1e5));
  p.state_bytes.assign(ns, 0.0);

  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  const auto mapping =
      sched::LocalSearchMapper(model).best(p, est).mapping;

  sim::SimConfig config;
  config.num_items = 1500;
  config.probe_interval = 0.0;
  config.window = 4 * ns;
  sim::PipelineSim pipeline_sim(g, p, mapping, config);
  pipeline_sim.start();
  pipeline_sim.simulator().run();

  const double predicted = model.throughput(p, est, mapping);
  const double observed = pipeline_sim.metrics().mean_throughput();
  EXPECT_NEAR(observed, predicted, 0.10 * predicted)
      << "mapping " << mapping.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelVsSim,
                         ::testing::Range<std::uint64_t>(1, 11));

// --------------------------------------------------- failure injection

TEST(FailureInjection, AdaptiveEvacuatesDyingNode) {
  // Node 1 effectively dies at t = 60 (load 1e4 → speed ~1e-4).
  Grid g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 1, std::make_shared<grid::StepLoad>(
                                std::vector<grid::StepLoad::Step>{
                                    {60.0, 1e4}}));
  PipelineProfile p = PipelineProfile::uniform(3, 0.5, 1e4, 1e5);

  sim::SimConfig config;
  config.num_items = 1200;
  config.seed = 3;
  sim::DriverOptions options;
  options.driver = sim::DriverKind::kAdaptive;
  options.adapt.epoch = 10.0;
  const auto result = sim::run_pipeline(g, p, config, options);

  EXPECT_EQ(result.metrics.items_completed(), 1200u);
  EXPECT_GE(result.remap_count, 1u);
  EXPECT_EQ(result.final_mapping.stages_on(1), 0u);
  // Rough sanity: post-failure capacity on 2 healthy nodes is ~1.33/s
  // (best split of 1.5 work over 2 unit nodes); the whole run must
  // average above half of that despite the pre-remap stall.
  EXPECT_GT(result.mean_throughput, 0.6);
}

TEST(FailureInjection, StaticStrandedOnDeadNode) {
  Grid g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  grid::set_node_load(g, 1, std::make_shared<grid::StepLoad>(
                                std::vector<grid::StepLoad::Step>{
                                    {60.0, 1e4}}));
  PipelineProfile p = PipelineProfile::uniform(3, 0.5, 1e4, 1e5);

  sim::SimConfig config;
  config.num_items = 1200;
  sim::DriverOptions options;
  options.driver = sim::DriverKind::kStaticOptimal;
  options.horizon = 2000.0;  // do not wait for the crippled run to finish
  const auto result = sim::run_pipeline(g, p, config, options);
  // The static mapping keeps a stage on the dead node: it cannot finish
  // within a horizon that is generous for the adaptive run.
  EXPECT_LT(result.metrics.items_completed(), 1200u);
}

TEST(FailureInjection, LinkRotHandledByRemap) {
  // The 0->1 link becomes ~50x slower at t = 50; messages are large
  // enough that the edge dominates.
  Grid g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  const auto rot = std::make_shared<grid::StepLoad>(
      std::vector<grid::StepLoad::Step>{{50.0, 49.0}});
  grid::Link bad(1e-3, 1e8, rot);
  g.set_link(0, 1, std::move(bad));
  PipelineProfile p = PipelineProfile::uniform(2, 0.2, 5e6, 1e5);

  sim::SimConfig config;
  config.num_items = 800;
  sim::DriverOptions adaptive;
  adaptive.driver = sim::DriverKind::kAdaptive;
  adaptive.adapt.epoch = 10.0;
  const auto a = sim::run_pipeline(g, p, config, adaptive);

  sim::DriverOptions fixed;
  fixed.driver = sim::DriverKind::kStaticOptimal;
  const auto s = sim::run_pipeline(g, p, config, fixed);

  EXPECT_EQ(a.metrics.items_completed(), 800u);
  // Adaptive folds both stages onto one node (or otherwise avoids the
  // rotten edge) and must finish meaningfully faster.
  EXPECT_LT(a.makespan, 0.8 * s.makespan);
}

// ------------------------------------------------ DES vs threaded (V1)

TEST(DesVsThreads, ThroughputAgreesWithinBand) {
  const Grid g = grid::heterogeneous_cluster({2.0, 1.0}, 1e-3, 1e8);
  core::PipelineSpec spec;
  for (const char* name : {"s0", "s1", "s2"}) {
    spec.stage(
        name, [](std::any a) { return a; }, /*work=*/0.05,
        /*out_bytes=*/1e3);
  }
  const auto profile = spec.to_profile();
  const sched::PerfModel model;
  const auto mapping =
      sched::ExhaustiveMapper(model)
          .best(profile, sched::ResourceEstimate::from_grid(g, 0.0))
          ->mapping;

  // DES run.
  sim::SimConfig sim_config;
  sim_config.num_items = 200;
  sim_config.probe_interval = 0.0;
  sim::PipelineSim des(g, profile, mapping, sim_config);
  des.start();
  des.simulator().run();
  const double des_throughput = des.metrics().mean_throughput();

  // Threaded run of the same configuration.
  core::ExecutorConfig exec_config;
  exec_config.time_scale = 0.005;
  core::Executor executor(g, std::move(spec), mapping, exec_config);
  std::vector<std::any> inputs;
  for (int i = 0; i < 200; ++i) inputs.emplace_back(i);
  const auto report = executor.run(std::move(inputs));

  EXPECT_EQ(report.items, 200u);
  // One shared core and sleep quantization: generous band (runs
  // RUN_SERIAL, but CI runners may have only 2 cores).
  EXPECT_GT(report.throughput, 0.4 * des_throughput);
  EXPECT_LT(report.throughput, 1.6 * des_throughput);
}

// ------------------------------------- conservation on random dynamics

class RandomDynamics : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDynamics, NoDriverEverLosesItems) {
  const std::uint64_t seed = GetParam();
  grid::RandomGridParams params;
  params.nodes = 3 + seed % 3;
  Grid g = grid::random_grid(seed, params);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    grid::set_node_load(g, n,
                        std::make_shared<grid::RandomWalkLoad>(
                            seed * 31 + n, 0.5, 0.3, 15.0, 3000.0, 0.0, 4.0));
  }
  util::Xoshiro256 rng(seed ^ 0xFACE);
  PipelineProfile p;
  const std::size_t ns = 3 + seed % 4;
  for (std::size_t i = 0; i < ns; ++i) {
    p.stage_work.push_back(util::uniform(rng, 0.2, 3.0));
  }
  p.msg_bytes.assign(ns + 1, util::uniform(rng, 1e3, 1e6));
  p.state_bytes.assign(ns, util::uniform(rng, 1e4, 1e7));

  sim::SimConfig config;
  config.num_items = 600;
  config.seed = seed;
  for (const auto kind :
       {sim::DriverKind::kStaticNaive, sim::DriverKind::kStaticOptimal,
        sim::DriverKind::kAdaptive, sim::DriverKind::kOracle}) {
    sim::DriverOptions options;
    options.driver = kind;
    options.adapt.epoch = 20.0;
    const auto result = sim::run_pipeline(g, p, config, options);
    EXPECT_EQ(result.metrics.items_completed(), 600u)
        << to_string(kind) << " seed " << seed;
    EXPECT_EQ(result.metrics.items_created(), 600u)
        << to_string(kind) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDynamics,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace gridpipe
