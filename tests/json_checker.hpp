#pragma once
// Minimal JSON syntax checker shared by the test suites. The repo emits
// JSON but deliberately has no parser, so the tests carry just enough of
// one to assert that what the tracer, metrics snapshot and status hub
// write is a well-formed document — the same promise CI checks with
// `python -m json.tool`.

#include <cctype>
#include <cstring>
#include <string_view>

namespace gridpipe::test_support {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              return false;
            }
            ++pos_;
          }
        } else if (!std::strchr("\"\\/bfnrt", esc)) {
          return false;
        }
      }
    }
    return false;
  }
  bool digits() {
    std::size_t start = pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return pos_ > start;
  }
  bool number() {
    consume('-');
    if (!digits()) return false;
    if (consume('.') && !digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }
  bool members(char close, bool keyed) {
    skip_ws();
    if (consume(close)) return true;
    while (true) {
      skip_ws();
      if (keyed) {
        if (!string()) return false;
        skip_ws();
        if (!consume(':')) return false;
        skip_ws();
      }
      if (!value()) return false;
      skip_ws();
      if (consume(close)) return true;
      if (!consume(',')) return false;
    }
  }
  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': ++pos_; return members('}', true);
      case '[': ++pos_; return members(']', false);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace gridpipe::test_support
