// End-to-end driver tests: the paper's headline behaviour. Static
// mappings degrade when the grid shifts; the adaptive pattern recovers;
// the oracle bounds both.

#include <gtest/gtest.h>

#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

namespace gridpipe::sim {
namespace {

using grid::NodeId;
using workload::Scenario;

SimConfig stream_config(std::uint64_t items, std::uint64_t seed = 1) {
  SimConfig config;
  config.num_items = items;
  config.seed = seed;
  config.probe_interval = 5.0;
  config.probe_noise = 0.0;
  return config;
}

DriverOptions driver(DriverKind kind, double epoch = 10.0) {
  DriverOptions options;
  options.driver = kind;
  options.adapt.epoch = epoch;
  return options;
}

TEST(Drivers, StaticOptimalBeatsNaiveOnHeterogeneousGrid) {
  const auto grid = grid::heterogeneous_cluster({4.0, 1.0, 1.0, 0.5},
                                                1e-3, 1e8);
  const auto profile = workload::reference_profile();
  const auto optimal = run_pipeline(grid, profile, stream_config(1000),
                                    driver(DriverKind::kStaticOptimal));
  const auto naive = run_pipeline(grid, profile, stream_config(1000),
                                  driver(DriverKind::kStaticNaive));
  EXPECT_EQ(optimal.metrics.items_completed(), 1000u);
  EXPECT_EQ(naive.metrics.items_completed(), 1000u);
  EXPECT_GT(optimal.mean_throughput, naive.mean_throughput);
  EXPECT_EQ(optimal.remap_count, 0u);
}

TEST(Drivers, AdaptiveRecoversFromLoadStep) {
  const Scenario s = workload::find_scenario("load-step", 1);
  const auto config = stream_config(2500);

  const auto static_run = run_pipeline(s.grid, s.profile, config,
                                       driver(DriverKind::kStaticOptimal));
  const auto adaptive_run = run_pipeline(s.grid, s.profile, config,
                                         driver(DriverKind::kAdaptive));
  const auto oracle_run = run_pipeline(s.grid, s.profile, config,
                                       driver(DriverKind::kOracle));

  // Everyone finishes the stream.
  EXPECT_EQ(static_run.metrics.items_completed(), 2500u);
  EXPECT_EQ(adaptive_run.metrics.items_completed(), 2500u);
  EXPECT_EQ(oracle_run.metrics.items_completed(), 2500u);

  // Ordering: static <= adaptive <= oracle (small slack for noise).
  EXPECT_GT(adaptive_run.mean_throughput,
            static_run.mean_throughput * 1.10);
  EXPECT_LE(adaptive_run.mean_throughput,
            oracle_run.mean_throughput * 1.02);

  // The adaptive run actually remapped, and moved the heavy stage (index
  // 2, work 4.0) off the newly loaded node 0. A light stage may stay —
  // node 0 at 8x load still offers ~0.22 speed, comparable to a small
  // share of the remaining nodes.
  EXPECT_GE(adaptive_run.remap_count, 1u);
  EXPECT_NE(adaptive_run.final_mapping.node_of(2), 0u);
  EXPECT_LE(adaptive_run.final_mapping.stages_on(0), 1u);
}

TEST(Drivers, AdaptiveMatchesStaticOnStableGrid) {
  const Scenario s = workload::find_scenario("stable", 1);
  const auto config = stream_config(2000);
  const auto static_run = run_pipeline(s.grid, s.profile, config,
                                       driver(DriverKind::kStaticOptimal));
  const auto adaptive_run = run_pipeline(s.grid, s.profile, config,
                                         driver(DriverKind::kAdaptive));
  // No dynamics → no reason to pay migration costs.
  EXPECT_NEAR(adaptive_run.mean_throughput, static_run.mean_throughput,
              0.05 * static_run.mean_throughput);
  EXPECT_LE(adaptive_run.remap_count, 1u);
}

TEST(Drivers, OracleNeverLosesToStaticAcrossScenarios) {
  for (const Scenario& s : workload::scenario_catalog(3)) {
    const auto config = stream_config(1500);
    const auto static_run = run_pipeline(s.grid, s.profile, config,
                                         driver(DriverKind::kStaticOptimal));
    const auto oracle_run = run_pipeline(s.grid, s.profile, config,
                                         driver(DriverKind::kOracle));
    EXPECT_GE(oracle_run.mean_throughput,
              static_run.mean_throughput * 0.98)
        << s.name;
  }
}

TEST(Drivers, EpochRecordsAreProduced) {
  const Scenario s = workload::find_scenario("load-step", 1);
  const auto result = run_pipeline(s.grid, s.profile, stream_config(2000),
                                   driver(DriverKind::kAdaptive, 15.0));
  EXPECT_GT(result.epochs.size(), 3u);
  for (const EpochRecord& e : result.epochs) {
    EXPECT_GT(e.candidate_estimate, 0.0);
    EXPECT_GE(e.candidate_estimate, e.deployed_estimate - 1e-9);
  }
}

TEST(Drivers, RemapEventsMatchEpochDecisions) {
  const Scenario s = workload::find_scenario("load-step", 1);
  const auto result = run_pipeline(s.grid, s.profile, stream_config(3000),
                                   driver(DriverKind::kAdaptive));
  std::size_t epoch_remaps = 0;
  for (const EpochRecord& e : result.epochs) epoch_remaps += e.remapped;
  EXPECT_EQ(epoch_remaps, result.remap_count);
}

TEST(Drivers, DeterministicForFixedSeed) {
  const Scenario s = workload::find_scenario("bursty", 5);
  const auto a = run_pipeline(s.grid, s.profile, stream_config(800, 9),
                              driver(DriverKind::kAdaptive));
  const auto b = run_pipeline(s.grid, s.profile, stream_config(800, 9),
                              driver(DriverKind::kAdaptive));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.remap_count, b.remap_count);
  EXPECT_EQ(a.final_mapping, b.final_mapping);
}

TEST(Drivers, RunResultBitIdenticalAcrossRepeatedRuns) {
  // Refactor guard for the shared AdaptationController: a fixed seed must
  // reproduce the whole RunResult — per-epoch timeline included — exactly.
  const Scenario s = workload::find_scenario("load-step", 3);
  auto run_once = [&] {
    return run_pipeline(s.grid, s.profile, stream_config(1500, 7),
                        driver(DriverKind::kAdaptive));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.mean_throughput, b.mean_throughput);
  EXPECT_EQ(a.initial_mapping, b.initial_mapping);
  EXPECT_EQ(a.final_mapping, b.final_mapping);
  EXPECT_EQ(a.remap_count, b.remap_count);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_GT(a.epochs.size(), 0u);
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i], b.epochs[i]) << "epoch " << i;
  }
}

TEST(Drivers, HorizonTruncatesRun) {
  const Scenario s = workload::find_scenario("stable", 1);
  auto options = driver(DriverKind::kStaticOptimal);
  options.horizon = 10.0;
  const auto result =
      run_pipeline(s.grid, s.profile, stream_config(1'000'000), options);
  EXPECT_LT(result.metrics.items_completed(), 1'000'000u);
  EXPECT_LE(result.makespan, 10.0 + 1e-9);
}

TEST(Drivers, ReplicationBudgetUsedForHotStage) {
  // One scorching stage, several idle equal nodes: the mapper should farm
  // the hot stage when given replica budget.
  const auto grid = grid::uniform_cluster(5, 1.0, 1e-4, 1e9);
  sched::PipelineProfile profile;
  profile.stage_work = {0.05, 1.0, 0.05};
  profile.msg_bytes.assign(4, 1e3);
  profile.state_bytes.assign(3, 1e5);

  auto options = driver(DriverKind::kStaticOptimal);
  const auto plain = run_pipeline(grid, profile, stream_config(1500), options);
  options.adapt.max_total_replicas = 6;
  const auto farmed = run_pipeline(grid, profile, stream_config(1500), options);
  EXPECT_GT(farmed.mean_throughput, plain.mean_throughput * 1.8);
  EXPECT_TRUE(farmed.initial_mapping.has_replication());
}

TEST(ChooseMapping, RespectsExplicitMapperChoice) {
  const auto grid = grid::heterogeneous_cluster({2.0, 1.0, 1.0}, 1e-3, 1e8);
  const auto profile = sched::PipelineProfile::uniform(4, 1.0, 1e3);
  const auto est = sched::ResourceEstimate::from_grid(grid, 0.0);
  const sched::PerfModel model;
  for (const MapperKind kind :
       {MapperKind::kAuto, MapperKind::kExhaustive, MapperKind::kDpContiguous,
        MapperKind::kGreedy, MapperKind::kLocalSearch}) {
    const auto result = choose_mapping(model, profile, est, kind, false, 0);
    EXPECT_GT(result.breakdown.throughput, 0.0);
    EXPECT_EQ(result.mapping.num_stages(), 4u);
  }
}

TEST(ChooseMapping, AutoFallsBackOnLargeInstances) {
  // 20 stages x 16 nodes: exhaustive impossible, DP refused (>12 nodes),
  // local search must still answer.
  const auto grid = grid::uniform_cluster(16, 1.0, 1e-3, 1e8);
  const auto profile = sched::PipelineProfile::uniform(20, 1.0, 1e3);
  const auto est = sched::ResourceEstimate::from_grid(grid, 0.0);
  const sched::PerfModel model;
  const auto result =
      choose_mapping(model, profile, est, MapperKind::kAuto, false, 0);
  EXPECT_GT(result.breakdown.throughput, 0.0);
}

TEST(DriverNames, Stringify) {
  EXPECT_STREQ(to_string(DriverKind::kAdaptive), "adaptive");
  EXPECT_STREQ(to_string(DriverKind::kOracle), "oracle");
  EXPECT_STREQ(to_string(DriverKind::kStaticNaive), "static-naive");
  EXPECT_STREQ(to_string(DriverKind::kStaticOptimal), "static-optimal");
  EXPECT_STREQ(to_string(MapperKind::kAuto), "auto");
  EXPECT_STREQ(to_string(MapperKind::kExhaustive), "exhaustive");
  EXPECT_STREQ(to_string(MapperKind::kDpContiguous), "dp-contiguous");
  EXPECT_STREQ(to_string(MapperKind::kGreedy), "greedy");
  EXPECT_STREQ(to_string(MapperKind::kLocalSearch), "local-search");
  EXPECT_STREQ(to_string(AdaptationTrigger::kEveryEpoch), "periodic");
  EXPECT_STREQ(to_string(AdaptationTrigger::kOnChange), "on-change");
}

// Scenario sweep: conservation + sane ordering on every catalogue entry.
class ScenarioSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioSweep, AdaptiveCompletesAndIsCompetitive) {
  const auto scenarios = workload::scenario_catalog(7);
  const Scenario& s = scenarios[static_cast<std::size_t>(GetParam())];
  const auto config = stream_config(1200);
  const auto adaptive_run = run_pipeline(s.grid, s.profile, config,
                                         driver(DriverKind::kAdaptive));
  const auto naive_run = run_pipeline(s.grid, s.profile, config,
                                      driver(DriverKind::kStaticNaive));
  EXPECT_EQ(adaptive_run.metrics.items_completed(), 1200u) << s.name;
  EXPECT_EQ(naive_run.metrics.items_completed(), 1200u) << s.name;
  // The adaptive pattern should never lose badly to the naive baseline.
  EXPECT_GE(adaptive_run.mean_throughput, naive_run.mean_throughput * 0.9)
      << s.name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace gridpipe::sim
