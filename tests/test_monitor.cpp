// Unit and property tests for gridpipe::monitor (windows, forecasters,
// the NWS-style ensemble, the registry).

#include <gtest/gtest.h>

#include <cmath>

#include "monitor/ensemble.hpp"
#include "monitor/registry.hpp"
#include "monitor/window.hpp"
#include "util/rng.hpp"

namespace gridpipe::monitor {
namespace {

// ------------------------------------------------------------- window

TEST(TimedWindow, CapacityEviction) {
  TimedWindow w(3);
  for (int i = 0; i < 5; ++i) w.add(i, i * 10.0);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 30.0);
  EXPECT_DOUBLE_EQ(w.last_value(), 40.0);
  EXPECT_DOUBLE_EQ(w.last_time(), 4.0);
}

TEST(TimedWindow, AgeEviction) {
  TimedWindow w(100, 10.0);
  w.add(0.0, 1.0);
  w.add(9.0, 2.0);
  w.add(16.0, 3.0);  // sample at t=0 is now older than 10s
  EXPECT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.mean(), 2.5);
}

TEST(TimedWindow, RejectsTimeTravel) {
  TimedWindow w(4);
  w.add(5.0, 1.0);
  EXPECT_THROW(w.add(4.0, 1.0), std::invalid_argument);
}

// --------------------------------------------------------- forecasters

TEST(LastValueForecaster, TracksLatest) {
  LastValueForecaster f;
  EXPECT_DOUBLE_EQ(f.forecast(), 0.0);
  f.observe(3.0);
  f.observe(7.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 7.0);
  f.reset();
  EXPECT_DOUBLE_EQ(f.forecast(), 0.0);
}

TEST(WindowMeanForecaster, MeanOverWindow) {
  WindowMeanForecaster f(3);
  for (const double x : {1.0, 2.0, 3.0, 4.0}) f.observe(x);
  EXPECT_DOUBLE_EQ(f.forecast(), 3.0);
}

TEST(WindowMedianForecaster, RobustToSpike) {
  WindowMedianForecaster f(5);
  for (const double x : {1.0, 1.0, 100.0, 1.0, 1.0}) f.observe(x);
  EXPECT_DOUBLE_EQ(f.forecast(), 1.0);
}

TEST(EwmaForecaster, GainBlendsHistory) {
  EwmaForecaster f(0.5);
  f.observe(0.0);
  f.observe(10.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 5.0);
  EXPECT_THROW(EwmaForecaster(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaForecaster(1.5), std::invalid_argument);
}

TEST(Ar1Forecaster, ExtrapolatesLinearRamp) {
  Ar1Forecaster f(16);
  // x(k) = 2k: a perfect AR1-with-intercept fit (m=1, c=2).
  for (int k = 0; k < 10; ++k) f.observe(2.0 * k);
  EXPECT_NEAR(f.forecast(), 20.0, 1e-6);
}

TEST(Ar1Forecaster, FallsBackOnConstantSeries) {
  Ar1Forecaster f(8);
  for (int k = 0; k < 8; ++k) f.observe(5.0);
  EXPECT_NEAR(f.forecast(), 5.0, 1e-9);
  EXPECT_THROW(Ar1Forecaster(2), std::invalid_argument);
}

// Property: every forecaster converges to the value of a constant series.
class ConstantConvergence : public ::testing::TestWithParam<int> {};

TEST_P(ConstantConvergence, ForecastEqualsConstant) {
  auto forecasters = default_forecasters();
  auto& f = forecasters[static_cast<std::size_t>(GetParam())];
  for (int i = 0; i < 64; ++i) f->observe(3.25);
  EXPECT_NEAR(f->forecast(), 3.25, 1e-9) << f->name();
}

INSTANTIATE_TEST_SUITE_P(AllForecasters, ConstantConvergence,
                         ::testing::Range(0, 6));

// ------------------------------------------------------------ ensemble

TEST(Ensemble, PicksMedianUnderSpikes) {
  EnsembleForecaster ensemble = EnsembleForecaster::with_defaults();
  util::Xoshiro256 rng(4);
  // Level 10 with occasional 100 spikes: the median member should win
  // over the last-value member.
  for (int i = 0; i < 200; ++i) {
    ensemble.observe(i % 17 == 0 ? 100.0 : 10.0);
  }
  const double forecast = ensemble.forecast();
  EXPECT_NEAR(forecast, 10.0, 2.0);
}

TEST(Ensemble, TracksBestMemberErrors) {
  EnsembleForecaster ensemble = EnsembleForecaster::with_defaults();
  for (int i = 0; i < 50; ++i) ensemble.observe(2.0);
  const std::size_t best = ensemble.best_member();
  EXPECT_LT(best, ensemble.num_members());
  EXPECT_NEAR(ensemble.member_error(best), 0.0, 1e-9);
  EXPECT_THROW(ensemble.member_error(99), std::out_of_range);
}

TEST(Ensemble, ResetClearsState) {
  EnsembleForecaster ensemble = EnsembleForecaster::with_defaults();
  for (int i = 0; i < 10; ++i) ensemble.observe(5.0);
  ensemble.reset();
  EXPECT_DOUBLE_EQ(ensemble.forecast(), 0.0);
}

TEST(Ensemble, RequiresMembers) {
  EXPECT_THROW(EnsembleForecaster({}), std::invalid_argument);
}

// Property: on a stationary noisy series the ensemble's one-step MAE is
// not much worse than the best individual member (the NWS guarantee).
class EnsembleCompetitive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnsembleCompetitive, WithinFactorOfBestMember) {
  util::Xoshiro256 rng(GetParam());
  std::vector<double> series;
  for (int i = 0; i < 400; ++i) {
    series.push_back(5.0 + util::normal(rng, 0.0, 1.0));
  }

  auto run_mae = [&](Forecaster& f) {
    double err = 0.0;
    int scored = 0;
    for (const double x : series) {
      if (scored > 0) err += std::abs(f.forecast() - x);
      f.observe(x);
      ++scored;
    }
    return err / static_cast<double>(scored - 1);
  };

  double best_individual = std::numeric_limits<double>::infinity();
  for (auto& f : default_forecasters()) {
    best_individual = std::min(best_individual, run_mae(*f));
  }
  EnsembleForecaster ensemble = EnsembleForecaster::with_defaults();
  const double ensemble_mae = run_mae(ensemble);
  EXPECT_LE(ensemble_mae, best_individual * 1.35);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnsembleCompetitive,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------ registry

TEST(Registry, RecordAndForecast) {
  MonitoringRegistry reg;
  const SensorId id{SensorKind::kNodeSpeed, 2, 0};
  EXPECT_FALSE(reg.has(id));
  EXPECT_DOUBLE_EQ(reg.forecast(id, 9.0), 9.0);  // fallback
  for (int i = 0; i < 20; ++i) reg.record(id, i, 4.0);
  EXPECT_TRUE(reg.has(id));
  EXPECT_NEAR(reg.forecast(id, 9.0), 4.0, 1e-9);
  EXPECT_EQ(reg.sample_count(id), 20u);
  EXPECT_EQ(reg.last(id).value(), 4.0);
}

TEST(Registry, SensorsAreIndependent) {
  MonitoringRegistry reg;
  reg.record({SensorKind::kNodeSpeed, 0, 0}, 0.0, 1.0);
  reg.record({SensorKind::kNodeSpeed, 1, 0}, 0.0, 2.0);
  reg.record({SensorKind::kLinkInflation, 0, 1}, 0.0, 3.0);
  EXPECT_EQ(reg.num_sensors(), 3u);
  EXPECT_DOUBLE_EQ(reg.last({SensorKind::kNodeSpeed, 0, 0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.last({SensorKind::kLinkInflation, 0, 1}).value(), 3.0);
  EXPECT_FALSE(reg.last({SensorKind::kLinkInflation, 1, 0}).has_value());
}

TEST(Registry, ClearRemovesEverything) {
  MonitoringRegistry reg;
  reg.record({SensorKind::kStageWork, 0, 0}, 0.0, 1.0);
  reg.clear();
  EXPECT_EQ(reg.num_sensors(), 0u);
}

TEST(Registry, WindowAccess) {
  MonitoringRegistry reg;
  const SensorId id{SensorKind::kStageBytes, 1, 0};
  EXPECT_EQ(reg.window(id), nullptr);
  reg.record(id, 1.0, 10.0);
  ASSERT_NE(reg.window(id), nullptr);
  EXPECT_EQ(reg.window(id)->size(), 1u);
}

}  // namespace
}  // namespace gridpipe::monitor
