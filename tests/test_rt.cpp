// Tests for the unified rt::Runtime API: codec round-trips, spec
// validation errors, RuntimeKind parsing, streaming session semantics,
// the cross-substrate golden parity suite — the same typed stream
// through all four runtimes via rt::make_runtime must produce identical
// ordered outputs and consistent epoch decisions — and the end-to-end
// observability contract (spans and metrics uniform across substrates,
// worker spans shipped over the wire on dist/process).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "grid/builders.hpp"
#include "json_checker.hpp"
#include "obs/status.hpp"
#include "rt/runtime.hpp"
#include "sim/drivers.hpp"

namespace gridpipe::rt {
namespace {

// A typed (non-Bytes) pipeline: int64 -> int64 -> double -> string.
core::PipelineSpec typed_spec() {
  core::PipelineSpec spec;
  spec.stage<std::int64_t, std::int64_t>(
          "add", [](std::int64_t v) { return v + 3; }, /*work=*/0.02,
          /*out_bytes=*/16)
      .stage<std::int64_t, double>(
          "scale", [](std::int64_t v) { return static_cast<double>(v) * 1.5; },
          /*work=*/0.05, /*out_bytes=*/16)
      .stage<double, std::string>(
          "fmt",
          [](double v) { return std::to_string(static_cast<long>(v * 10.0)); },
          /*work=*/0.02, /*out_bytes=*/24);
  return spec;
}

std::vector<std::any> int64_items(std::int64_t n) {
  std::vector<std::any> items;
  for (std::int64_t i = 0; i < n; ++i) items.emplace_back(i);
  return items;
}

std::vector<std::string> expected_outputs(std::int64_t n) {
  const core::PipelineSpec spec = typed_spec();
  std::vector<std::string> expected;
  for (std::int64_t i = 0; i < n; ++i) {
    expected.push_back(
        std::any_cast<std::string>(spec.run_inline(std::any(i))));
  }
  return expected;
}

// ------------------------------------------------------------- codecs

TEST(Codec, ArithmeticRoundTrip) {
  EXPECT_EQ(core::Codec<int>::decode(core::Codec<int>::encode(-42)), -42);
  EXPECT_EQ(core::Codec<std::uint64_t>::decode(
                core::Codec<std::uint64_t>::encode(1u << 30)),
            1u << 30);
  EXPECT_DOUBLE_EQ(core::Codec<double>::decode(core::Codec<double>::encode(
                       3.25)),
                   3.25);
}

TEST(Codec, StringAndBytesRoundTrip) {
  const std::string s = "hello grid";
  EXPECT_EQ(core::Codec<std::string>::decode(
                core::Codec<std::string>::encode(s)),
            s);
  const core::Bytes b{std::byte{1}, std::byte{2}, std::byte{255}};
  EXPECT_EQ(core::Codec<core::Bytes>::decode(core::Codec<core::Bytes>::encode(b)),
            b);
}

TEST(Codec, ArithmeticRejectsWrongSize) {
  EXPECT_THROW(core::Codec<std::uint32_t>::decode(core::Bytes(3)),
               std::invalid_argument);
}

TEST(Codec, ItemCodecBridgesAny) {
  const auto codec = core::ItemCodec::of<std::int64_t>();
  ASSERT_TRUE(static_cast<bool>(codec));
  const core::Bytes wire = codec.encode(std::any(std::int64_t{77}));
  EXPECT_EQ(std::any_cast<std::int64_t>(codec.decode(wire)), 77);
}

// --------------------------------------------------------- validation

TEST(Validation, EmptySpecRejectedAtFactory) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  EXPECT_THROW(make_runtime(RuntimeKind::kThreads, g, core::PipelineSpec{}),
               std::invalid_argument);
}

TEST(Validation, UntypedStageRejectedOnSerializedRuntimes) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  core::PipelineSpec spec;
  spec.stage("anon", [](std::any a) { return a; }, 0.1);
  // In-process runtimes accept std::any passthrough stages...
  EXPECT_NO_THROW(make_runtime(RuntimeKind::kThreads, g, spec));
  EXPECT_NO_THROW(make_runtime(RuntimeKind::kSim, g, spec));
  // ...the serialized ones need codecs, and say so actionably.
  for (RuntimeKind kind : {RuntimeKind::kDist, RuntimeKind::kProcess}) {
    try {
      make_runtime(kind, g, spec);
      FAIL() << "expected invalid_argument for " << to_string(kind);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("wire codec"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("anon"), std::string::npos);
    }
  }
}

TEST(Validation, TypedChainMismatchNamesBothStages) {
  core::PipelineSpec spec;
  spec.stage<std::int64_t, double>(
          "widen", [](std::int64_t v) { return static_cast<double>(v); }, 0.1)
      .stage<std::string, std::string>(
          "shout", [](std::string s) { return s; }, 0.1);
  try {
    spec.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("widen"), std::string::npos);
    EXPECT_NE(what.find("shout"), std::string::npos);
    EXPECT_NE(what.find("double"), std::string::npos);
    EXPECT_NE(what.find("std::string"), std::string::npos);
  }
}

TEST(Validation, StageBuilderRejectsBadWork) {
  core::PipelineSpec spec;
  EXPECT_THROW(spec.stage("zero", [](std::any a) { return a; }, 0.0),
               std::invalid_argument);
  EXPECT_THROW(spec.stage("negative", [](std::any a) { return a; }, -1.0),
               std::invalid_argument);
}

// ------------------------------------------------------- kind parsing

TEST(RuntimeKindNames, ParseRoundTripsAllKinds) {
  for (RuntimeKind kind : kAllRuntimeKinds) {
    EXPECT_EQ(parse_runtime_kind(to_string(kind)), kind);
  }
  EXPECT_FALSE(try_parse_runtime_kind("bogus").has_value());
  EXPECT_THROW(parse_runtime_kind("bogus"), std::invalid_argument);
}

// ----------------------------------------------------------- sessions

TEST(Session, ThreadsStreamsIncrementally) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  RuntimeOptions options;
  options.time_scale = 0.002;
  auto runtime = make_runtime(RuntimeKind::kThreads, g, typed_spec(), options);
  auto session = runtime->open();

  const auto expected = expected_outputs(12);
  std::vector<std::string> got;
  // Push the first half, wait for at least one output to surface while
  // the stream is still open, then push the rest.
  for (std::int64_t i = 0; i < 6; ++i) session->push(std::any(i));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.empty() && std::chrono::steady_clock::now() < deadline) {
    if (auto out = session->try_pop()) {
      got.push_back(std::any_cast<std::string>(std::move(*out)));
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_FALSE(got.empty()) << "no output while the stream was open";
  for (std::int64_t i = 6; i < 12; ++i) session->push(std::any(i));
  session->close();
  const auto report = session->report();
  EXPECT_EQ(report.items, 12u);
  while (auto out = session->try_pop()) {
    got.push_back(std::any_cast<std::string>(std::move(*out)));
  }
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);  // input order restored
}

TEST(Session, PushAfterCloseThrows) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  RuntimeOptions options;
  options.time_scale = 0.002;
  auto runtime = make_runtime(RuntimeKind::kThreads, g, typed_spec(), options);
  auto session = runtime->open();
  session->push(std::any(std::int64_t{1}));
  session->close();
  EXPECT_THROW(session->push(std::any(std::int64_t{2})), std::logic_error);
  session->report();
}

TEST(Session, SimFeedsOnClose) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  auto runtime = make_runtime(RuntimeKind::kSim, g, typed_spec(), {});
  auto session = runtime->open();
  for (std::int64_t i = 0; i < 8; ++i) session->push(std::any(i));
  // The virtual-time feeder defers everything to close().
  EXPECT_FALSE(session->try_pop().has_value());
  session->close();
  const auto expected = expected_outputs(8);
  std::vector<std::string> got;
  while (auto out = session->try_pop()) {
    got.push_back(std::any_cast<std::string>(std::move(*out)));
  }
  EXPECT_EQ(got, expected);
  const auto report = session->report();
  EXPECT_EQ(report.items, 8u);
  EXPECT_GT(report.virtual_seconds, 0.0);
}

TEST(Session, StageExceptionSurfacesAtReport) {
  // A wrong-typed item passes the in-process push (no codecs run), hits
  // the typed wrapper's std::invalid_argument inside a worker thread,
  // and the session must surface it from report() instead of
  // terminating the process.
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  RuntimeOptions options;
  options.time_scale = 0.002;
  auto runtime = make_runtime(RuntimeKind::kThreads, g, typed_spec(), options);
  auto session = runtime->open();
  session->push(std::any(std::string("wrong type")));
  session->close();
  EXPECT_THROW(session->report(), std::invalid_argument);
}

TEST(Session, SerializedPushRejectsWrongType) {
  // On the serialized runtimes the input codec runs at push time, so a
  // wrong-typed item fails immediately on the caller's thread.
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  RuntimeOptions options;
  options.time_scale = 0.002;
  auto runtime = make_runtime(RuntimeKind::kDist, g, typed_spec(), options);
  auto session = runtime->open();
  EXPECT_THROW(session->push(std::any(std::string("wrong type"))),
               std::bad_any_cast);
  session->close();
  EXPECT_EQ(session->report().items, 0u);
}

TEST(Session, ProcessOpenRefusedWhileAnotherSessionIsLive) {
  // Forking while another live session's threads run would copy their
  // locks into the child; the process runtime must refuse.
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  RuntimeOptions options;
  options.time_scale = 0.002;
  auto threads_rt = make_runtime(RuntimeKind::kThreads, g, typed_spec(),
                                 options);
  auto proc_rt = make_runtime(RuntimeKind::kProcess, g, typed_spec(),
                              options);
  auto live = threads_rt->open();
  EXPECT_THROW(proc_rt->open(), std::logic_error);
  live->close();
  live->report();  // joins the threads session...
  live.reset();
  auto proc_session = proc_rt->open();  // ...after which forking is fine
  proc_session->close();
  EXPECT_EQ(proc_session->report().items, 0u);
}

TEST(Session, EmptyStreamReportsZeroItems) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  for (RuntimeKind kind : kAllRuntimeKinds) {
    RuntimeOptions options;
    options.time_scale = 0.002;
    auto runtime = make_runtime(kind, g, typed_spec(), options);
    auto session = runtime->open();
    session->close();
    EXPECT_EQ(session->report().items, 0u) << to_string(kind);
    EXPECT_FALSE(session->try_pop().has_value()) << to_string(kind);
  }
}

// ------------------------------------------------- cross-substrate parity

TEST(RtParity, GoldenOutputsIdenticalAcrossAllFourRuntimes) {
  const auto g = grid::heterogeneous_cluster({2.0, 1.0, 1.0}, 1e-3, 1e8);
  constexpr std::int64_t kItems = 24;
  const auto expected = expected_outputs(kItems);

  for (RuntimeKind kind : kAllRuntimeKinds) {
    RuntimeOptions options;
    options.time_scale = 0.002;
    auto runtime = make_runtime(kind, g, typed_spec(), options);
    const auto report = runtime->run(int64_items(kItems));
    ASSERT_EQ(report.items, static_cast<std::uint64_t>(kItems))
        << to_string(kind);
    ASSERT_EQ(report.outputs.size(), expected.size()) << to_string(kind);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(std::any_cast<const std::string&>(report.outputs[i]),
                expected[i])
          << to_string(kind) << " item " << i;
    }
  }
}

TEST(RtParity, EpochDecisionsConsistentOnStableGrid) {
  // On a uniform, unloaded grid with adaptation enabled, every substrate
  // should plan the same deployment mapping, run at least one epoch, and
  // decide against remapping in all of them. The generous gate margins
  // (change threshold, gain ratio, time scale) keep sleep-quantization
  // noise in the live runtimes' observed speeds from manufacturing a
  // phantom gain — the same jitter allowance the per-runtime quiet-epoch
  // tests use; a remap on a symmetric idle grid is still always wrong.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  constexpr std::int64_t kItems = 100;

  std::string planned;
  for (RuntimeKind kind : kAllRuntimeKinds) {
    RuntimeOptions options;
    options.time_scale = 0.01;
    options.adapt.epoch = 2.0;
    options.adapt.trigger = control::AdaptationTrigger::kOnChange;
    options.adapt.change_threshold = 0.75;
    options.adapt.max_staleness = 1e9;
    options.adapt.policy.min_gain_ratio = 0.60;
    options.sim_config.probe_interval = 1.0;
    auto runtime = make_runtime(kind, g, typed_spec(), options);
    const auto report = runtime->run(int64_items(kItems));

    EXPECT_EQ(report.items, static_cast<std::uint64_t>(kItems))
        << to_string(kind);
    EXPECT_FALSE(report.epochs.empty())
        << to_string(kind) << ": adaptation never ran an epoch";
    EXPECT_EQ(report.remap_count, 0u)
        << to_string(kind) << ": remapped on a stable grid";
    EXPECT_EQ(report.initial_mapping, report.final_mapping) << to_string(kind);
    if (planned.empty()) {
      planned = report.initial_mapping;
    } else {
      EXPECT_EQ(report.initial_mapping, planned)
          << to_string(kind) << ": substrates disagree on the t=0 plan";
    }
  }
}

// --------------------------------------------------------- observability

TEST(RtObservability, TraceAndMetricsCoverEverySubstrate) {
  // One instrumented run per substrate. The trace must tell the whole
  // story: every item's lifetime span, stage spans on worker lanes
  // (tid >= 1 — for dist and process these arrive over the wire as
  // telemetry batches), and the controller's epoch spans. The metrics
  // snapshot must carry the uniform names and agree with the report's
  // exact latency series within the histogram's bucket error.
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  constexpr std::int64_t kItems = 60;

  for (RuntimeKind kind : kAllRuntimeKinds) {
    RuntimeOptions options;
    options.time_scale = 0.01;
    options.adapt.epoch = 2.0;
    options.sim_driver = sim::DriverKind::kAdaptive;
    options.sim_config.probe_interval = 1.0;
    options.obs = obs::Config::full();
    auto runtime = make_runtime(kind, g, typed_spec(), options);
    const auto report = runtime->run(int64_items(kItems));
    ASSERT_EQ(report.items, static_cast<std::uint64_t>(kItems))
        << to_string(kind);

    // Metrics snapshot rides inside the report under the uniform names.
    ASSERT_FALSE(report.obs_metrics.empty()) << to_string(kind);
    const auto* pushed =
        report.obs_metrics.find_counter(obs::names::kItemsPushed);
    const auto* completed =
        report.obs_metrics.find_counter(obs::names::kItemsCompleted);
    ASSERT_NE(pushed, nullptr) << to_string(kind);
    ASSERT_NE(completed, nullptr) << to_string(kind);
    EXPECT_EQ(pushed->value, static_cast<std::uint64_t>(kItems))
        << to_string(kind);
    EXPECT_EQ(completed->value, static_cast<std::uint64_t>(kItems))
        << to_string(kind);

    const auto* latency =
        report.obs_metrics.find_histogram(obs::names::kItemLatency);
    ASSERT_NE(latency, nullptr) << to_string(kind);
    EXPECT_EQ(latency->count, static_cast<std::uint64_t>(kItems))
        << to_string(kind);
    const double exact_p50 = report.metrics.latency_percentile(50.0);
    ASSERT_GT(exact_p50, 0.0) << to_string(kind);
    // Both series see the same completion values; the histogram may be
    // off by its ~3% bucket error.
    EXPECT_NEAR(latency->p50, exact_p50, exact_p50 * 0.10) << to_string(kind);
    const auto* service =
        report.obs_metrics.find_histogram(obs::names::kStageService);
    ASSERT_NE(service, nullptr) << to_string(kind);
    EXPECT_GE(service->count, static_cast<std::uint64_t>(kItems))
        << to_string(kind) << ": fewer stage executions than items";

    // Span census over the trace.
    std::size_t item_spans = 0;
    std::size_t worker_stage_spans = 0;
    std::size_t epoch_spans = 0;
    for (const obs::TraceEvent& e : options.obs.tracer->events()) {
      switch (e.kind) {
        case obs::SpanKind::kItem:
          ++item_spans;
          EXPECT_EQ(e.tid, 0u) << to_string(kind);
          break;
        case obs::SpanKind::kStage:
          if (e.tid >= 1) ++worker_stage_spans;
          break;
        case obs::SpanKind::kEpoch:
          ++epoch_spans;
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(item_spans, static_cast<std::size_t>(kItems)) << to_string(kind);
    EXPECT_GE(worker_stage_spans, static_cast<std::size_t>(kItems))
        << to_string(kind) << ": worker-lane stage spans missing";
    ASSERT_FALSE(report.epochs.empty())
        << to_string(kind) << ": adaptation never ran an epoch";
    EXPECT_EQ(epoch_spans, report.epochs.size()) << to_string(kind);
  }
}

TEST(RtObservability, StatusSnapshotsMidStreamOnEverySubstrate) {
  // The live-introspection contract behind SIGUSR1 / --status-out: while
  // a session is open on any substrate, session->status() and the global
  // status hub both render well-formed JSON naming the substrate; once
  // the session dies its provider unregisters.
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  for (RuntimeKind kind : kAllRuntimeKinds) {
    RuntimeOptions options;
    options.time_scale = 0.002;
    auto runtime = make_runtime(kind, g, typed_spec(), options);
    auto session = runtime->open();
    for (auto& item : int64_items(12)) session->push(std::move(item));

    const std::string text = session->status().dump(2);
    EXPECT_TRUE(test_support::JsonChecker(text).valid())
        << to_string(kind) << ": " << text;
    const std::string tag =
        std::string("\"substrate\": \"") + to_string(kind) + "\"";
    EXPECT_NE(text.find(tag), std::string::npos)
        << to_string(kind) << ": " << text;

    const std::string hub = obs::StatusHub::global().snapshot_json();
    EXPECT_TRUE(test_support::JsonChecker(hub).valid())
        << to_string(kind) << ": " << hub;
    EXPECT_NE(hub.find("\"sessions\""), std::string::npos) << hub;
    EXPECT_NE(hub.find(tag), std::string::npos)
        << to_string(kind) << ": " << hub;

    session->close();
    EXPECT_EQ(session->report().items, 12u) << to_string(kind);
    session.reset();
    EXPECT_EQ(obs::StatusHub::global().snapshot_json().find(tag),
              std::string::npos)
        << to_string(kind) << ": provider leaked past the session";
  }
  EXPECT_EQ(obs::StatusHub::global().size(), 0u);
}

TEST(Session, DefaultStatusReportsUnknownSubstrate) {
  struct BareSession : Session {
    void push(std::any) override {}
    std::optional<std::any> try_pop() override { return std::nullopt; }
    void close() override {}
    core::RunReport report() override { return {}; }
  } session;
  const std::string text = session.status().dump(2);
  EXPECT_TRUE(test_support::JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"substrate\": \"unknown\""), std::string::npos)
      << text;
}

TEST(RtObservability, DisabledByDefaultLeavesReportSnapshotEmpty) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  RuntimeOptions options;
  options.time_scale = 0.002;
  EXPECT_FALSE(options.obs.enabled());
  auto runtime = make_runtime(RuntimeKind::kThreads, g, typed_spec(), options);
  const auto report = runtime->run(int64_items(8));
  EXPECT_EQ(report.items, 8u);
  EXPECT_TRUE(report.obs_metrics.empty());
}

}  // namespace
}  // namespace gridpipe::rt
