// Tests for the open-arrival modes, latency metrics, and the analytic
// M/D/1 latency model.

#include <gtest/gtest.h>

#include <cmath>

#include "grid/builders.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

namespace gridpipe::sim {
namespace {

using grid::NodeId;
using sched::Mapping;
using sched::PipelineProfile;

SimConfig open_config(std::uint64_t items, double rate,
                      SimConfig::Arrivals arrivals) {
  SimConfig config;
  config.num_items = items;
  config.arrivals = arrivals;
  config.arrival_rate = rate;
  config.probe_interval = 0.0;
  config.seed = 5;
  return config;
}

TEST(OpenArrivals, ConservesItemsPoisson) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  open_config(500, 5.0, SimConfig::Arrivals::kPoisson));
  sim.start();
  sim.simulator().run();
  EXPECT_EQ(sim.metrics().items_completed(), 500u);
  EXPECT_EQ(sim.metrics().items_created(), 500u);
}

TEST(OpenArrivals, PeriodicArrivalsPaceTheStream) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  // Capacity is 10/s; feed at 2/s → makespan ≈ items / 2.
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  open_config(200, 2.0, SimConfig::Arrivals::kPeriodic));
  sim.start();
  sim.simulator().run();
  EXPECT_NEAR(sim.metrics().makespan(), 100.0, 2.0);
  // Under light load, latency ≈ raw service + transfer (~0.2 s).
  EXPECT_NEAR(sim.metrics().latency().mean(), 0.2, 0.05);
}

TEST(OpenArrivals, RequiresPositiveRate) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  open_config(10, 0.0, SimConfig::Arrivals::kPoisson));
  EXPECT_THROW(sim.start(), std::invalid_argument);
}

TEST(OpenArrivals, LatencyGrowsWithUtilization) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);  // capacity 10/s
  double previous = 0.0;
  for (const double rate : {3.0, 6.0, 9.0}) {
    PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                    open_config(3000, rate, SimConfig::Arrivals::kPoisson));
    sim.start();
    sim.simulator().run();
    const double mean = sim.metrics().latency().mean();
    EXPECT_GT(mean, previous) << "rate " << rate;
    previous = mean;
  }
  // At 90% utilization the queueing term must dominate raw service.
  EXPECT_GT(previous, 0.5);
}

TEST(LatencyMetrics, PercentilesOrdered) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-4, 1e9);
  const auto p = PipelineProfile::uniform(2, 0.1, 100.0);
  PipelineSim sim(g, p, Mapping(std::vector<NodeId>{0, 1}),
                  open_config(2000, 8.0, SimConfig::Arrivals::kPoisson));
  sim.start();
  sim.simulator().run();
  const auto& m = sim.metrics();
  EXPECT_EQ(m.latencies().size(), 2000u);
  EXPECT_LE(m.latency_percentile(50), m.latency_percentile(95));
  EXPECT_LE(m.latency_percentile(95), m.latency_percentile(99));
  EXPECT_GT(m.latency_percentile(50), 0.0);
}

// ----------------------------------------------------- analytic latency

TEST(LatencyModel, LightLoadEqualsRawPath) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  const auto p = PipelineProfile::uniform(3, 0.1, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  const Mapping m(std::vector<NodeId>{0, 1, 2});
  // Raw path: 3×0.1 service + 2×(1ms + 0.1ms) transfers ≈ 0.3022.
  const double at_light = model.latency_estimate(p, est, m, 0.1);
  EXPECT_NEAR(at_light, 0.3022, 0.01);
}

TEST(LatencyModel, DivergesAtSaturation) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  const auto p = PipelineProfile::uniform(3, 0.1, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  const Mapping m(std::vector<NodeId>{0, 1, 2});
  EXPECT_TRUE(std::isinf(model.latency_estimate(p, est, m, 10.0)));
  EXPECT_TRUE(std::isinf(model.latency_estimate(p, est, m, 50.0)));
  EXPECT_THROW(model.latency_estimate(p, est, m, 0.0),
               std::invalid_argument);
}

TEST(LatencyModel, MonotoneInArrivalRate) {
  const auto g = grid::uniform_cluster(2, 1.0, 1e-3, 1e8);
  const auto p = PipelineProfile::uniform(4, 0.2, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  const Mapping m = Mapping::block(4, 2);
  double previous = 0.0;
  for (const double rate : {0.2, 0.8, 1.6, 2.2}) {
    const double latency = model.latency_estimate(p, est, m, rate);
    EXPECT_GT(latency, previous);
    previous = latency;
  }
}

TEST(LatencyModel, TracksSimulatorAtModerateLoad) {
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
  const auto p = PipelineProfile::uniform(3, 0.1, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  const Mapping m(std::vector<NodeId>{0, 1, 2});
  for (const double rate : {3.0, 6.0}) {
    PipelineSim sim(g, p, m,
                    open_config(4000, rate, SimConfig::Arrivals::kPoisson));
    sim.start();
    sim.simulator().run();
    const double predicted = model.latency_estimate(p, est, m, rate);
    const double observed = sim.metrics().latency().mean();
    EXPECT_NEAR(observed, predicted, 0.35 * predicted) << "rate " << rate;
  }
}

}  // namespace
}  // namespace gridpipe::sim
