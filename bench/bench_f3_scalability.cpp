// EXP-F3 — scalability in stages and processors.
//
// Stationary heterogeneous grid (speeds cycle {2,1,1,0.8,...}); uniform
// and skewed stage-cost pipelines. For each (Ns, Np) we report the
// mapper's modeled throughput and the simulated throughput of that
// mapping. Expected shape: throughput grows with Np until Np ≈ Ns (no
// more pipeline parallelism to exploit), and the model tracks the
// simulator within a few percent.

#include "bench_common.hpp"
#include "grid/builders.hpp"
#include "sim/drivers.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F3", "throughput vs #stages and #processors");
  bench::print_note("speeds cycle {2,1,1,0.8}; LAN 1ms / 100MB/s");

  util::Table table({"profile", "Ns", "Np", "model thr", "sim thr",
                     "sim/model"});

  for (const bool skewed : {false, true}) {
    for (const std::size_t ns : {2u, 4u, 8u, 16u, 32u}) {
      for (const std::size_t np : {2u, 4u, 8u, 16u}) {
        std::vector<double> speeds;
        const double cycle[] = {2.0, 1.0, 1.0, 0.8};
        for (std::size_t n = 0; n < np; ++n) speeds.push_back(cycle[n % 4]);
        const auto g = grid::heterogeneous_cluster(speeds, 1e-3, 1e8);

        sched::PipelineProfile profile;
        for (std::size_t i = 0; i < ns; ++i) {
          profile.stage_work.push_back(
              skewed ? (i % 4 == 0 ? 2.0 : 0.5) : 1.0);
        }
        profile.msg_bytes.assign(ns + 1, 1e4);
        profile.state_bytes.assign(ns, 0.0);

        const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
        const sched::PerfModel model;
        const auto mapped = sim::choose_mapping(
            model, profile, est, sim::MapperKind::kAuto, false, 0);

        sim::SimConfig config;
        config.num_items = 3000;
        config.probe_interval = 0.0;
        config.window = 4 * ns;
        sim::PipelineSim pipeline_sim(g, profile, mapped.mapping, config);
        pipeline_sim.start();
        pipeline_sim.simulator().run();
        const double sim_thr = pipeline_sim.metrics().mean_throughput();

        table.row()
            .add(skewed ? "skewed" : "uniform")
            .add(ns)
            .add(np)
            .add(mapped.breakdown.throughput, 3)
            .add(sim_thr, 3)
            .add(sim_thr / mapped.breakdown.throughput, 3);
      }
    }
  }
  bench::print_table(table);
  return 0;
}
