// EXP-F8 — throughput-optimal vs latency-optimal mapping.
//
// Same pipeline and grid, two objectives, a sweep of offered load.
// Expected shape: at low utilization both objectives fold consecutive
// stages onto the fast node (fewer 20 ms transfer hops beat idle
// parallelism, and folding also wins the throughput tie-break). As the
// offered rate climbs, the latency objective switches to the spread
// mapping — paying the extra hop to cut per-node utilization and hence
// the M/D/1 queueing term — while the throughput objective stays folded.
// Near capacity the headroom gate reports infeasible.

#include "bench_common.hpp"
#include "grid/builders.hpp"
#include "sched/latency_mapper.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F8",
                      "throughput-objective vs latency-objective mapping");
  bench::print_note(
      "grid {2.0, 1.0, 1.0}, 20ms LAN; 3 stages of work 0.4; transfers "
      "cost ~20ms per hop");

  // Slow-ish LAN so transfer hops visibly cost latency.
  const auto g = grid::heterogeneous_cluster({2.0, 1.0, 1.0}, 0.02, 1e8);
  const auto p = sched::PipelineProfile::uniform(3, 0.4, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;

  const auto thr_best = sched::ExhaustiveMapper(model).best(p, est);
  util::Table table({"rate", "latency-map", "model lat", "sim mean lat",
                     "thr-map lat(model)", "thr-map sim lat"});

  for (const double rate : {0.5, 1.0, 1.5, 2.0, 2.6, 3.2}) {
    const auto lat_best = sched::LatencyMapper(model).best(p, est, rate);
    if (!lat_best) {
      table.row().add(rate, 2).add("infeasible").add("-").add("-").add("-").add(
          "-");
      continue;
    }
    auto simulate = [&](const sched::Mapping& m) {
      sim::SimConfig config;
      config.num_items = 4000;
      config.arrivals = sim::SimConfig::Arrivals::kPoisson;
      config.arrival_rate = rate;
      config.probe_interval = 0.0;
      config.seed = 11;
      sim::PipelineSim pipeline_sim(g, p, m, config);
      pipeline_sim.start();
      pipeline_sim.simulator().run();
      return pipeline_sim.metrics().latency().mean();
    };
    table.row()
        .add(rate, 2)
        .add(lat_best->mapping.to_string())
        .add(lat_best->latency, 3)
        .add(simulate(lat_best->mapping), 3)
        .add(model.latency_estimate(p, est, thr_best->mapping, rate), 3)
        .add(simulate(thr_best->mapping), 3);
  }
  bench::print_table(table);
  std::cout << "throughput-optimal mapping: " << thr_best->mapping.to_string()
            << " (capacity "
            << util::format_double(thr_best->breakdown.throughput, 3)
            << "/s)\n";
  return 0;
}
