// EXP-V1 — threaded-runtime validation against the simulator.
//
// The same pipeline, grid, and mapping run (a) in the discrete-event
// simulator and (b) on the threaded runtime with emulated heterogeneity.
// Expected shape: the throughput ratio rt/sim stays within ~±25 % for
// every mapping (wider on a loaded 1-core CI box); errors do not grow
// with co-location.

#include <any>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "grid/builders.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-V1", "threaded runtime vs simulator");

  const auto g = grid::heterogeneous_cluster({2.0, 1.0, 1.0}, 1e-3, 1e8);

  auto make_spec = [] {
    core::PipelineSpec spec;
    spec.stage("s0", [](std::any a) { return a; }, 0.08, 1e3)
        .stage("s1", [](std::any a) { return a; }, 0.16, 1e3)
        .stage("s2", [](std::any a) { return a; }, 0.08, 1e3);
    return spec;
  };
  const auto profile = make_spec().to_profile();

  util::Table table({"mapping", "sim thr", "rt thr", "rt/sim"});
  const std::vector<std::vector<grid::NodeId>> mappings = {
      {0, 1, 2}, {0, 0, 1}, {0, 0, 0}, {1, 0, 2}};

  for (const auto& assignment : mappings) {
    const sched::Mapping mapping{assignment};

    sim::SimConfig sim_config;
    sim_config.num_items = 300;
    sim_config.probe_interval = 0.0;
    sim::PipelineSim des(g, profile, mapping, sim_config);
    des.start();
    des.simulator().run();
    const double sim_thr = des.metrics().mean_throughput();

    core::ExecutorConfig exec_config;
    exec_config.time_scale = 0.004;
    core::Executor executor(g, make_spec(), mapping, exec_config);
    std::vector<std::any> inputs;
    for (int i = 0; i < 300; ++i) inputs.emplace_back(i);
    const auto report = executor.run(std::move(inputs));

    table.row()
        .add(mapping.to_string())
        .add(sim_thr, 3)
        .add(report.throughput, 3)
        .add(report.throughput / sim_thr, 3);
  }
  bench::print_table(table);
  return 0;
}
