// EXP-F6 — stage replication (farm-within-pipeline).
//
// One hot stage (6x the cost of its neighbours) on a pool of equal
// nodes. We sweep the explicit replica count of the hot stage and then
// let the replication-aware mapper pick. Expected shape: throughput rises
// ~linearly with replicas until the next bottleneck (the neighbour
// stages / message path) flattens the curve; the mapper stops at the
// knee.

#include "bench_common.hpp"
#include "grid/builders.hpp"
#include "sim/drivers.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F6", "throughput vs hot-stage replica count");

  const auto g = grid::uniform_cluster(10, 1.0, 1e-3, 1e8);
  sched::PipelineProfile profile;
  profile.stage_work = {0.3, 1.8, 0.3};
  profile.msg_bytes.assign(4, 1e4);
  profile.state_bytes.assign(3, 0.0);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;

  util::Table table({"replicas", "mapping", "model thr", "sim thr"});
  for (std::size_t replicas = 1; replicas <= 8; ++replicas) {
    sched::Mapping mapping(std::vector<grid::NodeId>{0, 1, 2});
    for (std::size_t r = 1; r < replicas; ++r) {
      mapping.add_replica(1, static_cast<grid::NodeId>(2 + r));
    }
    sim::SimConfig config;
    config.num_items = 4000;
    config.probe_interval = 0.0;
    config.window = 32;
    sim::PipelineSim pipeline_sim(g, profile, mapping, config);
    pipeline_sim.start();
    pipeline_sim.simulator().run();
    table.row()
        .add(replicas)
        .add(mapping.to_string())
        .add(model.throughput(profile, est, mapping), 3)
        .add(pipeline_sim.metrics().mean_throughput(), 3);
  }
  bench::print_table(table);

  // What the replication-aware mapper chooses on its own.
  const auto chosen = sim::choose_mapping(model, profile, est,
                                          sim::MapperKind::kAuto, false,
                                          /*max_total_replicas=*/12);
  std::cout << "mapper choice: " << chosen.mapping.to_string()
            << " model thr "
            << util::format_double(chosen.breakdown.throughput, 3) << "\n";
  return 0;
}
