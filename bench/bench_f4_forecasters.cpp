// EXP-F4 — forecaster accuracy per load-trace family.
//
// One-step-ahead MAE of each predictor (and the NWS-style ensemble) on
// samples of the four load-trace families, sampled every 5 s for 2000 s.
// Expected shape: last-value wins on slow random walks, window means win
// on noisy stationary traces, AR1 wins on ramps — and the ensemble sits
// at or near the per-trace best without knowing the trace family.

#include <cmath>
#include <memory>

#include "bench_common.hpp"
#include "grid/load_model.hpp"
#include "monitor/ensemble.hpp"
#include "util/rng.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F4", "forecaster MAE per load-trace family");

  constexpr double kDt = 5.0;
  constexpr double kHorizon = 2000.0;

  struct Family {
    const char* name;
    grid::LoadModelPtr model;
  };
  util::Xoshiro256 noise_rng(17);
  const Family families[] = {
      {"step", std::make_shared<grid::StepLoad>(
                   std::vector<grid::StepLoad::Step>{
                       {500.0, 2.0}, {1200.0, 0.5}})},
      {"sine", std::make_shared<grid::SineLoad>(1.0, 0.8, 400.0)},
      {"random-walk", std::make_shared<grid::RandomWalkLoad>(
                          21, 1.0, 0.15, kDt, kHorizon, 0.0, 3.0)},
      {"on-off", std::make_shared<grid::MarkovOnOffLoad>(22, 2.0, 60.0,
                                                         120.0, kHorizon)},
  };

  // Column per forecaster (fixed default set + ensemble).
  std::vector<std::string> headers{"trace"};
  for (const auto& f : monitor::default_forecasters()) {
    headers.push_back(f->name());
  }
  headers.emplace_back("ensemble");
  headers.emplace_back("best");
  util::Table table(std::move(headers));

  for (const Family& family : families) {
    // Observed series: true load plus small measurement noise.
    std::vector<double> series;
    for (double t = 0.0; t < kHorizon; t += kDt) {
      series.push_back(std::max(
          0.0, family.model->load_at(t) +
                   util::normal(noise_rng, 0.0, 0.02)));
    }
    auto mae_of = [&](monitor::Forecaster& f) {
      double err = 0.0;
      std::size_t scored = 0;
      for (const double x : series) {
        if (scored > 0) err += std::abs(f.forecast() - x);
        f.observe(x);
        ++scored;
      }
      return err / static_cast<double>(scored - 1);
    };

    auto& row = table.row();
    row.add(family.name);
    double best = std::numeric_limits<double>::infinity();
    std::string best_name = "?";
    auto members = monitor::default_forecasters();
    for (auto& f : members) {
      const double mae = mae_of(*f);
      row.add(mae, 4);
      if (mae < best) {
        best = mae;
        best_name = f->name();
      }
    }
    monitor::EnsembleForecaster ensemble =
        monitor::EnsembleForecaster::with_defaults();
    row.add(mae_of(ensemble), 4);
    row.add(best_name);
  }
  bench::print_table(table);
  return 0;
}
