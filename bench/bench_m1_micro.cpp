// EXP-M1 — substrate microbenchmarks (google-benchmark).
//
// Costs of the primitives the adaptation loop leans on: event-queue ops,
// analytic model evaluation, the mapping searches, ensemble updates, and
// message-queue round-trips. These bound how fast an epoch can run —
// the "must decide faster than it saves" constraint.

#include <benchmark/benchmark.h>

#include <cstring>
#include <thread>

#include <unistd.h>

#include "comm/channel.hpp"
#include "grid/builders.hpp"
#include "monitor/ensemble.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/dp_contiguous.hpp"
#include "sched/exhaustive.hpp"
#include "sched/local_search.hpp"
#include "sim/event_queue.hpp"
#include "comm/wire.hpp"
#include "proc/shm_ring.hpp"
#include "proc/transport.hpp"

namespace {

using namespace gridpipe;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.push(util::uniform01(rng), [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_PerfModelBreakdown(benchmark::State& state) {
  const auto ns = static_cast<std::size_t>(state.range(0));
  const auto g = grid::uniform_cluster(4, 1.0, 1e-3, 1e8);
  const auto p = sched::PipelineProfile::uniform(ns, 1.0, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const auto m = sched::Mapping::round_robin(ns, 4);
  const sched::PerfModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.breakdown(p, est, m).throughput);
  }
}
BENCHMARK(BM_PerfModelBreakdown)->Arg(4)->Arg(16)->Arg(64);

void BM_ExhaustiveMapper3x3(benchmark::State& state) {
  const auto g = grid::heterogeneous_cluster({1.0, 2.0, 0.5}, 1e-3, 1e8);
  const auto p = sched::PipelineProfile::uniform(3, 1.0, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  const sched::ExhaustiveMapper mapper(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.best(p, est)->breakdown.throughput);
  }
}
BENCHMARK(BM_ExhaustiveMapper3x3);

void BM_DpMapper(benchmark::State& state) {
  const auto np = static_cast<std::size_t>(state.range(0));
  const auto g = grid::uniform_cluster(np, 1.0, 1e-3, 1e8);
  const auto p = sched::PipelineProfile::uniform(12, 1.0, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  const sched::DpContiguousMapper mapper(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.best(p, est)->breakdown.throughput);
  }
}
BENCHMARK(BM_DpMapper)->Arg(4)->Arg(8)->Arg(12);

void BM_LocalSearchMapper(benchmark::State& state) {
  const auto g = grid::uniform_cluster(16, 1.0, 1e-3, 1e8);
  const auto p = sched::PipelineProfile::uniform(20, 1.0, 1e4);
  const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
  const sched::PerfModel model;
  sched::LocalSearchOptions options;
  options.restarts = 1;
  const sched::LocalSearchMapper mapper(model, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.best(p, est).breakdown.throughput);
  }
}
BENCHMARK(BM_LocalSearchMapper);

void BM_EnsembleObserve(benchmark::State& state) {
  monitor::EnsembleForecaster ensemble =
      monitor::EnsembleForecaster::with_defaults();
  util::Xoshiro256 rng(3);
  for (auto _ : state) {
    ensemble.observe(util::uniform01(rng));
    benchmark::DoNotOptimize(ensemble.forecast());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnsembleObserve);

void BM_MessageQueueRoundTrip(benchmark::State& state) {
  comm::MessageQueue q(4096);
  for (auto _ : state) {
    comm::Message m;
    m.source = 0;
    m.tag = 1;
    q.push(std::move(m));
    benchmark::DoNotOptimize(q.try_pop(0, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageQueueRoundTrip);

// Pop throughput as a function of queue depth. The queue holds range(0)-1
// messages of an un-popped (source, tag) pair; each iteration pushes and
// pops a message of a different pair. The old single-deque implementation
// scanned past the whole backlog on every pop (O(depth)); the bucketed
// queue goes straight to the matching pair's head regardless of depth.
void BM_MessageQueuePopAtDepth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  comm::MessageQueue q(depth + 16);
  for (std::size_t i = 0; i + 1 < depth; ++i) {
    comm::Message backlog;
    backlog.source = 0;
    backlog.tag = 0;
    q.push(std::move(backlog));
  }
  for (auto _ : state) {
    comm::Message m;
    m.source = 1;
    m.tag = 1;
    q.push(std::move(m));
    benchmark::DoNotOptimize(q.try_pop(1, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageQueuePopAtDepth)->Arg(1)->Arg(64)->Arg(256)->Arg(1024);

// Batched drain: one lock acquisition per 64-message train in and out,
// the pattern the executors use to empty a worker queue.
void BM_MessageQueueBatchDrain(benchmark::State& state) {
  constexpr std::size_t kTrain = 64;
  comm::MessageQueue q(4 * kTrain);
  for (auto _ : state) {
    std::vector<comm::Message> batch(kTrain);
    for (auto& m : batch) {
      m.source = 0;
      m.tag = 1;
    }
    q.push_n(std::move(batch));
    benchmark::DoNotOptimize(q.try_pop_n(kTrain, 0, 1));
  }
  state.SetItemsProcessed(state.iterations() * kTrain);
}
BENCHMARK(BM_MessageQueueBatchDrain);

// Wildcard batch drain across many (source, tag) pairs — the executors'
// recv_n path. Exercises the k-way merge over bucket heads rather than
// the exact-pair fast path measured above.
void BM_MessageQueueBatchDrainWildcard(benchmark::State& state) {
  constexpr std::size_t kTrain = 64;
  const int sources = static_cast<int>(state.range(0));
  comm::MessageQueue q(4 * kTrain);
  for (auto _ : state) {
    std::vector<comm::Message> batch(kTrain);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].source = static_cast<int>(i) % sources;
      batch[i].tag = 1;
    }
    q.push_n(std::move(batch));
    benchmark::DoNotOptimize(q.try_pop_n(kTrain));
  }
  state.SetItemsProcessed(state.iterations() * kTrain);
}
BENCHMARK(BM_MessageQueueBatchDrainWildcard)->Arg(1)->Arg(8)->Arg(32);

// ------------------------------------------------ observability hot path
// The obs layer rides inside every per-item code path, so its disabled
// cost must be a predictable branch and its enabled cost a few relaxed
// atomics — these cases guard both sides of that bargain.

// Disabled tracer: one null check, no allocation, no lock.
void BM_ObsRecordSpanDisabled(benchmark::State& state) {
  obs::Tracer* tracer = nullptr;
  double t = 0.0;
  for (auto _ : state) {
    obs::record_span(tracer, obs::SpanKind::kStage, "stage", t, 1e-3, 1);
    benchmark::DoNotOptimize(t += 1e-3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRecordSpanDisabled);

// Enabled tracer: string copy + mutex + vector push per span.
void BM_ObsRecordSpanEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  double t = 0.0;
  for (auto _ : state) {
    obs::record_span(&tracer, obs::SpanKind::kStage, "stage", t, 1e-3, 1);
    benchmark::DoNotOptimize(t += 1e-3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRecordSpanEnabled);

// Disabled metrics: the executors' per-item pattern is a null handle
// check on a pre-resolved StandardMetrics slot.
void BM_ObsCounterDisabled(benchmark::State& state) {
  obs::StandardMetrics metrics;  // all handles null
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    if (metrics.items_completed) metrics.items_completed->add(1);
    benchmark::DoNotOptimize(++ticks);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterDisabled);

void BM_ObsCounterEnabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::StandardMetrics metrics;
  metrics.bind(&registry);
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    if (metrics.items_completed) metrics.items_completed->add(1);
    benchmark::DoNotOptimize(++ticks);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterEnabled);

// Histogram record: frexp bucketing + three relaxed atomics + two CAS
// loops (min/max) per sample.
void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram(obs::names::kItemLatency);
  util::Xoshiro256 rng(7);
  for (auto _ : state) {
    h.record(1e-4 + util::uniform01(rng));
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

// Flight-recorder record: the always-on forensic write — four relaxed
// stores + one release store into a preallocated MAP_SHARED ring. This
// sits in every task/frame/credit path unconditionally, so the budget is
// tight: ~10 ns, and anything near 50 ns/event is a regression
// (perf_smoke.py gates the derived per-item overhead).
void BM_FlightRecord(benchmark::State& state) {
  obs::FlightRecorder recorder(1, obs::kDefaultFlightEvents);
  obs::FlightRing ring = recorder.ring(0);
  double t = 0.0;
  std::uint64_t item = 0;
  for (auto _ : state) {
    ring.record(obs::FlightKind::kTaskStart, t, 1, item++);
    benchmark::DoNotOptimize(t += 1e-3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecord);

// Inert handle (recorder disabled): must degrade to one null check.
void BM_FlightRecordDisabled(benchmark::State& state) {
  obs::FlightRing ring;  // default-constructed: inert
  double t = 0.0;
  std::uint64_t item = 0;
  for (auto _ : state) {
    ring.record(obs::FlightKind::kTaskStart, t, 1, item++);
    benchmark::DoNotOptimize(t += 1e-3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecordDisabled);

// ------------------------------------------------------ wire hot path
// The zero-copy transport work lives or dies on three numbers: what a
// task encode costs with and without the pool, what a frame send costs
// per-frame versus coalesced into one writev train, and what a shm-ring
// hop costs versus any of the socket paths.

// Fresh-allocation encode: one heap vector per frame, the pre-pool shape.
void BM_WireEncodeTaskFresh(benchmark::State& state) {
  const comm::wire::Bytes payload(static_cast<std::size_t>(state.range(0)),
                            std::byte{0x5A});
  for (auto _ : state) {
    comm::wire::Bytes wire;
    const std::size_t off =
        comm::wire::begin_frame(wire, comm::wire::FrameKind::kTask, 1);
    comm::wire::encode_task_header_into(wire, 42, 3);
    wire.insert(wire.end(), payload.begin(), payload.end());
    comm::wire::end_frame(wire, off);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_WireEncodeTaskFresh)->Arg(64)->Arg(4096);

// Pooled encode: same frame, buffer recycled through a BufferPool — the
// steady state is memcpy into retained capacity, zero allocations.
void BM_WireEncodeTaskPooled(benchmark::State& state) {
  const comm::wire::Bytes payload(static_cast<std::size_t>(state.range(0)),
                            std::byte{0x5A});
  comm::wire::BufferPool pool;
  for (auto _ : state) {
    comm::wire::Bytes wire = pool.acquire();
    const std::size_t off =
        comm::wire::begin_frame(wire, comm::wire::FrameKind::kTask, 1);
    comm::wire::encode_task_header_into(wire, 42, 3);
    wire.insert(wire.end(), payload.begin(), payload.end());
    comm::wire::end_frame(wire, off);
    benchmark::DoNotOptimize(wire.data());
    pool.release(std::move(wire));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_WireEncodeTaskPooled)->Arg(64)->Arg(4096);

// Socketpair with a drainer thread that discards everything the bench
// side writes, so the sender measures syscall cost, not a full buffer.
struct DrainedSocket {
  DrainedSocket() {
    auto [a, b] = proc::FrameSocket::make_pair();
    sender = std::move(a);
    drainer = std::thread([sock = std::move(b)]() mutable {
      char sink[1 << 16];
      for (;;) {
        const ssize_t n = ::read(sock.fd(), sink, sizeof(sink));
        if (n <= 0) break;
      }
    });
  }
  ~DrainedSocket() {
    sender.close();  // EOF stops the drainer
    drainer.join();
  }
  proc::FrameSocket sender;
  std::thread drainer;
};

// One blocking send_frame per frame: a write(2) each.
void BM_FrameSocketSendPerFrame(benchmark::State& state) {
  DrainedSocket ds;
  comm::wire::Frame frame;
  frame.kind = comm::wire::FrameKind::kTask;
  frame.node = 1;
  frame.payload = comm::wire::Bytes(256, std::byte{0x42});
  constexpr int kTrain = 16;
  for (auto _ : state) {
    for (int i = 0; i < kTrain; ++i) {
      if (!ds.sender.send_frame(frame)) state.SkipWithError("peer gone");
    }
  }
  state.SetItemsProcessed(state.iterations() * kTrain);
}
BENCHMARK(BM_FrameSocketSendPerFrame);

// The coalesced path: 16 frames staged with queue_buffer, one writev
// train flushes them all.
void BM_FrameSocketWritevTrain(benchmark::State& state) {
  DrainedSocket ds;
  comm::wire::BufferPool pool;
  ds.sender.set_pool(&pool);
  constexpr int kTrain = 16;
  for (auto _ : state) {
    for (int i = 0; i < kTrain; ++i) {
      comm::wire::Bytes buf = pool.acquire();
      const std::size_t off =
          comm::wire::begin_frame(buf, comm::wire::FrameKind::kTask, 1);
      comm::wire::encode_task_header_into(buf, 7, 0);
      buf.resize(buf.size() + 256 - comm::wire::kTaskHeaderBytes,
                 std::byte{0x42});
      comm::wire::end_frame(buf, off);
      ds.sender.queue_buffer(std::move(buf));
    }
    while (ds.sender.pending_out() > 0) {
      if (!ds.sender.flush_some()) state.SkipWithError("peer gone");
    }
  }
  state.SetItemsProcessed(state.iterations() * kTrain);
}
BENCHMARK(BM_FrameSocketWritevTrain);

// Shared-memory ring hop: push a frame-sized blob, pop it back. No
// syscalls at all — two memcpys and a few atomics per round trip.
void BM_ShmRingPushPop(benchmark::State& state) {
  proc::ShmRingMesh mesh(1, std::size_t{1} << 16);
  proc::ShmRing ring = mesh.ring(0, 0);
  const comm::wire::Bytes blob(static_cast<std::size_t>(state.range(0)),
                         std::byte{0x7E});
  std::byte sink[1 << 13];
  for (auto _ : state) {
    if (!ring.push(blob)) state.SkipWithError("ring full");
    std::size_t got = 0;
    while (got < blob.size()) {
      got += ring.pop(sink, sizeof(sink));
    }
    benchmark::DoNotOptimize(sink[0]);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_ShmRingPushPop)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
