#pragma once
// Shared helpers for the experiment binaries. Each bench prints a header,
// the paper-style table(s), and a short expectation note so the output is
// self-describing when captured into bench_output.txt / EXPERIMENTS.md.
//
// Benches that persist a baseline also accept `--json FILE` and write
// their tables as a machine-readable document (scripts/record_bench.sh
// collects these into bench_results/BENCH_*.json so the perf trajectory
// is diffable across commits).

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "util/json.hpp"
#include "util/table.hpp"

namespace gridpipe::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void print_note(const std::string& note) {
  std::cout << "note: " << note << "\n";
}

inline void print_table(const util::Table& table) {
  std::cout << table.to_string() << std::flush;
}

/// The one flag the table benches take: `--json FILE`. Empty when absent.
inline std::string json_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) return argv[i + 1];
  }
  return {};
}

/// Writes `doc` pretty-printed to `path`; returns false (with a stderr
/// note) when the file cannot be opened so benches can exit nonzero.
inline bool write_json(const std::string& path, const util::Json& doc) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  out << doc.dump(2) << "\n";
  std::cout << "json       " << path << "\n";
  return true;
}

}  // namespace gridpipe::bench
