#pragma once
// Shared helpers for the experiment binaries. Each bench prints a header,
// the paper-style table(s), and a short expectation note so the output is
// self-describing when captured into bench_output.txt / EXPERIMENTS.md.

#include <iostream>
#include <string>

#include "util/table.hpp"

namespace gridpipe::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void print_note(const std::string& note) {
  std::cout << "note: " << note << "\n";
}

inline void print_table(const util::Table& table) {
  std::cout << table.to_string() << std::flush;
}

}  // namespace gridpipe::bench
