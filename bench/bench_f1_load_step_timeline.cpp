// EXP-F1 — throughput timeline under a load step.
//
// The fastest node gains 8x competing load at t = 150 s. We run the same
// stream under four drivers for a 600 s horizon and print throughput per
// 20 s window. Expected shape: all drivers equal until the step; the
// static runs collapse and stay low; the adaptive run dips, remaps within
// an epoch or two, and recovers to near the oracle's level.

#include "bench_common.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F1", "throughput timeline under a load step");
  bench::print_note(
      "load x8 hits node 1 (the 2.0-speed node) at t=150s; window=20s");

  constexpr double kHorizon = 600.0;
  constexpr double kWindow = 20.0;

  const workload::Scenario s = workload::find_scenario("load-step", 1);

  std::vector<std::pair<const char*, sim::DriverKind>> drivers = {
      {"naive", sim::DriverKind::kStaticNaive},
      {"static", sim::DriverKind::kStaticOptimal},
      {"adaptive", sim::DriverKind::kAdaptive},
      {"oracle", sim::DriverKind::kOracle},
  };

  std::vector<std::string> headers{"t"};
  for (const auto& [name, kind] : drivers) headers.emplace_back(name);
  util::Table table(std::move(headers));

  std::vector<std::vector<double>> series;
  std::vector<std::size_t> remaps;
  for (const auto& [name, kind] : drivers) {
    sim::SimConfig config;
    config.num_items = 1'000'000;  // never exhausts within the horizon
    config.probe_interval = 5.0;
    config.probe_noise = 0.0;
    sim::DriverOptions options;
    options.driver = kind;
    options.adapt.epoch = 10.0;
    options.horizon = kHorizon;
    const auto result = sim::run_pipeline(s.grid, s.profile, config, options);
    series.push_back(
        result.metrics.throughput_timeline(kWindow, kHorizon));
    remaps.push_back(result.remap_count);
  }

  for (std::size_t w = 0; w < series[0].size(); ++w) {
    auto& row = table.row();
    row.add(static_cast<double>(w) * kWindow, 0);
    for (const auto& run : series) row.add(run[w], 3);
  }
  bench::print_table(table);

  std::cout << "remaps:";
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    std::cout << " " << drivers[i].first << "=" << remaps[i];
  }
  std::cout << "\n";
  return 0;
}
