// EXP-F2 — adaptation overhead vs migration state size and epoch length.
//
// The oscillating scenario forces frequent remaps (the bottleneck node
// alternates every half period), so per-remap freezes accumulate.
// Overhead is measured against the oracle (free instantaneous remaps):
//   overhead % = (oracle_thr - adaptive_thr) / oracle_thr.
// Expected shape: overhead grows with state size, and for heavy states it
// shrinks as epochs lengthen (fewer, better-amortized remaps) — the
// cost-gate keeps the worst corner bounded.

#include "bench_common.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F2",
                      "adaptation overhead vs state size and epoch");

  constexpr std::uint64_t kItems = 4000;
  const double state_sizes[] = {0.0, 64e6, 256e6, 1024e6};
  const double epochs[] = {5.0, 15.0, 60.0};

  util::Table table({"state(MB)", "epoch(s)", "adaptive thr", "oracle thr",
                     "remaps", "overhead %"});

  for (const double state : state_sizes) {
    for (const double epoch : epochs) {
      workload::Scenario s = workload::find_scenario("oscillating", 2);
      s.profile.state_bytes.assign(s.profile.state_bytes.size(), state);

      sim::SimConfig config;
      config.num_items = kItems;
      config.probe_interval = 5.0;
      config.probe_noise = 0.0;

      sim::DriverOptions adaptive;
      adaptive.driver = sim::DriverKind::kAdaptive;
      adaptive.adapt.epoch = epoch;
      const auto a = sim::run_pipeline(s.grid, s.profile, config, adaptive);

      sim::DriverOptions oracle;
      oracle.driver = sim::DriverKind::kOracle;
      oracle.adapt.epoch = epoch;
      const auto o = sim::run_pipeline(s.grid, s.profile, config, oracle);

      const double overhead =
          100.0 * (o.mean_throughput - a.mean_throughput) /
          o.mean_throughput;
      table.row()
          .add(state / 1e6, 0)
          .add(epoch, 0)
          .add(a.mean_throughput, 3)
          .add(o.mean_throughput, 3)
          .add(a.remap_count)
          .add(overhead, 1);
    }
  }
  bench::print_table(table);
  return 0;
}
