// EXP-F2 — adaptation overhead vs migration state size and epoch length.
//
// The oscillating scenario forces frequent remaps (the bottleneck node
// alternates every half period), so per-remap freezes accumulate.
// Overhead is measured against the oracle (free instantaneous remaps):
//   overhead % = (oracle_thr - adaptive_thr) / oracle_thr.
// Expected shape: overhead grows with state size, and for heavy states it
// shrinks as epochs lengthen (fewer, better-amortized remaps) — the
// cost-gate keeps the worst corner bounded.

#include "bench_common.hpp"
#include "rt/runtime.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"
#include "workload/substrate.hpp"

namespace {

using namespace gridpipe;

// ------------------------------------------------- substrate overhead
// Part 2 of the experiment: the cost of the adaptation *mechanism*
// itself (epoch timers, speed observations, registry feeds, quiet
// decisions) on every execution substrate, measured on the stable
// scenario where no remap should ever fire:
//   overhead % = (thr_off - thr_on) / thr_off
// Every row runs the same passthrough pipeline on the same grid through
// rt::make_runtime — the same setup gridpipe_cli --runtime drives — so
// the DES, threaded, message-passing and process-per-node rows are
// directly comparable.

constexpr std::uint64_t kLiveItems = 200;
constexpr double kLiveTimeScale = 0.002;
constexpr double kLiveEpoch = 10.0;

core::RunReport run_substrate(rt::RuntimeKind kind,
                              const workload::Scenario& s,
                              const sched::Mapping& mapping, bool adapt,
                              bool obs = false) {
  rt::RuntimeOptions options;
  options.time_scale = kLiveTimeScale;
  options.adapt.epoch = adapt ? kLiveEpoch : 0.0;
  options.initial_mapping = mapping;
  // The obs rows measure the fully instrumented per-item cost: tracer +
  // metrics sinks on top of the always-on flight recorder the off/on
  // rows already carry. perf_smoke.py gates the derived per-item delta.
  if (obs) options.obs = obs::Config::full();
  // The sim rows compare the adaptive driver against the static-optimal
  // baseline (the factory maps adapt.epoch = 0 to exactly that).
  options.sim_driver = sim::DriverKind::kAdaptive;
  options.sim_config.num_items = kLiveItems;
  options.sim_config.probe_interval = 5.0;
  auto runtime = rt::make_runtime(
      kind, s.grid, workload::passthrough_pipeline(s.profile), options);
  std::vector<std::any> inputs(kLiveItems, std::any(std::uint64_t{0}));
  return runtime->run(std::move(inputs));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridpipe;
  const std::string json_path = bench::json_out_path(argc, argv);
  util::Json doc = util::Json::object();
  doc["bench"] = "EXP-F2";
  util::Json& sweep = doc["state_epoch_sweep"];
  sweep = util::Json::array();

  bench::print_header("EXP-F2",
                      "adaptation overhead vs state size and epoch");

  constexpr std::uint64_t kItems = 4000;
  const double state_sizes[] = {0.0, 64e6, 256e6, 1024e6};
  const double epochs[] = {5.0, 15.0, 60.0};

  util::Table table({"state(MB)", "epoch(s)", "adaptive thr", "oracle thr",
                     "remaps", "overhead %"});

  for (const double state : state_sizes) {
    for (const double epoch : epochs) {
      workload::Scenario s = workload::find_scenario("oscillating", 2);
      s.profile.state_bytes.assign(s.profile.state_bytes.size(), state);

      sim::SimConfig config;
      config.num_items = kItems;
      config.probe_interval = 5.0;
      config.probe_noise = 0.0;

      sim::DriverOptions adaptive;
      adaptive.driver = sim::DriverKind::kAdaptive;
      adaptive.adapt.epoch = epoch;
      const auto a = sim::run_pipeline(s.grid, s.profile, config, adaptive);

      sim::DriverOptions oracle;
      oracle.driver = sim::DriverKind::kOracle;
      oracle.adapt.epoch = epoch;
      const auto o = sim::run_pipeline(s.grid, s.profile, config, oracle);

      const double overhead =
          100.0 * (o.mean_throughput - a.mean_throughput) /
          o.mean_throughput;
      table.row()
          .add(state / 1e6, 0)
          .add(epoch, 0)
          .add(a.mean_throughput, 3)
          .add(o.mean_throughput, 3)
          .add(a.remap_count)
          .add(overhead, 1);

      util::Json row = util::Json::object();
      row["state_mb"] = state / 1e6;
      row["epoch_s"] = epoch;
      row["adaptive_throughput"] = a.mean_throughput;
      row["oracle_throughput"] = o.mean_throughput;
      row["remaps"] = a.remap_count;
      row["overhead_pct"] = overhead;
      sweep.push_back(std::move(row));
    }
  }
  bench::print_table(table);

  bench::print_header("EXP-F2b", "adaptation mechanism overhead per substrate");
  const workload::Scenario stable = workload::find_scenario("stable", 2);
  const sched::Mapping deployed = workload::planned_mapping(
      stable.grid, stable.profile, control::AdaptationConfig{});
  util::Table substrate({"runtime", "thr (off)", "thr (on)", "thr (obs)",
                         "remaps", "overhead %", "obs %"});
  util::Json& per_substrate = doc["substrate_overhead"];
  per_substrate = util::Json::array();
  for (rt::RuntimeKind kind : rt::kAllRuntimeKinds) {
    const auto off = run_substrate(kind, stable, deployed, false);
    const auto on = run_substrate(kind, stable, deployed, true);
    // Fully instrumented (tracer + metrics on top of the always-on
    // flight recorder), adaptation off so the delta is pure obs cost.
    const auto obs = run_substrate(kind, stable, deployed, false, true);
    const double overhead =
        100.0 * (off.throughput - on.throughput) / off.throughput;
    const double obs_overhead =
        100.0 * (off.throughput - obs.throughput) / off.throughput;
    substrate.row()
        .add(rt::to_string(kind))
        .add(off.throughput, 3)
        .add(on.throughput, 3)
        .add(obs.throughput, 3)
        .add(on.remap_count)
        .add(overhead, 1)
        .add(obs_overhead, 1);

    util::Json row = util::Json::object();
    row["runtime"] = rt::to_string(kind);
    row["throughput_off"] = off.throughput;
    row["throughput_on"] = on.throughput;
    row["throughput_obs"] = obs.throughput;
    row["remaps"] = on.remap_count;
    row["overhead_pct"] = overhead;
    row["obs_overhead_pct"] = obs_overhead;
    per_substrate.push_back(std::move(row));
  }
  bench::print_table(substrate);

  if (!json_path.empty() && !bench::write_json(json_path, doc)) return 1;
  return 0;
}
