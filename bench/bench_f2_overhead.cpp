// EXP-F2 — adaptation overhead vs migration state size and epoch length.
//
// The oscillating scenario forces frequent remaps (the bottleneck node
// alternates every half period), so per-remap freezes accumulate.
// Overhead is measured against the oracle (free instantaneous remaps):
//   overhead % = (oracle_thr - adaptive_thr) / oracle_thr.
// Expected shape: overhead grows with state size, and for heavy states it
// shrinks as epochs lengthen (fewer, better-amortized remaps) — the
// cost-gate keeps the worst corner bounded.

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "proc/process_executor.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"
#include "workload/substrate.hpp"

namespace {

using namespace gridpipe;

// ------------------------------------------------- substrate overhead
// Part 2 of the experiment: the cost of the adaptation *mechanism*
// itself (epoch timers, speed observations, registry feeds, quiet
// decisions) on every execution substrate, measured on the stable
// scenario where no remap should ever fire:
//   overhead % = (thr_off - thr_on) / thr_off
// run on the same profile/grid per row (workload::substrate adapters —
// the same setup gridpipe_cli --runtime drives), so the DES, threaded,
// message-passing and process-per-node rows are directly comparable.

constexpr std::uint64_t kLiveItems = 200;
constexpr double kLiveTimeScale = 0.002;
constexpr double kLiveEpoch = 10.0;

control::AdaptationConfig live_adapt(bool enabled) {
  control::AdaptationConfig adapt;
  adapt.epoch = enabled ? kLiveEpoch : 0.0;
  return adapt;
}

core::RunReport run_threads(const workload::Scenario& s,
                            const sched::Mapping& mapping, bool adapt) {
  core::ExecutorConfig config;
  config.time_scale = kLiveTimeScale;
  config.adapt = live_adapt(adapt);
  core::Executor executor(s.grid, workload::passthrough_spec(s.profile),
                          mapping, config);
  std::vector<std::any> inputs(kLiveItems, std::any(0));
  return executor.run(std::move(inputs));
}

core::RunReport run_dist(const workload::Scenario& s,
                         const sched::Mapping& mapping, bool adapt) {
  core::DistExecutorConfig config;
  config.time_scale = kLiveTimeScale;
  config.adapt = live_adapt(adapt);
  core::DistributedExecutor executor(
      s.grid, workload::passthrough_dist_stages(s.profile), mapping, config);
  return executor.run(std::vector<core::Bytes>(kLiveItems, core::Bytes(64)));
}

core::RunReport run_process(const workload::Scenario& s,
                            const sched::Mapping& mapping, bool adapt) {
  proc::ProcExecutorConfig config;
  config.time_scale = kLiveTimeScale;
  config.adapt = live_adapt(adapt);
  proc::ProcessExecutor executor(
      s.grid, workload::passthrough_dist_stages(s.profile), mapping, config);
  return executor.run(std::vector<core::Bytes>(kLiveItems, core::Bytes(64)));
}

}  // namespace

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F2",
                      "adaptation overhead vs state size and epoch");

  constexpr std::uint64_t kItems = 4000;
  const double state_sizes[] = {0.0, 64e6, 256e6, 1024e6};
  const double epochs[] = {5.0, 15.0, 60.0};

  util::Table table({"state(MB)", "epoch(s)", "adaptive thr", "oracle thr",
                     "remaps", "overhead %"});

  for (const double state : state_sizes) {
    for (const double epoch : epochs) {
      workload::Scenario s = workload::find_scenario("oscillating", 2);
      s.profile.state_bytes.assign(s.profile.state_bytes.size(), state);

      sim::SimConfig config;
      config.num_items = kItems;
      config.probe_interval = 5.0;
      config.probe_noise = 0.0;

      sim::DriverOptions adaptive;
      adaptive.driver = sim::DriverKind::kAdaptive;
      adaptive.adapt.epoch = epoch;
      const auto a = sim::run_pipeline(s.grid, s.profile, config, adaptive);

      sim::DriverOptions oracle;
      oracle.driver = sim::DriverKind::kOracle;
      oracle.adapt.epoch = epoch;
      const auto o = sim::run_pipeline(s.grid, s.profile, config, oracle);

      const double overhead =
          100.0 * (o.mean_throughput - a.mean_throughput) /
          o.mean_throughput;
      table.row()
          .add(state / 1e6, 0)
          .add(epoch, 0)
          .add(a.mean_throughput, 3)
          .add(o.mean_throughput, 3)
          .add(a.remap_count)
          .add(overhead, 1);
    }
  }
  bench::print_table(table);

  bench::print_header("EXP-F2b", "adaptation mechanism overhead per substrate");
  const workload::Scenario stable = workload::find_scenario("stable", 2);
  const sched::Mapping deployed = workload::planned_mapping(
      stable.grid, stable.profile, control::AdaptationConfig{});
  util::Table substrate({"runtime", "thr (off)", "thr (on)", "remaps",
                         "overhead %"});
  auto add_row = [&](const char* name, double off, double on,
                     std::size_t remaps) {
    substrate.row().add(name).add(off, 3).add(on, 3).add(remaps).add(
        100.0 * (off - on) / off, 1);
  };
  {
    sim::SimConfig config;
    config.num_items = kLiveItems;
    config.probe_interval = 5.0;
    sim::DriverOptions off;
    off.driver = sim::DriverKind::kStaticOptimal;
    sim::DriverOptions on;
    on.driver = sim::DriverKind::kAdaptive;
    on.adapt.epoch = kLiveEpoch;
    const auto o =
        sim::run_pipeline(stable.grid, stable.profile, config, off);
    const auto a = sim::run_pipeline(stable.grid, stable.profile, config, on);
    add_row("sim", o.mean_throughput, a.mean_throughput, a.remap_count);
  }
  {
    const auto off = run_threads(stable, deployed, false);
    const auto on = run_threads(stable, deployed, true);
    add_row("threads", off.throughput, on.throughput, on.remap_count);
  }
  {
    const auto off = run_dist(stable, deployed, false);
    const auto on = run_dist(stable, deployed, true);
    add_row("dist", off.throughput, on.throughput, on.remap_count);
  }
  {
    const auto off = run_process(stable, deployed, false);
    const auto on = run_process(stable, deployed, true);
    add_row("process", off.throughput, on.throughput, on.remap_count);
  }
  bench::print_table(substrate);
  return 0;
}
