// EXP-A1 — ablations of the adaptation machinery.
//
// On a bursty scenario (the stress case for stability), compare the full
// adaptive configuration against variants with one safeguard removed:
//   no-hysteresis  — act on the first epoch a candidate wins
//   no-cost-gate   — ignore migration cost in the decision
//   eager          — both off and zero min-gain (flap-prone)
//   no-probes      — only passive observations (partial observability)
//   long-window    — sluggish forecasts (registry window 512)
// Expected shape: the eager variants remap far more often for equal or
// worse throughput once migration state is non-trivial; no-probes reacts
// slower because idle nodes are invisible until used.

#include "bench_common.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-A1", "adaptation-policy ablations");

  constexpr std::uint64_t kItems = 6000;
  workload::Scenario s = workload::find_scenario("bursty", 6);
  s.profile.state_bytes.assign(s.profile.state_bytes.size(), 64e6);

  struct Variant {
    const char* name;
    sim::DriverOptions options;
    bool probes = true;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "full";
    v.options.driver = sim::DriverKind::kAdaptive;
    v.options.adapt.epoch = 10.0;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "no-hysteresis";
    v.options.adapt.policy.enable_hysteresis = false;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "no-cost-gate";
    v.options.adapt.policy.enable_cost_gate = false;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "eager";
    v.options.adapt.policy.enable_hysteresis = false;
    v.options.adapt.policy.enable_cost_gate = false;
    v.options.adapt.policy.min_gain_ratio = 0.0;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "no-probes";
    v.probes = false;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "long-window";
    v.options.adapt.registry.window_capacity = 512;
    variants.push_back(v);
  }

  util::Table table({"variant", "makespan(s)", "thr", "remaps"});
  for (const Variant& v : variants) {
    sim::SimConfig config;
    config.num_items = kItems;
    config.probe_interval = v.probes ? 5.0 : 0.0;
    config.probe_noise = 0.05;
    const auto result =
        sim::run_pipeline(s.grid, s.profile, config, v.options);
    table.row()
        .add(v.name)
        .add(result.makespan, 1)
        .add(result.mean_throughput, 3)
        .add(result.remap_count);
  }
  bench::print_table(table);
  return 0;
}
