// EXP-T1 — the mapping-selection calibration table.
//
// Reproduces the 3-stage / 3-processor parameter study (the ICCS-2004
// companion table): for each parameter row, report the mapping our model
// selects, the model's throughput, and the throughput the discrete-event
// simulator measures for that mapping. The reference winner and PEPA
// throughput from the published table are printed alongside.
//
// Expected shape: same winners (up to throughput ties), and our
// deterministic model reports ~1.8x the PEPA continuous-time rates
// (exponential service loses ~45% to stochastic interleaving); the
// *ratios across rows* track the paper.

#include "bench_common.hpp"
#include "grid/builders.hpp"
#include "sched/exhaustive.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace gridpipe;

struct Row {
  double l12, l23, l13;
  double t1, t2, t3;
  const char* paper_mapping;
  double paper_throughput;
};

constexpr Row kRows[] = {
    {1e-4, 1e-4, 1e-4, 0.1, 0.1, 0.1, "(1,2,3)", 5.63467},
    {1e-4, 1e-4, 1e-4, 0.2, 0.2, 0.2, "(1,2,3)", 2.81892},
    {1e-4, 1e-4, 1e-4, 0.1, 0.1, 1.0, "(1,2,1)", 3.36671},
    {0.1, 0.1, 0.1, 0.1, 0.1, 1.0, "(1,2,2)", 2.59914},
    {1.0, 1.0, 1.0, 0.1, 0.1, 1.0, "(1,1,1)", 1.87963},
    {0.1, 1.0, 1.0, 0.1, 0.1, 0.1, "(1,2,2)", 2.59914},
    {0.1, 1.0, 1.0, 1.0, 1.0, 0.01, "(1,3,3)", 0.49988},
};

}  // namespace

int main() {
  bench::print_header("EXP-T1",
                      "mapping selection, 3 stages x 3 processors");
  bench::print_note(
      "paper columns are the PEPA-model winners/rates from the companion "
      "calibration table; model thr is deterministic (no exponential "
      "service loss), so absolute values sit ~1.8x above PEPA");

  const sched::PerfModel model;
  util::Table table({"l1-2", "l2-3", "l1-3", "t1", "t2", "t3", "our map",
                     "model thr", "sim thr", "paper map", "paper thr",
                     "winner"});

  for (const Row& row : kRows) {
    grid::Grid g = grid::heterogeneous_cluster(
        {1.0 / row.t1, 1.0 / row.t2, 1.0 / row.t3}, 1e-4, 1e12);
    g.set_symmetric_link(0, 1, grid::Link(row.l12, 1e12));
    g.set_symmetric_link(1, 2, grid::Link(row.l23, 1e12));
    g.set_symmetric_link(0, 2, grid::Link(row.l13, 1e12));

    sched::PipelineProfile profile =
        sched::PipelineProfile::uniform(3, 1.0, 1.0);
    profile.source_node = 0;
    const auto est = sched::ResourceEstimate::from_grid(g, 0.0);

    sched::ExhaustiveOptions opts;
    opts.pin_first_stage = true;  // the table pins stage 1 on processor 1
    const auto best = sched::ExhaustiveMapper(model, opts).best(profile, est);

    // Simulate the chosen mapping.
    sim::SimConfig config;
    config.num_items = 2000;
    config.probe_interval = 0.0;
    config.window = 16;
    sim::PipelineSim pipeline_sim(g, profile, best->mapping, config);
    pipeline_sim.start();
    pipeline_sim.simulator().run();

    // Is the paper's winner throughput-equivalent to ours under our model?
    auto parse = [](const char* tuple) {
      std::vector<grid::NodeId> nodes;
      for (const char* c = tuple; *c; ++c) {
        if (*c >= '1' && *c <= '9') {
          nodes.push_back(static_cast<grid::NodeId>(*c - '1'));
        }
      }
      return sched::Mapping(nodes);
    };
    const double paper_thr_ours =
        model.throughput(profile, est, parse(row.paper_mapping));
    const bool agree =
        best->breakdown.throughput <= paper_thr_ours * (1.0 + 1e-6);

    table.row()
        .add(row.l12, 4)
        .add(row.l23, 4)
        .add(row.l13, 4)
        .add(row.t1, 2)
        .add(row.t2, 2)
        .add(row.t3, 2)
        .add(best->mapping.to_string())
        .add(best->breakdown.throughput, 3)
        .add(pipeline_sim.metrics().mean_throughput(), 3)
        .add(row.paper_mapping)
        .add(row.paper_throughput, 3)
        .add(agree ? "match" : "DIFF");
  }
  bench::print_table(table);
  return 0;
}
