// EXP-A2 — adaptation trigger: periodic vs change-driven.
//
// The kEveryEpoch trigger runs a full mapping search at every epoch; the
// kOnChange trigger gates the search behind a resource-change detector
// (25 % relative move) with a staleness bound. Expected shape: identical
// throughput on abrupt scenarios (a big step always fires the gate) with
// an order of magnitude fewer mapping searches; on continuously drifting
// loads the gate trades a few percent of throughput for most of the
// decision cost. "decisions" counts full mapper runs; "checks" counts
// epochs (cheap estimate builds).

#include "bench_common.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-A2", "periodic vs change-driven adaptation");

  constexpr std::uint64_t kItems = 6000;
  util::Table table({"scenario", "trigger", "thr", "remaps", "decisions",
                     "checks"});

  for (const char* name : {"stable", "load-step", "bursty", "drifting"}) {
    const workload::Scenario s = workload::find_scenario(name, 3);
    for (const auto trigger : {sim::AdaptationTrigger::kEveryEpoch,
                               sim::AdaptationTrigger::kOnChange}) {
      sim::SimConfig config;
      config.num_items = kItems;
      config.probe_interval = 5.0;
      config.probe_noise = 0.02;

      sim::DriverOptions options;
      options.driver = sim::DriverKind::kAdaptive;
      options.adapt.epoch = 10.0;
      options.adapt.trigger = trigger;
      const auto result =
          sim::run_pipeline(s.grid, s.profile, config, options);

      std::size_t decisions = 0;
      for (const auto& e : result.epochs) decisions += e.decided;
      table.row()
          .add(name)
          .add(to_string(trigger))
          .add(result.mean_throughput, 3)
          .add(result.remap_count)
          .add(decisions)
          .add(result.epochs.size());
    }
  }
  bench::print_table(table);
  return 0;
}
