// EXP-T2 — stream completion time across the scenario catalogue.
//
// 10 000-item streams through every scenario under the four drivers.
// Reported: makespan, mean throughput, remap count, and the adaptive
// speedup over static-optimal. Expected shape: speedup ≈ 1.0 on the
// stable scenario, > 1 on every dynamic one, and adaptive within a few
// percent of oracle.

#include "bench_common.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-T2", "completion time per scenario and driver");

  constexpr std::uint64_t kItems = 10'000;
  util::Table table({"scenario", "driver", "makespan(s)", "thr(items/s)",
                     "remaps", "speedup-vs-static"});

  for (const workload::Scenario& s : workload::scenario_catalog(1)) {
    double static_makespan = 0.0;
    for (const auto kind :
         {sim::DriverKind::kStaticNaive, sim::DriverKind::kStaticOptimal,
          sim::DriverKind::kAdaptive, sim::DriverKind::kOracle}) {
      sim::SimConfig config;
      config.num_items = kItems;
      config.probe_interval = 5.0;
      config.probe_noise = 0.0;
      sim::DriverOptions options;
      options.driver = kind;
      options.adapt.epoch = 10.0;
      const auto result =
          sim::run_pipeline(s.grid, s.profile, config, options);
      if (kind == sim::DriverKind::kStaticOptimal) {
        static_makespan = result.makespan;
      }
      const bool have_static = static_makespan > 0.0;
      table.row()
          .add(s.name)
          .add(to_string(kind))
          .add(result.makespan, 1)
          .add(result.mean_throughput, 3)
          .add(result.remap_count)
          .add(have_static ? util::format_double(
                                 static_makespan / result.makespan, 3)
                           : std::string("-"));
    }
  }
  bench::print_table(table);
  return 0;
}
