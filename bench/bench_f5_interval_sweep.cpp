// EXP-F5 — the adaptation-interval trade-off.
//
// Fast-drifting loads, heavy (512 MB) stage state. Two adaptive
// configurations sweep the epoch length:
//   gated — the full policy (min-gain, cost gate, hysteresis),
//   naive — all safeguards off (remap whenever the model sees any win).
// Expected shape: the naive variant traces a U — short epochs burn time
// in migration freezes, long epochs leave stale mappings — while the
// gated variant stays near the U's bottom even at short epochs because
// the gates suppress unprofitable remaps. Staleness still penalizes very
// long epochs for both.

#include "bench_common.hpp"
#include "grid/builders.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F5", "completion time vs adaptation interval");
  bench::print_note("fast random-walk loads, 512 MB stage state");

  constexpr std::uint64_t kItems = 3000;
  const double epochs[] = {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0};

  // Faster drift than the catalogue scenario: steps every 5 s.
  grid::Grid g = grid::heterogeneous_cluster({2.0, 1.0, 1.0, 0.8}, 1e-3, 1e8);
  for (grid::NodeId n = 0; n < g.num_nodes(); ++n) {
    grid::set_node_load(g, n,
                        std::make_shared<grid::RandomWalkLoad>(
                            0x9000 + n, 0.5, 0.45, 5.0, 2e5, 0.0, 4.0));
  }
  sched::PipelineProfile profile = workload::reference_profile();
  profile.state_bytes.assign(profile.state_bytes.size(), 512e6);

  util::Table table({"epoch(s)", "naive makespan", "naive remaps",
                     "gated makespan", "gated remaps"});
  for (const double epoch : epochs) {
    sim::SimConfig config;
    config.num_items = kItems;
    config.probe_interval = std::min(5.0, epoch);
    config.probe_noise = 0.05;

    sim::DriverOptions naive;
    naive.driver = sim::DriverKind::kAdaptive;
    naive.adapt.epoch = epoch;
    naive.adapt.policy.enable_hysteresis = false;
    naive.adapt.policy.enable_cost_gate = false;
    naive.adapt.policy.min_gain_ratio = 0.0;
    const auto n = sim::run_pipeline(g, profile, config, naive);

    sim::DriverOptions gated;
    gated.driver = sim::DriverKind::kAdaptive;
    gated.adapt.epoch = epoch;
    const auto gr = sim::run_pipeline(g, profile, config, gated);

    table.row()
        .add(epoch, 0)
        .add(n.makespan, 1)
        .add(n.remap_count)
        .add(gr.makespan, 1)
        .add(gr.remap_count);
  }
  bench::print_table(table);

  sim::SimConfig config;
  config.num_items = kItems;
  config.probe_interval = 5.0;
  sim::DriverOptions oracle;
  oracle.driver = sim::DriverKind::kOracle;
  oracle.adapt.epoch = 10.0;
  const auto o = sim::run_pipeline(g, profile, config, oracle);
  std::cout << "oracle: makespan " << util::format_double(o.makespan, 1)
            << "s, remaps " << o.remap_count << "\n";
  return 0;
}
