// EXP-F7 — response time under open arrivals.
//
// Part A: the classic hockey stick — mean/p95/p99 latency vs offered load
// on a stable grid, simulator vs the analytic M/D/1 model.
// Part B: Poisson stream at 60 % of nominal capacity while the fastest
// node takes an 8x load hit at t = 150 s. Static mapping saturates (the
// post-step capacity drops below the offered rate, queues grow without
// bound), so its tail explodes with the horizon; the adaptive pattern
// remaps and keeps the tail bounded.

#include "bench_common.hpp"
#include "grid/builders.hpp"
#include "sim/drivers.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace gridpipe;
  bench::print_header("EXP-F7", "latency under open arrivals");

  // Part A: latency vs utilization.
  {
    const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);
    const auto p = sched::PipelineProfile::uniform(3, 0.1, 1e4);
    const auto est = sched::ResourceEstimate::from_grid(g, 0.0);
    const sched::PerfModel model;
    const sched::Mapping m(std::vector<grid::NodeId>{0, 1, 2});
    const double capacity = model.throughput(p, est, m);

    util::Table table({"rho", "rate", "model mean", "sim mean", "sim p95",
                       "sim p99"});
    for (const double rho : {0.3, 0.5, 0.7, 0.85, 0.95}) {
      const double rate = rho * capacity;
      sim::SimConfig config;
      config.num_items = 8000;
      config.arrivals = sim::SimConfig::Arrivals::kPoisson;
      config.arrival_rate = rate;
      config.probe_interval = 0.0;
      config.seed = 9;
      sim::PipelineSim pipeline_sim(g, p, m, config);
      pipeline_sim.start();
      pipeline_sim.simulator().run();
      const auto& metrics = pipeline_sim.metrics();
      table.row()
          .add(rho, 2)
          .add(rate, 2)
          .add(model.latency_estimate(p, est, m, rate), 3)
          .add(metrics.latency().mean(), 3)
          .add(metrics.latency_percentile(95), 3)
          .add(metrics.latency_percentile(99), 3);
    }
    bench::print_table(table);
  }

  // Part B: tail latency through a load step.
  {
    bench::print_note(
        "part B: Poisson at 60% capacity, node 1 takes 8x load at t=150s; "
        "600 s horizon (static queues are still growing at the cut-off)");
    const workload::Scenario s = workload::find_scenario("load-step", 1);
    util::Table table({"driver", "completed", "mean", "p95", "p99",
                       "remaps"});
    for (const auto kind :
         {sim::DriverKind::kStaticOptimal, sim::DriverKind::kAdaptive,
          sim::DriverKind::kOracle}) {
      sim::SimConfig config;
      config.num_items = 1'000'000;
      config.arrivals = sim::SimConfig::Arrivals::kPoisson;
      config.arrival_rate = 0.20;  // ≈60% of the 0.333/s optimum
      config.probe_interval = 5.0;
      config.seed = 9;
      sim::DriverOptions options;
      options.driver = kind;
      options.adapt.epoch = 10.0;
      options.horizon = 600.0;
      const auto result =
          sim::run_pipeline(s.grid, s.profile, config, options);
      table.row()
          .add(to_string(kind))
          .add(result.metrics.items_completed())
          .add(result.metrics.latency().mean(), 2)
          .add(result.metrics.latency_percentile(95), 2)
          .add(result.metrics.latency_percentile(99), 2)
          .add(result.remap_count);
    }
    bench::print_table(table);
  }
  return 0;
}
