// EXP-R1 — fault-tolerance cost on the process substrate.
//
// Three questions, one table:
//  * what does the replay journal cost when nothing fails?
//    (recovery on vs off, fault-free: same stream, makespan delta)
//  * how long is the recovery window after a SIGKILL mid-stream?
//    (death detected -> every in-flight item re-delivered, virtual s)
//  * what does a loss cost end to end? (makespan vs the fault-free run,
//    for both the respawn and the degrade policy)
//
// Faults come from recover::FaultPlan kill points, so every run loses
// the same worker at the same item and the numbers are comparable
// across commits. scripts/record_bench.sh captures the JSON into
// bench_results/BENCH_R1.json and scripts/perf_smoke.py gates the
// recovery window and journal overhead against that baseline.

#include <cstring>

#include "bench_common.hpp"
#include "core/dist_executor.hpp"
#include "grid/builders.hpp"
#include "proc/process_executor.hpp"
#include "recover/fault.hpp"

namespace {

using namespace gridpipe;

constexpr std::uint64_t kItems = 200;
constexpr double kTimeScale = 0.002;

void append_int(core::Bytes& out, int v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(int));
  std::memcpy(out.data() + off, &v, sizeof(int));
}
int int_of_bytes(core::ByteSpan b) {
  int v = 0;
  std::memcpy(&v, b.data(), sizeof(int));
  return v;
}

std::vector<core::DistStage> stages() {
  std::vector<core::DistStage> out;
  out.push_back({"inc",
                 [](core::ByteSpan in, core::Bytes& o) {
                   append_int(o, int_of_bytes(in) + 1);
                 },
                 0.02, 16});
  out.push_back({"triple",
                 [](core::ByteSpan in, core::Bytes& o) {
                   append_int(o, int_of_bytes(in) * 3);
                 },
                 0.02, 16});
  out.push_back({"dec",
                 [](core::ByteSpan in, core::Bytes& o) {
                   append_int(o, int_of_bytes(in) - 1);
                 },
                 0.02, 16});
  return out;
}

struct Row {
  std::string scenario;
  core::RunReport report;
};

core::RunReport run_one(const grid::Grid& g, recover::RecoveryOptions recovery) {
  proc::ProcExecutorConfig config;
  config.time_scale = kTimeScale;
  config.recovery = std::move(recovery);
  proc::ProcessExecutor executor(g, stages(),
                                 sched::Mapping(std::vector<grid::NodeId>{0, 1, 2}),
                                 config);
  std::vector<core::Bytes> inputs;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    core::Bytes b;
    append_int(b, static_cast<int>(i));
    inputs.push_back(std::move(b));
  }
  return executor.run(std::move(inputs));
}

// The makespans are wall-clock-derived, so scheduler noise moves them
// by ~±1 virtual s per run; best-of-N is the usual noise-resistant
// estimator and keeps the committed baseline diffable.
core::RunReport run_once(const grid::Grid& g,
                         const recover::RecoveryOptions& recovery,
                         int reps = 3) {
  core::RunReport best = run_one(g, recovery);
  for (int i = 1; i < reps; ++i) {
    core::RunReport next = run_one(g, recovery);
    if (next.virtual_seconds < best.virtual_seconds) best = std::move(next);
  }
  return best;
}

double worst_window(const core::RunReport& report) {
  double worst = 0.0;
  for (const double t : report.recovery_times) {
    if (t > worst) worst = t;
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_out_path(argc, argv);
  const auto g = grid::uniform_cluster(3, 1.0, 1e-3, 1e8);

  bench::print_header("EXP-R1", "fault-tolerance cost (process substrate)");

  std::vector<Row> rows;
  {
    recover::RecoveryOptions off;  // historical contract: no journal at all
    rows.push_back({"recovery-off", run_once(g, off)});
  }
  {
    recover::RecoveryOptions on;
    on.enabled = true;  // journal + dedup armed, nothing fails
    rows.push_back({"fault-free", run_once(g, on)});
  }
  {
    recover::RecoveryOptions respawn;
    respawn.enabled = true;
    respawn.faults.kills = {{/*node=*/1, /*item=*/kItems / 4}};
    rows.push_back({"respawn", run_once(g, respawn)});
  }
  {
    recover::RecoveryOptions degrade;
    degrade.enabled = true;
    degrade.respawn.max_respawns = 0;
    degrade.faults.kills = {{/*node=*/1, /*item=*/kItems / 4}};
    rows.push_back({"degrade", run_once(g, degrade)});
  }

  const double fault_free_makespan = rows[1].report.virtual_seconds;

  util::Table table({"scenario", "makespan(vs)", "recovery window(vs)",
                     "losses", "respawns", "replayed", "deduped",
                     "loss cost %"});
  util::Json doc = util::Json::object();
  doc["bench"] = "EXP-R1";
  doc["items"] = kItems;
  util::Json& out_rows = doc["recovery"];
  out_rows = util::Json::array();

  for (const Row& row : rows) {
    const core::RunReport& r = row.report;
    const double window = worst_window(r);
    const double loss_cost =
        fault_free_makespan > 0.0 && r.node_losses > 0
            ? 100.0 * (r.virtual_seconds - fault_free_makespan) /
                  fault_free_makespan
            : 0.0;
    table.row()
        .add(row.scenario)
        .add(r.virtual_seconds, 3)
        .add(window, 3)
        .add(r.node_losses)
        .add(r.respawns)
        .add(r.items_replayed)
        .add(r.items_deduped)
        .add(loss_cost, 1);

    util::Json j = util::Json::object();
    j["scenario"] = row.scenario;
    j["makespan_vs"] = r.virtual_seconds;
    j["recovery_window_vs"] = window;
    j["node_losses"] = r.node_losses;
    j["respawns"] = r.respawns;
    j["items_replayed"] = r.items_replayed;
    j["items_deduped"] = r.items_deduped;
    out_rows.push_back(std::move(j));
  }
  bench::print_table(table);

  const double journal_overhead =
      fault_free_makespan - rows[0].report.virtual_seconds;
  doc["journal_overhead_vs"] = journal_overhead;
  std::cout << "journal overhead (recovery on vs off, fault-free): "
            << util::format_double(journal_overhead, 3) << " virtual s over "
            << kItems << " items\n";

  bench::print_note(
      "the respawn window should cover roughly one in-flight window of "
      "replays; degrade trades the window for a permanently smaller grid");

  if (!json_path.empty() && !bench::write_json(json_path, doc)) return 1;
  return 0;
}
