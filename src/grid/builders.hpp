#pragma once
// Convenience constructors for common grid topologies used across tests,
// benches and examples.

#include <cstdint>
#include <vector>

#include "grid/grid.hpp"

namespace gridpipe::grid {

/// Homogeneous dedicated cluster: `n` nodes of equal speed, uniform
/// latency/bandwidth between distinct nodes.
Grid uniform_cluster(std::size_t n, double speed, double latency,
                     double bandwidth);

/// Heterogeneous dedicated machines: one node per entry of `speeds`,
/// uniform interconnect.
Grid heterogeneous_cluster(const std::vector<double>& speeds, double latency,
                           double bandwidth);

/// Parameters for multi_site_grid().
struct SiteSpec {
  std::size_t nodes;      ///< machines at this site
  double speed;           ///< per-machine base speed
  double intra_latency;   ///< LAN latency within the site (s)
  double intra_bandwidth; ///< LAN bandwidth within the site (bytes/s)
};

/// A grid of several sites; within a site links use the site's LAN
/// parameters, across sites the (slower) WAN parameters.
Grid multi_site_grid(const std::vector<SiteSpec>& sites, double wan_latency,
                     double wan_bandwidth);

/// Randomized heterogeneous grid for property tests: speeds uniform in
/// [speed_lo, speed_hi], latencies log-uniform in [lat_lo, lat_hi],
/// bandwidth uniform in [bw_lo, bw_hi]. Deterministic in the seed.
struct RandomGridParams {
  std::size_t nodes = 4;
  double speed_lo = 0.5, speed_hi = 4.0;
  double lat_lo = 1e-4, lat_hi = 1e-1;
  double bw_lo = 1e7, bw_hi = 1e9;
};
Grid random_grid(std::uint64_t seed, const RandomGridParams& params);

/// Attaches a load model to one node of an existing grid (builder sugar).
void set_node_load(Grid& grid, NodeId node, LoadModelPtr load);

}  // namespace gridpipe::grid
