#pragma once
// The grid topology: a set of heterogeneous nodes plus a dense matrix of
// directed links. This is the resource model everything else (performance
// model, simulator, threaded runtime) consumes.

#include <vector>

#include "grid/link.hpp"
#include "grid/node.hpp"

namespace gridpipe::grid {

class Grid {
 public:
  Grid() = default;

  /// Adds a node; returns its id (dense, 0-based). All links to/from the
  /// new node default to loopback (self) or a 1 ms / 100 MB/s WAN-ish
  /// placeholder (others) until set_link() overrides them.
  NodeId add_node(std::string name, double base_speed,
                  LoadModelPtr load = nullptr);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  const Node& node(NodeId id) const;
  Node& node(NodeId id);
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Sets the directed link a→b. Self-links may also be overridden.
  void set_link(NodeId a, NodeId b, Link link);
  /// Sets both a→b and b→a.
  void set_symmetric_link(NodeId a, NodeId b, const Link& link);
  const Link& link(NodeId a, NodeId b) const;

  /// Time for `bytes` to travel a→b starting at time t (0 if a == b is
  /// *not* assumed: loopback cost applies, which is near-zero).
  double transfer_time(NodeId a, NodeId b, double bytes, double t) const {
    return link(a, b).transfer_time(bytes, t);
  }

  /// Effective speed of node n at time t (base / (1 + external load)).
  double effective_speed(NodeId n, double t) const {
    return node(n).effective_speed(t);
  }

 private:
  std::size_t index(NodeId a, NodeId b) const noexcept {
    return static_cast<std::size_t>(a) * nodes_.size() + b;
  }

  std::vector<Node> nodes_;
  std::vector<Link> links_;  // dense row-major num_nodes × num_nodes
};

}  // namespace gridpipe::grid
