#pragma once
// Time-varying external load models for grid resources.
//
// A LoadModel answers "how much competing work does this resource carry at
// virtual time t?" as a dimensionless factor ℓ(t) ≥ 0. A node with base
// speed s and load ℓ delivers effective speed s / (1 + ℓ): ℓ = 1 means the
// resource is shared equally with one competing process, as on a
// non-dedicated grid node.
//
// All models are immutable after construction (stochastic ones pre-draw
// their trajectory from a seed), so they can be shared between the
// simulator, the oracle driver, and the analytic model, and every
// experiment is reproducible.

#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace gridpipe::grid {

/// Interface: external load factor as a function of virtual time.
class LoadModel {
 public:
  virtual ~LoadModel() = default;
  /// Load factor at time t (t < 0 is clamped to 0). Never negative.
  virtual double load_at(double t) const noexcept = 0;
};

using LoadModelPtr = std::shared_ptr<const LoadModel>;

/// Constant load (0 = dedicated resource).
class ConstantLoad final : public LoadModel {
 public:
  explicit ConstantLoad(double load = 0.0);
  double load_at(double t) const noexcept override;

 private:
  double load_;
};

/// Piecewise-constant schedule of (time, load) steps; load holds its last
/// value after the final step. Used for the "node becomes busy at t=150 s"
/// experiments.
class StepLoad final : public LoadModel {
 public:
  struct Step {
    double time;
    double load;
  };
  explicit StepLoad(std::vector<Step> steps, double initial = 0.0);
  double load_at(double t) const noexcept override;

 private:
  std::vector<Step> steps_;  // sorted by time
  double initial_;
};

/// Sinusoidal load: ℓ(t) = max(0, mean + amplitude·sin(2πt/period + phase)).
/// Models diurnal-style slow oscillation of background load.
class SineLoad final : public LoadModel {
 public:
  SineLoad(double mean, double amplitude, double period, double phase = 0.0);
  double load_at(double t) const noexcept override;

 private:
  double mean_, amplitude_, period_, phase_;
};

/// Reflected random walk, pre-drawn on a fixed grid of dt-wide segments up
/// to `horizon`; beyond the horizon the last value holds. Deterministic in
/// the seed.
class RandomWalkLoad final : public LoadModel {
 public:
  RandomWalkLoad(std::uint64_t seed, double initial, double step_stddev,
                 double dt, double horizon, double lo = 0.0, double hi = 4.0);
  double load_at(double t) const noexcept override;
  double dt() const noexcept { return dt_; }

 private:
  std::vector<double> values_;
  double dt_;
};

/// Two-state Markov on/off load (exponential sojourns), pre-drawn to a
/// horizon. Models bursty interactive usage of a shared node.
class MarkovOnOffLoad final : public LoadModel {
 public:
  MarkovOnOffLoad(std::uint64_t seed, double on_load, double mean_on,
                  double mean_off, double horizon, bool start_on = false);
  double load_at(double t) const noexcept override;

 private:
  struct Interval {
    double start;
    double load;
  };
  std::vector<Interval> intervals_;  // sorted by start
};

/// Plays back an externally supplied trace sampled every dt seconds
/// (e.g. from a real /proc/loadavg capture); holds the last sample after
/// the end.
class TraceLoad final : public LoadModel {
 public:
  TraceLoad(std::vector<double> samples, double dt);
  double load_at(double t) const noexcept override;

 private:
  std::vector<double> samples_;
  double dt_;
};

/// Sum of two load models (e.g. a baseline sine plus bursty on/off).
class SumLoad final : public LoadModel {
 public:
  SumLoad(LoadModelPtr a, LoadModelPtr b);
  double load_at(double t) const noexcept override;

 private:
  LoadModelPtr a_, b_;
};

}  // namespace gridpipe::grid
