#include "grid/link.hpp"

#include <stdexcept>

namespace gridpipe::grid {

Link::Link(double latency, double bandwidth, LoadModelPtr congestion)
    : latency_(latency), bandwidth_(bandwidth), congestion_(std::move(congestion)) {
  if (latency < 0.0) throw std::invalid_argument("Link: negative latency");
  if (bandwidth <= 0.0) throw std::invalid_argument("Link: bandwidth <= 0");
}

Link Link::loopback() { return Link(1e-4, 1e10); }

}  // namespace gridpipe::grid
