#pragma once
// A grid processor: a named resource with a base processing speed and an
// external (competing) load model. "Processor" follows the paper's usage:
// the hardware executing one or more pipeline stages, regardless of its
// internal design.

#include <cstdint>
#include <string>

#include "grid/load_model.hpp"

namespace gridpipe::grid {

using NodeId = std::uint32_t;

class Node {
 public:
  /// `base_speed` is in abstract work-units per second; stage costs are in
  /// the same work-units, so time = work / effective_speed.
  Node(NodeId id, std::string name, double base_speed,
       LoadModelPtr load = nullptr);

  NodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  double base_speed() const noexcept { return base_speed_; }
  const LoadModel& load_model() const noexcept { return *load_; }

  /// External load factor at time t.
  double load_at(double t) const noexcept { return load_->load_at(t); }

  /// Speed available to our application at time t: base / (1 + load).
  /// Sharing among co-mapped pipeline stages is applied on top of this by
  /// the simulator / performance model, not here.
  double effective_speed(double t) const noexcept {
    return base_speed_ / (1.0 + load_->load_at(t));
  }

  /// Replaces the load model (used by failure-injection tests to degrade a
  /// node mid-experiment). The node stays immutable during simulation runs.
  void set_load_model(LoadModelPtr load);

 private:
  NodeId id_;
  std::string name_;
  double base_speed_;
  LoadModelPtr load_;
};

}  // namespace gridpipe::grid
