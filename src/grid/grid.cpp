#include "grid/grid.hpp"

#include <stdexcept>

namespace gridpipe::grid {

namespace {
Link default_remote_link() { return Link(1e-3, 1e8); }
}  // namespace

NodeId Grid::add_node(std::string name, double base_speed, LoadModelPtr load) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back(id, std::move(name), base_speed, std::move(load));

  // Rebuild the dense link matrix preserving existing entries.
  const std::size_t n = nodes_.size();
  std::vector<Link> grown;
  grown.reserve(n * n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a + 1 < n && b + 1 < n) {
        grown.push_back(links_[a * (n - 1) + b]);
      } else {
        grown.push_back(a == b ? Link::loopback() : default_remote_link());
      }
    }
  }
  links_ = std::move(grown);
  return id;
}

const Node& Grid::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Grid::node: bad id");
  return nodes_[id];
}

Node& Grid::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("Grid::node: bad id");
  return nodes_[id];
}

void Grid::set_link(NodeId a, NodeId b, Link link) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("Grid::set_link: bad node id");
  }
  links_[index(a, b)] = std::move(link);
}

void Grid::set_symmetric_link(NodeId a, NodeId b, const Link& link) {
  set_link(a, b, link);
  set_link(b, a, link);
}

const Link& Grid::link(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("Grid::link: bad node id");
  }
  return links_[index(a, b)];
}

}  // namespace gridpipe::grid
