#include "grid/node.hpp"

#include <stdexcept>

namespace gridpipe::grid {

Node::Node(NodeId id, std::string name, double base_speed, LoadModelPtr load)
    : id_(id),
      name_(std::move(name)),
      base_speed_(base_speed),
      load_(load ? std::move(load) : std::make_shared<ConstantLoad>(0.0)) {
  if (base_speed <= 0.0) {
    throw std::invalid_argument("Node: base_speed must be positive");
  }
}

void Node::set_load_model(LoadModelPtr load) {
  if (!load) throw std::invalid_argument("Node::set_load_model: null model");
  load_ = std::move(load);
}

}  // namespace gridpipe::grid
