#include "grid/builders.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace gridpipe::grid {

Grid uniform_cluster(std::size_t n, double speed, double latency,
                     double bandwidth) {
  return heterogeneous_cluster(std::vector<double>(n, speed), latency,
                               bandwidth);
}

Grid heterogeneous_cluster(const std::vector<double>& speeds, double latency,
                           double bandwidth) {
  if (speeds.empty()) {
    throw std::invalid_argument("heterogeneous_cluster: no nodes");
  }
  Grid grid;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    grid.add_node("node" + std::to_string(i), speeds[i]);
  }
  for (NodeId a = 0; a < speeds.size(); ++a) {
    for (NodeId b = 0; b < speeds.size(); ++b) {
      if (a != b) grid.set_link(a, b, Link(latency, bandwidth));
    }
  }
  return grid;
}

Grid multi_site_grid(const std::vector<SiteSpec>& sites, double wan_latency,
                     double wan_bandwidth) {
  if (sites.empty()) throw std::invalid_argument("multi_site_grid: no sites");
  Grid grid;
  std::vector<std::size_t> site_of;  // node -> site index
  for (std::size_t s = 0; s < sites.size(); ++s) {
    for (std::size_t i = 0; i < sites[s].nodes; ++i) {
      grid.add_node("site" + std::to_string(s) + ".node" + std::to_string(i),
                    sites[s].speed);
      site_of.push_back(s);
    }
  }
  for (NodeId a = 0; a < grid.num_nodes(); ++a) {
    for (NodeId b = 0; b < grid.num_nodes(); ++b) {
      if (a == b) continue;
      if (site_of[a] == site_of[b]) {
        const SiteSpec& site = sites[site_of[a]];
        grid.set_link(a, b, Link(site.intra_latency, site.intra_bandwidth));
      } else {
        grid.set_link(a, b, Link(wan_latency, wan_bandwidth));
      }
    }
  }
  return grid;
}

Grid random_grid(std::uint64_t seed, const RandomGridParams& params) {
  if (params.nodes == 0) throw std::invalid_argument("random_grid: no nodes");
  util::Xoshiro256 rng(seed);
  Grid grid;
  for (std::size_t i = 0; i < params.nodes; ++i) {
    grid.add_node("rnd" + std::to_string(i),
                  util::uniform(rng, params.speed_lo, params.speed_hi));
  }
  const double log_lo = std::log(params.lat_lo);
  const double log_hi = std::log(params.lat_hi);
  for (NodeId a = 0; a < params.nodes; ++a) {
    for (NodeId b = 0; b < params.nodes; ++b) {
      if (a == b) continue;
      const double latency = std::exp(util::uniform(rng, log_lo, log_hi));
      const double bw = util::uniform(rng, params.bw_lo, params.bw_hi);
      grid.set_link(a, b, Link(latency, bw));
    }
  }
  return grid;
}

void set_node_load(Grid& grid, NodeId node, LoadModelPtr load) {
  grid.node(node).set_load_model(std::move(load));
}

}  // namespace gridpipe::grid
