#pragma once
// A directed network link between two grid nodes: fixed latency plus
// bandwidth-limited transfer, optionally scaled by a time-varying
// congestion model. The loopback link (same node) has near-zero cost,
// matching the "really high rate on the same computer" convention.

#include "grid/load_model.hpp"

namespace gridpipe::grid {

class Link {
 public:
  /// `latency` in seconds, `bandwidth` in bytes/second. An optional
  /// congestion model c(t) scales both: effective latency L·(1+c),
  /// effective bandwidth B/(1+c).
  Link(double latency, double bandwidth, LoadModelPtr congestion = nullptr);

  /// A conventional loopback link: 0.1 ms latency, 10 GB/s.
  static Link loopback();

  double latency() const noexcept { return latency_; }
  double bandwidth() const noexcept { return bandwidth_; }

  double congestion_at(double t) const noexcept {
    return congestion_ ? congestion_->load_at(t) : 0.0;
  }

  /// Time to move `bytes` across this link starting at time t.
  double transfer_time(double bytes, double t) const noexcept {
    const double c = congestion_at(t);
    return latency_ * (1.0 + c) + bytes * (1.0 + c) / bandwidth_;
  }

  void set_congestion(LoadModelPtr congestion) noexcept {
    congestion_ = std::move(congestion);
  }

 private:
  double latency_;
  double bandwidth_;
  LoadModelPtr congestion_;
};

}  // namespace gridpipe::grid
