#include "grid/load_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridpipe::grid {

ConstantLoad::ConstantLoad(double load) : load_(load) {
  if (load < 0.0) throw std::invalid_argument("ConstantLoad: negative load");
}

double ConstantLoad::load_at(double) const noexcept { return load_; }

StepLoad::StepLoad(std::vector<Step> steps, double initial)
    : steps_(std::move(steps)), initial_(initial) {
  if (initial < 0.0) throw std::invalid_argument("StepLoad: negative initial");
  std::sort(steps_.begin(), steps_.end(),
            [](const Step& a, const Step& b) { return a.time < b.time; });
  for (const Step& s : steps_) {
    if (s.load < 0.0) throw std::invalid_argument("StepLoad: negative load");
  }
}

double StepLoad::load_at(double t) const noexcept {
  double current = initial_;
  for (const Step& s : steps_) {
    if (s.time > t) break;
    current = s.load;
  }
  return current;
}

SineLoad::SineLoad(double mean, double amplitude, double period, double phase)
    : mean_(mean), amplitude_(amplitude), period_(period), phase_(phase) {
  if (period <= 0.0) throw std::invalid_argument("SineLoad: period <= 0");
}

double SineLoad::load_at(double t) const noexcept {
  if (t < 0.0) t = 0.0;
  const double v =
      mean_ + amplitude_ * std::sin(2.0 * M_PI * t / period_ + phase_);
  return std::max(0.0, v);
}

RandomWalkLoad::RandomWalkLoad(std::uint64_t seed, double initial,
                               double step_stddev, double dt, double horizon,
                               double lo, double hi)
    : dt_(dt) {
  if (dt <= 0.0 || horizon <= 0.0) {
    throw std::invalid_argument("RandomWalkLoad: dt/horizon must be positive");
  }
  if (lo < 0.0 || hi <= lo) {
    throw std::invalid_argument("RandomWalkLoad: bad bounds");
  }
  util::Xoshiro256 rng(seed);
  const auto segments = static_cast<std::size_t>(std::ceil(horizon / dt)) + 1;
  values_.reserve(segments);
  double v = std::clamp(initial, lo, hi);
  for (std::size_t i = 0; i < segments; ++i) {
    values_.push_back(v);
    v += util::normal(rng, 0.0, step_stddev);
    // Reflect at the bounds to keep the walk inside [lo, hi].
    while (v < lo || v > hi) {
      if (v < lo) v = 2.0 * lo - v;
      if (v > hi) v = 2.0 * hi - v;
    }
  }
}

double RandomWalkLoad::load_at(double t) const noexcept {
  if (t < 0.0) t = 0.0;
  const auto idx = static_cast<std::size_t>(t / dt_);
  return values_[std::min(idx, values_.size() - 1)];
}

MarkovOnOffLoad::MarkovOnOffLoad(std::uint64_t seed, double on_load,
                                 double mean_on, double mean_off,
                                 double horizon, bool start_on) {
  if (on_load < 0.0 || mean_on <= 0.0 || mean_off <= 0.0 || horizon <= 0.0) {
    throw std::invalid_argument("MarkovOnOffLoad: bad parameters");
  }
  util::Xoshiro256 rng(seed);
  double t = 0.0;
  bool on = start_on;
  while (t < horizon) {
    intervals_.push_back({t, on ? on_load : 0.0});
    t += util::exponential(rng, 1.0 / (on ? mean_on : mean_off));
    on = !on;
  }
}

double MarkovOnOffLoad::load_at(double t) const noexcept {
  if (t < 0.0) t = 0.0;
  // Find the last interval starting at or before t.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](double value, const Interval& iv) { return value < iv.start; });
  if (it == intervals_.begin()) return intervals_.front().load;
  return std::prev(it)->load;
}

TraceLoad::TraceLoad(std::vector<double> samples, double dt)
    : samples_(std::move(samples)), dt_(dt) {
  if (samples_.empty()) throw std::invalid_argument("TraceLoad: empty trace");
  if (dt <= 0.0) throw std::invalid_argument("TraceLoad: dt <= 0");
  for (const double s : samples_) {
    if (s < 0.0) throw std::invalid_argument("TraceLoad: negative sample");
  }
}

double TraceLoad::load_at(double t) const noexcept {
  if (t < 0.0) t = 0.0;
  const auto idx = static_cast<std::size_t>(t / dt_);
  return samples_[std::min(idx, samples_.size() - 1)];
}

SumLoad::SumLoad(LoadModelPtr a, LoadModelPtr b)
    : a_(std::move(a)), b_(std::move(b)) {
  if (!a_ || !b_) throw std::invalid_argument("SumLoad: null component");
}

double SumLoad::load_at(double t) const noexcept {
  return a_->load_at(t) + b_->load_at(t);
}

}  // namespace gridpipe::grid
