#include "monitor/drift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridpipe::monitor {

PageHinkley::PageHinkley(double delta, double lambda, std::size_t min_samples)
    : delta_(delta), lambda_(lambda), min_samples_(min_samples) {
  if (delta < 0.0 || lambda <= 0.0) {
    throw std::invalid_argument("PageHinkley: bad parameters");
  }
}

bool PageHinkley::observe(double value) {
  ++n_;
  mean_ += (value - mean_) / static_cast<double>(n_);

  // Upward drift: cumulative (x - mean - delta).
  cum_up_ += value - mean_ - delta_;
  min_up_ = std::min(min_up_, cum_up_);
  // Downward drift: cumulative (mean - x - delta).
  cum_down_ += mean_ - value - delta_;
  max_down_ = std::min(max_down_, cum_down_);  // track minimum as baseline

  if (n_ < min_samples_) return false;
  const bool drift_up = cum_up_ - min_up_ > lambda_;
  const bool drift_down = cum_down_ - max_down_ > lambda_;
  if (drift_up || drift_down) {
    reset();
    return true;
  }
  return false;
}

void PageHinkley::reset() noexcept {
  n_ = 0;
  mean_ = 0.0;
  cum_up_ = min_up_ = 0.0;
  cum_down_ = max_down_ = 0.0;
}

}  // namespace gridpipe::monitor
