#pragma once
// One-step-ahead forecasters for resource performance series, in the style
// of the Network Weather Service predictor family. Each forecaster sees
// samples via observe() and answers forecast() for the next value.
//
// All forecasters are cheap (O(1) or O(window)) because the adaptation
// loop queries them every epoch for every sensor.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace gridpipe::monitor {

class Forecaster {
 public:
  virtual ~Forecaster() = default;
  virtual void observe(double value) = 0;
  /// Predicted next value. Before any observation, returns `fallback`.
  virtual double forecast() const = 0;
  virtual void reset() = 0;
  virtual std::string name() const = 0;

  /// Value returned before the first observation.
  static constexpr double kFallback = 0.0;
};

using ForecasterPtr = std::unique_ptr<Forecaster>;

/// Predicts the most recent observation (NWS "LAST").
class LastValueForecaster final : public Forecaster {
 public:
  void observe(double value) override;
  double forecast() const override;
  void reset() override;
  std::string name() const override { return "last"; }

 private:
  bool seen_ = false;
  double last_ = kFallback;
};

/// Mean over a sliding window (NWS "SW_AVG").
class WindowMeanForecaster final : public Forecaster {
 public:
  explicit WindowMeanForecaster(std::size_t window);
  void observe(double value) override;
  double forecast() const override;
  void reset() override;
  std::string name() const override;

 private:
  util::SlidingWindow window_;
};

/// Median over a sliding window (NWS "SW_MEDIAN") — robust to spikes.
class WindowMedianForecaster final : public Forecaster {
 public:
  explicit WindowMedianForecaster(std::size_t window);
  void observe(double value) override;
  double forecast() const override;
  void reset() override;
  std::string name() const override;

 private:
  util::SlidingWindow window_;
};

/// Exponentially weighted moving average with gain `alpha` in (0, 1].
class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha);
  void observe(double value) override;
  double forecast() const override;
  void reset() override;
  std::string name() const override;

 private:
  double alpha_;
  bool seen_ = false;
  double value_ = kFallback;
};

/// First-order autoregressive fit x̂(k+1) = m·x(k) + c, least-squares over
/// a sliding window. Falls back to the window mean with < 3 samples or a
/// degenerate fit. Captures trends (ramps) the averaging predictors lag on.
class Ar1Forecaster final : public Forecaster {
 public:
  explicit Ar1Forecaster(std::size_t window);
  void observe(double value) override;
  double forecast() const override;
  void reset() override;
  std::string name() const override;

 private:
  util::SlidingWindow window_;
};

/// The default predictor set used by the ensemble (mirrors the NWS mix).
std::vector<ForecasterPtr> default_forecasters();

}  // namespace gridpipe::monitor
