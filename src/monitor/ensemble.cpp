#include "monitor/ensemble.hpp"

#include <cmath>
#include <stdexcept>

namespace gridpipe::monitor {

EnsembleForecaster::EnsembleForecaster(std::vector<ForecasterPtr> members,
                                       std::size_t error_window)
    : members_(std::move(members)) {
  if (members_.empty()) {
    throw std::invalid_argument("EnsembleForecaster: no members");
  }
  member_names_.reserve(members_.size());
  errors_.reserve(members_.size());
  for (const auto& m : members_) {
    member_names_.push_back(m->name());
    errors_.emplace_back(error_window);
  }
}

EnsembleForecaster EnsembleForecaster::with_defaults(std::size_t error_window) {
  return EnsembleForecaster(default_forecasters(), error_window);
}

void EnsembleForecaster::observe(double value) {
  // Score first (each member's current forecast is its prediction of this
  // very sample), then update.
  if (observations_ > 0) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      errors_[i].add(std::abs(members_[i]->forecast() - value));
    }
  }
  for (auto& m : members_) m->observe(value);
  ++observations_;
}

std::size_t EnsembleForecaster::best_member() const noexcept {
  std::size_t best = 0;
  double best_err = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    // Unscored members rank behind any scored member.
    const double err = errors_[i].empty()
                           ? std::numeric_limits<double>::infinity()
                           : errors_[i].mean();
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return best;
}

double EnsembleForecaster::forecast() const {
  return members_[best_member()]->forecast();
}

void EnsembleForecaster::reset() {
  for (auto& m : members_) m->reset();
  for (auto& e : errors_) e.clear();
  observations_ = 0;
}

double EnsembleForecaster::member_error(std::size_t i) const {
  if (i >= errors_.size()) {
    throw std::out_of_range("EnsembleForecaster::member_error");
  }
  return errors_[i].empty() ? 0.0 : errors_[i].mean();
}

}  // namespace gridpipe::monitor
