#pragma once
// Timestamped sample windows for resource sensors. Unlike
// util::SlidingWindow (count-bounded), TimedWindow also evicts by age so a
// sensor that stops receiving samples does not keep stale history forever.

#include <cstddef>
#include <deque>

#include "util/stats.hpp"

namespace gridpipe::monitor {

struct TimedSample {
  double time;
  double value;
};

class TimedWindow {
 public:
  /// Keeps at most `capacity` samples and drops samples older than
  /// `max_age` seconds relative to the newest insertion (max_age <= 0
  /// disables age-based eviction).
  explicit TimedWindow(std::size_t capacity, double max_age = 0.0);

  void add(double time, double value);
  void clear() noexcept;

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double mean() const noexcept;
  double last_value() const noexcept;
  double last_time() const noexcept;
  const std::deque<TimedSample>& samples() const noexcept { return samples_; }

  /// Values only, oldest first — the input format forecasters consume.
  std::vector<double> values() const;

 private:
  std::size_t capacity_;
  double max_age_;
  std::deque<TimedSample> samples_;
  double sum_ = 0.0;
};

}  // namespace gridpipe::monitor
