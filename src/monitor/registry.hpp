#pragma once
// The monitoring registry: a keyed collection of sensors, each backed by a
// timestamped window and an NWS-style ensemble forecaster. The simulator
// and the threaded runtime push observations in; the adaptation policy
// pulls one-step-ahead forecasts out to build a ResourceEstimate.
//
// Sensor vocabulary:
//   kNodeSpeed(n)       — observed effective speed of node n (work/s)
//   kLinkInflation(a,b) — observed transfer time divided by the nominal
//                         (uncongested) transfer time for that message; 1
//                         means the link performs at catalog speed
//   kStageWork(i)       — observed per-item work of stage i (work units)
//   kStageBytes(i)      — observed output bytes of stage i per item

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "monitor/ensemble.hpp"
#include "monitor/window.hpp"
#include "util/require_cpp20.hpp"  // SensorId's defaulted friend operator==

namespace gridpipe::monitor {

enum class SensorKind : std::uint8_t {
  kNodeSpeed = 0,
  kLinkInflation = 1,
  kStageWork = 2,
  kStageBytes = 3,
};

struct SensorId {
  SensorKind kind;
  std::uint32_t a = 0;  ///< node id / stage index / link source
  std::uint32_t b = 0;  ///< link destination (links only)

  friend bool operator==(const SensorId&, const SensorId&) = default;
};

/// Configuration shared by all sensors in a registry.
struct RegistryOptions {
  std::size_t window_capacity = 64;  ///< samples kept per sensor
  double max_sample_age = 0.0;       ///< seconds; 0 disables age eviction
  std::size_t error_window = 32;     ///< ensemble scoring window
};

class MonitoringRegistry {
 public:
  explicit MonitoringRegistry(RegistryOptions options = {});

  /// Records one observation; creates the sensor on first use.
  void record(SensorId id, double time, double value);

  /// One-step-ahead forecast, or `fallback` if the sensor is absent/empty.
  double forecast(SensorId id, double fallback) const;

  /// Most recent raw observation, if any.
  std::optional<double> last(SensorId id) const;

  std::size_t sample_count(SensorId id) const;
  std::size_t num_sensors() const noexcept { return sensors_.size(); }
  bool has(SensorId id) const;

  /// Raw window access (tests, diagnostics); nullptr if absent.
  const TimedWindow* window(SensorId id) const;

  void clear();

 private:
  struct Sensor {
    explicit Sensor(const RegistryOptions& options)
        : window(options.window_capacity, options.max_sample_age),
          ensemble(EnsembleForecaster::with_defaults(options.error_window)) {}
    TimedWindow window;
    EnsembleForecaster ensemble;
  };

  struct KeyHash {
    std::size_t operator()(std::uint64_t k) const noexcept {
      // splitmix-style finalizer: unordered_map with sequential keys
      // otherwise clusters.
      k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ULL;
      k = (k ^ (k >> 27)) * 0x94D049BB133111EBULL;
      return static_cast<std::size_t>(k ^ (k >> 31));
    }
  };

  static std::uint64_t key(SensorId id) noexcept {
    return (static_cast<std::uint64_t>(id.kind) << 56) |
           (static_cast<std::uint64_t>(id.a) << 28) |
           static_cast<std::uint64_t>(id.b);
  }

  RegistryOptions options_;
  std::unordered_map<std::uint64_t, Sensor, KeyHash> sensors_;
};

}  // namespace gridpipe::monitor
