#include "monitor/registry.hpp"

namespace gridpipe::monitor {

MonitoringRegistry::MonitoringRegistry(RegistryOptions options)
    : options_(options) {}

void MonitoringRegistry::record(SensorId id, double time, double value) {
  auto [it, inserted] = sensors_.try_emplace(key(id), options_);
  it->second.window.add(time, value);
  it->second.ensemble.observe(value);
}

double MonitoringRegistry::forecast(SensorId id, double fallback) const {
  const auto it = sensors_.find(key(id));
  if (it == sensors_.end() || it->second.window.empty()) return fallback;
  return it->second.ensemble.forecast();
}

std::optional<double> MonitoringRegistry::last(SensorId id) const {
  const auto it = sensors_.find(key(id));
  if (it == sensors_.end() || it->second.window.empty()) return std::nullopt;
  return it->second.window.last_value();
}

std::size_t MonitoringRegistry::sample_count(SensorId id) const {
  const auto it = sensors_.find(key(id));
  return it == sensors_.end() ? 0 : it->second.window.size();
}

bool MonitoringRegistry::has(SensorId id) const {
  return sensors_.contains(key(id));
}

const TimedWindow* MonitoringRegistry::window(SensorId id) const {
  const auto it = sensors_.find(key(id));
  return it == sensors_.end() ? nullptr : &it->second.window;
}

void MonitoringRegistry::clear() { sensors_.clear(); }

}  // namespace gridpipe::monitor
