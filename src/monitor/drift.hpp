#pragma once
// Change detection for event-driven adaptation.
//
// PageHinkley — the classical sequential drift test on a single sample
// stream: alarms when the cumulative deviation from the running mean
// exceeds a threshold. Use per sensor when raw samples are available.
// (The coarse whole-estimate gate lives in sched::ResourceChangeGate.)

#include <cstddef>

namespace gridpipe::monitor {

class PageHinkley {
 public:
  /// `delta` is the magnitude of change considered negligible (same
  /// units as the samples); `lambda` the alarm threshold on cumulative
  /// deviation; `min_samples` the warm-up length.
  PageHinkley(double delta, double lambda, std::size_t min_samples = 8);

  /// Feeds one sample; returns true when drift is detected (in either
  /// direction). The detector resets itself after an alarm.
  bool observe(double value);

  void reset() noexcept;
  std::size_t samples() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }

 private:
  double delta_;
  double lambda_;
  std::size_t min_samples_;

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double cum_up_ = 0.0;    // deviation accumulator, increases
  double min_up_ = 0.0;
  double cum_down_ = 0.0;  // deviation accumulator, decreases
  double max_down_ = 0.0;
};

}  // namespace gridpipe::monitor
