#include "monitor/forecaster.hpp"

#include <cmath>
#include <stdexcept>

#include "util/table.hpp"

namespace gridpipe::monitor {

void LastValueForecaster::observe(double value) {
  last_ = value;
  seen_ = true;
}
double LastValueForecaster::forecast() const { return seen_ ? last_ : kFallback; }
void LastValueForecaster::reset() {
  seen_ = false;
  last_ = kFallback;
}

WindowMeanForecaster::WindowMeanForecaster(std::size_t window)
    : window_(window) {}
void WindowMeanForecaster::observe(double value) { window_.add(value); }
double WindowMeanForecaster::forecast() const {
  return window_.empty() ? kFallback : window_.mean();
}
void WindowMeanForecaster::reset() { window_.clear(); }
std::string WindowMeanForecaster::name() const {
  return "mean" + std::to_string(window_.capacity());
}

WindowMedianForecaster::WindowMedianForecaster(std::size_t window)
    : window_(window) {}
void WindowMedianForecaster::observe(double value) { window_.add(value); }
double WindowMedianForecaster::forecast() const {
  return window_.empty() ? kFallback : window_.median();
}
void WindowMedianForecaster::reset() { window_.clear(); }
std::string WindowMedianForecaster::name() const {
  return "median" + std::to_string(window_.capacity());
}

EwmaForecaster::EwmaForecaster(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EwmaForecaster: alpha must be in (0,1]");
  }
}
void EwmaForecaster::observe(double value) {
  value_ = seen_ ? alpha_ * value + (1.0 - alpha_) * value_ : value;
  seen_ = true;
}
double EwmaForecaster::forecast() const { return seen_ ? value_ : kFallback; }
void EwmaForecaster::reset() {
  seen_ = false;
  value_ = kFallback;
}
std::string EwmaForecaster::name() const {
  return "ewma" + util::format_double(alpha_, 2);
}

Ar1Forecaster::Ar1Forecaster(std::size_t window) : window_(window) {
  if (window < 3) throw std::invalid_argument("Ar1Forecaster: window < 3");
}
void Ar1Forecaster::observe(double value) { window_.add(value); }

double Ar1Forecaster::forecast() const {
  const std::size_t n = window_.size();
  if (n == 0) return kFallback;
  if (n < 3) return window_.mean();
  // Least-squares fit of x(k+1) against x(k) over the window.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const auto& s = window_.samples();
  const auto pairs = static_cast<double>(n - 1);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    sx += s[k];
    sy += s[k + 1];
    sxx += s[k] * s[k];
    sxy += s[k] * s[k + 1];
  }
  const double denom = pairs * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return window_.mean();
  const double m = (pairs * sxy - sx * sy) / denom;
  const double c = (sy - m * sx) / pairs;
  // Clamp unstable fits (|m| >= 1 diverges on extrapolation).
  if (!std::isfinite(m) || std::abs(m) >= 1.5) return window_.mean();
  return m * s[n - 1] + c;
}

void Ar1Forecaster::reset() { window_.clear(); }
std::string Ar1Forecaster::name() const {
  return "ar1_" + std::to_string(window_.capacity());
}

std::vector<ForecasterPtr> default_forecasters() {
  std::vector<ForecasterPtr> out;
  out.push_back(std::make_unique<LastValueForecaster>());
  out.push_back(std::make_unique<WindowMeanForecaster>(8));
  out.push_back(std::make_unique<WindowMeanForecaster>(32));
  out.push_back(std::make_unique<WindowMedianForecaster>(15));
  out.push_back(std::make_unique<EwmaForecaster>(0.3));
  out.push_back(std::make_unique<Ar1Forecaster>(16));
  return out;
}

}  // namespace gridpipe::monitor
