#include "monitor/window.hpp"

#include <stdexcept>

namespace gridpipe::monitor {

TimedWindow::TimedWindow(std::size_t capacity, double max_age)
    : capacity_(capacity == 0 ? 1 : capacity), max_age_(max_age) {}

void TimedWindow::add(double time, double value) {
  if (!samples_.empty() && time < samples_.back().time) {
    throw std::invalid_argument("TimedWindow: non-monotonic timestamp");
  }
  if (samples_.size() == capacity_) {
    sum_ -= samples_.front().value;
    samples_.pop_front();
  }
  samples_.push_back({time, value});
  sum_ += value;
  if (max_age_ > 0.0) {
    while (!samples_.empty() && samples_.front().time < time - max_age_) {
      sum_ -= samples_.front().value;
      samples_.pop_front();
    }
  }
}

void TimedWindow::clear() noexcept {
  samples_.clear();
  sum_ = 0.0;
}

double TimedWindow::mean() const noexcept {
  return samples_.empty() ? 0.0
                          : sum_ / static_cast<double>(samples_.size());
}

double TimedWindow::last_value() const noexcept {
  return samples_.empty() ? 0.0 : samples_.back().value;
}

double TimedWindow::last_time() const noexcept {
  return samples_.empty() ? 0.0 : samples_.back().time;
}

std::vector<double> TimedWindow::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const TimedSample& s : samples_) out.push_back(s.value);
  return out;
}

}  // namespace gridpipe::monitor
