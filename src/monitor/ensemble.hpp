#pragma once
// NWS-style ensemble forecaster: runs a family of predictors in parallel,
// scores each by its trailing mean absolute error, and answers with the
// prediction of the currently best-scoring member. This is the documented
// mechanism of the Network Weather Service forecaster, re-implemented.

#include <cstddef>
#include <string>
#include <vector>

#include "monitor/forecaster.hpp"
#include "util/stats.hpp"

namespace gridpipe::monitor {

class EnsembleForecaster final : public Forecaster {
 public:
  /// `members` must be non-empty; `error_window` is the number of recent
  /// one-step errors each member is scored over.
  explicit EnsembleForecaster(std::vector<ForecasterPtr> members,
                              std::size_t error_window = 32);

  /// Ensemble with the default NWS-like predictor mix.
  static EnsembleForecaster with_defaults(std::size_t error_window = 32);

  /// Scores every member against `value` (its pre-update forecast), then
  /// feeds `value` to every member.
  void observe(double value) override;
  double forecast() const override;
  void reset() override;
  std::string name() const override { return "ensemble"; }

  std::size_t num_members() const noexcept { return members_.size(); }
  /// Index of the member whose trailing MAE is currently lowest.
  std::size_t best_member() const noexcept;
  const std::string& member_name(std::size_t i) const {
    return member_names_.at(i);
  }
  /// Trailing MAE of member i (0 until it has been scored once).
  double member_error(std::size_t i) const;

 private:
  std::vector<ForecasterPtr> members_;
  std::vector<std::string> member_names_;
  std::vector<util::SlidingWindow> errors_;
  std::size_t observations_ = 0;
};

}  // namespace gridpipe::monitor
