#pragma once
// The shared adaptation configuration: every runtime that runs the paper's
// monitor → forecast → map → gate → remap loop (the DES driver, the
// threaded Executor, the message-passing DistributedExecutor) embeds one
// AdaptationConfig instead of carrying its own copy of the knobs.

#include <cstddef>

#include "monitor/registry.hpp"
#include "sched/adaptation_policy.hpp"
#include "sched/perf_model.hpp"

namespace gridpipe::control {

/// Which mapping-search algorithm the controller runs each decision.
enum class MapperKind { kAuto, kExhaustive, kDpContiguous, kGreedy, kLocalSearch };

/// When does the controller run a full mapping decision?
///  kEveryEpoch — at every epoch tick (the baseline pattern).
///  kOnChange   — only when the ResourceChangeGate reports a significant
///                move since the last decision, or max_staleness elapsed;
///                quiet epochs cost one estimate build and no search.
///  kNodeLoss / kNodeArrival — event triggers, never configured as the
///                periodic policy: a host feeds the controller a churn
///                event (worker death, node join) and the controller runs
///                a forced, ungated decision via run_churn_epoch. They
///                exist in this enum so EpochRecord timelines name the
///                trigger uniformly ("node-loss" epochs sit between
///                "periodic" ones).
enum class AdaptationTrigger { kEveryEpoch, kOnChange, kNodeLoss,
                               kNodeArrival };

const char* to_string(MapperKind kind);
const char* to_string(AdaptationTrigger trigger);

/// One set of knobs for the whole adaptation pattern. Embedded by
/// sim::DriverOptions, core::ExecutorConfig and core::DistExecutorConfig.
struct AdaptationConfig {
  MapperKind mapper = MapperKind::kAuto;
  /// Virtual seconds between adaptation decisions. The simulator driver
  /// keeps this default; the live runtimes override it to 0 in their
  /// config initializers (0 = adaptation off, their historical opt-in).
  double epoch = 10.0;
  sched::AdaptationOptions policy{};
  sched::PerfModelOptions model{};
  monitor::RegistryOptions registry{};
  /// Pin stage 0 to the profile's source node during mapping search.
  bool pin_first_stage = false;
  /// If > num_stages, the mapper may replicate stages up to this total
  /// replica budget (0 = replication disabled).
  std::size_t max_total_replicas = 0;

  AdaptationTrigger trigger = AdaptationTrigger::kEveryEpoch;
  /// kOnChange: relative resource move that counts as significant.
  double change_threshold = 0.25;
  /// kOnChange: force a full decision after this many seconds without one.
  double max_staleness = 120.0;
};

}  // namespace gridpipe::control
