#include "control/adaptation_controller.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/dp_contiguous.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "util/logging.hpp"

namespace gridpipe::control {

const char* to_string(MapperKind kind) {
  switch (kind) {
    case MapperKind::kAuto:         return "auto";
    case MapperKind::kExhaustive:   return "exhaustive";
    case MapperKind::kDpContiguous: return "dp-contiguous";
    case MapperKind::kGreedy:       return "greedy";
    case MapperKind::kLocalSearch:  return "local-search";
  }
  return "?";
}

const char* to_string(AdaptationTrigger trigger) {
  switch (trigger) {
    case AdaptationTrigger::kEveryEpoch:  return "periodic";
    case AdaptationTrigger::kOnChange:    return "on-change";
    case AdaptationTrigger::kNodeLoss:    return "node-loss";
    case AdaptationTrigger::kNodeArrival: return "node-arrival";
  }
  return "?";
}

sched::MapperResult choose_mapping(const sched::PerfModel& model,
                                   const sched::PipelineProfile& profile,
                                   const sched::ResourceEstimate& est,
                                   MapperKind mapper, bool pin_first_stage,
                                   std::size_t max_total_replicas) {
  sched::MapperResult base;
  bool have_base = false;

  const std::size_t ns = profile.num_stages();
  const std::size_t np = est.num_nodes;
  const double space =
      std::pow(static_cast<double>(np),
               static_cast<double>(pin_first_stage ? ns - 1 : ns));

  auto run_exhaustive = [&]() -> bool {
    sched::ExhaustiveOptions opts;
    opts.pin_first_stage = pin_first_stage;
    const sched::ExhaustiveMapper ex(model, opts);
    if (auto result = ex.best(profile, est)) {
      base = std::move(*result);
      return true;
    }
    return false;
  };
  auto run_dp = [&]() -> bool {
    const sched::DpContiguousMapper dp(model);
    if (auto result = dp.best(profile, est)) {
      base = std::move(*result);
      return true;
    }
    return false;
  };

  switch (mapper) {
    case MapperKind::kExhaustive:
      have_base = run_exhaustive();
      break;
    case MapperKind::kDpContiguous:
      have_base = run_dp();
      break;
    case MapperKind::kGreedy:
      base = sched::GreedyMapper(model).best(profile, est);
      have_base = true;
      break;
    case MapperKind::kLocalSearch:
      base = sched::LocalSearchMapper(model).best(profile, est);
      have_base = true;
      break;
    case MapperKind::kAuto:
      // Exhaustive only for small spaces: the adaptation loop re-runs the
      // mapper every epoch, so per-decision cost matters.
      if (space <= 2'000.0) have_base = run_exhaustive();
      if (!have_base && np <= 12 && !model.options().network_serialization) {
        have_base = run_dp();
      }
      if (!have_base) {
        base = sched::LocalSearchMapper(model).best(profile, est);
        have_base = true;
      }
      break;
  }
  if (!have_base) {
    throw std::runtime_error(
        "choose_mapping: selected mapper refused the instance");
  }

  if (max_total_replicas > ns) {
    // The single-mapping optimum often folds stages onto few nodes (the
    // fewer-nodes tie-break), which strands the greedy replica search at
    // a colocation bottleneck. Improve from a spread seed as well and
    // keep the better result.
    sched::MapperResult folded = sched::improve_with_replication(
        model, profile, est, base.mapping, max_total_replicas);
    const sched::Mapping spread_seed =
        sched::Mapping::round_robin(ns, np);
    sched::MapperResult spread = sched::improve_with_replication(
        model, profile, est, spread_seed, max_total_replicas);
    return spread.breakdown.throughput >
                   folded.breakdown.throughput * (1.0 + 1e-9)
               ? spread
               : folded;
  }
  return base;
}

AdaptationController::AdaptationController(const grid::Grid& grid,
                                           const sched::PipelineProfile& profile,
                                           const AdaptationConfig& config,
                                           AdaptationHost& host, Mode mode,
                                           obs::Sinks obs)
    : grid_(grid),
      profile_(profile),
      config_(config),
      host_(host),
      mode_(mode),
      obs_(obs),
      model_(config.model),
      policy_(model_, config.policy),
      gate_(config.change_threshold),
      registry_(config.registry) {}

void AdaptationController::record_observation(monitor::SensorId id,
                                              double value) {
  util::MutexLock lock(registry_mutex_);
  registry_.record(id, host_.virtual_now(), value);
}

sched::MapperResult AdaptationController::plan(
    const sched::ResourceEstimate& est) const {
  return choose_mapping(model_, profile_, est, config_.mapper,
                        config_.pin_first_stage, config_.max_total_replicas);
}

void AdaptationController::on_node_loss(std::size_t node) {
  if (available_.empty()) available_.assign(grid_.num_nodes(), 1);
  if (node < available_.size()) available_[node] = 0;
}

void AdaptationController::on_node_arrival(std::size_t node) {
  if (available_.empty()) available_.assign(grid_.num_nodes(), 1);
  if (node < available_.size()) available_[node] = 1;
}

bool AdaptationController::node_available(std::size_t node) const noexcept {
  if (available_.empty()) return node < grid_.num_nodes();
  return node < available_.size() && available_[node] != 0;
}

std::size_t AdaptationController::nodes_available() const noexcept {
  if (available_.empty()) return grid_.num_nodes();
  std::size_t up = 0;
  for (char a : available_) up += a != 0;
  return up;
}

void AdaptationController::apply_availability(
    sched::ResourceEstimate& est) const {
  if (available_.empty()) return;
  for (std::size_t n = 0; n < available_.size(); ++n) {
    if (available_[n] == 0 && n < est.node_speed.size()) {
      // Zero speed → infinite busy time → zero modeled throughput for
      // any mapping that touches the node; searches route around it.
      est.node_speed[n] = 0.0;
    }
  }
}

EpochRecord AdaptationController::run_churn_epoch(AdaptationTrigger why,
                                                 const std::string& event) {
  const double now = host_.virtual_now();
  EpochRecord record;
  record.time = now;
  record.reason.trigger = to_string(why);
  record.reason.event = event;

  host_.record_probes(now);
  sched::ResourceEstimate est;
  if (mode_ == Mode::kOracle) {
    est = sched::ResourceEstimate::from_grid(grid_, now);
  } else {
    util::MutexLock lock(registry_mutex_);
    est = sched::ResourceEstimate::from_monitor(registry_, grid_);
  }
  apply_availability(est);
  gate_.accept(est);
  last_decision_time_ = now;

  const sched::MapperResult candidate =
      choose_mapping(model_, profile_, est, config_.mapper,
                     config_.pin_first_stage, config_.max_total_replicas);
  const sched::Mapping deployed = host_.deployed_mapping();

  record.decided = true;
  record.deployed_estimate = model_.throughput(profile_, est, deployed);
  record.candidate_estimate = candidate.breakdown.throughput;
  record.reason.searched = true;
  record.reason.mapper = to_string(config_.mapper);
  record.reason.gain_ratio =
      record.deployed_estimate > 0.0
          ? record.candidate_estimate / record.deployed_estimate
          : 0.0;

  if (!(candidate.mapping == deployed)) {
    record.reason.verdict = "forced: replanned for grid churn";
    util::log_info("control: churn remap (", event, ") ",
                   deployed.to_string(), " -> ",
                   candidate.mapping.to_string());
    // Pause 0: a crash already cost the pipeline its migration pause and
    // an arrival costs nothing; the policy's cost model does not apply.
    host_.apply_remap(candidate.mapping, 0.0);
    policy_.notify_remapped();
    record.remapped = true;
  } else {
    record.reason.verdict = "forced: deployed mapping already best for "
                            "surviving grid";
  }
  if (obs_.metrics) {
    obs_.metrics->counter(obs::names::kEpochs).add(1);
    if (record.remapped) obs_.metrics->counter(obs::names::kRemaps).add(1);
  }
  epochs_.push_back(record);
  return record;
}

EpochRecord AdaptationController::run_epoch() {
  using Clock = std::chrono::steady_clock;
  const double now = host_.virtual_now();
  EpochRecord record;
  record.time = now;
  record.reason.trigger = to_string(config_.trigger);

  // Phase bookkeeping: wall seconds always land in record.phases; when a
  // tracer is attached each phase also becomes a span on the virtual
  // timeline (live hosts' virtual clocks advance through an epoch, so
  // the spans have real width; on the DES host they collapse to
  // instants at the epoch time).
  auto t_prev = Clock::now();
  double v_prev = now;
  const auto end_phase = [&](const char* name, double& wall) {
    const auto t = Clock::now();
    wall += std::chrono::duration<double>(t - t_prev).count();
    t_prev = t;
    if (obs_.tracer) {
      const double v = host_.virtual_now();
      obs::record_span(obs_.tracer, obs::SpanKind::kPhase, name, v_prev,
                       v - v_prev, 0);
      v_prev = v;
    }
  };
  const auto finish = [&](const EpochRecord& r) {
    obs::record_span(obs_.tracer, obs::SpanKind::kEpoch, "epoch", now,
                     v_prev - now, 0);
    if (obs_.metrics) {
      obs_.metrics->counter(obs::names::kEpochs).add(1);
      obs_.metrics->histogram(obs::names::kEpochWall)
          .record(r.phases.total());
      if (r.remapped) obs_.metrics->counter(obs::names::kRemaps).add(1);
    }
    epochs_.push_back(r);
    return r;
  };

  host_.record_probes(now);
  end_phase("monitor", record.phases.monitor);

  sched::ResourceEstimate est;
  if (mode_ == Mode::kOracle) {
    est = sched::ResourceEstimate::from_grid(grid_, now);
  } else {
    util::MutexLock lock(registry_mutex_);
    est = sched::ResourceEstimate::from_monitor(registry_, grid_);
  }
  apply_availability(est);
  end_phase("forecast", record.phases.forecast);

  // kOnChange: skip the (expensive) mapping search on quiet epochs.
  const bool gate_changed = !gate_.has_snapshot() || gate_.changed(est);
  record.reason.gate_changed = gate_changed;
  if (config_.trigger == AdaptationTrigger::kOnChange && !gate_changed &&
      now - last_decision_time_ < config_.max_staleness) {
    record.reason.verdict = "quiet: resources unchanged, decision fresh";
    end_phase("gate", record.phases.gate);
    return finish(record);
  }
  gate_.accept(est);
  last_decision_time_ = now;
  end_phase("gate", record.phases.gate);

  const sched::MapperResult candidate =
      choose_mapping(model_, profile_, est, config_.mapper,
                     config_.pin_first_stage, config_.max_total_replicas);
  const sched::Mapping deployed = host_.deployed_mapping();

  record.decided = true;
  record.deployed_estimate = model_.throughput(profile_, est, deployed);
  record.candidate_estimate = candidate.breakdown.throughput;
  record.reason.searched = true;
  record.reason.mapper = to_string(config_.mapper);
  record.reason.gain_ratio =
      record.deployed_estimate > 0.0
          ? record.candidate_estimate / record.deployed_estimate
          : 0.0;
  end_phase("map", record.phases.map);

  if (mode_ == Mode::kOracle) {
    // Upper bound: free remap whenever the model sees any improvement.
    const bool improve =
        !(candidate.mapping == deployed) &&
        record.candidate_estimate > record.deployed_estimate * (1.0 + 1e-9);
    record.reason.verdict = improve
                                ? "oracle: modeled improvement, free remap"
                                : "oracle: no modeled improvement";
    end_phase("gate", record.phases.gate);
    if (improve) {
      host_.apply_remap(candidate.mapping, 0.0);
      record.remapped = true;
      end_phase("remap", record.phases.remap);
    }
  } else {
    const sched::AdaptationDecision decision =
        policy_.decide(profile_, est, deployed, candidate.mapping);
    record.reason.verdict = decision.reason;
    end_phase("gate", record.phases.gate);
    if (decision.remap) {
      util::log_info("control: remap ", deployed.to_string(), " -> ",
                     candidate.mapping.to_string(), " pause ",
                     decision.migration_pause, "s: ", decision.reason);
      host_.apply_remap(candidate.mapping, decision.migration_pause);
      policy_.notify_remapped();
      record.remapped = true;
      end_phase("remap", record.phases.remap);
    }
  }
  return finish(record);
}

}  // namespace gridpipe::control
