#pragma once
// EpochRecord — one adaptation decision point, the diagnostics unit every
// runtime's report exposes. Kept dependency-free so lightweight report
// structs can include it without pulling in the controller stack.

namespace gridpipe::control {

struct EpochRecord {
  double time = 0.0;
  double deployed_estimate = 0.0;   ///< modeled thr of deployed mapping
  double candidate_estimate = 0.0;  ///< modeled thr of best candidate
  bool decided = false;             ///< a full mapping search ran
  bool remapped = false;

  friend bool operator==(const EpochRecord&, const EpochRecord&) = default;
};

}  // namespace gridpipe::control
