#pragma once
// EpochRecord — one adaptation decision point, the diagnostics unit every
// runtime's report exposes. Kept dependency-free so lightweight report
// structs can include it without pulling in the controller stack.

namespace gridpipe::control {

/// Wall-clock cost breakdown of one run_epoch call, in seconds. Pure
/// diagnostics: two runs with identical decisions will differ here.
struct EpochPhases {
  double monitor = 0.0;   ///< host probe collection (record_probes)
  double forecast = 0.0;  ///< resource estimate build (registry or oracle)
  double map = 0.0;       ///< choose_mapping search
  double gate = 0.0;      ///< change gate + adaptation policy decision
  double remap = 0.0;     ///< apply_remap execution on the host
  double total() const noexcept {
    return monitor + forecast + map + gate + remap;
  }
};

struct EpochRecord {
  double time = 0.0;
  double deployed_estimate = 0.0;   ///< modeled thr of deployed mapping
  double candidate_estimate = 0.0;  ///< modeled thr of best candidate
  bool decided = false;             ///< a full mapping search ran
  bool remapped = false;
  EpochPhases phases;  ///< wall-clock diagnostics, not part of identity

  /// Equality covers the *decision* fields only: phase wall timings vary
  /// run to run, and fixed-seed runs must stay bit-comparable
  /// (Drivers.RunResultBitIdenticalAcrossRepeatedRuns).
  friend bool operator==(const EpochRecord& a, const EpochRecord& b) {
    return a.time == b.time && a.deployed_estimate == b.deployed_estimate &&
           a.candidate_estimate == b.candidate_estimate &&
           a.decided == b.decided && a.remapped == b.remapped;
  }
};

}  // namespace gridpipe::control
