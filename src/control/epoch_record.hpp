#pragma once
// EpochRecord — one adaptation decision point, the diagnostics unit every
// runtime's report exposes. Kept dependency-free so lightweight report
// structs can include it without pulling in the controller stack.

#include <string>

namespace gridpipe::control {

/// Wall-clock cost breakdown of one run_epoch call, in seconds. Pure
/// diagnostics: two runs with identical decisions will differ here.
struct EpochPhases {
  double monitor = 0.0;   ///< host probe collection (record_probes)
  double forecast = 0.0;  ///< resource estimate build (registry or oracle)
  double map = 0.0;       ///< choose_mapping search
  double gate = 0.0;      ///< change gate + adaptation policy decision
  double remap = 0.0;     ///< apply_remap execution on the host
  double total() const noexcept {
    return monitor + forecast + map + gate + remap;
  }
};

/// Structured explanation of one epoch's decision: which trigger fired,
/// what the forecast fed the search, which mapper produced the
/// candidate, and what the gate/policy ruled. Serialized through the
/// telemetry wire batch and rendered by the CLI's --explain-epochs.
/// Like EpochPhases, not part of EpochRecord identity: the strings may
/// evolve without breaking bit-identical determinism checks.
struct DecisionReason {
  std::string trigger;        ///< "periodic" | "on-change" | "node-loss" |
                              ///< "node-arrival"
  std::string mapper;         ///< mapper that ran ("" when none did)
  bool gate_changed = false;  ///< resource gate saw a change (or no snapshot)
  bool searched = false;      ///< a mapping search ran this epoch
  double gain_ratio = 0.0;    ///< candidate / deployed modeled throughput
  std::string verdict;        ///< gate/policy outcome, human-readable
  /// Churn event that forced the decision ("node 2 lost"); empty for
  /// ordinary epochs. Rendered by explain(); not shipped over the
  /// telemetry wire (the batch codec predates it).
  std::string event;

  friend bool operator==(const DecisionReason&,
                         const DecisionReason&) = default;
};

struct EpochRecord {
  double time = 0.0;
  double deployed_estimate = 0.0;   ///< modeled thr of deployed mapping
  double candidate_estimate = 0.0;  ///< modeled thr of best candidate
  bool decided = false;             ///< a full mapping search ran
  bool remapped = false;
  EpochPhases phases;     ///< wall-clock diagnostics, not part of identity
  DecisionReason reason;  ///< explainability, not part of identity

  /// One human-readable line: "[t=12.00s] on-change: searched
  /// mapper=auto ... -> remapped: ...". Defined in epoch_record.cpp.
  std::string explain() const;

  /// Equality covers the *decision* fields only: phase wall timings vary
  /// run to run, and fixed-seed runs must stay bit-comparable
  /// (Drivers.RunResultBitIdenticalAcrossRepeatedRuns).
  friend bool operator==(const EpochRecord& a, const EpochRecord& b) {
    return a.time == b.time && a.deployed_estimate == b.deployed_estimate &&
           a.candidate_estimate == b.candidate_estimate &&
           a.decided == b.decided && a.remapped == b.remapped;
  }
};

}  // namespace gridpipe::control
