#pragma once
// AdaptationController — the one implementation of the paper's epoch loop.
//
// Each epoch the controller: asks the host for fresh probes, builds a
// ResourceEstimate from its MonitoringRegistry (or ground truth in oracle
// mode), gates the expensive mapping search behind the kOnChange trigger,
// runs choose_mapping, passes the candidate through the AdaptationPolicy
// (min-gain, cost–benefit, hysteresis), and tells the host to remap when
// the decision says so. Every epoch is recorded as an EpochRecord so all
// runtimes expose the same diagnostics timeline.
//
// The host — simulator driver, threaded Executor, or DistributedExecutor —
// keeps what is genuinely substrate-specific: the notion of time, the
// deployed mapping, and the mechanics of a live remap. The controller owns
// everything else, including the registry the host feeds observations
// into (record_observation is thread-safe; the threaded runtime calls it
// from worker threads).

#include <vector>

#include "control/adaptation_config.hpp"
#include "control/epoch_record.hpp"
#include "grid/grid.hpp"
#include "obs/sinks.hpp"
#include "sched/exhaustive.hpp"  // sched::MapperResult
#include "sched/mapping.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::control {

/// The substrate interface the controller drives. Implementations must
/// tolerate apply_remap being called from the thread that calls
/// run_epoch (the controller holds no locks across host calls).
class AdaptationHost {
 public:
  virtual ~AdaptationHost() = default;

  /// Current virtual time in seconds.
  virtual double virtual_now() const = 0;
  /// The mapping currently executing.
  virtual sched::Mapping deployed_mapping() const = 0;
  /// Live remap to `to`, freezing the pipeline for `pause` virtual
  /// seconds of migration.
  virtual void apply_remap(const sched::Mapping& to, double pause) = 0;
  /// Push fresh NWS-style probe observations into the controller's
  /// registry (via record_observation). Called at the top of each epoch;
  /// hosts whose observations arrive passively may do nothing.
  virtual void record_probes(double virtual_now) = 0;
};

/// Single mapping decision with the configured mapper (kAuto picks
/// exhaustive for small spaces, then DP, then local search) and optional
/// replication improvement.
sched::MapperResult choose_mapping(const sched::PerfModel& model,
                                   const sched::PipelineProfile& profile,
                                   const sched::ResourceEstimate& est,
                                   MapperKind mapper, bool pin_first_stage,
                                   std::size_t max_total_replicas);

class AdaptationController {
 public:
  /// kPolicy: monitor-driven estimates gated through AdaptationPolicy.
  /// kOracle: ground-truth estimates every epoch, free instantaneous
  /// remaps on any modeled improvement (the upper-bound driver).
  enum class Mode { kPolicy, kOracle };

  /// `grid` doubles as the catalog for monitor-based estimates and the
  /// ground truth for oracle mode. All references must outlive the
  /// controller. `obs` sinks (both nullable) receive epoch/phase spans
  /// and the remap/epoch counters; phase wall timings additionally land
  /// in each EpochRecord whether or not sinks are attached.
  AdaptationController(const grid::Grid& grid,
                       const sched::PipelineProfile& profile,
                       const AdaptationConfig& config, AdaptationHost& host,
                       Mode mode = Mode::kPolicy, obs::Sinks obs = {});

  /// Runs one monitor → forecast → map → gate → remap epoch at the
  /// host's current virtual time and returns its record. Call from one
  /// controlling thread at a time.
  EpochRecord run_epoch();

  /// Runs a forced, ungated decision in response to a grid-churn event
  /// (`why` must be kNodeLoss or kNodeArrival; `event` is a short
  /// human-readable cause like "node 2 lost"). Bypasses both the change
  /// gate and the adaptation policy — a dead node makes the deployed
  /// mapping worthless no matter what hysteresis says — and remaps
  /// whenever the candidate differs from the deployed mapping. Call
  /// on_node_loss / on_node_arrival first so the estimate is masked.
  EpochRecord run_churn_epoch(AdaptationTrigger why, const std::string& event);

  /// Marks a grid node (un)available. Unavailable nodes get zero speed
  /// in every subsequent resource estimate, so all mapping searches —
  /// churn-forced and periodic alike — route around them. Call from the
  /// same thread that runs epochs.
  void on_node_loss(std::size_t node);
  void on_node_arrival(std::size_t node);
  bool node_available(std::size_t node) const noexcept;
  std::size_t nodes_available() const noexcept;

  /// Initial mapping for a deployment-time resource state.
  sched::MapperResult plan(const sched::ResourceEstimate& est) const;

  /// Thread-safe observation feed into the controller's registry. The
  /// timestamp is sampled from the host's clock while holding the
  /// registry lock, so concurrent recorders (worker threads vs the epoch
  /// loop's probes) can never insert out of order into a sensor window.
  void record_observation(monitor::SensorId id, double value);

  /// Unsynchronized registry access for single-threaded hosts (the DES
  /// wires PipelineSim's passive observations straight into it). Escapes
  /// the thread-safety analysis on purpose: handing out a reference to
  /// the guarded member is only sound because those hosts never run a
  /// second thread.
  monitor::MonitoringRegistry& registry() noexcept
      GRIDPIPE_NO_THREAD_SAFETY_ANALYSIS {
    return registry_;
  }

  /// Epoch timeline so far. Not synchronized against run_epoch — read it
  /// after the run (or from the controlling thread).
  const std::vector<EpochRecord>& epochs() const noexcept { return epochs_; }
  std::vector<EpochRecord> take_epochs() { return std::move(epochs_); }

  const sched::PerfModel& model() const noexcept { return model_; }
  const AdaptationConfig& config() const noexcept { return config_; }

 private:
  const grid::Grid& grid_;
  const sched::PipelineProfile& profile_;
  AdaptationConfig config_;
  AdaptationHost& host_;
  Mode mode_;
  obs::Sinks obs_;

  void apply_availability(sched::ResourceEstimate& est) const;

  sched::PerfModel model_;
  sched::AdaptationPolicy policy_;
  sched::ResourceChangeGate gate_;
  double last_decision_time_ = 0.0;
  std::vector<EpochRecord> epochs_;
  /// available_[n] == 0 → node n is masked out of estimates. Empty until
  /// the first churn event (the common case pays nothing).
  std::vector<char> available_;

  mutable util::Mutex registry_mutex_;
  monitor::MonitoringRegistry registry_ GRIDPIPE_GUARDED_BY(registry_mutex_);
};

}  // namespace gridpipe::control
