#include "control/epoch_record.hpp"

#include <cstdio>

namespace gridpipe::control {

std::string EpochRecord::explain() const {
  char head[64];
  std::snprintf(head, sizeof(head), "[t=%.2fs] ", time);
  std::string out = head;
  out += reason.trigger.empty() ? "epoch" : reason.trigger;
  if (!reason.event.empty()) {
    out += " (";
    out += reason.event;
    out += ')';
  }
  out += ": ";
  if (!decided) {
    out += reason.verdict.empty() ? "quiet epoch, search skipped"
                                  : reason.verdict;
    return out;
  }
  char body[192];
  std::snprintf(body, sizeof(body),
                "searched mapper=%s deployed=%.3f/s candidate=%.3f/s "
                "gain=%.3fx -> ",
                reason.mapper.empty() ? "?" : reason.mapper.c_str(),
                deployed_estimate, candidate_estimate, reason.gain_ratio);
  out += body;
  out += remapped ? "remapped" : "kept";
  if (!reason.verdict.empty()) {
    out += ": ";
    out += reason.verdict;
  }
  return out;
}

}  // namespace gridpipe::control
