#include "sched/adaptation_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridpipe::sched {

ResourceChangeGate::ResourceChangeGate(double rel_threshold)
    : rel_threshold_(rel_threshold) {
  if (rel_threshold <= 0.0) {
    throw std::invalid_argument("ResourceChangeGate: threshold <= 0");
  }
}

bool ResourceChangeGate::differs(double a, double b, double rel) noexcept {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale > 0.0 && std::abs(a - b) > rel * scale;
}

bool ResourceChangeGate::changed(const ResourceEstimate& est) const {
  if (node_speed_.size() != est.num_nodes) return true;  // no snapshot
  for (std::size_t n = 0; n < est.num_nodes; ++n) {
    if (differs(node_speed_[n], est.node_speed[n], rel_threshold_)) {
      return true;
    }
  }
  std::size_t k = 0;
  for (grid::NodeId a = 0; a < est.num_nodes; ++a) {
    for (grid::NodeId b = 0; b < est.num_nodes; ++b, ++k) {
      if (a == b) continue;
      const double t = est.latency(a, b) + 1.0 / est.bandwidth(a, b);
      if (differs(link_time_[k], t, rel_threshold_)) return true;
    }
  }
  return false;
}

void ResourceChangeGate::accept(const ResourceEstimate& est) {
  node_speed_ = est.node_speed;
  link_time_.assign(est.num_nodes * est.num_nodes, 0.0);
  std::size_t k = 0;
  for (grid::NodeId a = 0; a < est.num_nodes; ++a) {
    for (grid::NodeId b = 0; b < est.num_nodes; ++b, ++k) {
      if (a == b) continue;
      link_time_[k] = est.latency(a, b) + 1.0 / est.bandwidth(a, b);
    }
  }
}

AdaptationDecision AdaptationPolicy::decide(const PipelineProfile& profile,
                                            const ResourceEstimate& est,
                                            const Mapping& deployed,
                                            const Mapping& candidate) {
  AdaptationDecision d;
  d.current_throughput = model_.throughput(profile, est, deployed);
  d.candidate_throughput = model_.throughput(profile, est, candidate);

  if (candidate == deployed) {
    streak_ = 0;
    d.reason = "candidate equals deployed mapping";
    return d;
  }

  // Gate 1: minimum relative gain.
  const double required =
      d.current_throughput * (1.0 + options_.min_gain_ratio);
  if (d.candidate_throughput <= required) {
    streak_ = 0;
    d.reason = "gain below min_gain_ratio";
    return d;
  }

  // Gate 2: cost–benefit over the amortization horizon.
  d.migration_pause = migration_cost(profile, est, deployed, candidate,
                                     options_.restart_latency);
  const double gained =
      (d.candidate_throughput - d.current_throughput) *
      options_.amortization_horizon;
  const double lost_in_pause = d.candidate_throughput * d.migration_pause;
  d.predicted_gain_items = gained - lost_in_pause;
  if (options_.enable_cost_gate && d.predicted_gain_items <= 0.0) {
    streak_ = 0;
    d.reason = "migration cost exceeds horizon gain";
    return d;
  }

  // Gate 3: hysteresis.
  ++streak_;
  if (options_.enable_hysteresis && streak_ < options_.hysteresis_epochs) {
    d.reason = "hysteresis: streak " + std::to_string(streak_) + "/" +
               std::to_string(options_.hysteresis_epochs);
    return d;
  }

  d.remap = true;
  d.reason = "remap approved";
  streak_ = 0;
  return d;
}

}  // namespace gridpipe::sched
