#pragma once
// Analytic steady-state throughput model for a mapped pipeline, the
// objective function every mapper optimizes and the quantity the
// adaptation policy compares against observed throughput.
//
// Model (documented in DESIGN.md §3):
//  * A node serializes its co-mapped stage-replicas, so its per-item busy
//    time is Σ_i w_i / (r_i · speed_n) over replicas it hosts; the node
//    caps pipeline throughput at 1 / busy.
//  * Edge i (stage i-1 → stage i; edge 0 = source, edge Ns = sink) moves
//    z_i bytes. A directed link is a serial resource (matching the
//    simulator's serialized links): with round-robin dispatch each (a,b)
//    node pair carries 1/(r_a·r_b) of the items, so link (a,b)
//    accumulates Σ_edges T(a,b,z_e)/(r_a·r_b) busy-seconds per item and
//    caps throughput at the reciprocal. A link reused by several stage
//    boundaries is charged for all of them.
//  * Optionally a single shared "network" resource serializes all
//    inter-node transfers (the PEPA-style assumption): extra cap
//    1 / Σ_edges T_edge.
// Throughput = min of all caps.

#include <vector>

#include "grid/grid.hpp"
#include "monitor/registry.hpp"
#include "sched/mapping.hpp"

namespace gridpipe::sched {

/// Static description of the application: per-stage work and message
/// sizes. Work is in the same units as node speeds (time = work / speed).
struct PipelineProfile {
  std::vector<double> stage_work;   ///< size Ns, work units per item
  std::vector<double> msg_bytes;    ///< size Ns+1; [0]=input, [Ns]=output
  std::vector<double> state_bytes;  ///< size Ns; migratable state per stage

  grid::NodeId source_node = 0;  ///< where inputs originate
  grid::NodeId sink_node = 0;    ///< where outputs are collected
  /// Whether the source→stage0 and last-stage→sink transfers constrain
  /// throughput (the calibration table assumes they do not).
  bool count_io_edges = false;

  std::size_t num_stages() const noexcept { return stage_work.size(); }

  /// Uniform profile helper: Ns stages of equal `work`, all messages
  /// `bytes`, all state `state`.
  static PipelineProfile uniform(std::size_t num_stages, double work,
                                 double bytes, double state = 0.0);

  /// Throws std::invalid_argument if the vectors are inconsistent.
  void validate() const;
};

/// A snapshot of believed resource performance — either ground truth
/// sampled from the Grid (oracle) or forecasts from the monitor
/// (adaptive).
struct ResourceEstimate {
  std::size_t num_nodes = 0;
  std::vector<double> node_speed;      ///< effective work units / s
  std::vector<double> link_latency;    ///< dense n×n, seconds
  std::vector<double> link_bandwidth;  ///< dense n×n, bytes/s

  double latency(grid::NodeId a, grid::NodeId b) const {
    return link_latency[a * num_nodes + b];
  }
  double bandwidth(grid::NodeId a, grid::NodeId b) const {
    return link_bandwidth[a * num_nodes + b];
  }
  /// Modeled time to move `bytes` from a to b.
  double transfer_time(grid::NodeId a, grid::NodeId b, double bytes) const {
    return latency(a, b) + bytes / bandwidth(a, b);
  }

  /// Ground truth at virtual time t (used by the oracle driver and by
  /// model-vs-simulation validation).
  static ResourceEstimate from_grid(const grid::Grid& grid, double t);

  /// Forecast-based estimate: node speeds from kNodeSpeed sensors, links
  /// from kLinkInflation sensors applied to the catalog (time-0 dedicated)
  /// values of `catalog`. Missing sensors fall back to the catalog.
  static ResourceEstimate from_monitor(const monitor::MonitoringRegistry& reg,
                                       const grid::Grid& catalog);
};

/// Per-mapping model diagnostics.
struct ThroughputBreakdown {
  std::vector<double> node_busy;   ///< per node, seconds of work per item
  std::vector<double> edge_time;   ///< per edge (Ns+1), max pair-time or 0
  std::vector<double> link_busy;   ///< per directed link, seconds per item
  double node_cap = 0.0;           ///< min over used nodes of 1/busy
  double edge_cap = 0.0;           ///< min over used links of 1/busy
  double network_cap = 0.0;        ///< 1/Σ edge times (if serialized)
  double throughput = 0.0;         ///< min of the applicable caps
  double total_comm_time = 0.0;    ///< Σ inter-node edge times (tie-break)
};

struct PerfModelOptions {
  /// Model a single shared network component that serializes all
  /// inter-node transfers (matches the PEPA calibration model).
  bool network_serialization = false;
};

class PerfModel {
 public:
  explicit PerfModel(PerfModelOptions options = {}) : options_(options) {}

  /// Steady-state items/second for `mapping`; 0 for an infeasible input.
  double throughput(const PipelineProfile& profile,
                    const ResourceEstimate& est, const Mapping& mapping) const;

  ThroughputBreakdown breakdown(const PipelineProfile& profile,
                                const ResourceEstimate& est,
                                const Mapping& mapping) const;

  /// Mean end-to-end item latency under open arrivals at `arrival_rate`
  /// items/s: per-stage service plus an M/D/1 queueing delay at each
  /// node (utilization = rate × node busy time), plus the transfer times
  /// along the primary replica path. Returns +inf when any resource's
  /// utilization reaches 1 (unstable).
  double latency_estimate(const PipelineProfile& profile,
                          const ResourceEstimate& est, const Mapping& mapping,
                          double arrival_rate) const;

  /// True if `a` is strictly better than `b` under the lexicographic
  /// objective (throughput desc, total comm time asc, nodes used asc) with
  /// relative throughput tolerance `tie_eps`.
  bool better(const ThroughputBreakdown& a, std::size_t a_nodes,
              const ThroughputBreakdown& b, std::size_t b_nodes,
              double tie_eps = 1e-9) const;

  const PerfModelOptions& options() const noexcept { return options_; }

 private:
  PerfModelOptions options_;
};

/// Modeled wall-clock pause for switching `from`→`to`: restart latency
/// plus the slowest stage-state migration (migrations proceed in
/// parallel). Stages whose replica set is unchanged cost nothing.
double migration_cost(const PipelineProfile& profile,
                      const ResourceEstimate& est, const Mapping& from,
                      const Mapping& to, double restart_latency);

}  // namespace gridpipe::sched
