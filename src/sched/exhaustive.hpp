#pragma once
// Exhaustive mapping search: enumerates every stage→node assignment (no
// replication) and returns the best under the PerfModel objective. Only
// feasible for small instances (guarded); it is the optimality reference
// the other mappers are property-tested against, and the engine behind
// the calibration table (3 stages × 3 processors = 27 candidates).

#include <cstddef>
#include <optional>

#include "sched/perf_model.hpp"

namespace gridpipe::sched {

struct ExhaustiveOptions {
  /// Pin stage 0 to profile.source_node (the calibration table fixes the
  /// first stage on processor 1).
  bool pin_first_stage = false;
  /// Abort if the candidate count would exceed this.
  std::size_t max_candidates = 2'000'000;
};

struct MapperResult {
  Mapping mapping;
  ThroughputBreakdown breakdown;
  std::size_t candidates_evaluated = 0;
};

class ExhaustiveMapper {
 public:
  ExhaustiveMapper(const PerfModel& model, ExhaustiveOptions options = {})
      : model_(model), options_(options) {}

  /// Best mapping, or std::nullopt when the space exceeds max_candidates.
  std::optional<MapperResult> best(const PipelineProfile& profile,
                                   const ResourceEstimate& est) const;

 private:
  const PerfModel& model_;
  ExhaustiveOptions options_;
};

/// Greedy replica search for EXP-F6: starting from `base`, repeatedly adds
/// a replica of the current bottleneck stage on the node that most
/// improves modeled throughput, until no single added replica helps or
/// `max_total_replicas` is reached. Returns the improved mapping.
MapperResult improve_with_replication(const PerfModel& model,
                                      const PipelineProfile& profile,
                                      const ResourceEstimate& est,
                                      const Mapping& base,
                                      std::size_t max_total_replicas);

}  // namespace gridpipe::sched
