#pragma once
// The adaptation decision: given the currently deployed mapping and the
// best candidate the mapper found under fresh forecasts, decide whether a
// remap pays off. Three safeguards keep the pattern stable on a noisy
// grid:
//
//  1. Minimum-gain gate — the candidate must beat the deployed mapping's
//     *predicted* throughput by a relative margin.
//  2. Cost–benefit gate — the extra items gained over the amortization
//     horizon must exceed the items lost while the pipeline is frozen for
//     migration.
//  3. Hysteresis — the candidate must win for `hysteresis_epochs`
//     consecutive decision points before a remap is issued (one epoch of
//     a transient spike never triggers migration).
//
// Each of these is independently disableable for the EXP-A1 ablations.

#include <string>

#include "sched/perf_model.hpp"

namespace gridpipe::sched {

struct AdaptationOptions {
  double min_gain_ratio = 0.10;      ///< candidate must beat current by 10 %
  std::size_t hysteresis_epochs = 2; ///< consecutive wins required
  double amortization_horizon = 120; ///< seconds of future credited to a remap
  double restart_latency = 0.5;      ///< fixed per-remap pause (s)
  bool enable_cost_gate = true;
  bool enable_hysteresis = true;
};

struct AdaptationDecision {
  bool remap = false;
  double current_throughput = 0.0;    ///< model estimate, deployed mapping
  double candidate_throughput = 0.0;  ///< model estimate, candidate mapping
  double migration_pause = 0.0;       ///< modeled freeze (s) if remapping
  double predicted_gain_items = 0.0;  ///< net items gained over the horizon
  std::string reason;                 ///< human-readable trace
};

/// Scale-free change gate over a whole ResourceEstimate: answers "did any
/// node speed or inter-node link time move by more than X% since the
/// snapshot taken at the last accepted decision?". The kOnChange
/// adaptation trigger uses it to skip mapping searches on quiet epochs.
class ResourceChangeGate {
 public:
  /// `rel_threshold` is the relative change that counts as significant
  /// (0.25 = 25 %).
  explicit ResourceChangeGate(double rel_threshold = 0.25);

  /// True if no snapshot has been accepted yet, or any resource differs
  /// from the snapshot by more than the threshold.
  bool changed(const ResourceEstimate& est) const;

  /// Takes `est` as the new reference snapshot.
  void accept(const ResourceEstimate& est);

  bool has_snapshot() const noexcept { return !node_speed_.empty(); }
  double threshold() const noexcept { return rel_threshold_; }

 private:
  static bool differs(double a, double b, double rel) noexcept;

  double rel_threshold_;
  std::vector<double> node_speed_;
  std::vector<double> link_time_;  // latency + 1/bandwidth per pair
};

class AdaptationPolicy {
 public:
  AdaptationPolicy(const PerfModel& model, AdaptationOptions options = {})
      : model_(model), options_(options) {}

  /// Evaluates candidate vs deployed under the estimate. Stateful: tracks
  /// the hysteresis streak across calls (call once per epoch).
  AdaptationDecision decide(const PipelineProfile& profile,
                            const ResourceEstimate& est,
                            const Mapping& deployed, const Mapping& candidate);

  /// Resets the hysteresis streak (call after an executed remap).
  void notify_remapped() noexcept { streak_ = 0; }

  const AdaptationOptions& options() const noexcept { return options_; }
  std::size_t streak() const noexcept { return streak_; }

 private:
  const PerfModel& model_;
  AdaptationOptions options_;
  std::size_t streak_ = 0;
};

}  // namespace gridpipe::sched
