#pragma once
// Latency-objective mapping search.
//
// The throughput mappers maximize sustained items/s — right for saturated
// streams. Interactive pipelines fed well below capacity care about
// response time instead, and the two objectives genuinely conflict: at
// low load, folding consecutive stages onto one fast node removes
// transfer hops (lower latency) even though it lowers the throughput
// ceiling. This mapper minimizes PerfModel::latency_estimate at a given
// offered rate, subject to stability (rate < modeled throughput).

#include <optional>

#include "sched/exhaustive.hpp"

namespace gridpipe::sched {

struct LatencyMapperOptions {
  /// Required headroom: candidate mappings must sustain
  /// rate * (1 + headroom) to be considered (protects against forecast
  /// error pushing a tight mapping over the edge).
  double headroom = 0.10;
  std::size_t max_candidates = 2'000'000;
};

struct LatencyMapperResult {
  Mapping mapping;
  double latency = 0.0;      ///< modeled mean end-to-end latency (s)
  double throughput = 0.0;   ///< modeled capacity of the chosen mapping
  std::size_t candidates_evaluated = 0;
};

class LatencyMapper {
 public:
  LatencyMapper(const PerfModel& model, LatencyMapperOptions options = {})
      : model_(model), options_(options) {}

  /// Exhaustively searches stage→node assignments (no replication) for
  /// the lowest-latency feasible mapping at `arrival_rate` items/s.
  /// std::nullopt when the space exceeds max_candidates or no mapping is
  /// feasible at the required headroom.
  std::optional<LatencyMapperResult> best(const PipelineProfile& profile,
                                          const ResourceEstimate& est,
                                          double arrival_rate) const;

 private:
  const PerfModel& model_;
  LatencyMapperOptions options_;
};

}  // namespace gridpipe::sched
