#include "sched/dp_contiguous.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gridpipe::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::optional<MapperResult> DpContiguousMapper::best(
    const PipelineProfile& profile, const ResourceEstimate& est) const {
  profile.validate();
  const std::size_t ns = profile.num_stages();
  const std::size_t np = est.num_nodes;
  if (np == 0 || np > options_.max_nodes) return std::nullopt;
  const std::size_t masks = std::size_t{1} << np;

  // Prefix sums of stage work for O(1) interval busy-time queries.
  std::vector<double> prefix(ns + 1, 0.0);
  for (std::size_t i = 0; i < ns; ++i) {
    prefix[i + 1] = prefix[i] + profile.stage_work[i];
  }

  // Cap contributed by interval [i, j) on node n: the node busy cap min'd
  // with the loopback edges internal to the interval.
  auto interval_cap = [&](std::size_t i, std::size_t j, grid::NodeId n) {
    const double busy = (prefix[j] - prefix[i]) / est.node_speed[n];
    double cap = 1.0 / busy;
    for (std::size_t e = i + 1; e < j; ++e) {
      const double t = est.transfer_time(n, n, profile.msg_bytes[e]);
      if (t > 0.0) cap = std::min(cap, 1.0 / t);
    }
    return cap;
  };

  // dp[(j * np + n) * masks + mask]: best bottleneck for stages [0, j)
  // with the last interval on n, used-set mask.
  const std::size_t states = (ns + 1) * np * masks;
  std::vector<double> dp(states, -1.0);
  struct Parent {
    std::uint32_t boundary = 0;  // start of the last interval
    std::int32_t prev_node = -1;
  };
  std::vector<Parent> parent(states);
  auto idx = [&](std::size_t j, std::size_t n, std::size_t mask) {
    return (j * np + n) * masks + mask;
  };

  // Seed: first interval [0, j) on node m.
  for (std::size_t j = 1; j <= ns; ++j) {
    for (grid::NodeId m = 0; m < np; ++m) {
      double cap = interval_cap(0, j, m);
      if (profile.count_io_edges) {
        const double t =
            est.transfer_time(profile.source_node, m, profile.msg_bytes[0]);
        if (t > 0.0) cap = std::min(cap, 1.0 / t);
      }
      const std::size_t s = idx(j, m, std::size_t{1} << m);
      if (cap > dp[s]) {
        dp[s] = cap;
        parent[s] = {0, -1};
      }
    }
  }

  // Extend: append interval [j, j2) on a fresh node m.
  for (std::size_t j = 1; j < ns; ++j) {
    for (std::size_t n = 0; n < np; ++n) {
      for (std::size_t mask = 0; mask < masks; ++mask) {
        const double v = dp[idx(j, n, mask)];
        if (v < 0.0) continue;
        for (grid::NodeId m = 0; m < np; ++m) {
          if (mask & (std::size_t{1} << m)) continue;
          const double boundary_t = est.transfer_time(
              static_cast<grid::NodeId>(n), m, profile.msg_bytes[j]);
          const double boundary_cap = boundary_t > 0.0 ? 1.0 / boundary_t : kInf;
          for (std::size_t j2 = j + 1; j2 <= ns; ++j2) {
            const double cap = std::min(
                {v, boundary_cap, interval_cap(j, j2, m)});
            const std::size_t s = idx(j2, m, mask | (std::size_t{1} << m));
            if (cap > dp[s]) {
              dp[s] = cap;
              parent[s] = {static_cast<std::uint32_t>(j),
                           static_cast<std::int32_t>(n)};
            }
          }
        }
      }
    }
  }

  // Pick the best terminal state (optionally charging the sink edge).
  double best_value = -1.0;
  std::size_t best_n = 0, best_mask = 0;
  for (std::size_t n = 0; n < np; ++n) {
    for (std::size_t mask = 0; mask < masks; ++mask) {
      double v = dp[idx(ns, n, mask)];
      if (v < 0.0) continue;
      if (profile.count_io_edges) {
        const double t = est.transfer_time(static_cast<grid::NodeId>(n),
                                           profile.sink_node,
                                           profile.msg_bytes[ns]);
        if (t > 0.0) v = std::min(v, 1.0 / t);
      }
      if (v > best_value) {
        best_value = v;
        best_n = n;
        best_mask = mask;
      }
    }
  }
  if (best_value < 0.0) return std::nullopt;

  // Reconstruct the interval chain.
  std::vector<grid::NodeId> assign(ns, 0);
  std::size_t j = ns, n = best_n, mask = best_mask;
  while (j > 0) {
    const Parent& p = parent[idx(j, n, mask)];
    for (std::size_t k = p.boundary; k < j; ++k) {
      assign[k] = static_cast<grid::NodeId>(n);
    }
    mask &= ~(std::size_t{1} << n);
    j = p.boundary;
    if (p.prev_node < 0) break;
    n = static_cast<std::size_t>(p.prev_node);
  }

  MapperResult result;
  result.mapping = Mapping{assign};
  result.breakdown = model_.breakdown(profile, est, result.mapping);
  result.candidates_evaluated = states;
  return result;
}

}  // namespace gridpipe::sched
