#include "sched/local_search.hpp"

#include "util/rng.hpp"

namespace gridpipe::sched {

MapperResult LocalSearchMapper::improve(const PipelineProfile& profile,
                                        const ResourceEstimate& est,
                                        const Mapping& start) const {
  MapperResult current;
  current.mapping = start;
  current.breakdown = model_.breakdown(profile, est, start);
  std::size_t evaluated = 1;

  const std::size_t ns = profile.num_stages();
  const std::size_t np = est.num_nodes;

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    MapperResult best_neighbour = current;
    bool improved = false;

    auto consider = [&](Mapping candidate) {
      const ThroughputBreakdown bd = model_.breakdown(profile, est, candidate);
      ++evaluated;
      if (model_.better(bd, candidate.nodes_used().size(),
                        best_neighbour.breakdown,
                        best_neighbour.mapping.nodes_used().size())) {
        best_neighbour.mapping = std::move(candidate);
        best_neighbour.breakdown = bd;
        improved = true;
      }
    };

    // Move neighbourhood.
    for (std::size_t i = 0; i < ns; ++i) {
      for (grid::NodeId n = 0; n < np; ++n) {
        if (current.mapping.node_of(i) == n) continue;
        Mapping candidate = current.mapping;
        candidate.reassign(i, n);
        consider(std::move(candidate));
      }
    }
    // Swap neighbourhood.
    for (std::size_t i = 0; i < ns; ++i) {
      for (std::size_t j = i + 1; j < ns; ++j) {
        const grid::NodeId ni = current.mapping.node_of(i);
        const grid::NodeId nj = current.mapping.node_of(j);
        if (ni == nj) continue;
        Mapping candidate = current.mapping;
        candidate.reassign(i, nj);
        candidate.reassign(j, ni);
        consider(std::move(candidate));
      }
    }

    if (!improved) break;
    current.mapping = std::move(best_neighbour.mapping);
    current.breakdown = best_neighbour.breakdown;
  }
  current.candidates_evaluated = evaluated;
  return current;
}

MapperResult LocalSearchMapper::best(const PipelineProfile& profile,
                                     const ResourceEstimate& est) const {
  // Start 1: greedy seed.
  const GreedyMapper greedy(model_);
  MapperResult best_result =
      improve(profile, est, greedy.best(profile, est).mapping);

  // Random restarts.
  util::Xoshiro256 rng(options_.seed);
  const std::size_t ns = profile.num_stages();
  for (std::size_t r = 0; r < options_.restarts; ++r) {
    std::vector<grid::NodeId> assign(ns);
    for (auto& n : assign) {
      n = static_cast<grid::NodeId>(
          util::uniform_int(rng, 0, est.num_nodes - 1));
    }
    MapperResult candidate = improve(profile, est, Mapping{assign});
    candidate.candidates_evaluated += best_result.candidates_evaluated;
    if (model_.better(candidate.breakdown,
                      candidate.mapping.nodes_used().size(),
                      best_result.breakdown,
                      best_result.mapping.nodes_used().size())) {
      best_result = std::move(candidate);
    } else {
      best_result.candidates_evaluated = candidate.candidates_evaluated;
    }
  }
  return best_result;
}

}  // namespace gridpipe::sched
