#pragma once
// Hill-climbing local search over mappings: starts from a seed mapping
// (greedy by default), then repeatedly applies the best of
//   * move  — reassign one stage to another node,
//   * swap  — exchange the nodes of two stages,
// until no neighbour improves the PerfModel objective, with optional
// seeded random restarts. Deterministic for a fixed seed. This is the
// production mapper for instances beyond the exhaustive/DP guards.

#include <cstdint>

#include "sched/greedy.hpp"

namespace gridpipe::sched {

struct LocalSearchOptions {
  std::size_t max_iterations = 1000;  ///< neighbourhood sweeps per start
  std::size_t restarts = 2;           ///< additional random starts
  std::uint64_t seed = 42;            ///< RNG seed for random starts
};

class LocalSearchMapper {
 public:
  LocalSearchMapper(const PerfModel& model, LocalSearchOptions options = {})
      : model_(model), options_(options) {}

  MapperResult best(const PipelineProfile& profile,
                    const ResourceEstimate& est) const;

  /// Climbs from a caller-supplied start (exposed for warm-starting from
  /// the currently deployed mapping).
  MapperResult improve(const PipelineProfile& profile,
                       const ResourceEstimate& est, const Mapping& start) const;

 private:
  const PerfModel& model_;
  LocalSearchOptions options_;
};

}  // namespace gridpipe::sched
