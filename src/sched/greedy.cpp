#include "sched/greedy.hpp"

#include <limits>
#include <stdexcept>

namespace gridpipe::sched {

MapperResult GreedyMapper::best(const PipelineProfile& profile,
                                const ResourceEstimate& est) const {
  profile.validate();
  const std::size_t ns = profile.num_stages();
  const std::size_t np = est.num_nodes;
  if (np == 0) throw std::invalid_argument("GreedyMapper: no nodes");

  std::vector<double> node_busy(np, 0.0);
  std::vector<grid::NodeId> assign;
  assign.reserve(ns);
  std::size_t evaluated = 0;

  for (std::size_t i = 0; i < ns; ++i) {
    grid::NodeId best_node = 0;
    double best_bottleneck = std::numeric_limits<double>::infinity();
    for (grid::NodeId n = 0; n < np; ++n) {
      ++evaluated;
      // Bottleneck time if stage i goes on n: the worst of (a) every
      // node's accumulated busy time, (b) the new boundary edge time.
      double bottleneck = node_busy[n] + profile.stage_work[i] / est.node_speed[n];
      for (grid::NodeId other = 0; other < np; ++other) {
        if (other != n) bottleneck = std::max(bottleneck, node_busy[other]);
      }
      if (i > 0) {
        bottleneck = std::max(
            bottleneck, est.transfer_time(assign[i - 1], n, profile.msg_bytes[i]));
      } else if (profile.count_io_edges) {
        bottleneck = std::max(bottleneck, est.transfer_time(profile.source_node,
                                                            n,
                                                            profile.msg_bytes[0]));
      }
      if (bottleneck < best_bottleneck) {
        best_bottleneck = bottleneck;
        best_node = n;
      }
    }
    node_busy[best_node] += profile.stage_work[i] / est.node_speed[best_node];
    assign.push_back(best_node);
  }

  MapperResult result;
  result.mapping = Mapping{assign};
  result.breakdown = model_.breakdown(profile, est, result.mapping);
  result.candidates_evaluated = evaluated;
  return result;
}

}  // namespace gridpipe::sched
