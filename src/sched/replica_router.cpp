#include "sched/replica_router.hpp"

namespace gridpipe::sched {

void ReplicaRouter::reset(std::size_t num_stages) {
  next_.assign(num_stages, 0);
}

grid::NodeId ReplicaRouter::pick(const Mapping& mapping, std::size_t stage) {
  const auto& reps = mapping.replicas(stage);
  const grid::NodeId node = reps[next_[stage] % reps.size()];
  ++next_[stage];
  return node;
}

}  // namespace gridpipe::sched
