#include "sched/exhaustive.hpp"

#include <algorithm>
#include <cmath>

namespace gridpipe::sched {

std::optional<MapperResult> ExhaustiveMapper::best(
    const PipelineProfile& profile, const ResourceEstimate& est) const {
  profile.validate();
  const std::size_t ns = profile.num_stages();
  const std::size_t np = est.num_nodes;
  if (np == 0) return std::nullopt;

  const std::size_t free_stages = options_.pin_first_stage ? ns - 1 : ns;
  const double space = std::pow(static_cast<double>(np),
                                static_cast<double>(free_stages));
  if (space > static_cast<double>(options_.max_candidates)) {
    return std::nullopt;
  }

  std::vector<grid::NodeId> assign(ns, 0);
  if (options_.pin_first_stage) assign[0] = profile.source_node;

  MapperResult best_result;
  bool have_best = false;
  std::size_t evaluated = 0;

  // Odometer enumeration over the free stages.
  const std::size_t first_free = options_.pin_first_stage ? 1 : 0;
  for (;;) {
    Mapping candidate{assign};
    const ThroughputBreakdown bd = model_.breakdown(profile, est, candidate);
    ++evaluated;
    const std::size_t nodes_used = candidate.nodes_used().size();
    if (!have_best ||
        model_.better(bd, nodes_used, best_result.breakdown,
                      best_result.mapping.nodes_used().size())) {
      best_result.mapping = std::move(candidate);
      best_result.breakdown = bd;
      have_best = true;
    }
    // Increment the odometer.
    std::size_t digit = ns;
    while (digit > first_free) {
      --digit;
      if (static_cast<std::size_t>(++assign[digit]) < np) break;
      assign[digit] = 0;
      if (digit == first_free) {
        best_result.candidates_evaluated = evaluated;
        return best_result;
      }
    }
    if (ns == first_free) {  // degenerate: everything pinned
      best_result.candidates_evaluated = evaluated;
      return best_result;
    }
  }
}

MapperResult improve_with_replication(const PerfModel& model,
                                      const PipelineProfile& profile,
                                      const ResourceEstimate& est,
                                      const Mapping& base,
                                      std::size_t max_total_replicas) {
  MapperResult result;
  result.mapping = base;
  result.breakdown = model.breakdown(profile, est, base);

  auto total_replicas = [](const Mapping& m) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < m.num_stages(); ++i) {
      total += m.replica_count(i);
    }
    return total;
  };

  while (total_replicas(result.mapping) < max_total_replicas) {
    MapperResult best_step = result;
    bool improved = false;
    for (std::size_t stage = 0; stage < result.mapping.num_stages(); ++stage) {
      for (grid::NodeId n = 0; n < est.num_nodes; ++n) {
        const auto& reps = result.mapping.replicas(stage);
        if (std::find(reps.begin(), reps.end(), n) != reps.end()) continue;
        Mapping candidate = result.mapping;
        candidate.add_replica(stage, n);
        const ThroughputBreakdown bd = model.breakdown(profile, est, candidate);
        ++result.candidates_evaluated;
        if (bd.throughput > best_step.breakdown.throughput * (1.0 + 1e-9)) {
          best_step.mapping = std::move(candidate);
          best_step.breakdown = bd;
          improved = true;
        }
      }
    }
    if (!improved) break;
    best_step.candidates_evaluated = result.candidates_evaluated;
    result = std::move(best_step);
  }
  return result;
}

}  // namespace gridpipe::sched
