#pragma once
// Greedy bottleneck mapper: assigns stages in pipeline order, placing each
// stage on the node that minimizes the partial pipeline's modeled
// bottleneck (node busy times plus the newly created boundary edge).
// O(Ns · Np) model evaluations; the cheap mapper the adaptation loop uses
// when the exhaustive space is too large and Np exceeds the DP guard.

#include "sched/exhaustive.hpp"

namespace gridpipe::sched {

class GreedyMapper {
 public:
  explicit GreedyMapper(const PerfModel& model) : model_(model) {}

  MapperResult best(const PipelineProfile& profile,
                    const ResourceEstimate& est) const;

 private:
  const PerfModel& model_;
};

}  // namespace gridpipe::sched
