#include "sched/description.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gridpipe::sched {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("description line " + std::to_string(line) +
                              ": " + message);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string token;
  while (is >> token) out.push_back(token);
  return out;
}

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

double num(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) fail(line, "bad number '" + token + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "bad number '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range '" + token + "'");
  }
}

grid::LoadModelPtr parse_load(const std::string& spec, std::size_t line) {
  const auto parts = split_on(spec, ',');
  const std::string& kind = parts.front();
  auto arg = [&](std::size_t i) -> double {
    if (i >= parts.size()) fail(line, "load=" + kind + ": missing argument");
    return num(parts[i], line);
  };
  if (kind == "const") {
    return std::make_shared<grid::ConstantLoad>(arg(1));
  }
  if (kind == "step") {
    return std::make_shared<grid::StepLoad>(
        std::vector<grid::StepLoad::Step>{{arg(1), arg(2)}});
  }
  if (kind == "sine") {
    return std::make_shared<grid::SineLoad>(arg(1), arg(2), arg(3));
  }
  if (kind == "walk") {
    // seed, initial, stddev, dt, horizon
    return std::make_shared<grid::RandomWalkLoad>(
        static_cast<std::uint64_t>(arg(1)), arg(2), arg(3), arg(4), arg(5));
  }
  if (kind == "onoff") {
    // seed, on_load, mean_on, mean_off, horizon
    return std::make_shared<grid::MarkovOnOffLoad>(
        static_cast<std::uint64_t>(arg(1)), arg(2), arg(3), arg(4), arg(5));
  }
  fail(line, "unknown load model '" + kind + "'");
}

}  // namespace

GridDescription parse_description(const std::string& text) {
  GridDescription out;

  struct PendingLink {
    std::string a, b;
    double latency, bandwidth;
    std::size_t line;
  };
  std::vector<PendingLink> links;
  double default_latency = 1e-3;
  double default_bandwidth = 1e8;
  bool saw_default = false;

  enum class Section { kNone, kNodes, kLinks, kPipeline };
  Section section = Section::kNone;

  std::istringstream is(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto tokens = split_ws(raw);
    if (tokens.empty()) continue;

    if (tokens[0] == "[nodes]") {
      section = Section::kNodes;
      continue;
    }
    if (tokens[0] == "[links]") {
      section = Section::kLinks;
      continue;
    }
    if (tokens[0] == "[pipeline]") {
      section = Section::kPipeline;
      continue;
    }

    switch (section) {
      case Section::kNone:
        fail(line_no, "content before any [section]");
      case Section::kNodes: {
        if (tokens.size() < 2) fail(line_no, "node needs: name speed");
        grid::LoadModelPtr load;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          if (tokens[i].rfind("load=", 0) == 0) {
            load = parse_load(tokens[i].substr(5), line_no);
          } else {
            fail(line_no, "unknown node attribute '" + tokens[i] + "'");
          }
        }
        out.grid.add_node(tokens[0], num(tokens[1], line_no), std::move(load));
        out.node_names.push_back(tokens[0]);
        break;
      }
      case Section::kLinks: {
        if (tokens[0] == "default") {
          if (tokens.size() != 3) {
            fail(line_no, "default needs: latency bandwidth");
          }
          default_latency = num(tokens[1], line_no);
          default_bandwidth = num(tokens[2], line_no);
          saw_default = true;
        } else {
          if (tokens.size() != 4) {
            fail(line_no, "link needs: a b latency bandwidth");
          }
          links.push_back({tokens[0], tokens[1], num(tokens[2], line_no),
                           num(tokens[3], line_no), line_no});
        }
        break;
      }
      case Section::kPipeline: {
        if (tokens.size() < 3 || tokens.size() > 4) {
          fail(line_no, "stage needs: name work out_bytes [state_bytes]");
        }
        out.stage_names.push_back(tokens[0]);
        out.profile.stage_work.push_back(num(tokens[1], line_no));
        if (out.profile.msg_bytes.empty()) {
          out.profile.msg_bytes.push_back(num(tokens[2], line_no));  // input
        }
        out.profile.msg_bytes.push_back(num(tokens[2], line_no));
        out.profile.state_bytes.push_back(
            tokens.size() == 4 ? num(tokens[3], line_no) : 0.0);
        break;
      }
    }
  }

  if (out.grid.num_nodes() == 0) {
    throw std::invalid_argument("description: no nodes");
  }
  if (out.profile.stage_work.empty()) {
    throw std::invalid_argument("description: no pipeline stages");
  }

  auto node_id = [&](const std::string& name, std::size_t line) {
    for (grid::NodeId n = 0; n < out.node_names.size(); ++n) {
      if (out.node_names[n] == name) return n;
    }
    fail(line, "unknown node '" + name + "'");
  };

  // Apply default links between distinct nodes, then explicit overrides.
  if (saw_default || !links.empty()) {
    for (grid::NodeId a = 0; a < out.grid.num_nodes(); ++a) {
      for (grid::NodeId b = 0; b < out.grid.num_nodes(); ++b) {
        if (a != b) {
          out.grid.set_link(a, b,
                            grid::Link(default_latency, default_bandwidth));
        }
      }
    }
  }
  for (const PendingLink& link : links) {
    out.grid.set_symmetric_link(node_id(link.a, link.line),
                                node_id(link.b, link.line),
                                grid::Link(link.latency, link.bandwidth));
  }

  out.profile.validate();
  return out;
}

GridDescription load_description(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read description: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_description(buffer.str());
}

}  // namespace gridpipe::sched
