#pragma once
// Textual grid + application description files, in the spirit of the
// AMoGeT tool's input: the user (or a resource-information service)
// describes the processors, the links, and the pipeline stages; the
// library generates and compares candidate mappings from it (see
// examples/mapping_planner).
//
// Format (line-based, '#' comments, three sections):
//
//   [nodes]
//   # name speed [load=TYPE,arg1,arg2,...]
//   n0 2.0
//   n1 1.0 load=step,150,8.0          # load 8.0 from t=150 s
//   n2 1.0 load=sine,1.0,0.5,240      # mean, amplitude, period
//   n3 1.0 load=const,2.0
//
//   [links]
//   # "default latency bandwidth" or "a b latency bandwidth" (symmetric)
//   default 1e-3 1e8
//   n0 n1 1e-4 1e9
//
//   [pipeline]
//   # stage_name work out_bytes [state_bytes]
//   parse   1.0 1e4
//   compute 4.0 1e4 4e6
//   render  1.0 1e4

#include <string>
#include <vector>

#include "sched/perf_model.hpp"

namespace gridpipe::sched {

struct GridDescription {
  grid::Grid grid;
  PipelineProfile profile;
  std::vector<std::string> node_names;
  std::vector<std::string> stage_names;
};

/// Parses a description document. Throws std::invalid_argument with a
/// line-numbered message on malformed input.
GridDescription parse_description(const std::string& text);

/// Reads and parses a description file (throws std::runtime_error when
/// the file cannot be read).
GridDescription load_description(const std::string& path);

}  // namespace gridpipe::sched
