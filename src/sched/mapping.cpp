#include "sched/mapping.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace gridpipe::sched {

Mapping::Mapping(std::vector<grid::NodeId> stage_to_node) {
  assignment_.reserve(stage_to_node.size());
  for (const grid::NodeId n : stage_to_node) {
    assignment_.push_back({n});
  }
}

Mapping::Mapping(std::vector<std::vector<grid::NodeId>> assignment)
    : assignment_(std::move(assignment)) {}

Mapping Mapping::round_robin(std::size_t num_stages, std::size_t num_nodes) {
  if (num_nodes == 0) throw std::invalid_argument("round_robin: no nodes");
  std::vector<grid::NodeId> stage_to_node(num_stages);
  for (std::size_t i = 0; i < num_stages; ++i) {
    stage_to_node[i] = static_cast<grid::NodeId>(i % num_nodes);
  }
  return Mapping(std::move(stage_to_node));
}

Mapping Mapping::block(std::size_t num_stages, std::size_t num_nodes) {
  if (num_nodes == 0) throw std::invalid_argument("block: no nodes");
  const std::size_t blocks = std::min(num_stages, num_nodes);
  std::vector<grid::NodeId> stage_to_node(num_stages);
  if (blocks > 0) {
    const std::size_t base = num_stages / blocks;
    const std::size_t extra = num_stages % blocks;
    std::size_t stage = 0;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      const std::size_t len = base + (blk < extra ? 1 : 0);
      for (std::size_t k = 0; k < len; ++k) {
        stage_to_node[stage++] = static_cast<grid::NodeId>(blk);
      }
    }
  }
  return Mapping(std::move(stage_to_node));
}

Mapping Mapping::all_on(std::size_t num_stages, grid::NodeId node) {
  return Mapping(std::vector<grid::NodeId>(num_stages, node));
}

const std::vector<grid::NodeId>& Mapping::replicas(std::size_t stage) const {
  if (stage >= assignment_.size()) {
    throw std::out_of_range("Mapping::replicas: bad stage");
  }
  return assignment_[stage];
}

grid::NodeId Mapping::node_of(std::size_t stage) const {
  const auto& reps = replicas(stage);
  if (reps.empty()) throw std::logic_error("Mapping::node_of: empty stage");
  return reps.front();
}

std::size_t Mapping::replica_count(std::size_t stage) const {
  return replicas(stage).size();
}

bool Mapping::has_replication() const noexcept {
  return std::any_of(assignment_.begin(), assignment_.end(),
                     [](const auto& reps) { return reps.size() > 1; });
}

void Mapping::add_replica(std::size_t stage, grid::NodeId node) {
  if (stage >= assignment_.size()) {
    throw std::out_of_range("Mapping::add_replica: bad stage");
  }
  auto& reps = assignment_[stage];
  if (std::find(reps.begin(), reps.end(), node) == reps.end()) {
    reps.push_back(node);
  }
}

void Mapping::reassign(std::size_t stage, grid::NodeId node) {
  if (stage >= assignment_.size()) {
    throw std::out_of_range("Mapping::reassign: bad stage");
  }
  assignment_[stage] = {node};
}

std::vector<grid::NodeId> Mapping::nodes_used() const {
  std::set<grid::NodeId> used;
  for (const auto& reps : assignment_) used.insert(reps.begin(), reps.end());
  return {used.begin(), used.end()};
}

std::size_t Mapping::stages_on(grid::NodeId node) const noexcept {
  std::size_t count = 0;
  for (const auto& reps : assignment_) {
    count += static_cast<std::size_t>(
        std::count(reps.begin(), reps.end(), node));
  }
  return count;
}

std::vector<std::size_t> Mapping::moved_stages(const Mapping& from,
                                               const Mapping& to) {
  std::vector<std::size_t> moved;
  const std::size_t n = std::min(from.num_stages(), to.num_stages());
  for (std::size_t i = 0; i < n; ++i) {
    if (from.assignment_[i] != to.assignment_[i]) moved.push_back(i);
  }
  for (std::size_t i = n; i < std::max(from.num_stages(), to.num_stages());
       ++i) {
    moved.push_back(i);
  }
  return moved;
}

void Mapping::validate(std::size_t num_nodes) const {
  if (assignment_.empty()) {
    throw std::invalid_argument("Mapping: no stages");
  }
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    const auto& reps = assignment_[i];
    if (reps.empty()) {
      throw std::invalid_argument("Mapping: stage " + std::to_string(i) +
                                  " has no replicas");
    }
    std::set<grid::NodeId> unique(reps.begin(), reps.end());
    if (unique.size() != reps.size()) {
      throw std::invalid_argument("Mapping: duplicate replica nodes on stage " +
                                  std::to_string(i));
    }
    for (const grid::NodeId n : reps) {
      if (n >= num_nodes) {
        throw std::invalid_argument("Mapping: node id out of range on stage " +
                                    std::to_string(i));
      }
    }
  }
}

std::string Mapping::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    if (i) out += ",";
    const auto& reps = assignment_[i];
    if (reps.size() == 1) {
      out += std::to_string(reps.front() + 1);  // 1-based like the paper
    } else {
      out += "[";
      for (std::size_t r = 0; r < reps.size(); ++r) {
        if (r) out += "|";
        out += std::to_string(reps[r] + 1);
      }
      out += "]";
    }
  }
  out += ")";
  return out;
}

}  // namespace gridpipe::sched
