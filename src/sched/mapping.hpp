#pragma once
// Stage-to-processor mappings. A mapping assigns every pipeline stage an
// ordered list of nodes: one node in the common case, several when the
// stage is replicated (farmed) across processors. The textual form follows
// the paper's tuple notation, e.g. "(1,1,2)" = stages 1-2 on processor 1,
// stage 3 on processor 2 (1-based in text, 0-based in code).

#include <string>
#include <vector>

#include "grid/grid.hpp"
#include "util/require_cpp20.hpp"  // Mapping's defaulted friend operator==

namespace gridpipe::sched {

class Mapping {
 public:
  Mapping() = default;
  /// One node per stage.
  explicit Mapping(std::vector<grid::NodeId> stage_to_node);
  /// Full form with replication.
  explicit Mapping(std::vector<std::vector<grid::NodeId>> assignment);

  /// Stages 0..num_stages-1 assigned to nodes round-robin.
  static Mapping round_robin(std::size_t num_stages, std::size_t num_nodes);
  /// Contiguous blocks of ~equal size, one block per node (block i on
  /// node i); uses at most num_stages nodes.
  static Mapping block(std::size_t num_stages, std::size_t num_nodes);
  /// Every stage on one node.
  static Mapping all_on(std::size_t num_stages, grid::NodeId node);

  std::size_t num_stages() const noexcept { return assignment_.size(); }
  bool empty() const noexcept { return assignment_.empty(); }

  /// Replicas of stage i (ordered; size >= 1 for a valid mapping).
  const std::vector<grid::NodeId>& replicas(std::size_t stage) const;
  /// Primary (first) replica of stage i.
  grid::NodeId node_of(std::size_t stage) const;
  std::size_t replica_count(std::size_t stage) const;
  bool has_replication() const noexcept;

  /// Adds a replica of `stage` on `node` (no-op if already present).
  void add_replica(std::size_t stage, grid::NodeId node);
  /// Moves stage i (all replicas collapsed) to a single node.
  void reassign(std::size_t stage, grid::NodeId node);

  /// Distinct nodes used by the mapping, ascending.
  std::vector<grid::NodeId> nodes_used() const;
  /// Number of stage-replicas hosted on `node`.
  std::size_t stages_on(grid::NodeId node) const noexcept;

  /// Stages whose replica sets differ between `from` and `to` — the set
  /// that must migrate state on a remap.
  static std::vector<std::size_t> moved_stages(const Mapping& from,
                                               const Mapping& to);

  /// Validates against a grid (every node id exists, every stage has >= 1
  /// replica, no duplicate replica nodes). Throws std::invalid_argument.
  void validate(std::size_t num_nodes) const;

  /// Paper-style tuple "(1,2,2)" (1-based primary nodes); replicated
  /// stages render as "[1|3]".
  std::string to_string() const;

  friend bool operator==(const Mapping&, const Mapping&) = default;

 private:
  std::vector<std::vector<grid::NodeId>> assignment_;
};

}  // namespace gridpipe::sched
