#pragma once
// Optimal contiguous mapping by dynamic programming.
//
// Restricts the search space to contiguous stage intervals, each interval
// on a distinct node — the classical "chains on chains" pipeline mapping.
// Within that space the mapper is exactly optimal for the max-min
// bottleneck objective, because caps compose by min:
//
//   dp[j][n][mask] = best achievable bottleneck for stages [0, j) where
//                    the last interval runs on node n and `mask` is the
//                    set of nodes already used.
//
// Complexity O(Ns² · Np² · 2^Np); practical for Np ≤ 12 (guarded).
// For pipelines whose optimum is non-contiguous the exhaustive mapper can
// beat it — EXP-T1 row (1,2,1) is exactly such a case, and a property
// test pins this down.

#include <optional>

#include "sched/exhaustive.hpp"

namespace gridpipe::sched {

struct DpOptions {
  std::size_t max_nodes = 12;  ///< refuse larger instances (2^Np blowup)
};

class DpContiguousMapper {
 public:
  DpContiguousMapper(const PerfModel& model, DpOptions options = {})
      : model_(model), options_(options) {}

  /// Best contiguous mapping, or std::nullopt when Np > max_nodes.
  std::optional<MapperResult> best(const PipelineProfile& profile,
                                   const ResourceEstimate& est) const;

 private:
  const PerfModel& model_;
  DpOptions options_;
};

}  // namespace gridpipe::sched
