#include "sched/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gridpipe::sched {

PipelineProfile PipelineProfile::uniform(std::size_t num_stages, double work,
                                         double bytes, double state) {
  PipelineProfile p;
  p.stage_work.assign(num_stages, work);
  p.msg_bytes.assign(num_stages + 1, bytes);
  p.state_bytes.assign(num_stages, state);
  return p;
}

void PipelineProfile::validate() const {
  if (stage_work.empty()) {
    throw std::invalid_argument("PipelineProfile: no stages");
  }
  if (msg_bytes.size() != stage_work.size() + 1) {
    throw std::invalid_argument("PipelineProfile: msg_bytes must be Ns+1");
  }
  if (state_bytes.size() != stage_work.size()) {
    throw std::invalid_argument("PipelineProfile: state_bytes must be Ns");
  }
  for (const double w : stage_work) {
    if (w <= 0.0) throw std::invalid_argument("PipelineProfile: work <= 0");
  }
  for (const double z : msg_bytes) {
    if (z < 0.0) throw std::invalid_argument("PipelineProfile: bytes < 0");
  }
}

ResourceEstimate ResourceEstimate::from_grid(const grid::Grid& g, double t) {
  ResourceEstimate est;
  est.num_nodes = g.num_nodes();
  est.node_speed.resize(est.num_nodes);
  est.link_latency.resize(est.num_nodes * est.num_nodes);
  est.link_bandwidth.resize(est.num_nodes * est.num_nodes);
  for (grid::NodeId n = 0; n < est.num_nodes; ++n) {
    est.node_speed[n] = g.effective_speed(n, t);
  }
  for (grid::NodeId a = 0; a < est.num_nodes; ++a) {
    for (grid::NodeId b = 0; b < est.num_nodes; ++b) {
      const grid::Link& link = g.link(a, b);
      const double c = link.congestion_at(t);
      est.link_latency[a * est.num_nodes + b] = link.latency() * (1.0 + c);
      est.link_bandwidth[a * est.num_nodes + b] = link.bandwidth() / (1.0 + c);
    }
  }
  return est;
}

ResourceEstimate ResourceEstimate::from_monitor(
    const monitor::MonitoringRegistry& reg, const grid::Grid& catalog) {
  // Catalog values: the dedicated (t-independent) performance the
  // application benchmarked at deployment time.
  ResourceEstimate est;
  est.num_nodes = catalog.num_nodes();
  est.node_speed.resize(est.num_nodes);
  est.link_latency.resize(est.num_nodes * est.num_nodes);
  est.link_bandwidth.resize(est.num_nodes * est.num_nodes);
  for (grid::NodeId n = 0; n < est.num_nodes; ++n) {
    const double base = catalog.node(n).base_speed();
    est.node_speed[n] = reg.forecast(
        {monitor::SensorKind::kNodeSpeed, n, 0}, base);
    if (est.node_speed[n] <= 0.0) est.node_speed[n] = base;
  }
  for (grid::NodeId a = 0; a < est.num_nodes; ++a) {
    for (grid::NodeId b = 0; b < est.num_nodes; ++b) {
      const grid::Link& link = catalog.link(a, b);
      double inflation = reg.forecast(
          {monitor::SensorKind::kLinkInflation, a, b}, 1.0);
      if (inflation < 1e-6) inflation = 1.0;
      est.link_latency[a * est.num_nodes + b] = link.latency() * inflation;
      est.link_bandwidth[a * est.num_nodes + b] = link.bandwidth() / inflation;
    }
  }
  return est;
}

ThroughputBreakdown PerfModel::breakdown(const PipelineProfile& profile,
                                         const ResourceEstimate& est,
                                         const Mapping& mapping) const {
  profile.validate();
  mapping.validate(est.num_nodes);
  if (mapping.num_stages() != profile.num_stages()) {
    throw std::invalid_argument("PerfModel: mapping/profile stage mismatch");
  }

  const std::size_t ns = profile.num_stages();
  ThroughputBreakdown bd;
  bd.node_busy.assign(est.num_nodes, 0.0);
  bd.edge_time.assign(ns + 1, 0.0);

  // Per-node busy time per item.
  for (std::size_t i = 0; i < ns; ++i) {
    const auto& reps = mapping.replicas(i);
    const double share = profile.stage_work[i] / static_cast<double>(reps.size());
    for (const grid::NodeId n : reps) {
      bd.node_busy[n] += share / est.node_speed[n];
    }
  }
  bd.node_cap = std::numeric_limits<double>::infinity();
  for (grid::NodeId n = 0; n < est.num_nodes; ++n) {
    if (bd.node_busy[n] > 0.0) {
      bd.node_cap = std::min(bd.node_cap, 1.0 / bd.node_busy[n]);
    }
  }

  // Per-link busy time. Edge e connects "from" replicas to "to" replicas;
  // each (a,b) pair carries 1/(|from|·|to|) of the items and occupies the
  // serial link (a,b) for its transfer time.
  bd.link_busy.assign(est.num_nodes * est.num_nodes, 0.0);
  double serialized_comm = 0.0;
  auto edge_nodes = [&](std::size_t e) {
    // Returns (from set, to set) for edge e in [0, ns].
    const std::vector<grid::NodeId> source{profile.source_node};
    const std::vector<grid::NodeId> sink{profile.sink_node};
    const auto& from = (e == 0) ? source : mapping.replicas(e - 1);
    const auto& to = (e == ns) ? sink : mapping.replicas(e);
    return std::pair<std::vector<grid::NodeId>, std::vector<grid::NodeId>>(
        from, to);
  };

  for (std::size_t e = 0; e <= ns; ++e) {
    const bool io_edge = (e == 0 || e == ns);
    if (io_edge && !profile.count_io_edges) continue;
    const auto [from, to] = edge_nodes(e);
    const double pairs = static_cast<double>(from.size() * to.size());
    double worst_pair = 0.0;
    double mean_inter_node = 0.0;
    for (const grid::NodeId a : from) {
      for (const grid::NodeId b : to) {
        const double t = est.transfer_time(a, b, profile.msg_bytes[e]);
        worst_pair = std::max(worst_pair, t);
        bd.link_busy[a * est.num_nodes + b] += t / pairs;
        if (a != b) mean_inter_node += t;
      }
    }
    bd.edge_time[e] = worst_pair;
    // The shared-network term charges the average per-item transfer time
    // actually crossing node boundaries.
    serialized_comm += mean_inter_node / pairs;
  }
  bd.edge_cap = std::numeric_limits<double>::infinity();
  for (const double busy : bd.link_busy) {
    if (busy > 0.0) bd.edge_cap = std::min(bd.edge_cap, 1.0 / busy);
  }
  bd.total_comm_time = serialized_comm;
  bd.network_cap = serialized_comm > 0.0
                       ? 1.0 / serialized_comm
                       : std::numeric_limits<double>::infinity();

  double cap = std::min(bd.node_cap, bd.edge_cap);
  if (options_.network_serialization) cap = std::min(cap, bd.network_cap);
  bd.throughput = std::isinf(cap) ? 0.0 : cap;
  return bd;
}

double PerfModel::latency_estimate(const PipelineProfile& profile,
                                   const ResourceEstimate& est,
                                   const Mapping& mapping,
                                   double arrival_rate) const {
  if (arrival_rate <= 0.0) {
    throw std::invalid_argument("latency_estimate: rate <= 0");
  }
  const ThroughputBreakdown bd = breakdown(profile, est, mapping);
  if (arrival_rate >= bd.throughput) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t ns = profile.num_stages();
  double latency = 0.0;

  // Queueing at each node: M/D/1 waiting time W = ρ·b / (2(1−ρ)) where b
  // is the node's deterministic per-item busy time. Each stage hosted on
  // the node contributes its share of b as service; the wait is charged
  // once per visit (≈ once per stage on that node).
  for (std::size_t i = 0; i < ns; ++i) {
    const auto& reps = mapping.replicas(i);
    const grid::NodeId n = reps.front();  // primary replica path
    const double busy = bd.node_busy[n];
    const double rho = arrival_rate * busy;
    const double wait = rho >= 1.0
                            ? std::numeric_limits<double>::infinity()
                            : rho * busy / (2.0 * (1.0 - rho));
    const double service = profile.stage_work[i] /
                           (static_cast<double>(reps.size()) * est.node_speed[n]);
    latency += service + wait;
  }
  // Transfers along the primary replica chain (plus I/O edges if they
  // count), with M/D/1 waits on serialized links.
  auto edge_latency = [&](grid::NodeId a, grid::NodeId b, double bytes) {
    const double t = est.transfer_time(a, b, bytes);
    const double busy = bd.link_busy[a * est.num_nodes + b];
    const double rho = arrival_rate * busy;
    const double wait = rho >= 1.0
                            ? std::numeric_limits<double>::infinity()
                            : rho * busy / (2.0 * (1.0 - rho));
    return t + wait;
  };
  if (profile.count_io_edges) {
    latency += edge_latency(profile.source_node, mapping.node_of(0),
                            profile.msg_bytes[0]);
    latency += edge_latency(mapping.node_of(ns - 1), profile.sink_node,
                            profile.msg_bytes[ns]);
  }
  for (std::size_t e = 1; e < ns; ++e) {
    latency += edge_latency(mapping.node_of(e - 1), mapping.node_of(e),
                            profile.msg_bytes[e]);
  }
  return latency;
}

double PerfModel::throughput(const PipelineProfile& profile,
                             const ResourceEstimate& est,
                             const Mapping& mapping) const {
  return breakdown(profile, est, mapping).throughput;
}

bool PerfModel::better(const ThroughputBreakdown& a, std::size_t a_nodes,
                       const ThroughputBreakdown& b, std::size_t b_nodes,
                       double tie_eps) const {
  const double scale = std::max({a.throughput, b.throughput, 1e-300});
  if (a.throughput - b.throughput > tie_eps * scale) return true;
  if (b.throughput - a.throughput > tie_eps * scale) return false;
  // Throughput tie: prefer less communication, then fewer nodes.
  if (a.total_comm_time < b.total_comm_time - 1e-12) return true;
  if (b.total_comm_time < a.total_comm_time - 1e-12) return false;
  return a_nodes < b_nodes;
}

double migration_cost(const PipelineProfile& profile,
                      const ResourceEstimate& est, const Mapping& from,
                      const Mapping& to, double restart_latency) {
  const auto moved = Mapping::moved_stages(from, to);
  if (moved.empty()) return 0.0;
  double slowest = 0.0;
  for (const std::size_t stage : moved) {
    if (stage >= profile.num_stages()) continue;
    const double state = profile.state_bytes[stage];
    // Worst (old replica → new replica) pair: migrations are parallel
    // across stages but each stage must reach all of its new homes.
    double stage_cost = 0.0;
    const auto& old_reps = stage < from.num_stages()
                               ? from.replicas(stage)
                               : std::vector<grid::NodeId>{};
    for (const grid::NodeId dst : to.replicas(stage)) {
      double best_src = std::numeric_limits<double>::infinity();
      if (old_reps.empty()) {
        best_src = est.transfer_time(profile.source_node, dst, state);
      } else {
        for (const grid::NodeId src : old_reps) {
          best_src = std::min(best_src, est.transfer_time(src, dst, state));
        }
      }
      stage_cost = std::max(stage_cost, best_src);
    }
    slowest = std::max(slowest, stage_cost);
  }
  return restart_latency + slowest;
}

}  // namespace gridpipe::sched
