#pragma once
// Round-robin routing over a mapping's replica sets — the one dispatch
// algorithm every runtime uses when a stage is replicated (farmed). Keeps
// a per-stage counter so successive items for the same stage rotate
// through its replicas in order.

#include <cstddef>
#include <vector>

#include "sched/mapping.hpp"

namespace gridpipe::sched {

/// Not internally synchronized: pick() mutates the rotation counters, and
/// the live runtimes call it from worker and controller threads. Owners
/// hold an instance as a member declared GRIDPIPE_GUARDED_BY their
/// routing mutex (see core::Executor::router_), which makes every
/// unlocked access a compile error under clang -Wthread-safety.
class ReplicaRouter {
 public:
  ReplicaRouter() = default;
  explicit ReplicaRouter(std::size_t num_stages) { reset(num_stages); }

  /// Zeroes the counters (call after a remap: replica sets changed, so
  /// the rotation restarts).
  void reset(std::size_t num_stages);

  /// Next replica of `stage` under `mapping`, round-robin. The mapping
  /// must have at least num_stages stages and >= 1 replica per stage.
  grid::NodeId pick(const Mapping& mapping, std::size_t stage);

 private:
  std::vector<std::size_t> next_;
};

}  // namespace gridpipe::sched
