#include "sched/latency_mapper.hpp"

#include <cmath>

namespace gridpipe::sched {

std::optional<LatencyMapperResult> LatencyMapper::best(
    const PipelineProfile& profile, const ResourceEstimate& est,
    double arrival_rate) const {
  profile.validate();
  if (arrival_rate <= 0.0) {
    throw std::invalid_argument("LatencyMapper: rate <= 0");
  }
  const std::size_t ns = profile.num_stages();
  const std::size_t np = est.num_nodes;
  if (np == 0) return std::nullopt;
  const double space =
      std::pow(static_cast<double>(np), static_cast<double>(ns));
  if (space > static_cast<double>(options_.max_candidates)) {
    return std::nullopt;
  }
  const double required_capacity = arrival_rate * (1.0 + options_.headroom);

  std::vector<grid::NodeId> assign(ns, 0);
  std::optional<LatencyMapperResult> best_result;
  std::size_t evaluated = 0;

  for (;;) {
    Mapping candidate{assign};
    ++evaluated;
    const double capacity = model_.throughput(profile, est, candidate);
    if (capacity >= required_capacity) {
      const double latency =
          model_.latency_estimate(profile, est, candidate, arrival_rate);
      if (!best_result || latency < best_result->latency - 1e-12) {
        best_result = LatencyMapperResult{std::move(candidate), latency,
                                          capacity, 0};
      }
    }
    // Odometer increment.
    std::size_t digit = ns;
    bool carried_out = true;
    while (digit > 0) {
      --digit;
      if (static_cast<std::size_t>(++assign[digit]) < np) {
        carried_out = false;
        break;
      }
      assign[digit] = 0;
    }
    if (carried_out) break;
  }

  if (best_result) best_result->candidates_evaluated = evaluated;
  return best_result;
}

}  // namespace gridpipe::sched
