#pragma once
// rt::Runtime — the one user-facing API over all four execution
// substrates. The paper's contribution is a *single* skeleton call whose
// adaptation is transparent to the caller; this layer is that call:
//
//   auto runtime = rt::make_runtime(rt::RuntimeKind::kThreads, grid, spec);
//   auto report  = runtime->run(items);              // batch convenience
//
//   auto session = runtime->open();                  // streaming
//   session->push(item);                             // any time
//   while (auto out = session->try_pop()) consume(*out);
//   session->close();
//   auto report = session->report();                 // blocks till drained
//
// One core::PipelineSpec runs unmodified on every substrate. The
// in-process runtimes (sim, threads) move std::any items directly; the
// serialized runtimes (dist, process) bridge through the spec's
// per-stage Codec<T> wire codecs, so they require typed stages
// (stage<In, Out>(...)) and reject untyped ones with an actionable
// error at make_runtime time.
//
// Sessions are self-contained: they own their executor and may outlive
// the Runtime that opened them. The grid must outlive both. The process
// runtime forks at open(); obey its "no other live threads" constraint
// (see proc/process_executor.hpp) — in particular, do not open a
// process session while any other live-runtime session is still
// streaming (its worker/controller threads could hold locks that fork
// copies into the child). open() on the process runtime detects that
// case best-effort and throws; report() or destroy other sessions
// first. Sequential sessions, one at a time, are always safe.
//
// The simulator runtime cannot interleave virtual time with real-time
// pushes, so its session is a virtual-time feeder: push() buffers,
// close() replays the whole stream through the DES (timing, adaptation
// epochs, remaps) and computes outputs by reference execution
// (PipelineSpec::run_inline); try_pop() yields everything after close().

#include <any>
#include <array>
#include <memory>
#include <optional>
#include <string_view>

#include "control/adaptation_config.hpp"
#include "core/pipeline_spec.hpp"
#include "core/report.hpp"
#include "grid/grid.hpp"
#include "obs/config.hpp"
#include "obs/flight.hpp"
#include "recover/supervisor.hpp"
#include "sim/drivers.hpp"
#include "util/json.hpp"

namespace gridpipe::rt {

enum class RuntimeKind {
  kSim,      ///< discrete-event simulator (virtual time, reference exec)
  kThreads,  ///< one worker thread per grid node, emulated heterogeneity
  kDist,     ///< message-passing ranks over the in-process communicator
  kProcess,  ///< one forked OS process per grid node over Unix sockets
};

/// All four, in the canonical display order.
inline constexpr std::array<RuntimeKind, 4> kAllRuntimeKinds{
    RuntimeKind::kSim, RuntimeKind::kThreads, RuntimeKind::kDist,
    RuntimeKind::kProcess};

/// "sim" | "threads" | "dist" | "process".
const char* to_string(RuntimeKind kind);

/// Inverse of to_string; nullopt on unknown names.
std::optional<RuntimeKind> try_parse_runtime_kind(std::string_view name);

/// Inverse of to_string; throws std::invalid_argument listing the valid
/// names on unknown input.
RuntimeKind parse_runtime_kind(std::string_view name);

struct RuntimeOptions {
  /// Real seconds per virtual second on the live runtimes (the simulator
  /// runs in pure virtual time and ignores it).
  double time_scale = 0.01;
  /// Max items in flight (0 = auto: 2·Ns, min 4).
  std::size_t window = 0;
  /// Shared control-loop knobs; adapt.epoch = 0 disables adaptation on
  /// every substrate.
  control::AdaptationConfig adapt{.epoch = 0.0};
  /// Stretch stage execution to the modeled duration (live runtimes).
  bool emulate_compute = true;
  /// Threads runtime: record NWS-style probes each epoch.
  bool monitor_all = true;
  /// Max tasks drained per queue-lock acquisition (0 = substrate default).
  std::size_t drain_batch = 0;
  /// Probe-noise RNG seed on the threads runtime.
  std::uint64_t seed = 1;
  /// Process runtime: carry worker→worker hops over a shared-memory
  /// ring per ordered worker pair instead of relaying through the
  /// parent's sockets. Falls back to the socket path per frame whenever
  /// a ring is full (or could not be mapped), so correctness never
  /// depends on it.
  bool shm_ring = true;
  /// Process runtime: payload capacity of each ring, in bytes.
  std::size_t shm_ring_bytes = std::size_t{1} << 18;
  /// Deployment-time mapping override. Unset: the planner's t = 0 pick
  /// (control::choose_mapping with `adapt`'s mapper knobs). The sim
  /// runtime plans per its driver and ignores an override.
  std::optional<sched::Mapping> initial_mapping;
  /// Telemetry sinks (default: disabled, near-zero overhead). Set via
  /// obs::Config::full() to collect per-item spans and uniform metrics;
  /// the sinks are shared across every session this runtime opens, and
  /// Session::report() snapshots the registry into RunReport::obs_metrics.
  obs::Config obs{};
  /// Flight-recorder ring size per lane on the live runtimes: the
  /// always-on forensic event ring every crash error quotes (0 = off).
  std::size_t flight_events = obs::kDefaultFlightEvents;
  /// Process runtime: virtual seconds between child heartbeat records
  /// (0 disables heartbeats and stall detection).
  double health_interval = 5.0;
  /// Process runtime: a worker silent (or heartbeating without progress)
  /// for this much virtual time is flagged stalled.
  double stall_after = 15.0;
  /// Process runtime: fault tolerance (replay journal, output dedup,
  /// crash-triggered remap, respawn supervision) plus the fault plan to
  /// inject into workers. Off by default: a worker death fails the run.
  recover::RecoveryOptions recovery{};

  // --- simulator-only knobs -------------------------------------------
  /// Which experiment driver the sim session replays the stream under.
  /// kAdaptive/kOracle fall back to kStaticOptimal when adapt.epoch = 0.
  sim::DriverKind sim_driver = sim::DriverKind::kAdaptive;
  /// Arrival process, probe schedule, service model, sim seed.
  /// num_items and window are overridden per session.
  sim::SimConfig sim_config{};
};

/// A live stream through one substrate. push() accepts items any time
/// before close(); try_pop() hands outputs back in input order
/// (Pipeline1for1 semantics) as they complete; report() closes if
/// needed, blocks until every pushed item drained, and rethrows any
/// worker failure. Outputs not yet popped stay poppable after report().
class Session {
 public:
  virtual ~Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  virtual void push(std::any item) = 0;
  virtual std::optional<std::any> try_pop() = 0;
  virtual void close() = 0;
  virtual core::RunReport report() = 0;

  /// Point-in-time introspection snapshot (queue/credit/mapping state;
  /// substrate-dependent fields). Safe to call from any thread while the
  /// session is live. Every session also registers itself with
  /// obs::StatusHub::global(), which is what gridpipe_cli's SIGUSR1 /
  /// --status-out path snapshots.
  virtual util::Json status() const;

 protected:
  Session() = default;
};

/// One substrate, configured for one (grid, spec, options) triple.
/// open() starts an independent streaming session; run() is the batch
/// convenience wrapper over a single session.
class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual RuntimeKind kind() const noexcept = 0;
  virtual const sched::PipelineProfile& profile() const noexcept = 0;
  /// The deployment-time (t = 0) mapping sessions start from.
  virtual const sched::Mapping& planned_mapping() const noexcept = 0;
  virtual std::unique_ptr<Session> open() = 0;

  /// Pushes every item through one session and returns the report with
  /// ordered outputs filled in. Blocking.
  core::RunReport run(std::vector<std::any> items);
};

/// The factory: one spec, any substrate. Validates the spec up front
/// (and its wire codecs for the serialized runtimes) so misuse fails
/// here with an actionable message instead of deep inside a run.
std::unique_ptr<Runtime> make_runtime(RuntimeKind kind,
                                      const grid::Grid& grid,
                                      core::PipelineSpec spec,
                                      RuntimeOptions options = {});

}  // namespace gridpipe::rt
