#include "rt/runtime.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/dist_executor.hpp"
#include "core/executor.hpp"
#include "obs/status.hpp"
#include "proc/process_executor.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::rt {

util::Json Session::status() const {
  // Substrates override this; the default keeps third-party Session
  // implementations source-compatible.
  util::Json doc = util::Json::object();
  doc["substrate"] = "unknown";
  return doc;
}

const char* to_string(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kSim:     return "sim";
    case RuntimeKind::kThreads: return "threads";
    case RuntimeKind::kDist:    return "dist";
    case RuntimeKind::kProcess: return "process";
  }
  return "?";
}

std::optional<RuntimeKind> try_parse_runtime_kind(std::string_view name) {
  for (RuntimeKind kind : kAllRuntimeKinds) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

RuntimeKind parse_runtime_kind(std::string_view name) {
  if (auto kind = try_parse_runtime_kind(name)) return *kind;
  throw std::invalid_argument("unknown runtime '" + std::string(name) +
                              "'; valid: sim | threads | dist | process");
}

namespace {

sched::Mapping plan_initial(const grid::Grid& grid,
                            const sched::PipelineProfile& profile,
                            const control::AdaptationConfig& adapt) {
  const sched::PerfModel model(adapt.model);
  const auto est = sched::ResourceEstimate::from_grid(grid, 0.0);
  return control::choose_mapping(model, profile, est, adapt.mapper,
                                 adapt.pin_first_stage,
                                 adapt.max_total_replicas)
      .mapping;
}

/// Wraps every typed stage into the serialized substrates' append
/// contract: decode the input straight from the transport buffer view,
/// run the user function, encode the output in place after the wire
/// header already sitting in `outb`. The lambdas copy the stage's
/// function and codecs, so the resulting stage vector is independent of
/// the spec's lifetime.
std::vector<core::DistStage> wire_stages(const core::PipelineSpec& spec) {
  std::vector<core::DistStage> stages;
  stages.reserve(spec.num_stages());
  for (const core::StageSpec& s : spec.stages()) {
    stages.push_back(
        {s.name,
         [fn = s.fn, in = s.in_codec, out = s.out_codec](
             core::ByteSpan wire, core::Bytes& outb) {
           out.encode_into(fn(in.decode(wire)), outb);
         },
         s.work, s.out_bytes, s.state_bytes});
  }
  return stages;
}

// --------------------------------------------------------------- base

class RuntimeBase : public Runtime {
 public:
  RuntimeBase(RuntimeKind kind, const grid::Grid& grid,
              core::PipelineSpec spec, RuntimeOptions options)
      : kind_(kind),
        grid_(grid),
        spec_(std::move(spec)),
        profile_(spec_.to_profile()),
        options_(std::move(options)),
        mapping_(options_.initial_mapping
                     ? *options_.initial_mapping
                     : plan_initial(grid, profile_, options_.adapt)) {}

  RuntimeKind kind() const noexcept override { return kind_; }
  const sched::PipelineProfile& profile() const noexcept override {
    return profile_;
  }
  const sched::Mapping& planned_mapping() const noexcept override {
    return mapping_;
  }

 protected:
  const RuntimeKind kind_;
  const grid::Grid& grid_;
  core::PipelineSpec spec_;
  sched::PipelineProfile profile_;
  RuntimeOptions options_;
  sched::Mapping mapping_;
};

// ---------------------------------------------------------------- sim

/// Virtual-time feeder: push() buffers items; close() replays the whole
/// stream through the DES for timing/adaptation and computes the output
/// values by reference execution; try_pop() drains after close().
class SimSession final : public Session {
 public:
  SimSession(const grid::Grid& grid, core::PipelineSpec spec,
             RuntimeOptions options)
      : grid_(grid), spec_(std::move(spec)), options_(std::move(options)) {
    status_reg_ = obs::StatusRegistration("sim", [this] { return status(); });
  }

  void push(std::any item) override {
    util::MutexLock lock(mutex_);
    if (closed_) throw std::logic_error("SimSession: push on a closed stream");
    items_.push_back(std::move(item));
  }

  std::optional<std::any> try_pop() override {
    util::MutexLock lock(mutex_);
    if (!closed_ || next_out_ >= outputs_.size()) return std::nullopt;
    return std::move(outputs_[next_out_++]);
  }

  util::Json status() const override {
    util::MutexLock lock(mutex_);
    util::Json doc = util::Json::object();
    doc["substrate"] = "sim";
    doc["closed"] = closed_;
    doc["buffered_in"] = static_cast<std::uint64_t>(items_.size());
    doc["outputs_ready"] =
        static_cast<std::uint64_t>(outputs_.size() - next_out_);
    doc["next_out"] = static_cast<std::uint64_t>(next_out_);
    return doc;
  }

  void close() override {
    util::MutexLock lock(mutex_);
    if (closed_) return;
    closed_ = true;
    if (items_.empty()) return;

    const auto t0 = std::chrono::steady_clock::now();
    sim::SimConfig config = options_.sim_config;
    config.num_items = items_.size();
    if (options_.window != 0) config.window = options_.window;

    config.obs = options_.obs.sinks();

    sim::DriverOptions driver;
    driver.driver = options_.sim_driver;
    driver.adapt = options_.adapt;
    driver.obs = options_.obs.sinks();
    // epoch = 0 means "adaptation off" on every substrate; an adaptive
    // sim driver with a zero epoch would spin the event queue forever.
    if (driver.adapt.epoch <= 0.0 &&
        (driver.driver == sim::DriverKind::kAdaptive ||
         driver.driver == sim::DriverKind::kOracle)) {
      driver.driver = sim::DriverKind::kStaticOptimal;
    }

    sim::RunResult result =
        sim::run_pipeline(grid_, spec_.to_profile(), config, driver);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Output values come from reference execution — the DES models
    // timing, not payloads.
    outputs_.reserve(items_.size());
    for (std::any& item : items_) {
      outputs_.push_back(spec_.run_inline(std::move(item)));
    }
    items_.clear();

    const std::uint64_t items = result.metrics.items_completed();
    core::finalize_stream_report(
        report_, items, wall, /*time_scale=*/1.0, std::move(result.metrics),
        std::move(result.epochs), result.initial_mapping.to_string(),
        result.final_mapping.to_string());
    // Virtual time on the sim is the event clock, not wall / time_scale.
    report_.virtual_seconds = result.makespan;
    report_.throughput = result.mean_throughput;
    if (options_.obs.metrics) {
      report_.obs_metrics = options_.obs.metrics->snapshot();
    }
  }

  core::RunReport report() override {
    close();
    util::MutexLock lock(mutex_);
    return report_;
  }

 private:
  const grid::Grid& grid_;
  core::PipelineSpec spec_;
  RuntimeOptions options_;
  /// Guards the session state against concurrent status() snapshots
  /// (the CLI's watcher thread) — the caller itself is single-threaded.
  mutable util::Mutex mutex_;
  std::vector<std::any> items_ GRIDPIPE_GUARDED_BY(mutex_);
  std::vector<std::any> outputs_ GRIDPIPE_GUARDED_BY(mutex_);
  std::size_t next_out_ GRIDPIPE_GUARDED_BY(mutex_) = 0;
  bool closed_ GRIDPIPE_GUARDED_BY(mutex_) = false;
  core::RunReport report_ GRIDPIPE_GUARDED_BY(mutex_);
  /// Last member: unregisters (and drains in-flight snapshots) before
  /// any state the provider reads is destroyed.
  obs::StatusRegistration status_reg_;
};

class SimRuntime final : public RuntimeBase {
 public:
  using RuntimeBase::RuntimeBase;
  std::unique_ptr<Session> open() override {
    return std::make_unique<SimSession>(grid_, spec_, options_);
  }
};

// ------------------------------------------------------ live sessions

/// Best-effort guard for the process runtime's fork constraint: count of
/// live-runtime sessions whose internal threads may still be running.
/// Forking while any are live would copy a possibly-locked allocator or
/// mutex into the child, so ProcRuntime::open refuses.
std::atomic<int> g_live_session_count{0};

struct LiveSessionToken {
  LiveSessionToken() { g_live_session_count.fetch_add(1); }
  ~LiveSessionToken() { g_live_session_count.fetch_sub(1); }
  LiveSessionToken(const LiveSessionToken&) = delete;
  LiveSessionToken& operator=(const LiveSessionToken&) = delete;
};

/// Identity bridging for the in-process threads executor: items are
/// std::any end to end.
struct AnyBridge {
  std::any encode(std::any item) const { return item; }
  std::any decode(std::any item) const { return item; }
};

/// Codec bridging for the Bytes-stage substrates: encode typed items
/// with the first stage's input codec, decode results with the last
/// stage's output codec.
struct CodecBridge {
  core::ItemCodec in;
  core::ItemCodec out;
  core::Bytes encode(const std::any& item) const { return in.encode(item); }
  std::any decode(core::Bytes wire) const { return out.decode(wire); }
};

/// One session lifecycle over any executor's shared stream_* primitives;
/// only the push/try_pop item bridging differs per substrate.
template <class Executor, class Bridge>
class ExecSession final : public Session {
 public:
  ExecSession(std::string name, std::unique_ptr<Executor> executor,
              Bridge bridge, obs::Config obs = {})
      : executor_(std::move(executor)),
        bridge_(std::move(bridge)),
        obs_(std::move(obs)) {
    executor_->stream_begin();
    // Registered only after stream_begin: the provider may fire from
    // another thread the moment it is visible, and the executor's status
    // must already describe a live stream (for the process runtime, the
    // fleet has already forked by now — no new threads existed before).
    status_reg_ = obs::StatusRegistration(
        std::move(name), [this] { return executor_->status(); });
  }

  void push(std::any item) override {
    executor_->stream_push(bridge_.encode(std::move(item)));
  }
  std::optional<std::any> try_pop() override {
    if (auto out = executor_->stream_try_pop()) {
      return bridge_.decode(std::move(*out));
    }
    return std::nullopt;
  }
  void close() override {
    if (!closed_) {
      closed_ = true;
      executor_->stream_close();
    }
  }
  core::RunReport report() override {
    close();
    if (!finished_) {
      finished_ = true;
      try {
        report_ = executor_->stream_finish();
        if (obs_.metrics) report_.obs_metrics = obs_.metrics->snapshot();
      } catch (...) {
        // Cache the failure so every report() call rethrows it, rather
        // than a misleading "no active stream" on the second call.
        error_ = std::current_exception();
      }
      token_.reset();  // threads joined either way; forking is safe again
    }
    if (error_) std::rethrow_exception(error_);
    return report_;
  }

  util::Json status() const override { return executor_->status(); }

 private:
  // Declared before executor_ so it releases only after the executor's
  // destructor joined any threads a never-finished stream left running.
  std::optional<LiveSessionToken> token_{std::in_place};
  std::unique_ptr<Executor> executor_;
  Bridge bridge_;
  obs::Config obs_;
  bool closed_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
  core::RunReport report_;
  /// Last member: unregisters (draining in-flight snapshots) before
  /// executor_ — whose status() the provider calls — is destroyed.
  obs::StatusRegistration status_reg_;
};

class ThreadsRuntime final : public RuntimeBase {
 public:
  using RuntimeBase::RuntimeBase;
  std::unique_ptr<Session> open() override {
    core::ExecutorConfig config;
    config.time_scale = options_.time_scale;
    config.window = options_.window;
    config.adapt = options_.adapt;
    config.emulate_compute = options_.emulate_compute;
    config.monitor_all = options_.monitor_all;
    if (options_.drain_batch != 0) config.drain_batch = options_.drain_batch;
    config.seed = options_.seed;
    config.obs = options_.obs.sinks();
    config.flight_events = options_.flight_events;
    return std::make_unique<ExecSession<core::Executor, AnyBridge>>(
        "threads",
        std::make_unique<core::Executor>(grid_, spec_, mapping_, config),
        AnyBridge{}, options_.obs);
  }
};

class DistRuntime final : public RuntimeBase {
 public:
  using RuntimeBase::RuntimeBase;
  std::unique_ptr<Session> open() override {
    core::DistExecutorConfig config;
    config.time_scale = options_.time_scale;
    config.window = options_.window;
    config.adapt = options_.adapt;
    config.emulate_compute = options_.emulate_compute;
    if (options_.drain_batch != 0) config.drain_batch = options_.drain_batch;
    config.obs = options_.obs.sinks();
    config.flight_events = options_.flight_events;
    return std::make_unique<
        ExecSession<core::DistributedExecutor, CodecBridge>>(
        "dist",
        std::make_unique<core::DistributedExecutor>(grid_, wire_stages(spec_),
                                                    mapping_, config),
        CodecBridge{spec_.stages().front().in_codec,
                    spec_.stages().back().out_codec},
        options_.obs);
  }
};

class ProcRuntime final : public RuntimeBase {
 public:
  using RuntimeBase::RuntimeBase;
  std::unique_ptr<Session> open() override {
    if (g_live_session_count.load() > 0) {
      throw std::logic_error(
          "rt: refusing to open a process session while another live "
          "session's threads are running — fork would copy their locks "
          "into the child; report() or destroy the other session first");
    }
    proc::ProcExecutorConfig config;
    config.time_scale = options_.time_scale;
    config.window = options_.window;
    config.adapt = options_.adapt;
    config.emulate_compute = options_.emulate_compute;
    config.obs = options_.obs.sinks();
    config.shm_ring = options_.shm_ring;
    config.shm_ring_bytes = options_.shm_ring_bytes;
    config.flight_events = options_.flight_events;
    config.health_interval = options_.health_interval;
    config.stall_after = options_.stall_after;
    config.recovery = options_.recovery;
    return std::make_unique<ExecSession<proc::ProcessExecutor, CodecBridge>>(
        "process",
        std::make_unique<proc::ProcessExecutor>(grid_, wire_stages(spec_),
                                                mapping_, config),
        CodecBridge{spec_.stages().front().in_codec,
                    spec_.stages().back().out_codec},
        options_.obs);
  }
};

}  // namespace

// ------------------------------------------------------------- runtime

core::RunReport Runtime::run(std::vector<std::any> items) {
  auto session = open();
  for (std::any& item : items) session->push(std::move(item));
  core::RunReport report = session->report();
  report.outputs.reserve(report.items);
  while (auto out = session->try_pop()) {
    report.outputs.push_back(std::move(*out));
  }
  return report;
}

std::unique_ptr<Runtime> make_runtime(RuntimeKind kind,
                                      const grid::Grid& grid,
                                      core::PipelineSpec spec,
                                      RuntimeOptions options) {
  spec.validate();
  switch (kind) {
    case RuntimeKind::kSim:
      return std::make_unique<SimRuntime>(kind, grid, std::move(spec),
                                          std::move(options));
    case RuntimeKind::kThreads:
      return std::make_unique<ThreadsRuntime>(kind, grid, std::move(spec),
                                              std::move(options));
    case RuntimeKind::kDist:
      spec.validate_for_wire(to_string(kind));
      return std::make_unique<DistRuntime>(kind, grid, std::move(spec),
                                           std::move(options));
    case RuntimeKind::kProcess:
      spec.validate_for_wire(to_string(kind));
      return std::make_unique<ProcRuntime>(kind, grid, std::move(spec),
                                           std::move(options));
  }
  throw std::invalid_argument("make_runtime: unknown RuntimeKind");
}

}  // namespace gridpipe::rt
