#pragma once
// Clang Thread Safety Analysis macro shim (Abseil-style).
//
// These macros move the locking contract into the type system: a member
// declared GRIDPIPE_GUARDED_BY(mu) can only be touched while `mu` is
// held, a function declared GRIDPIPE_REQUIRES(mu) can only be called
// with `mu` held, and every violation is a hard compile error under
// `clang -Wthread-safety -Werror` — on every code path, whether or not
// a test happens to exercise it. Under non-Clang compilers (and Clang
// builds without the warning enabled) every macro expands to nothing,
// so the annotations cost nothing at runtime anywhere.
//
// Enable the analysis with -DGRIDPIPE_THREAD_SAFETY=ON (CMake adds
// -Wthread-safety -Wthread-safety-beta when the compiler is Clang);
// scripts/check.sh runs that build when a clang++ is available, and the
// negative-compile CTest probe (tests/negative_compile/) asserts the
// gate actually rejects a seeded violation so it cannot rot into no-ops.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#define GRIDPIPE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GRIDPIPE_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (e.g. a mutex wrapper).
#define GRIDPIPE_CAPABILITY(x) GRIDPIPE_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define GRIDPIPE_SCOPED_CAPABILITY GRIDPIPE_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while the given capability is held.
#define GRIDPIPE_GUARDED_BY(x) GRIDPIPE_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define GRIDPIPE_PT_GUARDED_BY(x) GRIDPIPE_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function callable only while holding the listed capabilities.
#define GRIDPIPE_REQUIRES(...) \
  GRIDPIPE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function callable only while holding the capabilities shared.
#define GRIDPIPE_REQUIRES_SHARED(...) \
  GRIDPIPE_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (and does not release
/// them before returning).
#define GRIDPIPE_ACQUIRE(...) \
  GRIDPIPE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define GRIDPIPE_RELEASE(...) \
  GRIDPIPE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when returning `ret`.
#define GRIDPIPE_TRY_ACQUIRE(ret, ...) \
  GRIDPIPE_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the listed
/// capabilities (it acquires them itself; calling with them held would
/// self-deadlock).
#define GRIDPIPE_EXCLUDES(...) \
  GRIDPIPE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability (lets lock
/// accessors participate in the analysis).
#define GRIDPIPE_RETURN_CAPABILITY(x) \
  GRIDPIPE_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Use only with
/// a comment explaining why the contract cannot be expressed (e.g. an
/// accessor documented single-threaded-only).
#define GRIDPIPE_NO_THREAD_SAFETY_ANALYSIS \
  GRIDPIPE_THREAD_ANNOTATION__(no_thread_safety_analysis)
