#include "util/rng.hpp"

#include <cmath>

namespace gridpipe::util {

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

std::uint64_t uniform_int(Xoshiro256& rng, std::uint64_t lo,
                          std::uint64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return rng();  // full 64-bit range
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % span;
  std::uint64_t draw = rng();
  while (draw >= limit) draw = rng();
  return lo + draw % span;
}

double exponential(Xoshiro256& rng, double rate) noexcept {
  // 1 - u in (0,1] avoids log(0).
  return -std::log(1.0 - uniform01(rng)) / rate;
}

double normal(Xoshiro256& rng, double mean, double stddev) noexcept {
  const double u1 = 1.0 - uniform01(rng);
  const double u2 = uniform01(rng);
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double bounded_pareto(Xoshiro256& rng, double alpha, double lo,
                      double hi) noexcept {
  const double u = uniform01(rng);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace gridpipe::util
