#pragma once
// Small file-output helpers shared by the CLI and tests: an up-front
// writability probe (so `--trace-out /no/such/dir/x.json` fails before a
// ten-minute run, not after) and an atomic-replace writer (so a status
// file read by another process mid-write never shows half a JSON
// document).

#include <string>

namespace gridpipe::util {

/// Checks that `path` can be opened for writing, creating the file if it
/// does not exist (an empty file the later real write overwrites).
/// Returns "" on success, else a human-readable error including the
/// OS reason ("cannot open /x/y.json: No such file or directory").
std::string probe_writable(const std::string& path);

/// Writes `content` to `path` via a same-directory temp file + rename,
/// so concurrent readers observe either the old or the new contents,
/// never a partial write. Returns "" on success, else the error text.
std::string write_file_atomic(const std::string& path,
                              const std::string& content);

}  // namespace gridpipe::util
