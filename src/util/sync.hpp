#pragma once
// Annotated synchronization primitives: util::Mutex, util::MutexLock and
// util::CondVar are drop-in std wrappers carrying the Clang Thread
// Safety Analysis attributes from util/thread_annotations.hpp. The
// analysis only tracks capabilities it can see, and std::mutex carries
// no attributes — so every mutex-guarded layer in the codebase locks
// through these wrappers instead. Zero overhead: all calls inline to
// the underlying std operations.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace gridpipe::util {

/// std::mutex as a TSA capability. Lock through MutexLock (RAII) in
/// normal code; bare lock()/unlock() exist for the rare split
/// acquire/release path.
class GRIDPIPE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GRIDPIPE_ACQUIRE() { m_.lock(); }
  void unlock() GRIDPIPE_RELEASE() { m_.unlock(); }
  bool try_lock() GRIDPIPE_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// std::lock_guard as a TSA scoped capability.
class GRIDPIPE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GRIDPIPE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GRIDPIPE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on util::Mutex. Waits take the Mutex (not
/// a lock object) and are annotated GRIDPIPE_REQUIRES(mu): the caller
/// must hold `mu` — typically via a MutexLock on the same expression —
/// and holds it again when the wait returns. Internally each wait
/// adopts the already-held std::mutex into a std::unique_lock and
/// releases it back before returning, so the capability never changes
/// hands as far as the analysis (or the caller) is concerned.
///
/// Waits are deliberately predicate-free: TSA cannot annotate a lambda,
/// so the wait loops live in the callers where the guarded predicate
/// reads are visible to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) GRIDPIPE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      GRIDPIPE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      GRIDPIPE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace gridpipe::util
