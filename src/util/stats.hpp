#pragma once
// Streaming statistics used by the monitoring subsystem and the benches:
// Welford accumulators, fixed-capacity sliding windows with O(1) mean,
// percentile estimation over stored samples, and simple time series.

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace gridpipe::util {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-capacity FIFO of samples with O(1) running sum — the storage
/// behind every monitor sensor. Oldest samples are evicted on overflow.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  void clear() noexcept;

  std::size_t size() const noexcept { return samples_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return samples_.empty(); }
  bool full() const noexcept { return samples_.size() == capacity_; }

  double mean() const noexcept;
  double variance() const noexcept;
  /// Median of the stored samples (O(n log n); windows are small).
  double median() const;
  /// Last sample added; 0 if empty.
  double last() const noexcept { return samples_.empty() ? 0.0 : samples_.back(); }
  /// Sample `i` steps back from the newest (back(0) == last()).
  double back(std::size_t i) const;

  const std::deque<double>& samples() const noexcept { return samples_; }

 private:
  std::size_t capacity_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

/// Percentile of a sample vector using linear interpolation between order
/// statistics (the "exclusive" R-7 definition). `p` in [0, 100].
double percentile(std::vector<double> samples, double p);

/// A (time, value) series sampled by the simulator; supports windowed
/// aggregation for throughput-over-time plots.
class TimeSeries {
 public:
  void add(double t, double v);
  std::size_t size() const noexcept { return times_.size(); }
  const std::vector<double>& times() const noexcept { return times_; }
  const std::vector<double>& values() const noexcept { return values_; }

  /// Sum of values in [t0, t1).
  double sum_in(double t0, double t1) const noexcept;
  /// Count of points in [t0, t1).
  std::size_t count_in(double t0, double t1) const noexcept;
  /// Mean of values in [t0, t1); 0 when empty.
  double mean_in(double t0, double t1) const noexcept;

  /// Bucket the series into fixed-width windows over [0, horizon) and
  /// return per-window event counts divided by the window width — i.e. a
  /// rate (throughput) series.
  std::vector<double> rate_per_window(double window, double horizon) const;

 private:
  std::vector<double> times_;   // strictly non-decreasing
  std::vector<double> values_;
};

/// Mean absolute error between two equally long series (used to score
/// forecasters in EXP-F4).
double mean_absolute_error(const std::vector<double>& truth,
                           const std::vector<double>& estimate);

}  // namespace gridpipe::util
