#pragma once
// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate adaptation decisions.

#include <sstream>
#include <string>

namespace gridpipe::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below the threshold are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr with a level prefix. Thread-safe (single
/// formatted write per call).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace gridpipe::util
