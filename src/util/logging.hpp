#pragma once
// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate adaptation decisions. The GRIDPIPE_LOG
// environment variable (debug|info|warn|error|off) pins the threshold
// from outside: it is read once, lazily, and beats the examples'
// set_default_log_level — but an explicit set_log_level (e.g. the CLI's
// --log-level flag) always wins.

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace gridpipe::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Lowercase level name: "debug" | "info" | "warn" | "error" | "off".
const char* to_string(LogLevel level) noexcept;

/// Inverse of to_string (case-insensitive; "warning" is accepted as an
/// alias for "warn"); nullopt on unknown names.
std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

/// Global log threshold. Messages below the threshold are dropped.
/// Explicit: overrides GRIDPIPE_LOG.
void set_log_level(LogLevel level) noexcept;

/// Sets the threshold only when GRIDPIPE_LOG did not pin one — examples
/// use this for their chatty defaults so the environment stays in charge.
void set_default_log_level(LogLevel level) noexcept;

LogLevel log_level() noexcept;

/// Emits one line to stderr with a level prefix. Thread-safe (single
/// formatted write per call).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace gridpipe::util
