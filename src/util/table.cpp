#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gridpipe::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (rows_.empty()) throw std::logic_error("Table::add before row()");
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table::add: row already full");
  }
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}
Table& Table::add(long long value) { return add(std::to_string(value)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << sanitize(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << sanitize(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace gridpipe::util
