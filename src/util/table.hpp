#pragma once
// Plain-text / CSV table rendering used by every bench binary to print the
// paper-style tables and series. Kept dependency-free so bench output is
// easy to diff against EXPERIMENTS.md.

#include <iosfwd>
#include <string>
#include <vector>

namespace gridpipe::util {

/// A simple column-aligned table. Cells are strings; numeric helpers
/// format with fixed precision so bench output is stable.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 4);
  Table& add(long long value);
  Table& add(std::size_t value);
  Table& add(int value);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders an aligned ASCII table.
  std::string to_string() const;
  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed for
  /// our numeric output; commas in cells are replaced by ';').
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (shared by Table and benches).
std::string format_double(double value, int precision);

}  // namespace gridpipe::util
