#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridpipe::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

SlidingWindow::SlidingWindow(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlidingWindow::add(double x) {
  if (samples_.size() == capacity_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
  samples_.push_back(x);
  sum_ += x;
}

void SlidingWindow::clear() noexcept {
  samples_.clear();
  sum_ = 0.0;
}

double SlidingWindow::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double SlidingWindow::variance() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double s : samples_) acc += (s - m) * (s - m);
  return acc / static_cast<double>(samples_.size() - 1);
}

double SlidingWindow::median() const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted(samples_.begin(), samples_.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double SlidingWindow::back(std::size_t i) const {
  if (i >= samples_.size()) throw std::out_of_range("SlidingWindow::back");
  return samples_[samples_.size() - 1 - i];
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

void TimeSeries::add(double t, double v) {
  if (!times_.empty() && t < times_.back()) {
    throw std::invalid_argument("TimeSeries: non-monotonic timestamp");
  }
  times_.push_back(t);
  values_.push_back(v);
}

namespace {
// Index range [first, last) of timestamps falling in [t0, t1).
std::pair<std::size_t, std::size_t> range_in(const std::vector<double>& times,
                                             double t0, double t1) {
  const auto first = std::lower_bound(times.begin(), times.end(), t0);
  const auto last = std::lower_bound(first, times.end(), t1);
  return {static_cast<std::size_t>(first - times.begin()),
          static_cast<std::size_t>(last - times.begin())};
}
}  // namespace

double TimeSeries::sum_in(double t0, double t1) const noexcept {
  const auto [first, last] = range_in(times_, t0, t1);
  double acc = 0.0;
  for (std::size_t i = first; i < last; ++i) acc += values_[i];
  return acc;
}

std::size_t TimeSeries::count_in(double t0, double t1) const noexcept {
  const auto [first, last] = range_in(times_, t0, t1);
  return last - first;
}

double TimeSeries::mean_in(double t0, double t1) const noexcept {
  const std::size_t n = count_in(t0, t1);
  return n ? sum_in(t0, t1) / static_cast<double>(n) : 0.0;
}

std::vector<double> TimeSeries::rate_per_window(double window,
                                                double horizon) const {
  std::vector<double> rates;
  if (window <= 0.0 || horizon <= 0.0) return rates;
  for (double t0 = 0.0; t0 < horizon; t0 += window) {
    rates.push_back(static_cast<double>(count_in(t0, t0 + window)) / window);
  }
  return rates;
}

double mean_absolute_error(const std::vector<double>& truth,
                           const std::vector<double>& estimate) {
  if (truth.size() != estimate.size() || truth.empty()) {
    throw std::invalid_argument("mean_absolute_error: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - estimate[i]);
  }
  return acc / static_cast<double>(truth.size());
}

}  // namespace gridpipe::util
