#include "util/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

namespace gridpipe::util {

namespace {

std::string errno_text(int err) {
  return std::generic_category().message(err);
}

}  // namespace

std::string probe_writable(const std::string& path) {
  if (path.empty()) return "empty path";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return "cannot open " + path + ": " + errno_text(errno);
  }
  ::close(fd);
  return {};
}

std::string write_file_atomic(const std::string& path,
                              const std::string& content) {
  if (path.empty()) return "empty path";
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return "cannot open " + tmp + ": " + errno_text(errno);
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n = ::write(fd, content.data() + written,
                              content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = "write " + tmp + ": " + errno_text(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return err;
    }
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = "rename to " + path + ": " + errno_text(errno);
    ::unlink(tmp.c_str());
    return err;
  }
  return {};
}

}  // namespace gridpipe::util
