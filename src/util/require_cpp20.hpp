#pragma once
// gridpipe uses defaulted friend operator== (C++20, P1185R2) in
// monitor/registry.hpp and sched/mapping.hpp; under -std=c++17 those fail
// to compile deep in overload resolution. CMake pins CMAKE_CXX_STANDARD
// 20, and this assert makes the requirement load-bearing rather than an
// accident of the default toolchain mode. MSVC reports __cplusplus as
// 199711L unless /Zc:__cplusplus is passed, so check _MSVC_LANG there.
#if defined(_MSVC_LANG)
static_assert(_MSVC_LANG >= 202002L,
              "gridpipe requires C++20 (defaulted friend operator==)");
#else
static_assert(__cplusplus >= 202002L,
              "gridpipe requires C++20 (defaulted friend operator==)");
#endif
