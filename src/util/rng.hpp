#pragma once
// Deterministic, seedable random number generation for gridpipe.
//
// Experiments must be bit-reproducible across runs and platforms, so we
// implement our own small generators (splitmix64 for seeding, xoshiro256**
// for the stream) instead of relying on implementation-defined std::
// distributions. All distribution helpers below are written against the
// raw 64-bit stream and are therefore portable.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace gridpipe::util {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush when used as a generator on sequential inputs.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG (Blackman/Vigna).
/// Satisfies UniformRandomBitGenerator so it can also feed std:: utilities
/// in non-reproducibility-critical code paths.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from one 64-bit seed via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); used to derive independent
  /// sub-streams (one per simulated entity) from a single experiment seed.
  void jump() noexcept;

  /// Convenience: derive an independent child generator (jump-based).
  Xoshiro256 split() noexcept {
    Xoshiro256 child = *this;
    jump();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Portable uniform double in [0, 1) using the top 53 bits.
inline double uniform01(Xoshiro256& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
inline double uniform(Xoshiro256& rng, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01(rng);
}

/// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
std::uint64_t uniform_int(Xoshiro256& rng, std::uint64_t lo,
                          std::uint64_t hi) noexcept;

/// Exponential variate with the given rate (mean 1/rate).
double exponential(Xoshiro256& rng, double rate) noexcept;

/// Standard normal via Box–Muller (deterministic, no cached spare).
double normal(Xoshiro256& rng, double mean = 0.0, double stddev = 1.0) noexcept;

/// Bounded Pareto variate (shape alpha, support [lo, hi]) — used for
/// heavy-tailed burst sizes in load traces.
double bounded_pareto(Xoshiro256& rng, double alpha, double lo,
                      double hi) noexcept;

/// Fisher–Yates shuffle with our deterministic generator.
template <typename T>
void shuffle(Xoshiro256& rng, std::vector<T>& items) {
  if (items.size() < 2) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const std::size_t j =
        static_cast<std::size_t>(uniform_int(rng, 0, static_cast<std::uint64_t>(i)));
    using std::swap;
    swap(items[i], items[j]);
  }
}

}  // namespace gridpipe::util
