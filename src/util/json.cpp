#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gridpipe::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = Object{};
  auto* obj = std::get_if<Object>(&value_);
  if (!obj) throw std::logic_error("Json::operator[]: not an object");
  for (auto& [k, v] : *obj) {
    if (k == key) return v;
  }
  obj->emplace_back(std::string(key), Json());
  return obj->back().second;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  auto* arr = std::get_if<Array>(&value_);
  if (!arr) throw std::logic_error("Json::push_back: not an array");
  arr->push_back(std::move(v));
}

namespace {

void write_double(std::ostream& os, double v) {
  // Strict JSON has no Infinity/NaN literals; emit null for those.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Integral values print as integers (60, not "6e+01" — the shortest
  // %g form technically round-trips but is hostile to humans and diffs).
  // 2^53 bounds the range where every integer is exactly representable;
  // -0.0 is excluded so it keeps round-tripping as "-0".
  if (std::nearbyint(v) == v && std::fabs(v) <= 9007199254740992.0 &&
      !(v == 0.0 && std::signbit(v))) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      os << probe;
      return;
    }
  }
  os << buf;
}

void write_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::write(std::ostream& os, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    os << *i;
  } else if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    os << *u;
  } else if (const auto* d = std::get_if<double>(&value_)) {
    write_double(os, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    os << '"' << json_escape(*s) << '"';
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    if (arr->empty()) {
      os << "[]";
      return;
    }
    os << '[';
    for (std::size_t i = 0; i < arr->size(); ++i) {
      if (i) os << ',';
      write_indent(os, indent, depth + 1);
      (*arr)[i].write(os, indent, depth + 1);
    }
    write_indent(os, indent, depth);
    os << ']';
  } else if (const auto* obj = std::get_if<Object>(&value_)) {
    if (obj->empty()) {
      os << "{}";
      return;
    }
    os << '{';
    for (std::size_t i = 0; i < obj->size(); ++i) {
      if (i) os << ',';
      write_indent(os, indent, depth + 1);
      os << '"' << json_escape((*obj)[i].first) << "\":";
      if (indent >= 0) os << ' ';
      (*obj)[i].second.write(os, indent, depth + 1);
    }
    write_indent(os, indent, depth);
    os << '}';
  }
}

void Json::dump(std::ostream& os, int indent) const { write(os, indent, 0); }

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent, 0);
  return os.str();
}

}  // namespace gridpipe::util
