#pragma once
// Minimal JSON *emission*: a small value tree plus a string escaper.
// Gridpipe only ever writes JSON (metrics snapshots, bench baselines,
// Chrome traces); parsing stays out of scope. Object keys preserve
// insertion order so emitted files diff cleanly run to run.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace gridpipe::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// added). Control characters become \u00XX.
std::string json_escape(std::string_view s);

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() noexcept : value_(nullptr) {}
  Json(std::nullptr_t) noexcept : value_(nullptr) {}
  Json(bool b) noexcept : value_(b) {}
  Json(int v) noexcept : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) noexcept : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) noexcept : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) noexcept : value_(static_cast<std::uint64_t>(v)) {}
  Json(unsigned long v) noexcept : value_(static_cast<std::uint64_t>(v)) {}
  Json(unsigned long long v) noexcept
      : value_(static_cast<std::uint64_t>(v)) {}
  Json(double v) noexcept : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}

  static Json object() { Json j; j.value_ = Object{}; return j; }
  static Json array() { Json j; j.value_ = Array{}; return j; }

  /// Object access; inserts a null member on first use. The Json must
  /// already be (or still be null, in which case it becomes) an object.
  Json& operator[](std::string_view key);

  /// Array append. The Json must be (or still be null → becomes) an array.
  void push_back(Json v);

  bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }

  /// Compact serialization (indent < 0) or pretty with `indent` spaces.
  std::string dump(int indent = -1) const;
  void dump(std::ostream& os, int indent = -1) const;

 private:
  void write(std::ostream& os, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      value_;
};

}  // namespace gridpipe::util
