#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/sync.hpp"

namespace gridpipe::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
/// Whether GRIDPIPE_LOG pinned the level (written once under g_env_once,
/// read only after a call_once on the same flag, which synchronizes).
bool g_env_pinned = false;
std::once_flag g_env_once;
/// Serializes the fprintf below so concurrent log lines never interleave.
Mutex g_mutex;

/// Padded names for the line prefix (the parseable lowercase names live
/// in to_string below — this is the one other place levels are spelled).
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}

void init_from_env() noexcept {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("GRIDPIPE_LOG");
    if (!env || !*env) return;
    if (auto level = parse_log_level(env)) {
      g_level.store(*level);
      g_env_pinned = true;
    } else {
      std::fprintf(stderr,
                   "[gridpipe WARN ] GRIDPIPE_LOG='%s' is not one of "
                   "debug|info|warn|error|off; ignored\n",
                   env);
    }
  });
}
}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info";
    case LogLevel::kWarn:  return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff:   return "off";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (name.size() > 8) return std::nullopt;  // longest valid is "warning"
  std::string lower(name);  // fits in SSO, cannot throw
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) noexcept {
  init_from_env();  // resolve pinning first so it cannot clobber us later
  g_level.store(level);
}

void set_default_log_level(LogLevel level) noexcept {
  init_from_env();
  if (!g_env_pinned) g_level.store(level);
}

LogLevel log_level() noexcept {
  init_from_env();
  return g_level.load();
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const MutexLock lock(g_mutex);
  std::fprintf(stderr, "[gridpipe %s] %s\n", level_name(level), message.c_str());
}

}  // namespace gridpipe::util
