#include "workload/scenarios.hpp"

#include <stdexcept>

namespace gridpipe::workload {

sched::PipelineProfile reference_profile() {
  sched::PipelineProfile profile;
  profile.stage_work = {1.0, 2.0, 4.0, 2.0, 1.0, 2.0};
  profile.msg_bytes.assign(7, 1e5);
  profile.state_bytes.assign(6, 4e6);
  return profile;
}

namespace {

grid::Grid base_cluster() {
  // 4 nodes: one fast (2.0), two standard (1.0), one slower (0.8);
  // LAN links: 1 ms, 100 MB/s.
  return grid::heterogeneous_cluster({2.0, 1.0, 1.0, 0.8}, 1e-3, 1e8);
}

}  // namespace

std::vector<Scenario> scenario_catalog(std::uint64_t seed) {
  std::vector<Scenario> scenarios;

  {
    Scenario s;
    s.name = "stable";
    s.description = "dedicated heterogeneous cluster, no dynamics";
    s.grid = base_cluster();
    s.profile = reference_profile();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "load-step";
    s.description = "fastest node gains 8x competing load at t=150s";
    s.grid = base_cluster();
    grid::set_node_load(
        s.grid, 0, std::make_shared<grid::StepLoad>(
                       std::vector<grid::StepLoad::Step>{{150.0, 8.0}}));
    s.profile = reference_profile();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "oscillating";
    s.description = "nodes 1 and 2 carry out-of-phase sine loads (period 240s)";
    s.grid = base_cluster();
    grid::set_node_load(s.grid, 1,
                        std::make_shared<grid::SineLoad>(1.0, 1.0, 240.0, 0.0));
    grid::set_node_load(
        s.grid, 2,
        std::make_shared<grid::SineLoad>(1.0, 1.0, 240.0, 3.14159265));
    s.profile = reference_profile();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "bursty";
    s.description = "nodes 0 and 2 carry Markov on/off load (4x when on)";
    s.grid = base_cluster();
    grid::set_node_load(s.grid, 0,
                        std::make_shared<grid::MarkovOnOffLoad>(
                            seed ^ 0x1111, 4.0, 60.0, 90.0, 2e5));
    grid::set_node_load(s.grid, 2,
                        std::make_shared<grid::MarkovOnOffLoad>(
                            seed ^ 0x2222, 4.0, 45.0, 120.0, 2e5));
    s.profile = reference_profile();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "drifting";
    s.description = "all nodes random-walk between load 0 and 3";
    s.grid = base_cluster();
    for (grid::NodeId n = 0; n < s.grid.num_nodes(); ++n) {
      grid::set_node_load(
          s.grid, n,
          std::make_shared<grid::RandomWalkLoad>(seed ^ (0x3333 + n), 0.5,
                                                 0.25, 10.0, 2e5, 0.0, 3.0));
    }
    s.profile = reference_profile();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "link-degraded";
    s.description = "links touching node 0 congest 30x at t=200s";
    s.grid = base_cluster();
    const auto congestion = std::make_shared<grid::StepLoad>(
        std::vector<grid::StepLoad::Step>{{200.0, 29.0}});
    for (grid::NodeId n = 1; n < s.grid.num_nodes(); ++n) {
      grid::Link out(1e-3, 1e8, congestion);
      grid::Link in(1e-3, 1e8, congestion);
      s.grid.set_link(0, n, std::move(out));
      s.grid.set_link(n, 0, std::move(in));
    }
    s.profile = reference_profile();
    // Messages big enough that the degraded links become the bottleneck:
    // 50 MB at 100 MB/s is 0.5 s nominal, 15 s degraded — far above the
    // ~3 s compute bottleneck, so staying attached to node 0 is ruinous.
    s.profile.msg_bytes.assign(s.profile.msg_bytes.size(), 5e7);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

Scenario find_scenario(const std::string& name, std::uint64_t seed) {
  for (Scenario& s : scenario_catalog(seed)) {
    if (s.name == name) return std::move(s);
  }
  throw std::invalid_argument("find_scenario: unknown scenario " + name);
}

}  // namespace gridpipe::workload
