#pragma once
// Adapters for running a catalogue Scenario's profile on the live
// runtimes (threads / dist / process): passthrough stages carrying the
// profile's cost annotations — compute is emulated, so identity
// functions suffice — plus the deployment-time mapping a planner would
// pick from the catalog. Shared by gridpipe_cli's --runtime path and
// bench_f2's substrate-overhead table, so both drive exactly the same
// setup and stay comparable.

#include <vector>

#include "control/adaptation_controller.hpp"
#include "core/dist_executor.hpp"
#include "core/pipeline_spec.hpp"

namespace gridpipe::workload {

/// Identity Bytes → Bytes stages with `p`'s cost annotations (for
/// DistributedExecutor and ProcessExecutor).
std::vector<core::DistStage> passthrough_dist_stages(
    const sched::PipelineProfile& p);

/// Identity std::any stages with `p`'s cost annotations (for the
/// threaded Executor).
core::PipelineSpec passthrough_spec(const sched::PipelineProfile& p);

/// Deployment-time mapping: what the planner would pick from the
/// catalog (ground truth at t = 0) — the live-runtime analogue of the
/// simulator's initial plan.
sched::Mapping planned_mapping(const grid::Grid& grid,
                               const sched::PipelineProfile& p,
                               const control::AdaptationConfig& adapt);

}  // namespace gridpipe::workload
