#pragma once
// Adapter for running a catalogue Scenario's profile on any execution
// substrate through rt::make_runtime: one typed passthrough pipeline
// carrying the profile's cost annotations — compute is emulated, so
// identity stages suffice — plus the deployment-time mapping a planner
// would pick from the catalog. Shared by gridpipe_cli's --runtime path
// and bench_f2's substrate-overhead table, so both drive exactly the
// same setup and stay comparable.

#include "control/adaptation_controller.hpp"
#include "core/pipeline_spec.hpp"
#include "grid/grid.hpp"

namespace gridpipe::workload {

/// Typed identity stages (std::uint64_t items, so the serialized
/// runtimes work too) with `p`'s cost annotations. One spec, every
/// substrate.
core::PipelineSpec passthrough_pipeline(const sched::PipelineProfile& p);

/// Deployment-time mapping: what the planner would pick from the
/// catalog (ground truth at t = 0) — the live-runtime analogue of the
/// simulator's initial plan.
sched::Mapping planned_mapping(const grid::Grid& grid,
                               const sched::PipelineProfile& p,
                               const control::AdaptationConfig& adapt);

}  // namespace gridpipe::workload
