#pragma once
// Calibrated synthetic CPU work: a deterministic floating-point kernel
// whose cost scales linearly with the requested unit count, used by the
// examples to put real load on the threaded runtime (dedicated-cluster
// mode, emulate_compute = false).

#include <cstdint>

namespace gridpipe::workload {

/// Burns roughly `units` iterations of the kernel and returns a value that
/// depends on every iteration (prevents the optimizer from deleting the
/// loop). Deterministic in (units, salt).
double spin_work(std::uint64_t units, std::uint64_t salt = 0) noexcept;

/// Measures how many spin_work units this machine executes per second
/// (median of `trials` short timed runs).
double calibrate_spin_units_per_second(int trials = 5);

}  // namespace gridpipe::workload
