#include "workload/substrate.hpp"

#include <string>

namespace gridpipe::workload {

namespace {

// Built with += rather than operator+: GCC 12 -O3 inlines the
// char* + string&& overload into a -Wrestrict false positive (PR105651).
std::string stage_name(std::size_t i) {
  std::string name = "s";
  name += std::to_string(i);
  return name;
}

}  // namespace

core::PipelineSpec passthrough_pipeline(const sched::PipelineProfile& p) {
  core::PipelineSpec spec;
  for (std::size_t i = 0; i < p.num_stages(); ++i) {
    spec.stage<std::uint64_t, std::uint64_t>(
        stage_name(i), [](std::uint64_t v) { return v; }, p.stage_work[i],
        p.msg_bytes[i + 1], p.state_bytes[i]);
  }
  spec.input_bytes(p.msg_bytes[0]);
  return spec;
}

sched::Mapping planned_mapping(const grid::Grid& grid,
                               const sched::PipelineProfile& p,
                               const control::AdaptationConfig& adapt) {
  const sched::PerfModel model(adapt.model);
  const auto est = sched::ResourceEstimate::from_grid(grid, 0.0);
  return control::choose_mapping(model, p, est, adapt.mapper,
                                 adapt.pin_first_stage,
                                 adapt.max_total_replicas)
      .mapping;
}

}  // namespace gridpipe::workload
