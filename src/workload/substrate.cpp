#include "workload/substrate.hpp"

#include <string>

namespace gridpipe::workload {

namespace {

// Built with += rather than operator+: GCC 12 -O3 inlines the
// char* + string&& overload into a -Wrestrict false positive (PR105651).
std::string stage_name(std::size_t i) {
  std::string name = "s";
  name += std::to_string(i);
  return name;
}

}  // namespace

std::vector<core::DistStage> passthrough_dist_stages(
    const sched::PipelineProfile& p) {
  std::vector<core::DistStage> stages;
  for (std::size_t i = 0; i < p.num_stages(); ++i) {
    stages.push_back({stage_name(i),
                      [](const core::Bytes& in) { return in; },
                      p.stage_work[i], p.msg_bytes[i + 1], p.state_bytes[i]});
  }
  return stages;
}

core::PipelineSpec passthrough_spec(const sched::PipelineProfile& p) {
  core::PipelineSpec spec;
  for (std::size_t i = 0; i < p.num_stages(); ++i) {
    spec.stage(stage_name(i), [](std::any a) { return a; }, p.stage_work[i],
               p.msg_bytes[i + 1], p.state_bytes[i]);
  }
  spec.input_bytes(p.msg_bytes[0]);
  return spec;
}

sched::Mapping planned_mapping(const grid::Grid& grid,
                               const sched::PipelineProfile& p,
                               const control::AdaptationConfig& adapt) {
  const sched::PerfModel model(adapt.model);
  const auto est = sched::ResourceEstimate::from_grid(grid, 0.0);
  return control::choose_mapping(model, p, est, adapt.mapper,
                                 adapt.pin_first_stage,
                                 adapt.max_total_replicas)
      .mapping;
}

}  // namespace gridpipe::workload
