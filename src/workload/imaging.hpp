#pragma once
// A small image-processing domain for the examples: grayscale images and
// the classic filter chain (blur → edge detect → threshold), packaged as
// pipeline stages. This is the kind of stream workload (per-frame
// processing) that motivates pipeline skeletons.

#include <array>
#include <cstdint>
#include <vector>

#include "core/pipeline_spec.hpp"

namespace gridpipe::workload {

struct Image {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<float> pixels;  ///< row-major, width*height

  float at(std::size_t x, std::size_t y) const {
    return pixels[y * width + x];
  }
  float& at(std::size_t x, std::size_t y) { return pixels[y * width + x]; }
  double bytes() const noexcept {
    return static_cast<double>(pixels.size() * sizeof(float));
  }
};

/// Deterministic pseudo-random test image (values in [0, 1]).
Image make_test_image(std::size_t width, std::size_t height,
                      std::uint64_t seed);

/// 3×3 convolution with replicate-edge padding.
Image convolve3x3(const Image& in, const std::array<float, 9>& kernel);
/// 3×3 box blur.
Image box_blur(const Image& in);
/// Sobel gradient magnitude.
Image sobel(const Image& in);
/// Binary threshold at `level`.
Image threshold(const Image& in, float level);
/// Mean pixel value (used to checksum pipelines in tests).
double mean_pixel(const Image& in);

/// Builds the blur → sobel → threshold pipeline over Image items with
/// cost annotations derived from the image geometry.
core::PipelineSpec image_pipeline(std::size_t width, std::size_t height);

}  // namespace gridpipe::workload
