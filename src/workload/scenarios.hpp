#pragma once
// The canned experiment scenarios used by EXP-T2 / EXP-F5 / EXP-A1: each
// combines a grid (with its dynamic load script) and a pipeline profile.
// All scenarios are deterministic in the seed.

#include <string>
#include <vector>

#include "grid/builders.hpp"
#include "sched/perf_model.hpp"

namespace gridpipe::workload {

struct Scenario {
  std::string name;
  std::string description;
  grid::Grid grid;
  sched::PipelineProfile profile;
  double horizon = 600.0;  ///< virtual seconds of dynamics pre-generated
};

/// The six-scenario catalogue (DESIGN.md EXP-T2):
///  stable        — 4 equal dedicated nodes (adaptation should not hurt)
///  load-step     — the fastest node gets 8× competing load at t = 150 s
///  oscillating   — two nodes carry out-of-phase sine loads
///  bursty        — two nodes carry Markov on/off interactive load
///  drifting      — every node's load random-walks
///  link-degraded — the main LAN links congest 10× at t = 200 s
std::vector<Scenario> scenario_catalog(std::uint64_t seed);

/// The 6-stage reference profile shared by the scenarios: work
/// {1,2,4,2,1,2}, 100 kB messages, 4 MB migratable state per stage.
sched::PipelineProfile reference_profile();

/// Looks a scenario up by name (throws std::invalid_argument).
Scenario find_scenario(const std::string& name, std::uint64_t seed);

}  // namespace gridpipe::workload
