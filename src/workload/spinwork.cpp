#include "workload/spinwork.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace gridpipe::workload {

double spin_work(std::uint64_t units, std::uint64_t salt) noexcept {
  double acc = 1.0 + static_cast<double>(salt % 97) * 1e-3;
  for (std::uint64_t i = 0; i < units; ++i) {
    acc = acc * 1.0000001 + 1e-9;
    if (acc > 2.0) acc -= 1.0;
  }
  return acc;
}

double calibrate_spin_units_per_second(int trials) {
  using Clock = std::chrono::steady_clock;
  constexpr std::uint64_t kProbeUnits = 2'000'000;
  std::vector<double> rates;
  volatile double sink = 0.0;
  for (int t = 0; t < std::max(1, trials); ++t) {
    const auto t0 = Clock::now();
    sink = sink + spin_work(kProbeUnits, static_cast<std::uint64_t>(t));
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (secs > 0.0) rates.push_back(static_cast<double>(kProbeUnits) / secs);
  }
  if (rates.empty()) return 1e8;
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

}  // namespace gridpipe::workload
