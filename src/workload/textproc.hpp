#pragma once
// A text-analytics domain for the examples: tokenize → n-gram count →
// top-k per document, the shape of a streaming indexing pipeline.

#include <map>
#include <string>
#include <vector>

#include "core/pipeline_spec.hpp"

namespace gridpipe::workload {

/// Splits on whitespace, lowercases, strips non-alphanumerics.
std::vector<std::string> tokenize(const std::string& text);

/// Counts n-grams (n >= 1) over a token list; keys join tokens with '_'.
std::map<std::string, std::uint32_t> count_ngrams(
    const std::vector<std::string>& tokens, std::size_t n);

/// The k most frequent entries (count desc, key asc for determinism).
std::vector<std::pair<std::string, std::uint32_t>> top_k(
    const std::map<std::string, std::uint32_t>& counts, std::size_t k);

/// tokenize → bigram count → top-k pipeline over std::string items.
/// `avg_bytes` is the expected document size for cost annotations.
core::PipelineSpec text_pipeline(std::size_t k, double avg_bytes);

}  // namespace gridpipe::workload
