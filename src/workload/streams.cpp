#include "workload/streams.hpp"

namespace gridpipe::workload {

std::vector<std::any> counter_items(std::size_t n) {
  std::vector<std::any> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.emplace_back(static_cast<std::uint64_t>(i));
  }
  return items;
}

std::vector<std::any> vector_items(std::size_t n, std::size_t dim,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::any> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> v(dim);
    for (double& x : v) x = util::uniform(rng, -1.0, 1.0);
    items.emplace_back(std::move(v));
  }
  return items;
}

std::vector<std::any> text_items(std::size_t n, std::size_t words_per_item,
                                 std::uint64_t seed) {
  static const std::vector<std::string> kVocabulary = {
      "grid",  "pipeline", "stage",   "node",    "skeleton", "adaptive",
      "map",   "stream",   "latency", "compute", "transfer", "monitor",
      "remap", "epoch",    "load",    "link"};
  util::Xoshiro256 rng(seed);
  std::vector<std::any> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string text;
    for (std::size_t w = 0; w < words_per_item; ++w) {
      // Squaring a uniform variate skews towards low indices (Zipf-ish).
      const double u = util::uniform01(rng);
      const auto idx = static_cast<std::size_t>(
          u * u * static_cast<double>(kVocabulary.size()));
      if (w) text += ' ';
      text += kVocabulary[std::min(idx, kVocabulary.size() - 1)];
    }
    items.emplace_back(std::move(text));
  }
  return items;
}

}  // namespace gridpipe::workload
