#include "workload/imaging.hpp"

#include <array>
#include <cmath>

#include "util/rng.hpp"

namespace gridpipe::workload {

Image make_test_image(std::size_t width, std::size_t height,
                      std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height);
  for (float& p : img.pixels) {
    p = static_cast<float>(util::uniform01(rng));
  }
  return img;
}

Image convolve3x3(const Image& in, const std::array<float, 9>& kernel) {
  Image out;
  out.width = in.width;
  out.height = in.height;
  out.pixels.resize(in.pixels.size());
  const auto w = static_cast<std::ptrdiff_t>(in.width);
  const auto h = static_cast<std::ptrdiff_t>(in.height);
  auto clamp_at = [&](std::ptrdiff_t x, std::ptrdiff_t y) {
    x = std::max<std::ptrdiff_t>(0, std::min(x, w - 1));
    y = std::max<std::ptrdiff_t>(0, std::min(y, h - 1));
    return in.pixels[static_cast<std::size_t>(y * w + x)];
  };
  for (std::ptrdiff_t y = 0; y < h; ++y) {
    for (std::ptrdiff_t x = 0; x < w; ++x) {
      float acc = 0.0F;
      for (std::ptrdiff_t ky = -1; ky <= 1; ++ky) {
        for (std::ptrdiff_t kx = -1; kx <= 1; ++kx) {
          acc += kernel[static_cast<std::size_t>((ky + 1) * 3 + (kx + 1))] *
                 clamp_at(x + kx, y + ky);
        }
      }
      out.pixels[static_cast<std::size_t>(y * w + x)] = acc;
    }
  }
  return out;
}

Image box_blur(const Image& in) {
  constexpr float k = 1.0F / 9.0F;
  return convolve3x3(in, {k, k, k, k, k, k, k, k, k});
}

Image sobel(const Image& in) {
  const Image gx = convolve3x3(in, {-1, 0, 1, -2, 0, 2, -1, 0, 1});
  const Image gy = convolve3x3(in, {-1, -2, -1, 0, 0, 0, 1, 2, 1});
  Image out;
  out.width = in.width;
  out.height = in.height;
  out.pixels.resize(in.pixels.size());
  for (std::size_t i = 0; i < out.pixels.size(); ++i) {
    out.pixels[i] = std::sqrt(gx.pixels[i] * gx.pixels[i] +
                              gy.pixels[i] * gy.pixels[i]);
  }
  return out;
}

Image threshold(const Image& in, float level) {
  Image out = in;
  for (float& p : out.pixels) p = p >= level ? 1.0F : 0.0F;
  return out;
}

double mean_pixel(const Image& in) {
  if (in.pixels.empty()) return 0.0;
  double acc = 0.0;
  for (const float p : in.pixels) acc += p;
  return acc / static_cast<double>(in.pixels.size());
}

core::PipelineSpec image_pipeline(std::size_t width, std::size_t height) {
  const double pixels = static_cast<double>(width * height);
  const double bytes = pixels * sizeof(float);
  // Work in units of "megapixel-passes": blur 1 pass, sobel 2 passes +
  // magnitude, threshold a cheap pass.
  core::PipelineSpec spec;
  spec.input_bytes(bytes);
  spec.stage(
          "blur",
          [](std::any item) {
            return std::any(box_blur(std::any_cast<Image&>(item)));
          },
          /*work=*/pixels * 1e-6, bytes)
      .stage(
          "sobel",
          [](std::any item) {
            return std::any(sobel(std::any_cast<Image&>(item)));
          },
          /*work=*/pixels * 2.5e-6, bytes)
      .stage(
          "threshold",
          [](std::any item) {
            return std::any(threshold(std::any_cast<Image&>(item), 0.5F));
          },
          /*work=*/pixels * 0.5e-6, bytes);
  return spec;
}

}  // namespace gridpipe::workload
