#include "workload/textproc.hpp"

#include <algorithm>
#include <cctype>

namespace gridpipe::workload {

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::map<std::string, std::uint32_t> count_ngrams(
    const std::vector<std::string>& tokens, std::size_t n) {
  std::map<std::string, std::uint32_t> counts;
  if (n == 0 || tokens.size() < n) return counts;
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string key = tokens[i];
    for (std::size_t j = 1; j < n; ++j) {
      key += '_';
      key += tokens[i + j];
    }
    ++counts[key];
  }
  return counts;
}

std::vector<std::pair<std::string, std::uint32_t>> top_k(
    const std::map<std::string, std::uint32_t>& counts, std::size_t k) {
  std::vector<std::pair<std::string, std::uint32_t>> entries(counts.begin(),
                                                             counts.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

core::PipelineSpec text_pipeline(std::size_t k, double avg_bytes) {
  core::PipelineSpec spec;
  spec.input_bytes(avg_bytes);
  spec.stage(
          "tokenize",
          [](std::any item) {
            return std::any(tokenize(std::any_cast<std::string&>(item)));
          },
          /*work=*/avg_bytes * 1e-6, avg_bytes)
      .stage(
          "bigrams",
          [](std::any item) {
            return std::any(count_ngrams(
                std::any_cast<std::vector<std::string>&>(item), 2));
          },
          /*work=*/avg_bytes * 3e-6, avg_bytes * 2)
      .stage(
          "topk",
          [k](std::any item) {
            return std::any(top_k(
                std::any_cast<std::map<std::string, std::uint32_t>&>(item),
                k));
          },
          /*work=*/avg_bytes * 0.5e-6, 64.0 * static_cast<double>(k));
  return spec;
}

}  // namespace gridpipe::workload
