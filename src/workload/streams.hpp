#pragma once
// Input-stream generators for examples and benches.

#include <any>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gridpipe::workload {

/// n items carrying their own index.
std::vector<std::any> counter_items(std::size_t n);

/// n items each carrying a vector<double> of `dim` seeded random values.
std::vector<std::any> vector_items(std::size_t n, std::size_t dim,
                                   std::uint64_t seed);

/// n pseudo-sentences of `words_per_item` lowercase words drawn from a
/// small Zipf-ish vocabulary; deterministic in the seed.
std::vector<std::any> text_items(std::size_t n, std::size_t words_per_item,
                                 std::uint64_t seed);

}  // namespace gridpipe::workload
