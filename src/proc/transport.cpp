#include "proc/transport.hpp"

#include <cerrno>
#include <stdexcept>
#include <string>
#include <system_error>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace gridpipe::proc {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  // std::generic_category().message() instead of strerror(): same text,
  // but thread-safe (strerror may return a shared static buffer).
  throw std::runtime_error(std::string(what) + ": " +
                           std::generic_category().message(errno));
}

bool peer_gone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN;
}

/// iovec batch per writev: enough to coalesce a realistic frame train,
/// small enough to live on the stack (IOV_MAX is >= 1024 everywhere).
constexpr std::size_t kMaxIov = 64;

}  // namespace

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    reader_ = std::move(other.reader_);
    out_ = std::move(other.out_);
    front_sent_ = other.front_sent_;
    pending_bytes_ = other.pending_bytes_;
    pool_ = other.pool_;
    // Leave the source fully reset, not just moved-from: stale offsets
    // against an emptied queue would corrupt pending_out().
    other.reader_ = comm::wire::FrameReader{};
    other.out_.clear();
    other.front_sent_ = 0;
    other.pending_bytes_ = 0;
    other.pool_ = nullptr;
  }
  return *this;
}

std::pair<FrameSocket, FrameSocket> FrameSocket::make_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  return {FrameSocket(fds[0]), FrameSocket(fds[1])};
}

void FrameSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Undelivered outbound buffers go back to the pool instead of dying
  // with the deque: when a single worker is torn down mid-run (recovery
  // path), its queued frames' pooled buffers must not leak from the
  // pool's working set for the rest of the session.
  while (!out_.empty()) {
    recycle(std::move(out_.front()));
    out_.pop_front();
  }
  front_sent_ = 0;
  pending_bytes_ = 0;
  reader_ = comm::wire::FrameReader{};
}

void FrameSocket::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

void FrameSocket::recycle(comm::wire::Bytes&& buffer) {
  if (pool_) pool_->release(std::move(buffer));
}

bool FrameSocket::send_frame(const comm::wire::Frame& frame) {
  comm::wire::Bytes bytes =
      pool_ ? pool_->acquire() : comm::wire::Bytes{};
  comm::wire::encode_frame_into(bytes, frame);
  return send_buffer(std::move(bytes));
}

bool FrameSocket::send_buffer(comm::wire::Bytes buffer) {
  std::size_t sent = 0;
  while (sent < buffer.size()) {
    const ssize_t n = ::send(fd_, buffer.data() + sent, buffer.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Nonblocking fd in a blocking-style send: wait for space. The
        // peer (the parent's poll loop) always drains, so this is a
        // bounded wait, not a deadlock.
        pollfd pfd{fd_, POLLOUT, 0};
        ::poll(&pfd, 1, -1);
        continue;
      }
      if (peer_gone(errno)) {
        recycle(std::move(buffer));
        return false;
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  recycle(std::move(buffer));
  return true;
}

std::optional<comm::wire::Frame> FrameSocket::recv_frame() {
  for (;;) {
    if (auto frame = reader_.next()) return frame;
    std::byte chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return std::nullopt;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd_, POLLIN, 0};
        ::poll(&pfd, 1, -1);
        continue;
      }
      if (peer_gone(errno)) return std::nullopt;
      throw_errno("recv");
    }
    reader_.feed(chunk, static_cast<std::size_t>(n));
  }
}

void FrameSocket::queue_frame(const comm::wire::Frame& frame) {
  comm::wire::Bytes bytes =
      pool_ ? pool_->acquire() : comm::wire::Bytes{};
  comm::wire::encode_frame_into(bytes, frame);
  queue_buffer(std::move(bytes));
}

void FrameSocket::queue_buffer(comm::wire::Bytes buffer) {
  if (buffer.empty()) {
    recycle(std::move(buffer));
    return;
  }
  pending_bytes_ += buffer.size();
  out_.push_back(std::move(buffer));
}

void FrameSocket::advance_out(std::size_t n) {
  pending_bytes_ -= n;
  while (n > 0) {
    comm::wire::Bytes& front = out_.front();
    const std::size_t left = front.size() - front_sent_;
    if (n < left) {
      front_sent_ += n;
      return;
    }
    n -= left;
    recycle(std::move(front));
    out_.pop_front();
    front_sent_ = 0;
  }
}

bool FrameSocket::flush_some() {
  while (pending_bytes_ > 0) {
    // One writev per train: every queued frame buffer becomes an iovec
    // entry, so a burst of frames costs one syscall instead of one per
    // frame.
    iovec iov[kMaxIov];
    std::size_t n_iov = 0;
    std::size_t skip = front_sent_;
    for (const comm::wire::Bytes& buffer : out_) {
      if (n_iov == kMaxIov) break;
      iov[n_iov].iov_base =
          const_cast<std::byte*>(buffer.data()) + skip;
      iov[n_iov].iov_len = buffer.size() - skip;
      ++n_iov;
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n_iov;
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (peer_gone(errno)) return false;
      throw_errno("sendmsg");
    }
    advance_out(static_cast<std::size_t>(n));
  }
  return true;
}

bool FrameSocket::pump_reads() {
  for (;;) {
    std::byte chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (peer_gone(errno)) return false;
      throw_errno("recv");
    }
    reader_.feed(chunk, static_cast<std::size_t>(n));
    if (n < static_cast<ssize_t>(sizeof(chunk))) return true;
  }
}

}  // namespace gridpipe::proc
