#include "proc/transport.hpp"

#include <cerrno>
#include <stdexcept>
#include <string>
#include <system_error>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gridpipe::proc {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  // std::generic_category().message() instead of strerror(): same text,
  // but thread-safe (strerror may return a shared static buffer).
  throw std::runtime_error(std::string(what) + ": " +
                           std::generic_category().message(errno));
}

bool peer_gone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN;
}

}  // namespace

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    reader_ = std::move(other.reader_);
    out_ = std::move(other.out_);
    out_sent_ = other.out_sent_;
    // Leave the source fully reset, not just moved-from: a stale
    // out_sent_ against an emptied out_ would underflow pending_out().
    other.reader_ = comm::wire::FrameReader{};
    other.out_.clear();
    other.out_sent_ = 0;
  }
  return *this;
}

std::pair<FrameSocket, FrameSocket> FrameSocket::make_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  return {FrameSocket(fds[0]), FrameSocket(fds[1])};
}

void FrameSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrameSocket::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

bool FrameSocket::send_frame(const comm::wire::Frame& frame) {
  const comm::wire::Bytes bytes = comm::wire::encode_frame(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (peer_gone(errno)) return false;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<comm::wire::Frame> FrameSocket::recv_frame() {
  for (;;) {
    if (auto frame = reader_.next()) return frame;
    std::byte chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return std::nullopt;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      if (peer_gone(errno)) return std::nullopt;
      throw_errno("recv");
    }
    reader_.feed(chunk, static_cast<std::size_t>(n));
  }
}

void FrameSocket::queue_frame(const comm::wire::Frame& frame) {
  // Compact the sent prefix before it dominates the buffer.
  if (out_sent_ > 4096 && out_sent_ > out_.size() / 2) {
    out_.erase(out_.begin(),
               out_.begin() + static_cast<std::ptrdiff_t>(out_sent_));
    out_sent_ = 0;
  }
  const comm::wire::Bytes bytes = comm::wire::encode_frame(frame);
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

bool FrameSocket::flush_some() {
  while (out_sent_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_sent_,
                             out_.size() - out_sent_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (peer_gone(errno)) return false;
      throw_errno("send");
    }
    out_sent_ += static_cast<std::size_t>(n);
  }
  return true;
}

bool FrameSocket::pump_reads() {
  for (;;) {
    std::byte chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (peer_gone(errno)) return false;
      throw_errno("recv");
    }
    reader_.feed(chunk, static_cast<std::size_t>(n));
    if (n < static_cast<ssize_t>(sizeof(chunk))) return true;
  }
}

}  // namespace gridpipe::proc
