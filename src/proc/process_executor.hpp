#pragma once
// ProcessExecutor — the process-per-node runtime: the same pipeline
// skeleton as DistributedExecutor, but each grid node is a real forked
// OS process and all coordination crosses Unix-domain sockets. Where
// the other runtimes emulate separation inside one address space, this
// one buys it from the kernel: genuine per-process scheduling, real
// serialization cost on every hop, and node failure as an actual crash.
//
// Topology: star. The parent is the controller; each worker owns one
// socketpair to it. Workers still make the routing decisions — a worker
// finishing stage s picks the next hop from its local copy of the
// routing table (kRemap broadcasts keep copies eventually consistent,
// exactly the DistributedExecutor contract) and the parent relays the
// task frame to that worker's socket. Frames:
//
//   parent → worker   kTask      (admitted or relayed task)
//   worker → parent   kTask      (next-hop relay request, node = dst)
//   worker → parent   kResult    (finished item + output)
//   worker → parent   kSpeedObs  (observed node speed sample)
//   parent → worker   kRemap     (serialized routing table)
//   parent → worker   kShutdown
//
// The adaptation epochs run on the parent and delegate to the shared
// control::AdaptationController; this class implements AdaptationHost,
// where apply_remap broadcasts kRemap. Nothing in src/control/ knows
// this substrate exists.
//
// Lifecycle: run() forks the fleet, multiplexes it with poll(2), and
// reaps every child with waitpid before returning — no SIGCHLD handler
// (a library must not own process-wide signal dispositions; synchronous
// reaping needs none). A worker that dies mid-run surfaces as EOF on
// its socket; the parent reaps it for the exit status, kills the rest
// of the fleet and throws. (Remapping around a crashed node mid-epoch
// is a ROADMAP follow-up.)
//
// fork() constraints: call run() from a process where no other threads
// are live (fork only carries the calling thread; a lock held by
// another thread would stay locked forever in the child). The runtime
// itself spawns no threads — the parent side is a single poll loop.

#include <memory>
#include <vector>

#include "control/adaptation_controller.hpp"
#include "core/dist_executor.hpp"  // core::DistStage, core::Bytes
#include "core/report.hpp"
#include "proc/transport.hpp"
#include "sched/replica_router.hpp"

namespace gridpipe::proc {

using core::Bytes;

struct ProcExecutorConfig {
  double time_scale = 0.01;  ///< real seconds per virtual second
  std::size_t window = 0;    ///< in-flight credit (0 = auto)
  /// Shared control-loop knobs. adapt.epoch = 0 (the live-runtime
  /// default) disables adaptation.
  control::AdaptationConfig adapt{.epoch = 0.0};
  bool emulate_compute = true;
};

class ProcessExecutor : private control::AdaptationHost {
 public:
  /// Stage vector is the same Bytes → Bytes contract the
  /// DistributedExecutor takes, so one scenario drives both substrates.
  ProcessExecutor(const grid::Grid& grid, std::vector<core::DistStage> stages,
                  sched::Mapping initial_mapping, ProcExecutorConfig config);
  ~ProcessExecutor() override;

  /// Blocking: forks one worker process per grid node, pushes every
  /// input through, reaps the fleet, returns ordered outputs. Not
  /// reentrant. Throws std::runtime_error if a worker crashes mid-run.
  core::RunReport run(std::vector<Bytes> inputs);

  sched::PipelineProfile profile() const;

 private:
  struct Worker {
    int pid = -1;
    FrameSocket sock;
  };

  // control::AdaptationHost (called from the parent's epoch loop).
  double virtual_now() const override;
  sched::Mapping deployed_mapping() const override;
  void apply_remap(const sched::Mapping& to, double pause_virtual) override;
  void record_probes(double vnow) override;  // no-op: kSpeedObs feeds it

  /// Builds the per-run controller (fresh gate/policy/registry state;
  /// the virtual clock restarts with every run()).
  std::unique_ptr<control::AdaptationController> make_controller();

  void spawn_fleet();
  void event_loop(const std::vector<Bytes>& inputs,
                  std::vector<std::pair<std::uint64_t, Bytes>>& done);
  void handle_frame(std::size_t source, comm::wire::Frame frame,
                    const std::vector<Bytes>& inputs,
                    std::vector<std::pair<std::uint64_t, Bytes>>& done);
  void admit(std::uint64_t index, const std::vector<Bytes>& inputs);
  /// Graceful: broadcast kShutdown, drain to EOF, close, reap.
  void shutdown_fleet();
  /// Crash path and destructor safety net: SIGKILL + reap, noexcept.
  void kill_fleet() noexcept;
  /// Reaps worker `node` and throws with its wait status.
  [[noreturn]] void fail_run(std::size_t node);

  const grid::Grid& grid_;
  std::vector<core::DistStage> stages_;
  sched::Mapping initial_mapping_;
  ProcExecutorConfig config_;

  std::chrono::steady_clock::time_point start_{};
  sched::PipelineProfile profile_;
  std::unique_ptr<control::AdaptationController> controller_;
  sched::Mapping controller_mapping_;
  sched::ReplicaRouter controller_router_;
  std::vector<Worker> workers_;
  std::uint64_t next_input_ = 0;
  std::uint64_t total_items_ = 0;
  sim::SimMetrics metrics_;
};

}  // namespace gridpipe::proc
