#pragma once
// ProcessExecutor — the process-per-node runtime: the same pipeline
// skeleton as DistributedExecutor, but each grid node is a real forked
// OS process and all coordination crosses Unix-domain sockets. Where
// the other runtimes emulate separation inside one address space, this
// one buys it from the kernel: genuine per-process scheduling, real
// serialization cost on every hop, and node failure as an actual crash.
//
// Topology: star. The parent is the controller; each worker owns one
// socketpair to it. Workers still make the routing decisions — a worker
// finishing stage s picks the next hop from its local copy of the
// routing table (kRemap broadcasts keep copies eventually consistent,
// exactly the DistributedExecutor contract) and the parent relays the
// task frame to that worker's socket. Frames:
//
//   parent → worker   kTask      (admitted or relayed task)
//   worker → parent   kTask      (next-hop relay request, node = dst)
//   worker → parent   kResult    (finished item + output)
//   worker → parent   kSpeedObs  (observed node speed sample)
//   parent → worker   kRemap     (serialized routing table)
//   parent → worker   kShutdown
//
// The adaptation epochs run on the parent and delegate to the shared
// control::AdaptationController; this class implements AdaptationHost,
// where apply_remap broadcasts kRemap. Nothing in src/control/ knows
// this substrate exists.
//
// Lifecycle: stream_begin() forks the fleet, then multiplexes it with
// poll(2) on a dedicated controller thread; stream_push() enqueues items
// the poll loop admits under the credit window, stream_try_pop() returns
// outputs in input order, and stream_finish() reaps every child with
// waitpid before returning — no SIGCHLD handler (a library must not own
// process-wide signal dispositions; synchronous reaping needs none). A
// worker that dies mid-stream surfaces as EOF on its socket; by default
// the parent reaps it for the exit status, kills the rest of the fleet
// and stream_finish() rethrows the failure. run() is a batch wrapper
// over one stream.
//
// Fault tolerance (config.recovery.enabled): a worker death no longer
// fails the run. Every admitted item is journaled (seq, payload) until
// its result reaches the ordered output buffer; on a death the parent
// detaches just the dead worker (reap, close, recycle its queued
// buffers), marks the node down, and asks the recover::Supervisor what
// to do — respawn (fork a replacement after backoff, same node, next
// incarnation) or degrade (run a node-loss churn epoch so the mapping
// shrinks onto the survivors). Either way every journaled item that was
// in flight when the node died is re-admitted from stage 0
// (at-least-once re-execution); the journal retire doubles as the dedup
// filter, so a replay racing its original past the crash still delivers
// exactly once and the ordered output matches a crash-free run byte for
// byte. request_arrival() is the inverse event: a degraded (or fresh)
// node rejoins, the supervisor forks a worker for it and a node-arrival
// churn epoch lets the mapping grow back — the elastic half of the
// paper's adaptive grid story.
//
// fork() constraints: call stream_begin()/run() from a process where no
// other threads are live (fork only carries the calling thread; a lock
// held by another thread would stay locked forever in the child). The
// fleet is forked *before* the controller thread starts, so the runtime
// itself never forks with its own threads live.

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "control/adaptation_controller.hpp"
#include "core/dist_executor.hpp"  // core::DistStage, core::Bytes
#include "core/ordered_buffer.hpp"
#include "core/report.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "proc/shm_ring.hpp"
#include "proc/transport.hpp"
#include "recover/journal.hpp"
#include "recover/supervisor.hpp"
#include "sched/replica_router.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::proc {

using core::Bytes;

struct ProcExecutorConfig {
  double time_scale = 0.01;  ///< real seconds per virtual second
  std::size_t window = 0;    ///< in-flight credit (0 = auto)
  /// Shared control-loop knobs. adapt.epoch = 0 (the live-runtime
  /// default) disables adaptation.
  control::AdaptationConfig adapt{.epoch = 0.0};
  bool emulate_compute = true;
  /// Telemetry sinks (both nullable = observability off). Workers buffer
  /// spans locally and ship them over the socket as kTelemetry frames;
  /// the sinks themselves are only ever touched in the parent.
  obs::Sinks obs{};
  /// Carry worker→worker hops over a shared-memory ring per ordered
  /// worker pair (mapped before fork) instead of relaying every frame
  /// through the parent. Any ring that is full — or a mesh that failed
  /// to map — falls back to the socket relay per frame, so correctness
  /// never depends on the fast path.
  bool shm_ring = true;
  /// Payload capacity of each ring, in bytes.
  std::size_t shm_ring_bytes = std::size_t{1} << 18;
  /// Flight-recorder ring capacity per lane (events). The recorder is
  /// always on; 0 disables it (benchmark baseline only).
  std::size_t flight_events = obs::kDefaultFlightEvents;
  /// Virtual seconds between worker heartbeats (<= 0: no heartbeats).
  double health_interval = 5.0;
  /// Virtual seconds of silence / no-progress before a worker counts as
  /// stalled (<= 0: stall detection off).
  double stall_after = 15.0;
  /// Fault tolerance: replay journal + output dedup + crash-triggered
  /// remap + respawn supervision, plus the fault plan injected into
  /// workers. Default off: a worker death fails the run (the historical
  /// contract crash-forensics tests rely on).
  recover::RecoveryOptions recovery{};
};

class ProcessExecutor : private control::AdaptationHost {
 public:
  /// Stage vector is the same Bytes → Bytes contract the
  /// DistributedExecutor takes, so one scenario drives both substrates.
  ProcessExecutor(const grid::Grid& grid, std::vector<core::DistStage> stages,
                  sched::Mapping initial_mapping, ProcExecutorConfig config);
  ~ProcessExecutor() override;

  /// Blocking convenience wrapper over one stream: forks one worker
  /// process per grid node, pushes every input through, reaps the fleet,
  /// returns ordered outputs. Not reentrant. Throws std::runtime_error
  /// if a worker crashes mid-run.
  core::RunReport run(std::vector<Bytes> inputs);

  // Streaming session primitives (one stream at a time; rt::Session
  // wraps them). Lifecycle: begin -> push*/try_pop* -> close -> finish.
  void stream_begin();
  void stream_push(Bytes item);
  std::optional<Bytes> stream_try_pop();
  void stream_close();
  /// Joins the controller thread, reaps the fleet, and returns the
  /// report; rethrows a worker-crash failure captured by the poll loop.
  core::RunReport stream_finish();

  sched::PipelineProfile profile() const;

  /// Live status snapshot (queue/credit state, mapping, per-worker
  /// health). Safe from any thread while a stream is active.
  util::Json status() const;

  /// PIDs of the current fleet, captured at spawn (tests kill one to
  /// exercise crash forensics). Empty before stream_begin.
  std::vector<int> worker_pids() const;

  /// Asks the controller thread to bring grid node `node` (back) into
  /// the fleet: fork a worker for it and run a node-arrival churn epoch
  /// so the mapping can grow onto it. No-op if the node is already up.
  /// Requires recovery to be enabled. Safe from any thread mid-stream.
  void request_arrival(std::size_t node);

  /// Decoded tail of one flight-recorder lane (0 = controller, 1 + n =
  /// worker n) — recovery tests assert on respawn/replay forensics.
  std::string flight_tail(std::size_t lane, std::size_t max_events) const;

 private:
  struct Worker {
    int pid = -1;
    FrameSocket sock;
  };

  // control::AdaptationHost (called from the parent's epoch loop).
  double virtual_now() const override;
  sched::Mapping deployed_mapping() const override;
  void apply_remap(const sched::Mapping& to, double pause_virtual) override;
  void record_probes(double vnow) override;  // no-op: kSpeedObs feeds it

  /// Builds the per-stream controller (fresh gate/policy/registry state;
  /// the virtual clock restarts with every stream).
  std::unique_ptr<control::AdaptationController> make_controller();

  void spawn_fleet();
  /// Forks one worker for `node` (initial fleet and respawns share this
  /// path; a respawn forks from the controller thread, which is safe:
  /// fork copies only the calling thread, and the child touches nothing
  /// another parent thread could hold locked — its own pool, its own
  /// socket, read-only config, and MAP_SHARED pages). Throws
  /// std::runtime_error if fork fails; the caller decides cleanup.
  void spawn_worker(std::size_t node, std::uint32_t incarnation);
  /// Controller-thread entry: event_loop + graceful shutdown, with any
  /// failure captured into stream_error_.
  void controller_main();
  void event_loop();
  void handle_frame(std::size_t source, const comm::wire::FrameView& frame);
  void admit(grid::NodeId dst, std::uint64_t index, Bytes payload);
  /// Graceful: broadcast kShutdown, drain to EOF, close, reap.
  void shutdown_fleet();
  /// Crash path and destructor safety net: SIGKILL + reap, noexcept.
  void kill_fleet() noexcept;
  /// Reaps worker `node` and throws with its wait status.
  [[noreturn]] void fail_run(std::size_t node);

  // ---- recovery machinery (controller thread only) ----
  bool recovery_on() const noexcept { return config_.recovery.enabled; }
  bool worker_up(std::size_t node) const noexcept {
    return node < workers_.size() && workers_[node].sock.valid();
  }
  /// A socket write to `node` just failed (or its socket hit EOF):
  /// either detach-and-recover (recovery on) or fail the run.
  void on_worker_lost(std::size_t node);
  /// Reaps and detaches one dead worker: close + recycle its queued
  /// buffers, mark the node down, open the recovery window, queue the
  /// node for a supervisor decision.
  void mark_worker_dead(std::size_t node);
  /// Drains the dead-node queue through the supervisor (respawn with
  /// backoff, degrade, or give up and fail the run).
  void process_dead_nodes();
  /// Forks replacements whose backoff deadline has passed.
  void process_respawns();
  /// Consumes request_arrival() requests: fork + node-arrival epoch.
  void process_arrivals();
  /// Forks incarnation+1 for `node` (after draining its incoming rings
  /// so the replacement's frame readers start frame-aligned).
  /// Returns false if the fork failed (node re-queued for the
  /// supervisor).
  bool respawn_worker(std::size_t node);
  /// Gives up on `node`: mask it out of the controller's availability
  /// set and run a node-loss churn epoch so the mapping shrinks onto
  /// the survivors. Throws if no nodes survive.
  void degrade_node(std::size_t node);
  /// Forced (gate-bypassing) replan for grid churn, plus a hard
  /// executor-side guard: if the chosen mapping still touches an
  /// unavailable node, fall back to a block mapping over survivors.
  void run_churn_remap(control::AdaptationTrigger why, std::string event);
  /// Re-admits from stage 0 every journaled item that was in flight
  /// when a death was detected and has not since been delivered.
  void replay_recovering_items();
  /// Delivery-side recovery bookkeeping: closes the recovery window
  /// once every item live at death detection has been delivered.
  void note_retired(std::uint64_t item, double vnow);
  /// Closes the parent's retained doorbell fds (recovery keeps them
  /// open across the stream so respawned children can inherit them).
  void close_parent_bells() noexcept;
  [[noreturn]] void fail_lost(std::size_t node, const std::string& why);

  const grid::Grid& grid_;
  std::vector<core::DistStage> stages_;
  sched::Mapping initial_mapping_;
  ProcExecutorConfig config_;

  std::chrono::steady_clock::time_point start_{};
  /// Parent-side free-list for admission/relay frame buffers.
  /// (Internally synchronized; no GUARDED_BY needed.)
  comm::wire::BufferPool pool_;
  /// Worker↔worker shared-memory rings, mapped before the fleet forks;
  /// invalid when the knob is off or setup failed (pure socket mode).
  ShmRingMesh rings_;
  sched::PipelineProfile profile_;
  std::unique_ptr<control::AdaptationController> controller_;
  sched::Mapping controller_mapping_;
  sched::ReplicaRouter controller_router_;
  std::vector<Worker> workers_;
  sim::SimMetrics metrics_;

  // Controller-thread-only admission state. The counters are atomic only
  // so status() can read them from another thread; the controller thread
  // is the sole writer.
  std::deque<std::pair<std::uint64_t, Bytes>> pending_;
  /// Virtual admission time per in-flight item (for latency metrics).
  std::map<std::uint64_t, double> admit_time_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};

  /// Always-on forensic ring per lane (lane 0 = this controller, lane
  /// 1+n = worker n), mmap'd MAP_SHARED before the fleet forks so the
  /// parent can read a dead child's lane post-mortem. ctl_flight_ is the
  /// cached lane-0 handle (controller thread is its single writer).
  obs::FlightRecorder flight_;
  obs::FlightRing ctl_flight_;

  // Health / live-status state, shared between the controller thread
  // (writer) and status() callers (readers). Uncontended in steady
  // state: the controller takes the lock a few times per poll tick.
  mutable util::Mutex status_mutex_;
  obs::HealthTracker health_ GRIDPIPE_GUARDED_BY(status_mutex_);
  std::string status_mapping_ GRIDPIPE_GUARDED_BY(status_mutex_);
  std::vector<int> worker_pids_ GRIDPIPE_GUARDED_BY(status_mutex_);

  // Stream state shared between the pushing/popping caller and the
  // controller thread (mutable: status() reads it const).
  mutable util::Mutex stream_mutex_;
  std::deque<std::pair<std::uint64_t, Bytes>> incoming_
      GRIDPIPE_GUARDED_BY(stream_mutex_);
  /// Ordered, seq-keyed output reorder buffer. Its dedup (reject seqs
  /// already delivered) is the exactly-once backstop behind the
  /// journal's retire-as-dedup in the controller thread.
  core::OrderedDedupBuffer out_ GRIDPIPE_GUARDED_BY(stream_mutex_);
  /// Virtual completion time per buffered output; populated only when
  /// tracing (feeds the ordered-buffer wait span on pop).
  std::map<std::uint64_t, double> completed_at_
      GRIDPIPE_GUARDED_BY(stream_mutex_);
  std::uint64_t pushed_ GRIDPIPE_GUARDED_BY(stream_mutex_) = 0;
  bool closed_ GRIDPIPE_GUARDED_BY(stream_mutex_) = false;
  std::exception_ptr stream_error_ GRIDPIPE_GUARDED_BY(stream_mutex_);
  /// Nodes request_arrival() asked the controller thread to bring up.
  std::vector<std::size_t> arrivals_ GRIDPIPE_GUARDED_BY(stream_mutex_);

  // ---- recovery state (controller thread only; the atomics mirror the
  // counters for status()/stream_finish() readers) ----
  recover::ReplayJournal journal_;
  recover::Supervisor supervisor_;
  /// Deaths detected but not yet taken to the supervisor.
  std::deque<std::size_t> dead_nodes_;
  /// Respawn deadline per node (steady_clock; nullopt = none pending).
  std::vector<std::optional<std::chrono::steady_clock::time_point>>
      respawn_at_;
  std::vector<std::uint32_t> incarnation_;
  /// Nodes degraded out of the mapping (mirror of the controller's
  /// availability mask, consulted on the relay hot path).
  std::vector<char> node_degraded_;
  /// Items in flight when a death was detected; the recovery window
  /// closes (and its duration is recorded) when all are delivered.
  std::set<std::uint64_t> recovering_;
  double recovery_started_v_ = 0.0;
  std::vector<double> recovery_times_;
  /// Parent-retained doorbell pipes (recovery only): a respawned child
  /// must inherit its own read end and every sibling's write end, so
  /// the parent cannot close them after the initial fleet forks.
  std::vector<std::array<int, 2>> bells_;
  std::vector<int> bell_wr_;
  std::atomic<std::uint64_t> node_losses_{0};
  std::atomic<std::uint64_t> respawns_{0};
  std::atomic<std::uint64_t> replays_{0};
  std::atomic<std::uint64_t> dedups_{0};
  std::atomic<std::uint64_t> journal_live_{0};

  std::thread controller_thread_;
  bool stream_active_ = false;
  std::string initial_mapping_str_;
  /// Pre-resolved obs handles (all null when config_.obs.metrics is).
  obs::StandardMetrics obs_metrics_;
};

}  // namespace gridpipe::proc
