#include "proc/child.hpp"

#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "obs/telemetry.hpp"
#include "sched/replica_router.hpp"

namespace gridpipe::proc {

namespace {

using comm::wire::Frame;
using comm::wire::FrameKind;

double virtual_now(const ChildContext& ctx) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ctx.start)
             .count() /
         ctx.time_scale;
}

[[noreturn]] void child_main(FrameSocket& socket, const ChildContext& ctx) {
  const std::vector<core::DistStage>& stages = *ctx.stages;
  const grid::Grid& grid = *ctx.grid;

  // Local routing table, eventually consistent: kRemap overwrites it.
  // Frames arrive in order on the stream, so a remap naturally applies
  // before every task queued behind it.
  sched::Mapping mapping = ctx.initial_mapping;
  sched::ReplicaRouter router(stages.size());

  // Telemetry rides the same socket as results: spans buffer locally and
  // flush as one kTelemetry frame every few tasks (and at exit), so the
  // hot path stays one vector push per task.
  obs::TelemetryBatch spans;
  std::uint64_t executed = 0;
  constexpr std::size_t kFlushEvents = 16;
  const auto flush_telemetry = [&] {
    if (!ctx.telemetry) return;
    if (executed) spans.counters.push_back({"stage_executions", executed});
    executed = 0;
    if (spans.empty()) return;
    const bool sent = socket.send_frame(
        {FrameKind::kTelemetry, static_cast<std::uint32_t>(ctx.node),
         obs::encode_telemetry(spans)});
    spans = obs::TelemetryBatch{};
    if (!sent) _exit(0);
  };

  for (;;) {
    auto frame = socket.recv_frame();
    if (!frame) {
      flush_telemetry();
      _exit(0);  // parent closed the pair: run is over
    }

    switch (frame->kind) {
      case FrameKind::kShutdown:
        flush_telemetry();
        _exit(0);
      case FrameKind::kRemap: {
        // decode_mapping only checks the bytes; validate the structure
        // too (stage count, non-empty replica sets, known nodes) before
        // routing through it — a corrupt table must be a clean _exit(2)
        // via the catch-all, not out-of-bounds UB on the next pick.
        sched::Mapping next_mapping =
            comm::wire::decode_mapping(frame->payload);
        next_mapping.validate(grid.num_nodes());
        if (next_mapping.num_stages() != stages.size()) {
          throw std::invalid_argument("child: remap stage-count mismatch");
        }
        mapping = std::move(next_mapping);
        router.reset(stages.size());
        break;
      }
      case FrameKind::kTask: {
        std::uint64_t item;
        std::uint32_t stage;
        core::Bytes payload;
        comm::wire::decode_task(frame->payload, item, stage, payload);
        if (stage >= stages.size()) _exit(2);

        const auto t0 = std::chrono::steady_clock::now();
        const double v0 = virtual_now(ctx);
        core::Bytes out = stages[stage].fn(payload);
        if (ctx.emulate_compute) {
          const double service =
              stages[stage].work / grid.effective_speed(ctx.node, v0);
          std::this_thread::sleep_until(
              t0 + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(service *
                                                     ctx.time_scale)));
        }
        const double duration =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count() /
            ctx.time_scale;

        if (ctx.telemetry) {
          ++executed;
          obs::TraceEvent span;
          span.name = stages[stage].name;
          span.kind = obs::SpanKind::kStage;
          span.start = v0;
          span.duration = duration;
          span.tid = static_cast<std::uint32_t>(1 + ctx.node);
          span.item = item;
          span.stage = stage;
          spans.events.push_back(std::move(span));
          if (spans.events.size() >= kFlushEvents) flush_telemetry();
        }

        // Observed speed feeds the parent-side monitor, exactly like the
        // DistributedExecutor's kSpeedObs messages.
        if (duration > 0.0) {
          if (!socket.send_frame(
                  {FrameKind::kSpeedObs,
                   static_cast<std::uint32_t>(ctx.node),
                   comm::wire::encode_f64(stages[stage].work / duration)})) {
            _exit(0);
          }
        }

        Frame next;
        if (stage + 1 == stages.size()) {
          next.kind = FrameKind::kResult;
          next.node = static_cast<std::uint32_t>(ctx.node);
        } else {
          // The child picks the next hop from its own table (the parent
          // only relays), so routing stays a worker-side decision as in
          // the message-passing runtime.
          next.kind = FrameKind::kTask;
          next.node =
              static_cast<std::uint32_t>(router.pick(mapping, stage + 1));
        }
        next.payload = comm::wire::encode_task(item, stage + 1, out);
        if (!socket.send_frame(next)) _exit(0);
        break;
      }
      case FrameKind::kResult:
      case FrameKind::kSpeedObs:
      case FrameKind::kTelemetry:
        break;  // parent-bound kinds; ignore if misdelivered
    }
  }
}

}  // namespace

void run_child_loop(FrameSocket socket, const ChildContext& ctx) {
  try {
    child_main(socket, ctx);
  } catch (...) {
    // Malformed frame, bad_alloc, a throwing stage fn... the parent sees
    // EOF plus exit status 2 and reports the crash.
    _exit(2);
  }
}

}  // namespace gridpipe::proc
