#include "proc/child.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include "obs/health.hpp"
#include "obs/telemetry.hpp"
#include "sched/replica_router.hpp"

namespace gridpipe::proc {

namespace {

using comm::wire::FrameKind;
using comm::wire::FrameView;

double virtual_now(const ChildContext& ctx) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ctx.start)
             .count() /
         ctx.time_scale;
}

[[noreturn]] void child_main(FrameSocket& socket, const ChildContext& ctx) {
  const std::vector<core::DistStage>& stages = *ctx.stages;
  const grid::Grid& grid = *ctx.grid;
  const auto self = static_cast<std::uint32_t>(ctx.node);
  // Our forensic lane in the parent's MAP_SHARED mapping: everything
  // recorded here outlives this process, which is the whole point.
  obs::FlightRing flight = ctx.flight;

  // Socket writes pass MSG_NOSIGNAL, but a doorbell write to a crashed
  // sibling's pipe has no such flag — it must come back as EPIPE, not a
  // process-killing SIGPIPE. The disposition is ours to set: this is a
  // forked worker, not a host application thread.
  ::signal(SIGPIPE, SIG_IGN);

  // The child's own buffer pool: frames compose into recycled buffers,
  // the socket returns fully-sent ones. (Each process has its own pool —
  // the buffers themselves never cross an address space.)
  comm::wire::BufferPool pool;
  socket.set_pool(&pool);
  // Nonblocking so one poll loop multiplexes socket + doorbell; the
  // FrameSocket send paths poll-wait internally when the kernel buffer
  // is momentarily full.
  socket.set_nonblocking(true);

  // Ring handles, cached per peer: in_rings[src] carries src → self,
  // out_rings[dst] carries self → dst. The diagonal (self → self) is a
  // real ring too, so a self-hop skips the parent without special
  // casing. Each incoming ring is a byte stream, so it gets its own
  // FrameReader to reassemble frames split across the wrap point.
  std::vector<ShmRing> in_rings;
  std::vector<ShmRing> out_rings;
  std::vector<comm::wire::FrameReader> ring_readers;
  if (ctx.rings != nullptr && ctx.rings->valid()) {
    const std::size_t nodes = ctx.rings->nodes();
    in_rings.reserve(nodes);
    out_rings.reserve(nodes);
    ring_readers.resize(nodes);
    for (std::size_t peer = 0; peer < nodes; ++peer) {
      in_rings.push_back(ctx.rings->ring(peer, ctx.node));
      out_rings.push_back(ctx.rings->ring(ctx.node, peer));
    }
  }

  const auto ding = [&](std::size_t dst) {
    if (ctx.doorbell_wr == nullptr || dst >= ctx.doorbell_wr->size()) return;
    const int fd = (*ctx.doorbell_wr)[dst];
    if (fd < 0) return;
    const char byte = 1;
    // EAGAIN means the pipe already holds a pending wakeup — good
    // enough; EPIPE means the peer died and the ring push that
    // preceded this will start failing on its own.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  };

  const auto orderly_exit = [&] {
    flight.record(obs::FlightKind::kClose, virtual_now(ctx));
    // Mark our side of every incoming ring closed so a straggling
    // producer fails fast to the socket path instead of filling pages
    // nobody will drain.
    for (ShmRing& ring : in_rings) ring.close_consumer();
    _exit(0);
  };

  // Local routing table, eventually consistent: kRemap overwrites it.
  // Ring-borne tasks may overtake socket-queued ones (two transports,
  // no common order), which is fine for the same reason stale tables
  // are: items are independent and the parent re-orders outputs.
  sched::Mapping mapping = ctx.initial_mapping;
  sched::ReplicaRouter router(stages.size());

  // Telemetry rides the socket: spans buffer locally and flush as one
  // kTelemetry frame every few tasks (and at exit), so the hot path
  // stays one vector push per task.
  obs::TelemetryBatch spans;
  std::uint64_t executed = 0;
  constexpr std::size_t kFlushEvents = 16;
  const auto flush_telemetry = [&] {
    if (!ctx.telemetry) return;
    if (executed) spans.counters.push_back({"stage_executions", executed});
    executed = 0;
    if (spans.empty()) return;
    core::Bytes frame = pool.acquire();
    const std::size_t off =
        comm::wire::begin_frame(frame, FrameKind::kTelemetry, self);
    obs::encode_telemetry_into(frame, spans);
    comm::wire::end_frame(frame, off);
    spans = obs::TelemetryBatch{};
    if (!socket.send_buffer(std::move(frame))) orderly_exit();
  };

  // Health: one 48-byte kHealth frame every health_interval virtual
  // seconds, sent from the idle poll loop (bounded timeout below) or
  // right after a batch of work — so both a busy and an idle worker keep
  // proving liveness. queue_depth is 0 by construction here: tasks are
  // handled synchronously as they arrive, so nothing queues locally.
  double last_progress = 0.0;
  std::uint64_t tasks_total = 0;
  double last_health = virtual_now(ctx);
  const auto send_health = [&](double vnow) {
    last_health = vnow;
    obs::HealthRecord record;
    record.node = self;
    record.time = vnow;
    record.last_progress = last_progress;
    record.tasks_executed = tasks_total;
    record.queue_depth = 0;
    std::uint64_t ring_bytes = 0;
    for (ShmRing& ring : in_rings) {
      if (ring.valid()) ring_bytes += ring.readable();
    }
    record.ring_bytes = ring_bytes;
    record.rss_kb = obs::self_rss_kb();
    flight.record(obs::FlightKind::kHeartbeat, vnow, 0, tasks_total,
                  record.queue_depth);
    core::Bytes frame = pool.acquire();
    const std::size_t off =
        comm::wire::begin_frame(frame, FrameKind::kHealth, self);
    obs::encode_health_into(frame, record);
    comm::wire::end_frame(frame, off);
    if (!socket.send_buffer(std::move(frame))) orderly_exit();
  };

  const auto handle_task = [&](comm::wire::ByteSpan wire) {
    const comm::wire::TaskView task = comm::wire::decode_task(wire);
    const std::uint64_t item = task.item;
    const std::uint32_t stage = task.stage;
    if (stage >= stages.size()) _exit(2);
    if (ctx.faults != nullptr &&
        ctx.faults->should_die(self, item, stage, ctx.incarnation)) {
      // Injected node loss: leave a note in the shared flight lane, then
      // die exactly like a real crash — no flush, no orderly exit, no
      // chance for buffered state to escape.
      flight.record(obs::FlightKind::kDeath, virtual_now(ctx), self, item);
      ::kill(::getpid(), SIGKILL);
    }
    // Recorded before the stage runs: if the stage kills us, the parent's
    // post-mortem shows exactly which (stage, item) we died in.
    flight.record(obs::FlightKind::kTaskStart, virtual_now(ctx), stage, item);

    // Route before running: the frame header (kind + destination) goes
    // at the front of the buffer the stage appends into.
    const bool last = stage + 1 == stages.size();
    const std::uint32_t dst =
        last ? self
             : static_cast<std::uint32_t>(router.pick(mapping, stage + 1));

    const auto t0 = std::chrono::steady_clock::now();
    const double v0 = virtual_now(ctx);
    // One pooled buffer holds the complete next-hop frame: wire frame
    // header, task header, then the stage's output appended in place.
    core::Bytes next = pool.acquire();
    const std::size_t frame_off = comm::wire::begin_frame(
        next, last ? FrameKind::kResult : FrameKind::kTask, last ? self : dst);
    comm::wire::encode_task_header_into(next, item, stage + 1);
    stages[stage].fn(task.payload, next);
    comm::wire::end_frame(next, frame_off);
    if (ctx.emulate_compute) {
      const double service =
          stages[stage].work / grid.effective_speed(ctx.node, v0);
      std::this_thread::sleep_until(
          t0 +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(service * ctx.time_scale)));
    }
    const double duration =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() /
        ctx.time_scale;
    const double vdone = v0 + duration;
    flight.record(obs::FlightKind::kTaskDone, vdone, stage, item,
                  std::bit_cast<std::uint64_t>(duration));
    last_progress = vdone;
    ++tasks_total;

    if (ctx.telemetry) {
      ++executed;
      obs::TraceEvent span;
      span.name = stages[stage].name;
      span.kind = obs::SpanKind::kStage;
      span.start = v0;
      span.duration = duration;
      span.tid = static_cast<std::uint32_t>(1 + ctx.node);
      span.item = item;
      span.stage = stage;
      spans.events.push_back(std::move(span));
      if (spans.events.size() >= kFlushEvents) flush_telemetry();
    }

    // Fast path: a non-final hop goes straight into the destination
    // sibling's ring (the parent never sees the payload). All-or-nothing
    // push — a full ring or dead peer falls back to the socket relay.
    bool ring_sent = false;
    if (!last && dst < out_rings.size() && out_rings[dst].valid()) {
      if (out_rings[dst].push(next)) {
        ring_sent = true;
        flight.record(obs::FlightKind::kRingPush, vdone, dst, next.size());
        if (dst != self) ding(dst);
      } else {
        flight.record(obs::FlightKind::kRingFallback, vdone, dst,
                      next.size());
      }
    }

    // Everything socket-bound from this task leaves as one train (one
    // syscall): the speed observation, plus the next-hop frame when the
    // ring did not take it.
    core::Bytes train = pool.acquire();
    if (duration > 0.0) {
      const std::size_t obs_off =
          comm::wire::begin_frame(train, FrameKind::kSpeedObs, self);
      comm::wire::encode_f64_into(train, stages[stage].work / duration);
      comm::wire::end_frame(train, obs_off);
    }
    if (!ring_sent) {
      const std::size_t off = train.size();
      train.resize(off + next.size());
      std::memcpy(train.data() + off, next.data(), next.size());
      flight.record(
          obs::FlightKind::kFrameSend, vdone,
          static_cast<std::uint32_t>(last ? FrameKind::kResult
                                          : FrameKind::kTask),
          next.size());
    }
    pool.release(std::move(next));
    if (train.empty()) {
      pool.release(std::move(train));
    } else if (!socket.send_buffer(std::move(train))) {
      orderly_exit();
    }
  };

  const auto handle_frame = [&](const FrameView& frame) {
    flight.record(obs::FlightKind::kFrameRecv, virtual_now(ctx),
                  static_cast<std::uint32_t>(frame.kind),
                  frame.payload.size());
    switch (frame.kind) {
      case FrameKind::kShutdown:
        flush_telemetry();
        orderly_exit();
        break;
      case FrameKind::kRemap: {
        // decode_mapping only checks the bytes; validate the structure
        // too (stage count, non-empty replica sets, known nodes) before
        // routing through it — a corrupt table must be a clean _exit(2)
        // via the catch-all, not out-of-bounds UB on the next pick.
        sched::Mapping next_mapping = comm::wire::decode_mapping(frame.payload);
        next_mapping.validate(grid.num_nodes());
        if (next_mapping.num_stages() != stages.size()) {
          throw std::invalid_argument("child: remap stage-count mismatch");
        }
        mapping = std::move(next_mapping);
        router.reset(stages.size());
        break;
      }
      case FrameKind::kTask:
        handle_task(frame.payload);
        break;
      case FrameKind::kResult:
      case FrameKind::kSpeedObs:
      case FrameKind::kTelemetry:
      case FrameKind::kHealth:
        break;  // parent-bound kinds; ignore if misdelivered
    }
  };

  const auto drain_rings = [&]() -> bool {
    bool any = false;
    for (std::size_t src = 0; src < in_rings.size(); ++src) {
      ShmRing& ring = in_rings[src];
      if (!ring.valid()) continue;
      std::byte chunk[4096];
      while (const std::size_t n = ring.pop(chunk, sizeof(chunk))) {
        ring_readers[src].feed(chunk, n);
        any = true;
      }
      while (auto view = ring_readers[src].next_view()) handle_frame(*view);
    }
    return any;
  };

  for (;;) {
    bool worked = drain_rings();
    if (!socket.pump_reads()) {
      flush_telemetry();
      orderly_exit();  // parent closed the pair: run is over
    }
    while (auto view = socket.next_frame_view()) {
      handle_frame(*view);
      worked = true;
    }
    if (ctx.health_interval > 0.0) {
      const double vnow = virtual_now(ctx);
      if (vnow - last_health >= ctx.health_interval) send_health(vnow);
    }
    if (worked) continue;

    pollfd pfds[2];
    pfds[0] = {socket.fd(), POLLIN, 0};
    nfds_t nfds = 1;
    if (ctx.doorbell_rd >= 0) {
      pfds[1] = {ctx.doorbell_rd, POLLIN, 0};
      nfds = 2;
    }
    // Heartbeats bound the idle wait; without them the loop is purely
    // event-driven and poll can sleep forever.
    int timeout_ms = -1;
    if (ctx.health_interval > 0.0) {
      const double left_real =
          (last_health + ctx.health_interval - virtual_now(ctx)) *
          ctx.time_scale;
      timeout_ms = std::clamp(static_cast<int>(left_real * 1e3) + 1, 1, 60000);
    }
    if (::poll(pfds, nfds, timeout_ms) < 0 && errno != EINTR) _exit(2);
    if (nfds == 2 && (pfds[1].revents & POLLIN) != 0) {
      // Swallow every pending doorbell byte; the ring drain at the top
      // of the loop happens after this read, so a push published before
      // the ding is never missed.
      char bytes[64];
      while (::read(ctx.doorbell_rd, bytes, sizeof(bytes)) > 0) {
      }
    }
  }
}

}  // namespace

void run_child_loop(FrameSocket socket, const ChildContext& ctx) {
  try {
    child_main(socket, ctx);
  } catch (...) {
    // Malformed frame, bad_alloc, a throwing stage fn... the parent sees
    // EOF plus exit status 2 and reports the crash.
    _exit(2);
  }
}

}  // namespace gridpipe::proc
