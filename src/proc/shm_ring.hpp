#pragma once
// ShmRing — a fixed-capacity SPSC byte ring over a shared memory
// region, carrying comm::wire frames directly between sibling worker
// processes of the proc runtime. The region is mapped with
// mmap(MAP_SHARED | MAP_ANONYMOUS) in the parent *before* fork, so
// every child inherits the same physical pages; a push in one process
// is a pop in another with no syscall and no parent round-trip.
//
// Contract:
//  * Single producer, single consumer per ring (the mesh below gives
//    every ordered worker pair its own ring, so the pairing is
//    structural, not a locking discipline).
//  * push() is all-or-nothing: either the whole frame fits and is
//    published, or nothing is written and the caller falls back to the
//    socket path. Frames therefore never interleave halves across the
//    two transports.
//  * pop() is byte-stream oriented: it hands out whatever contiguous
//    progress exists (feed it to a comm::wire::FrameReader, which
//    reassembles frames split across the wrap point).
//  * close_producer()/close_consumer() publish an EOF-equivalent word:
//    a producer whose consumer closed (worker exited) gets push() ==
//    false and falls back to the socket, where the parent's poll loop
//    owns crash detection. A crashed peer that never closed simply
//    stops consuming; the ring fills and push() falls back the same
//    way — liveness never depends on the ring.
//
// Synchronization: monotonically increasing 64-bit head/tail counters
// on separate cache lines, release-published by their owning side and
// acquire-loaded by the other; the data copy is therefore ordered
// before the counter that makes it visible. No futexes — wakeup is the
// caller's problem (the proc runtime uses a pipe-based doorbell).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

namespace gridpipe::proc {

class ShmRing {
 public:
  /// An invalid ring: every operation is a safe no-op (push fails,
  /// pop returns 0).
  ShmRing() = default;

  /// Bytes of raw memory one ring of `capacity` payload bytes needs
  /// (header + data), suitably aligned for the header's atomics.
  static std::size_t region_bytes(std::size_t capacity);

  /// Initializes a ring header in `region` (which must hold at least
  /// region_bytes(capacity) zeroed bytes) and returns a handle to it.
  static ShmRing create(void* region, std::size_t capacity);

  /// Handle to a ring previously create()d in `region` (e.g. the same
  /// mapping seen from a forked child). Returns an invalid ring if the
  /// magic does not match.
  static ShmRing attach(void* region);

  bool valid() const noexcept { return header_ != nullptr; }
  std::size_t capacity() const noexcept;

  /// All-or-nothing append of `bytes` to the stream. False when the
  /// ring is invalid, the consumer closed, the frame exceeds the
  /// capacity outright, or there is not enough free space right now.
  bool push(std::span<const std::byte> bytes) noexcept;

  /// Copies up to `max` pending bytes into `out`; returns the count
  /// (0 when empty or invalid).
  std::size_t pop(std::byte* out, std::size_t max) noexcept;

  /// Bytes currently readable (exact for the consumer, a lower bound
  /// for anyone else).
  std::size_t readable() const noexcept;

  /// EOF-equivalent: a closed producer sends no more bytes; a closed
  /// consumer makes every subsequent push fail fast.
  void close_producer() noexcept;
  void close_consumer() noexcept;
  bool producer_closed() const noexcept;
  bool consumer_closed() const noexcept;

 private:
  struct Header {
    std::uint64_t magic = 0;
    std::uint64_t capacity = 0;
    /// Consumer position: total bytes ever popped. Own cache line so
    /// producer stores never false-share with consumer loads.
    alignas(64) std::atomic<std::uint64_t> head;
    /// Producer position: total bytes ever pushed.
    alignas(64) std::atomic<std::uint64_t> tail;
    /// Closed bits (the "generation" word): bit 0 = producer closed,
    /// bit 1 = consumer closed.
    alignas(64) std::atomic<std::uint32_t> closed;
  };
  static constexpr std::uint64_t kMagic = 0x67706970'72696e67ULL;  // "gpiprin g"
  static constexpr std::uint32_t kProducerClosed = 1u << 0;
  static constexpr std::uint32_t kConsumerClosed = 1u << 1;

  Header* header_ = nullptr;
  std::byte* data_ = nullptr;
};

/// One anonymous shared mapping holding a ring for every ordered
/// (from, to) worker pair — including the diagonal, so a self-hop can
/// bypass the parent too. Construct in the parent before forking; the
/// mapping is inherited by every child and each process munmaps its own
/// view on destruction/exit. Throws std::runtime_error if mmap fails
/// (callers treat that as "run without rings").
class ShmRingMesh {
 public:
  ShmRingMesh() = default;
  ShmRingMesh(std::size_t nodes, std::size_t ring_capacity);
  ~ShmRingMesh();

  ShmRingMesh(ShmRingMesh&& other) noexcept { *this = std::move(other); }
  ShmRingMesh& operator=(ShmRingMesh&& other) noexcept;
  ShmRingMesh(const ShmRingMesh&) = delete;
  ShmRingMesh& operator=(const ShmRingMesh&) = delete;

  bool valid() const noexcept { return base_ != nullptr; }
  std::size_t nodes() const noexcept { return nodes_; }

  /// The ring carrying bytes from worker `from` to worker `to`.
  ShmRing ring(std::size_t from, std::size_t to) const;

 private:
  void* base_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  std::size_t nodes_ = 0;
  std::size_t slot_bytes_ = 0;
};

}  // namespace gridpipe::proc
