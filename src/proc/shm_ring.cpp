#include "proc/shm_ring.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <system_error>

#include <sys/mman.h>

namespace gridpipe::proc {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

std::size_t ShmRing::region_bytes(std::size_t capacity) {
  return round_up(sizeof(Header), kAlign) + capacity;
}

ShmRing ShmRing::create(void* region, std::size_t capacity) {
  // Placement-new the header so the atomics start life properly
  // constructed (the mapping arrives zeroed, but formally constructing
  // them is what makes the later loads defined behavior).
  auto* header = ::new (region) Header;
  header->capacity = capacity;
  header->head.store(0, std::memory_order_relaxed);
  header->tail.store(0, std::memory_order_relaxed);
  header->closed.store(0, std::memory_order_relaxed);
  header->magic = kMagic;
  ShmRing ring;
  ring.header_ = header;
  ring.data_ = static_cast<std::byte*>(region) + round_up(sizeof(Header), kAlign);
  return ring;
}

ShmRing ShmRing::attach(void* region) {
  auto* header = static_cast<Header*>(region);
  if (header->magic != kMagic) return ShmRing{};
  ShmRing ring;
  ring.header_ = header;
  ring.data_ = static_cast<std::byte*>(region) + round_up(sizeof(Header), kAlign);
  return ring;
}

std::size_t ShmRing::capacity() const noexcept {
  return header_ ? static_cast<std::size_t>(header_->capacity) : 0;
}

bool ShmRing::push(std::span<const std::byte> bytes) noexcept {
  if (!header_) return false;
  const auto cap = static_cast<std::size_t>(header_->capacity);
  if (bytes.size() > cap) return false;
  if (header_->closed.load(std::memory_order_acquire) & kConsumerClosed) {
    return false;
  }
  const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  if (cap - static_cast<std::size_t>(tail - head) < bytes.size()) {
    return false;  // would overflow: all-or-nothing, caller falls back
  }
  if (!bytes.empty()) {
    const std::size_t pos = static_cast<std::size_t>(tail % cap);
    const std::size_t first = std::min(bytes.size(), cap - pos);
    std::memcpy(data_ + pos, bytes.data(), first);
    if (first < bytes.size()) {
      std::memcpy(data_, bytes.data() + first, bytes.size() - first);
    }
  }
  header_->tail.store(tail + bytes.size(), std::memory_order_release);
  return true;
}

std::size_t ShmRing::pop(std::byte* out, std::size_t max) noexcept {
  if (!header_ || max == 0) return 0;
  const auto cap = static_cast<std::size_t>(header_->capacity);
  const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  const std::size_t n =
      std::min(max, static_cast<std::size_t>(tail - head));
  if (n == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(head % cap);
  const std::size_t first = std::min(n, cap - pos);
  std::memcpy(out, data_ + pos, first);
  if (first < n) std::memcpy(out + first, data_, n - first);
  header_->head.store(head + n, std::memory_order_release);
  return n;
}

std::size_t ShmRing::readable() const noexcept {
  if (!header_) return 0;
  const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  return static_cast<std::size_t>(tail - head);
}

void ShmRing::close_producer() noexcept {
  if (header_) {
    header_->closed.fetch_or(kProducerClosed, std::memory_order_release);
  }
}

void ShmRing::close_consumer() noexcept {
  if (header_) {
    header_->closed.fetch_or(kConsumerClosed, std::memory_order_release);
  }
}

bool ShmRing::producer_closed() const noexcept {
  return header_ && (header_->closed.load(std::memory_order_acquire) &
                     kProducerClosed) != 0;
}

bool ShmRing::consumer_closed() const noexcept {
  return header_ && (header_->closed.load(std::memory_order_acquire) &
                     kConsumerClosed) != 0;
}

ShmRingMesh::ShmRingMesh(std::size_t nodes, std::size_t ring_capacity) {
  if (nodes == 0) return;
  // Sub-frame capacities would make every push fall back; keep the ring
  // able to hold at least one minimal frame so a tiny knob value still
  // means "a very shallow ring", not "a dead one". (Tests use tiny
  // capacities deliberately to force the fallback path.)
  slot_bytes_ = round_up(ShmRing::region_bytes(ring_capacity), kAlign);
  nodes_ = nodes;
  mapped_bytes_ = slot_bytes_ * nodes * nodes;
  void* base = ::mmap(nullptr, mapped_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    nodes_ = 0;
    slot_bytes_ = 0;
    mapped_bytes_ = 0;
    throw std::runtime_error("ShmRingMesh: mmap: " +
                             std::generic_category().message(err));
  }
  base_ = base;
  for (std::size_t from = 0; from < nodes; ++from) {
    for (std::size_t to = 0; to < nodes; ++to) {
      ShmRing::create(static_cast<std::byte*>(base_) +
                          (from * nodes + to) * slot_bytes_,
                      ring_capacity);
    }
  }
}

ShmRingMesh::~ShmRingMesh() {
  if (base_) ::munmap(base_, mapped_bytes_);
}

ShmRingMesh& ShmRingMesh::operator=(ShmRingMesh&& other) noexcept {
  if (this != &other) {
    if (base_) ::munmap(base_, mapped_bytes_);
    base_ = other.base_;
    mapped_bytes_ = other.mapped_bytes_;
    nodes_ = other.nodes_;
    slot_bytes_ = other.slot_bytes_;
    other.base_ = nullptr;
    other.mapped_bytes_ = 0;
    other.nodes_ = 0;
    other.slot_bytes_ = 0;
  }
  return *this;
}

ShmRing ShmRingMesh::ring(std::size_t from, std::size_t to) const {
  if (!base_ || from >= nodes_ || to >= nodes_) return ShmRing{};
  return ShmRing::attach(static_cast<std::byte*>(base_) +
                         (from * nodes_ + to) * slot_bytes_);
}

}  // namespace gridpipe::proc
