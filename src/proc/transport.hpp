#pragma once
// FrameSocket — one end of a Unix-domain stream socket carrying
// comm::wire frames. This is the proc runtime's transport primitive:
// the parent holds one FrameSocket per forked worker, each child holds
// the opposite end of its pair.
//
// Two usage modes on the same class:
//  * Blocking (the child side): send_frame / send_buffer / recv_frame
//    loop over partial reads and writes until a whole frame moved
//    (send_buffer also tolerates a nonblocking fd by poll-waiting on
//    EAGAIN, so a child that multiplexes socket + ring can share it).
//  * Non-blocking buffered (the parent side): queue_frame/queue_buffer
//    stage per-frame buffers in an outbound deque, flush_some writes a
//    whole train of them with one writev(2) (partial writes resume
//    mid-buffer), pump_reads + next_frame/next_frame_view drain what
//    has arrived. The parent multiplexes all children with poll(2), so
//    it must never block on one child while another has data — and
//    buffering outbound writes is what breaks the classic pipe
//    deadlock (parent blocked writing to a full child socket while
//    that child is blocked writing to the parent).
//
// Zero-copy hot path: attach a comm::wire::BufferPool with set_pool()
// and the socket recycles fully-sent outbound buffers into it; callers
// compose frames into pooled buffers (begin_frame/end_frame) and hand
// them over with queue_buffer/send_buffer, so the steady state moves
// frames without allocating.
//
// All writes use MSG_NOSIGNAL: a worker that died mid-run must surface
// as a recoverable "peer gone" return, not a process-killing SIGPIPE.

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "comm/wire.hpp"

namespace gridpipe::proc {

class FrameSocket {
 public:
  FrameSocket() = default;
  /// Takes ownership of a connected stream-socket fd.
  explicit FrameSocket(int fd) : fd_(fd) {}
  ~FrameSocket() { close(); }

  FrameSocket(FrameSocket&& other) noexcept { *this = std::move(other); }
  FrameSocket& operator=(FrameSocket&& other) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  /// A connected pair (socketpair AF_UNIX SOCK_STREAM). Throws
  /// std::runtime_error on resource exhaustion.
  static std::pair<FrameSocket, FrameSocket> make_pair();

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  void set_nonblocking(bool on);

  /// Recycle fully-sent outbound buffers into `pool` (nullptr: just
  /// free them). The pool must outlive the socket's sends.
  void set_pool(comm::wire::BufferPool* pool) noexcept { pool_ = pool; }

  // ------------------------------------------------- blocking (child)

  /// Writes one whole frame; retries partial writes and EINTR, and
  /// poll-waits on EAGAIN if the fd is nonblocking. False if the peer
  /// is gone (EPIPE/ECONNRESET); throws on other errors.
  bool send_frame(const comm::wire::Frame& frame);

  /// Writes a pre-composed buffer of one or more whole frames the same
  /// way, then recycles it into the pool. This is the child's batched
  /// send: one syscall per train (e.g. speed-obs + result).
  bool send_buffer(comm::wire::Bytes buffer);

  /// Next frame, blocking until one is complete. nullopt on orderly EOF
  /// or peer reset; throws std::invalid_argument on malformed bytes.
  std::optional<comm::wire::Frame> recv_frame();

  // --------------------------------------- non-blocking (parent side)

  /// Stages a frame in the outbound queue (no syscall). Composes into a
  /// pooled buffer when a pool is attached.
  void queue_frame(const comm::wire::Frame& frame);

  /// Stages a pre-composed buffer of whole frames (no copy, no syscall).
  void queue_buffer(comm::wire::Bytes buffer);

  /// Writes as much buffered output as the socket accepts right now —
  /// a train of queued buffers per writev(2), resuming partial writes.
  /// False if the peer is gone; true otherwise (even if bytes remain).
  bool flush_some();

  /// Buffered bytes not yet accepted by the kernel (poll for POLLOUT
  /// while nonzero).
  std::size_t pending_out() const noexcept { return pending_bytes_; }

  /// Reads whatever is available without blocking. Returns false on
  /// EOF/reset (peer gone), true otherwise.
  bool pump_reads();

  /// Complete frames accumulated by pump_reads / recv_frame. Throws
  /// std::invalid_argument on malformed bytes.
  std::optional<comm::wire::Frame> next_frame() { return reader_.next(); }
  /// Zero-copy variant; the view is invalidated by the next pump_reads
  /// or recv_frame (they feed the reader).
  std::optional<comm::wire::FrameView> next_frame_view() {
    return reader_.next_view();
  }

 private:
  void recycle(comm::wire::Bytes&& buffer);
  /// Marks `n` outbound bytes as sent, recycling completed buffers.
  void advance_out(std::size_t n);

  int fd_ = -1;
  comm::wire::FrameReader reader_;
  std::deque<comm::wire::Bytes> out_;
  std::size_t front_sent_ = 0;     ///< sent prefix of out_.front()
  std::size_t pending_bytes_ = 0;  ///< total unsent bytes across out_
  comm::wire::BufferPool* pool_ = nullptr;
};

}  // namespace gridpipe::proc
