#pragma once
// FrameSocket — one end of a Unix-domain stream socket carrying
// comm::wire frames. This is the proc runtime's transport primitive:
// the parent holds one FrameSocket per forked worker, each child holds
// the opposite end of its pair.
//
// Two usage modes on the same class:
//  * Blocking (the child side): send_frame / recv_frame loop over
//    partial reads and writes until a whole frame moved.
//  * Non-blocking buffered (the parent side): queue_frame stages bytes
//    in an outbound buffer, flush_some writes what the socket accepts,
//    pump_reads + next_frame drain what has arrived. The parent
//    multiplexes all children with poll(2), so it must never block on
//    one child while another has data — and buffering outbound writes
//    is what breaks the classic pipe deadlock (parent blocked writing
//    to a full child socket while that child is blocked writing to the
//    parent).
//
// All writes use MSG_NOSIGNAL: a worker that died mid-run must surface
// as a recoverable "peer gone" return, not a process-killing SIGPIPE.

#include <cstddef>
#include <optional>
#include <utility>

#include "comm/wire.hpp"

namespace gridpipe::proc {

class FrameSocket {
 public:
  FrameSocket() = default;
  /// Takes ownership of a connected stream-socket fd.
  explicit FrameSocket(int fd) : fd_(fd) {}
  ~FrameSocket() { close(); }

  FrameSocket(FrameSocket&& other) noexcept { *this = std::move(other); }
  FrameSocket& operator=(FrameSocket&& other) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  /// A connected pair (socketpair AF_UNIX SOCK_STREAM). Throws
  /// std::runtime_error on resource exhaustion.
  static std::pair<FrameSocket, FrameSocket> make_pair();

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  void set_nonblocking(bool on);

  // ------------------------------------------------- blocking (child)

  /// Writes one whole frame; retries partial writes and EINTR. False if
  /// the peer is gone (EPIPE/ECONNRESET); throws on other errors.
  bool send_frame(const comm::wire::Frame& frame);

  /// Next frame, blocking until one is complete. nullopt on orderly EOF
  /// or peer reset; throws std::invalid_argument on malformed bytes.
  std::optional<comm::wire::Frame> recv_frame();

  // --------------------------------------- non-blocking (parent side)

  /// Stages a frame in the outbound buffer (no syscall).
  void queue_frame(const comm::wire::Frame& frame);

  /// Writes as much buffered output as the socket accepts right now.
  /// False if the peer is gone; true otherwise (even if bytes remain).
  bool flush_some();

  /// Buffered bytes not yet accepted by the kernel (poll for POLLOUT
  /// while nonzero).
  std::size_t pending_out() const noexcept {
    return out_.size() - out_sent_;
  }

  /// Reads whatever is available without blocking. Returns false on
  /// EOF/reset (peer gone), true otherwise.
  bool pump_reads();

  /// Complete frames accumulated by pump_reads / recv_frame. Throws
  /// std::invalid_argument on malformed bytes.
  std::optional<comm::wire::Frame> next_frame() { return reader_.next(); }

 private:
  int fd_ = -1;
  comm::wire::FrameReader reader_;
  comm::wire::Bytes out_;
  std::size_t out_sent_ = 0;
};

}  // namespace gridpipe::proc
