#include "proc/process_executor.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <system_error>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "proc/child.hpp"
#include "util/logging.hpp"

namespace gridpipe::proc {

namespace {

using comm::wire::FrameKind;
using comm::wire::FrameView;

std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    std::string out = "signal " + std::to_string(sig);
#if defined(__GLIBC__) && (__GLIBC__ > 2 || __GLIBC_MINOR__ >= 32)
    // sigdescr_np is the thread-safe strsignal (no shared static buffer).
    if (const char* name = ::sigdescr_np(sig)) {
      out += std::string(" (") + name + ")";
    }
#endif
    return out;
  }
  return "status " + std::to_string(status);
}

/// strerror without the shared-static-buffer thread hazard.
std::string describe_errno(int err) {
  return std::generic_category().message(err);
}

}  // namespace

ProcessExecutor::ProcessExecutor(const grid::Grid& grid,
                                 std::vector<core::DistStage> stages,
                                 sched::Mapping initial_mapping,
                                 ProcExecutorConfig config)
    : grid_(grid),
      stages_(std::move(stages)),
      initial_mapping_(std::move(initial_mapping)),
      config_(config) {
  if (stages_.empty()) {
    throw std::invalid_argument("ProcessExecutor: no stages");
  }
  initial_mapping_.validate(grid_.num_nodes());
  if (initial_mapping_.num_stages() != stages_.size()) {
    throw std::invalid_argument("ProcessExecutor: mapping mismatch");
  }
  if (config_.time_scale <= 0.0) {
    throw std::invalid_argument("ProcessExecutor: time_scale <= 0");
  }
  if (config_.window == 0) {
    config_.window = std::max<std::size_t>(4, 2 * stages_.size());
  }
  start_ = std::chrono::steady_clock::now();
  profile_ = profile();
  obs_metrics_.bind(config_.obs.metrics);
  // The forensic rings must exist before any fork (stream_begin), so the
  // children's lanes land in pages the parent keeps. mmap failure means
  // running without a flight recorder, never failing the run.
  try {
    flight_ = obs::FlightRecorder(grid_.num_nodes() + 1,
                                  config_.flight_events);
  } catch (const std::runtime_error&) {
    flight_ = obs::FlightRecorder{};
  }
  ctl_flight_ = flight_.ring(0);
  controller_ = make_controller();
}

ProcessExecutor::~ProcessExecutor() {
  if (stream_active_) {
    try {
      stream_close();
      stream_finish();
    } catch (...) {
      // Destructor best-effort teardown; kill_fleet below reaps anything
      // the failed finish left behind.
    }
  }
  kill_fleet();
}

std::unique_ptr<control::AdaptationController>
ProcessExecutor::make_controller() {
  return std::make_unique<control::AdaptationController>(
      grid_, profile_, config_.adapt,
      static_cast<control::AdaptationHost&>(*this),
      control::AdaptationController::Mode::kPolicy, config_.obs);
}

sched::PipelineProfile ProcessExecutor::profile() const {
  return core::profile_from_stages(stages_);
}

double ProcessExecutor::virtual_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
             .count() /
         config_.time_scale;
}

sched::Mapping ProcessExecutor::deployed_mapping() const {
  return controller_mapping_;
}

void ProcessExecutor::record_probes(double) {
  // Observations arrive as kSpeedObs frames; nothing to probe here.
}

void ProcessExecutor::apply_remap(const sched::Mapping& to,
                                  double pause_virtual) {
  const double vnow = virtual_now();
  metrics_.on_remap(vnow, pause_virtual, controller_mapping_.to_string(),
                    to.to_string());
  ctl_flight_.record(obs::FlightKind::kRemap, vnow);
  {
    util::MutexLock lock(status_mutex_);
    status_mapping_ = to.to_string();
  }
  controller_mapping_ = to;
  controller_router_.reset(stages_.size());
  const Bytes wire = comm::wire::encode_mapping(controller_mapping_);
  for (std::size_t node = 0; node < workers_.size(); ++node) {
    if (!workers_[node].sock.valid()) continue;  // down; respawn re-syncs it
    workers_[node].sock.queue_frame(
        {FrameKind::kRemap, static_cast<std::uint32_t>(node), wire});
    if (!workers_[node].sock.flush_some()) on_worker_lost(node);
  }
}

void ProcessExecutor::spawn_worker(std::size_t node,
                                   std::uint32_t incarnation) {
  auto [parent_end, child_end] = FrameSocket::make_pair();
  const int pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    throw std::runtime_error(std::string("ProcessExecutor: fork: ") +
                             describe_errno(err));
  }
  if (pid == 0) {
    // Child: drop every parent-side fd inherited from the fork (earlier
    // spawns' sockets plus our own pair's parent end), then run the
    // worker loop. The stages and the grid are address-space copies —
    // free via fork, never serialized; the ring mesh is MAP_SHARED, so
    // it is the same physical memory in every process. (Closing a
    // sibling's parent-side socket recycles its queued buffers into the
    // child's *copy* of the pool — harmless, and the pool's mutex is
    // only ever taken by the forking thread, so it cannot be
    // mid-operation here.)
    for (Worker& w : workers_) w.sock.close();
    parent_end.close();
    // Keep our own doorbell read end plus every write end; siblings'
    // read ends are theirs alone.
    for (std::size_t i = 0; i < bells_.size(); ++i) {
      if (i != node && bells_[i][0] >= 0) ::close(bells_[i][0]);
    }
    ChildContext ctx;
    ctx.node = node;
    ctx.grid = &grid_;
    ctx.stages = &stages_;
    // A respawned worker boots with the routing table as deployed *now*;
    // at initial spawn controller_mapping_ == initial_mapping_.
    ctx.initial_mapping = controller_mapping_;
    ctx.time_scale = config_.time_scale;
    ctx.emulate_compute = config_.emulate_compute;
    ctx.telemetry = config_.obs.any();
    ctx.start = start_;
    ctx.flight = flight_.ring(1 + node);
    ctx.health_interval = config_.health_interval;
    if (config_.recovery.faults.any()) ctx.faults = &config_.recovery.faults;
    ctx.incarnation = incarnation;
    if (rings_.valid()) {
      ctx.rings = &rings_;
      ctx.doorbell_rd = bells_[node][0];
      ctx.doorbell_wr = &bell_wr_;
    }
    run_child_loop(std::move(child_end), ctx);  // never returns
  }
  child_end.close();
  parent_end.set_nonblocking(true);
  parent_end.set_pool(&pool_);
  if (node < workers_.size()) {
    workers_[node].pid = pid;
    workers_[node].sock = std::move(parent_end);
  } else {
    workers_.push_back({pid, std::move(parent_end)});
  }
}

void ProcessExecutor::close_parent_bells() noexcept {
  for (auto& bell : bells_) {
    if (bell[0] >= 0) ::close(bell[0]);
    if (bell[1] >= 0) ::close(bell[1]);
  }
  bells_.clear();
  bell_wr_.clear();
}

void ProcessExecutor::spawn_fleet() {
  const std::size_t num_nodes = grid_.num_nodes();

  // Shared-memory fast path: map the ring mesh and create the doorbell
  // pipes *before* any fork, so every child inherits the same pages and
  // fds. Setup failure (mmap or pipe exhaustion) just disables the fast
  // path — the socket relay carries everything.
  if (config_.shm_ring) {
    try {
      rings_ = ShmRingMesh(num_nodes, config_.shm_ring_bytes);
    } catch (const std::runtime_error&) {
      rings_ = ShmRingMesh{};
    }
  }
  if (rings_.valid()) {
    bells_.assign(num_nodes, {-1, -1});
    bool ok = true;
    for (std::size_t i = 0; i < num_nodes && ok; ++i) {
      ok = ::pipe2(bells_[i].data(), O_NONBLOCK) == 0;
    }
    if (ok) {
      bell_wr_.reserve(num_nodes);
      for (auto& bell : bells_) bell_wr_.push_back(bell[1]);
    } else {
      close_parent_bells();
      rings_ = ShmRingMesh{};
    }
  }

  workers_.reserve(num_nodes);
  for (grid::NodeId node = 0; node < num_nodes; ++node) {
    try {
      spawn_worker(node, 0);
    } catch (...) {
      close_parent_bells();
      kill_fleet();
      throw;
    }
  }
  // Without recovery the doorbells belong entirely to the children now;
  // with it the parent keeps them so a respawned child can inherit its
  // read end and every sibling's write end (closed at stream teardown).
  if (!recovery_on()) close_parent_bells();

  {
    util::MutexLock lock(status_mutex_);
    worker_pids_.clear();
    for (const Worker& w : workers_) worker_pids_.push_back(w.pid);
    health_.reset(num_nodes, virtual_now());
  }
}

void ProcessExecutor::admit(grid::NodeId dst, std::uint64_t index,
                            Bytes payload) {
  const double vnow = virtual_now();
  // Journal before the bytes can leave: if the first hop dies with the
  // frame queued, the entry is what brings the item back.
  if (recovery_on()) {
    journal_.admit(index, payload, vnow);
    journal_live_.store(journal_.live(), std::memory_order_relaxed);
  }
  // Compose [frame header][task header][payload] into one pooled buffer.
  Bytes wire = pool_.acquire();
  const std::size_t off = comm::wire::begin_frame(
      wire, FrameKind::kTask, static_cast<std::uint32_t>(dst));
  comm::wire::encode_task_header_into(wire, index, 0);
  const std::size_t at = wire.size();
  wire.resize(at + payload.size());
  if (!payload.empty()) {
    std::memcpy(wire.data() + at, payload.data(), payload.size());
  }
  comm::wire::end_frame(wire, off);
  workers_[dst].sock.queue_buffer(std::move(wire));
  pool_.release(std::move(payload));
  admit_time_[index] = vnow;
  obs::record_span(config_.obs.tracer, obs::SpanKind::kAdmit, "admit", vnow,
                   0.0, 0, index);
  ++admitted_;
  ctl_flight_.record(obs::FlightKind::kAdmit, vnow, 0, index);
  const std::uint64_t in_flight = admitted_ - completed_;
  if (in_flight >= config_.window) {
    // The informative credit edge: the window just filled (back-pressure
    // starts here), not every in-flight delta.
    ctl_flight_.record(obs::FlightKind::kCredit, vnow, 0, in_flight,
                       config_.window);
  }
  if (!workers_[dst].sock.flush_some()) on_worker_lost(dst);
}

void ProcessExecutor::handle_frame(std::size_t source,
                                   const FrameView& frame) {
  ctl_flight_.record(obs::FlightKind::kFrameRecv, virtual_now(),
                     static_cast<std::uint32_t>(frame.kind),
                     frame.payload.size());
  {
    util::MutexLock lock(status_mutex_);
    health_.on_frame(source, virtual_now());
  }
  switch (frame.kind) {
    case FrameKind::kTask: {
      // Next-hop relay: the worker picked the destination, the parent
      // only moves the bytes (re-framed into a pooled buffer; the view
      // dies with the next socket read).
      std::size_t dst = frame.node;
      if (dst >= workers_.size()) {
        kill_fleet();
        throw std::runtime_error(
            "ProcessExecutor: relay to nonexistent node " +
            std::to_string(dst));
      }
      if (!workers_[dst].sock.valid()) {
        // The sender routed through a stale table into a down node.
        // Re-route to a live replica of the task's stage under the
        // current mapping; when every replica is down (recovery still
        // pending) drop the frame — the journal replays the item once
        // the node's fate is settled, so nothing is lost, and without
        // the drop a dead hop would wedge the relay path.
        const comm::wire::TaskView task =
            comm::wire::decode_task(frame.payload);
        std::optional<std::size_t> alt;
        if (task.stage < controller_mapping_.num_stages()) {
          for (const grid::NodeId r :
               controller_mapping_.replicas(task.stage)) {
            if (worker_up(r)) {
              alt = r;
              break;
            }
          }
        }
        if (!alt) break;
        dst = *alt;
      }
      Bytes relay = pool_.acquire();
      const std::size_t off = comm::wire::begin_frame(
          relay, frame.kind, static_cast<std::uint32_t>(dst));
      const std::size_t at = relay.size();
      relay.resize(at + frame.payload.size());
      if (!frame.payload.empty()) {
        std::memcpy(relay.data() + at, frame.payload.data(),
                    frame.payload.size());
      }
      comm::wire::end_frame(relay, off);
      workers_[dst].sock.queue_buffer(std::move(relay));
      if (!workers_[dst].sock.flush_some()) on_worker_lost(dst);
      break;
    }
    case FrameKind::kResult: {
      const comm::wire::TaskView task = comm::wire::decode_task(frame.payload);
      const std::uint64_t item = task.item;
      const double vnow = virtual_now();
      if (recovery_on()) {
        if (!journal_.retire(item)) {
          // Already delivered once: a replay raced the original past the
          // crash. Exactly-once delivery = drop the duplicate here.
          ctl_flight_.record(obs::FlightKind::kDedup, vnow, 0, item);
          dedups_.fetch_add(1, std::memory_order_relaxed);
          if (obs_metrics_.items_deduped) obs_metrics_.items_deduped->add(1);
          break;
        }
        journal_live_.store(journal_.live(), std::memory_order_relaxed);
        note_retired(item, vnow);
      }
      // The output crosses the API boundary, so it owns its bytes.
      Bytes payload(task.payload.begin(), task.payload.end());
      double created_at = 0.0;
      if (auto it = admit_time_.find(item); it != admit_time_.end()) {
        created_at = it->second;
        admit_time_.erase(it);
      }
      metrics_.on_item_completed(item, vnow, created_at);
      ctl_flight_.record(obs::FlightKind::kComplete, vnow, 0, item);
      obs::record_span(config_.obs.tracer, obs::SpanKind::kItem, "item",
                       created_at, vnow - created_at, 0, item);
      if (obs_metrics_.items_completed) {
        obs_metrics_.items_completed->add(1);
        obs_metrics_.item_latency->record(vnow - created_at);
      }
      ++completed_;
      {
        util::MutexLock lock(stream_mutex_);
        out_.insert(item, std::move(payload));
        if (config_.obs.tracer) completed_at_.emplace(item, vnow);
      }
      break;
    }
    case FrameKind::kSpeedObs:
      controller_->record_observation(
          {monitor::SensorKind::kNodeSpeed,
           static_cast<std::uint32_t>(source), 0},
          comm::wire::decode_f64(frame.payload));
      break;
    case FrameKind::kTelemetry:
      // Worker-batched spans land on the parent's sinks; the shared
      // steady_clock start means no time-base translation is needed.
      obs::apply_telemetry(obs::decode_telemetry(frame.payload), config_.obs);
      break;
    case FrameKind::kHealth: {
      const obs::HealthRecord record = obs::decode_health(frame.payload);
      if (obs_metrics_.heartbeats) obs_metrics_.heartbeats->add(1);
      util::MutexLock lock(status_mutex_);
      health_.on_health(record, virtual_now());
      break;
    }
    case FrameKind::kRemap:
    case FrameKind::kShutdown:
      break;  // worker-bound kinds; ignore if misdelivered
  }
}

void ProcessExecutor::event_loop() {
  const double epoch = config_.adapt.epoch;
  double next_epoch = epoch;

  std::vector<pollfd> fds(workers_.size());
  for (;;) {
    // Recovery housekeeping first: supervisor decisions for fresh
    // deaths, respawns whose backoff expired, requested arrivals. All
    // three may replan the mapping and re-admit journaled items.
    if (recovery_on()) {
      process_dead_nodes();
      process_respawns();
      process_arrivals();
    }
    // Take ownership of freshly pushed items, then admit under the
    // credit window; check end-of-stream under the same lock.
    bool done = false;
    {
      util::MutexLock lock(stream_mutex_);
      while (!incoming_.empty()) {
        pending_.push_back(std::move(incoming_.front()));
        incoming_.pop_front();
      }
      done = closed_ && completed_ == pushed_;
    }
    while (!pending_.empty() && admitted_ - completed_ < config_.window) {
      // Pick the stage-0 destination before dequeueing: when recovery
      // has the picked replica down (respawn pending), hold the item in
      // pending_ instead of queueing bytes to a dead socket. Retry the
      // pick once per live replica so one down replica cannot stall a
      // replicated stage 0.
      grid::NodeId dst = controller_router_.pick(controller_mapping_, 0);
      if (!worker_up(dst)) {
        bool found = false;
        for (std::size_t i = 1; i < controller_mapping_.replica_count(0);
             ++i) {
          dst = controller_router_.pick(controller_mapping_, 0);
          if (worker_up(dst)) {
            found = true;
            break;
          }
        }
        if (!found) break;
      }
      auto entry = std::move(pending_.front());
      pending_.pop_front();
      admit(dst, entry.first, std::move(entry.second));
    }
    if (done) {
      ctl_flight_.record(obs::FlightKind::kClose, virtual_now());
      return;
    }

    // Wait at most until the next adaptation point, capped at 50 ms real
    // either way: nothing wakes poll() on a stream_push/stream_close, so
    // the cap is what bounds the latency of noticing one.
    double wait_real = 0.05;
    if (epoch > 0.0) {
      wait_real = std::clamp((next_epoch - virtual_now()) * config_.time_scale,
                             1e-3, 0.05);
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      fds[i].fd = workers_[i].sock.fd();
      fds[i].events = POLLIN;
      if (workers_[i].sock.pending_out() > 0) fds[i].events |= POLLOUT;
      fds[i].revents = 0;
    }
    const int timeout_ms = std::max(1, static_cast<int>(wait_real * 1e3));
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      kill_fleet();
      throw std::runtime_error(std::string("ProcessExecutor: poll: ") +
                               describe_errno(errno));
    }

    for (std::size_t i = 0; i < workers_.size() && ready > 0; ++i) {
      if (!workers_[i].sock.valid()) continue;  // detached this tick
      if (fds[i].revents & POLLOUT) {
        if (!workers_[i].sock.flush_some()) {
          on_worker_lost(i);
          continue;
        }
      }
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        const bool alive = workers_[i].sock.pump_reads();
        // Drain complete frames first: the final bytes before an EOF may
        // still carry results.
        while (auto frame = workers_[i].sock.next_frame_view()) {
          handle_frame(i, *frame);
        }
        if (!alive) {
          bool still_running = false;
          {
            util::MutexLock lock(stream_mutex_);
            still_running = !(closed_ && completed_ == pushed_);
          }
          if (still_running) on_worker_lost(i);
        }
      }
    }

    // Stall detection: edge-triggered, so a wedged worker logs once when
    // it trips and once when it recovers, not every poll tick.
    if (config_.stall_after > 0.0) {
      const double vnow = virtual_now();
      std::vector<obs::HealthTracker::Transition> edges;
      {
        util::MutexLock lock(status_mutex_);
        edges = health_.check(vnow, config_.stall_after);
      }
      for (const auto& edge : edges) {
        if (edge.stalled) {
          ctl_flight_.record(obs::FlightKind::kStall, vnow, edge.node, 0,
                             std::bit_cast<std::uint64_t>(edge.silent_for));
          if (obs_metrics_.worker_stalls) obs_metrics_.worker_stalls->add(1);
          util::log_warn("gridpipe: worker ", edge.node,
                         edge.no_progress
                             ? " reports a backlog but no progress for "
                             : " silent for ",
                         edge.silent_for, " virtual s");
        } else {
          util::log_info("gridpipe: worker ", edge.node, " recovered");
        }
      }
    }

    if (epoch > 0.0 && virtual_now() >= next_epoch) {
      const control::EpochRecord record = controller_->run_epoch();
      std::uint32_t bits = 0;
      if (record.decided) bits |= 1u;
      if (record.remapped) bits |= 2u;
      ctl_flight_.record(obs::FlightKind::kEpoch, virtual_now(), bits);
      next_epoch += epoch;
    }
  }
}

void ProcessExecutor::controller_main() {
  try {
    event_loop();
    shutdown_fleet();
  } catch (...) {
    {
      util::MutexLock lock(stream_mutex_);
      stream_error_ = std::current_exception();
    }
    kill_fleet();
  }
}

void ProcessExecutor::shutdown_fleet() {
  using namespace std::chrono;
  // A healthy worker exits promptly on kShutdown; the deadline only
  // guards against a wedged one (then: SIGKILL, still reaped).
  const auto deadline = steady_clock::now() + seconds(10);
  for (std::size_t node = 0; node < workers_.size(); ++node) {
    Worker& w = workers_[node];
    if (!w.sock.valid()) continue;  // detached (dead/degraded) under recovery
    w.sock.queue_frame(
        {FrameKind::kShutdown, static_cast<std::uint32_t>(node), {}});
    // Flush the farewell, then drain to EOF so a worker mid-write can
    // finish and exit; everything stays nonblocking + poll'd.
    bool peer_up = true;
    while (peer_up && w.sock.pending_out() > 0) {
      const auto left =
          duration_cast<milliseconds>(deadline - steady_clock::now()).count();
      if (left <= 0) break;
      pollfd pfd{w.sock.fd(), POLLOUT, 0};
      if (::poll(&pfd, 1, static_cast<int>(left)) <= 0) break;
      peer_up = w.sock.flush_some();
    }
    while (peer_up) {
      const auto left =
          duration_cast<milliseconds>(deadline - steady_clock::now()).count();
      if (left <= 0) break;
      pollfd pfd{w.sock.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left)) <= 0) break;
      peer_up = w.sock.pump_reads();
      while (auto frame = w.sock.next_frame()) {
        // Workers flush their final telemetry batch on kShutdown, after
        // the event loop stopped handling frames — apply it here; other
        // stragglers (stray speed observations) are discarded.
        if (frame->kind == FrameKind::kTelemetry && config_.obs.any()) {
          obs::apply_telemetry(obs::decode_telemetry(frame->payload),
                               config_.obs);
        }
      }
    }
    if (peer_up) ::kill(w.pid, SIGKILL);  // deadline hit: wedge insurance
    w.sock.close();
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.pid = -1;
  }
  workers_.clear();
  close_parent_bells();
  rings_ = ShmRingMesh{};  // every child unmapped its own view on exit
}

void ProcessExecutor::kill_fleet() noexcept {
  for (Worker& w : workers_) {
    w.sock.close();
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
  }
  workers_.clear();
  close_parent_bells();
  rings_ = ShmRingMesh{};
}

void ProcessExecutor::fail_run(std::size_t node) {
  int status = 0;
  ::waitpid(workers_[node].pid, &status, 0);
  workers_[node].pid = -1;
  kill_fleet();
  std::string message = "ProcessExecutor: worker for node " +
                        std::to_string(node) + " exited mid-run (" +
                        describe_wait_status(status) + ")";
  // The victim's flight-recorder lane lives in the parent's MAP_SHARED
  // mapping, so its last events survive the death: attach the decoded
  // tail so the crash explains what the worker was doing.
  const std::string tail = flight_.format_tail(1 + node, 32);
  if (!tail.empty()) {
    message += "; last flight events:\n" + tail;
  }
  throw std::runtime_error(message);
}

void ProcessExecutor::fail_lost(std::size_t node, const std::string& why) {
  kill_fleet();
  std::string message = "ProcessExecutor: worker for node " +
                        std::to_string(node) + " lost and not recoverable (" +
                        why + ")";
  const std::string tail = flight_.format_tail(1 + node, 32);
  if (!tail.empty()) {
    message += "; last flight events:\n" + tail;
  }
  throw std::runtime_error(message);
}

// ------------------------------------------------------------- recovery

void ProcessExecutor::on_worker_lost(std::size_t node) {
  if (recovery_on()) {
    mark_worker_dead(node);
  } else {
    fail_run(node);
  }
}

void ProcessExecutor::mark_worker_dead(std::size_t node) {
  Worker& w = workers_[node];
  if (w.pid <= 0 && !w.sock.valid()) return;  // already detached
  const double vnow = virtual_now();
  std::string how = "socket gone";
  if (w.pid > 0) {
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    how = describe_wait_status(status);
    w.pid = -1;
  }
  // Scoped teardown: only this worker's resources. close() recycles its
  // queued outbound buffers into the pool; the fd drops out of the poll
  // set via fd() == -1. The rest of the fleet keeps streaming.
  w.sock.close();
  node_losses_.fetch_add(1, std::memory_order_relaxed);
  if (obs_metrics_.node_losses) obs_metrics_.node_losses->add(1);
  ctl_flight_.record(obs::FlightKind::kDeath, vnow,
                     static_cast<std::uint32_t>(node));
  {
    util::MutexLock lock(status_mutex_);
    if (node < worker_pids_.size()) worker_pids_[node] = -1;
    health_.set_down(node, true);
  }
  const std::string tail = flight_.format_tail(1 + node, 16);
  util::log_warn("gridpipe: worker ", node, " died mid-run (", how,
                 "); recovering",
                 tail.empty() ? "" : "; last flight events:\n" + tail);
  // Open (or extend) the recovery window: everything in flight right now
  // is suspect until delivered, and the clock runs until the last of
  // them lands.
  if (recovering_.empty() && !journal_.empty()) recovery_started_v_ = vnow;
  for (const std::uint64_t seq : journal_.live_seqs()) {
    recovering_.insert(seq);
  }
  dead_nodes_.push_back(node);
}

void ProcessExecutor::process_dead_nodes() {
  while (!dead_nodes_.empty()) {
    const std::size_t node = dead_nodes_.front();
    dead_nodes_.pop_front();
    if (worker_up(node) || node_degraded_[node]) continue;  // stale entry
    const recover::Supervisor::Action action = supervisor_.on_death(node);
    switch (action.kind) {
      case recover::Supervisor::ActionKind::kRespawn: {
        const auto delay = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(action.delay_ms));
        respawn_at_[node] = std::chrono::steady_clock::now() + delay;
        util::log_info("gridpipe: respawning worker ", node, " in ",
                       action.delay_ms, " ms (attempt ",
                       supervisor_.respawns(node), ")");
        break;
      }
      case recover::Supervisor::ActionKind::kDegrade:
        util::log_warn("gridpipe: respawn budget for worker ", node,
                       " exhausted; degrading to the surviving grid");
        degrade_node(node);
        break;
      case recover::Supervisor::ActionKind::kFail:
        fail_lost(node, "respawn budget exhausted, degrade disabled");
    }
  }
}

void ProcessExecutor::process_respawns() {
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t node = 0; node < respawn_at_.size(); ++node) {
    if (!respawn_at_[node] || *respawn_at_[node] > now) continue;
    respawn_at_[node].reset();
    if (respawn_worker(node) && !recovering_.empty()) {
      replay_recovering_items();
    }
  }
}

void ProcessExecutor::process_arrivals() {
  std::vector<std::size_t> requests;
  {
    util::MutexLock lock(stream_mutex_);
    requests.swap(arrivals_);
  }
  for (const std::size_t node : requests) {
    if (node >= workers_.size() || worker_up(node)) continue;
    const bool was_recovering = respawn_at_[node].has_value();
    respawn_at_[node].reset();
    node_degraded_[node] = 0;
    supervisor_.on_arrival(node);
    controller_->on_node_arrival(node);
    if (!respawn_worker(node)) continue;
    run_churn_remap(control::AdaptationTrigger::kNodeArrival,
                    "node " + std::to_string(node) + " joined");
    // An arrival that doubled as the pending respawn still owes the
    // replay; a node growing back after a clean degrade does not (its
    // lost items were already replayed onto the survivors).
    if (was_recovering && !recovering_.empty()) replay_recovering_items();
  }
}

bool ProcessExecutor::respawn_worker(std::size_t node) {
  // Drain residual bytes out of the dead consumer's incoming rings so
  // the replacement's frame readers start frame-aligned: pushes are
  // atomic whole frames, so an *empty* ring is a frame boundary, while
  // whatever the dead incarnation had half-consumed is not.
  if (rings_.valid()) {
    for (std::size_t src = 0; src < grid_.num_nodes(); ++src) {
      ShmRing ring = rings_.ring(src, node);
      if (!ring.valid()) continue;
      std::byte chunk[4096];
      while (ring.pop(chunk, sizeof(chunk)) > 0) {
      }
    }
  }
  const std::uint32_t incarnation = ++incarnation_[node];
  const double vnow = virtual_now();
  // Single-writer handoff on the worker's own flight lane: the old
  // incarnation is dead, the new one not yet forked, so this instant the
  // parent may stamp the lane — the respawn marker then sits between the
  // two lives in the forensic record.
  flight_.ring(1 + node).record(obs::FlightKind::kRespawn, vnow,
                                static_cast<std::uint32_t>(node),
                                incarnation);
  ctl_flight_.record(obs::FlightKind::kRespawn, vnow,
                     static_cast<std::uint32_t>(node), incarnation);
  try {
    spawn_worker(node, incarnation);
  } catch (const std::runtime_error& error) {
    util::log_warn("gridpipe: respawn of worker ", node,
                   " failed: ", error.what());
    dead_nodes_.push_back(node);  // back to the supervisor (budget ticks)
    return false;
  }
  respawns_.fetch_add(1, std::memory_order_relaxed);
  if (obs_metrics_.respawns) obs_metrics_.respawns->add(1);
  {
    util::MutexLock lock(status_mutex_);
    if (node < worker_pids_.size()) worker_pids_[node] = workers_[node].pid;
    health_.on_respawn(node, virtual_now());
  }
  util::log_info("gridpipe: worker ", node, " respawned (incarnation ",
                 incarnation, ", pid ", workers_[node].pid, ")");
  return true;
}

void ProcessExecutor::degrade_node(std::size_t node) {
  node_degraded_[node] = 1;
  respawn_at_[node].reset();
  controller_->on_node_loss(node);
  if (controller_->nodes_available() == 0) {
    fail_lost(node, "no surviving nodes to degrade onto");
  }
  // Close the consumer side of every ring into the dead node so a
  // straggling producer fails fast to the socket path (where the parent
  // re-routes) instead of filling pages nobody will drain.
  if (rings_.valid()) {
    for (std::size_t src = 0; src < grid_.num_nodes(); ++src) {
      ShmRing ring = rings_.ring(src, node);
      if (ring.valid()) ring.close_consumer();
    }
  }
  run_churn_remap(control::AdaptationTrigger::kNodeLoss,
                  "node " + std::to_string(node) + " lost");
  if (!recovering_.empty()) replay_recovering_items();
}

void ProcessExecutor::run_churn_remap(control::AdaptationTrigger why,
                                      std::string event) {
  const control::EpochRecord record =
      controller_->run_churn_epoch(why, std::move(event));
  std::uint32_t bits = 1u;  // churn epochs always decide
  if (record.remapped) bits |= 2u;
  ctl_flight_.record(obs::FlightKind::kEpoch, virtual_now(), bits);
  // Executor-side hard guard, independent of mapper behavior: if the
  // deployed mapping still touches a degraded node (a mapper is free to
  // ignore zeroed speeds), force a block layout over the survivors.
  bool touches_degraded = false;
  for (std::size_t s = 0;
       s < controller_mapping_.num_stages() && !touches_degraded; ++s) {
    for (const grid::NodeId r : controller_mapping_.replicas(s)) {
      if (node_degraded_[r] != 0) {
        touches_degraded = true;
        break;
      }
    }
  }
  if (touches_degraded) {
    std::vector<grid::NodeId> survivors;
    for (grid::NodeId n = 0; n < grid_.num_nodes(); ++n) {
      if (node_degraded_[n] == 0) survivors.push_back(n);
    }
    std::vector<grid::NodeId> stage_to_node(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      stage_to_node[s] =
          survivors[s * survivors.size() / stages_.size()];
    }
    apply_remap(sched::Mapping(std::move(stage_to_node)), 0.0);
  }
}

void ProcessExecutor::replay_recovering_items() {
  // Re-admit, in seq order, every item that was in flight at a death and
  // is still journaled. At-least-once: an item that actually survived on
  // a live worker will come back twice and the dedup retire drops the
  // loser. Replays bypass the credit window on purpose — these items
  // already held credits when they were lost.
  std::vector<std::uint64_t> seqs(recovering_.begin(), recovering_.end());
  for (const std::uint64_t seq : seqs) {
    const recover::ReplayJournal::Entry* entry = journal_.find(seq);
    if (entry == nullptr) continue;  // delivered while we were deciding
    grid::NodeId dst = controller_router_.pick(controller_mapping_, 0);
    if (!worker_up(dst)) {
      bool found = false;
      for (std::size_t i = 1; i < controller_mapping_.replica_count(0);
           ++i) {
        dst = controller_router_.pick(controller_mapping_, 0);
        if (worker_up(dst)) {
          found = true;
          break;
        }
      }
      // Another node is down with its own recovery pending; that
      // recovery ends in a replay too, so deferring is safe.
      if (!found) return;
    }
    Bytes wire = pool_.acquire();
    const std::size_t off = comm::wire::begin_frame(
        wire, FrameKind::kTask, static_cast<std::uint32_t>(dst));
    comm::wire::encode_task_header_into(wire, seq, 0);
    const std::size_t at = wire.size();
    wire.resize(at + entry->payload.size());
    if (!entry->payload.empty()) {
      std::memcpy(wire.data() + at, entry->payload.data(),
                  entry->payload.size());
    }
    comm::wire::end_frame(wire, off);
    journal_.note_replay(seq);
    replays_.fetch_add(1, std::memory_order_relaxed);
    if (obs_metrics_.items_replayed) obs_metrics_.items_replayed->add(1);
    ctl_flight_.record(obs::FlightKind::kReplay, virtual_now(), 0, seq);
    workers_[dst].sock.queue_buffer(std::move(wire));
    if (!workers_[dst].sock.flush_some()) {
      on_worker_lost(dst);
      return;  // the new death's recovery will finish the replay
    }
  }
}

void ProcessExecutor::note_retired(std::uint64_t item, double vnow) {
  if (recovering_.empty()) return;
  recovering_.erase(item);
  if (!recovering_.empty()) return;
  const double took = vnow - recovery_started_v_;
  recovery_times_.push_back(took);
  if (obs_metrics_.recovery_time) obs_metrics_.recovery_time->record(took);
  util::log_info("gridpipe: recovery window closed after ", took,
                 " virtual s");
}

void ProcessExecutor::request_arrival(std::size_t node) {
  if (!recovery_on()) {
    throw std::logic_error(
        "ProcessExecutor: request_arrival needs recovery enabled");
  }
  if (node >= grid_.num_nodes()) {
    throw std::invalid_argument("ProcessExecutor: arrival for unknown node");
  }
  util::MutexLock lock(stream_mutex_);
  arrivals_.push_back(node);
}

std::string ProcessExecutor::flight_tail(std::size_t lane,
                                         std::size_t max_events) const {
  return flight_.format_tail(lane, max_events);
}

void ProcessExecutor::stream_begin() {
  if (stream_active_) {
    throw std::logic_error("ProcessExecutor: a stream is already active");
  }
  if (!workers_.empty()) {
    throw std::logic_error("ProcessExecutor: previous fleet still live");
  }

  // Fresh controller per stream: the virtual clock restarts at 0, so gate
  // snapshots, hysteresis streaks and registry timestamps from a
  // previous stream would all be stale.
  controller_ = make_controller();

  {
    util::MutexLock lock(stream_mutex_);
    incoming_.clear();
    out_.reset();
    completed_at_.clear();
    pushed_ = 0;
    closed_ = false;
    stream_error_ = nullptr;
    arrivals_.clear();
  }
  pending_.clear();
  admit_time_.clear();
  admitted_ = 0;
  completed_ = 0;
  journal_.clear();
  supervisor_.reset(config_.recovery.respawn, grid_.num_nodes());
  dead_nodes_.clear();
  respawn_at_.assign(grid_.num_nodes(), std::nullopt);
  incarnation_.assign(grid_.num_nodes(), 0);
  node_degraded_.assign(grid_.num_nodes(), 0);
  recovering_.clear();
  recovery_started_v_ = 0.0;
  recovery_times_.clear();
  node_losses_ = 0;
  respawns_ = 0;
  replays_ = 0;
  dedups_ = 0;
  journal_live_ = 0;
  controller_mapping_ = initial_mapping_;
  controller_router_.reset(stages_.size());
  metrics_ = sim::SimMetrics{};  // time series restart with the clock
  start_ = std::chrono::steady_clock::now();
  initial_mapping_str_ = initial_mapping_.to_string();
  {
    util::MutexLock lock(status_mutex_);
    status_mapping_ = initial_mapping_str_;
  }
  stream_active_ = true;

  // Fork the fleet first, start our own controller thread second: the
  // runtime never forks while one of its own threads is live.
  spawn_fleet();
  controller_thread_ = std::thread([this] { controller_main(); });
}

void ProcessExecutor::stream_push(Bytes item) {
  util::MutexLock lock(stream_mutex_);
  if (!stream_active_ || closed_) {
    throw std::logic_error("ProcessExecutor: push on a closed stream");
  }
  if (obs_metrics_.items_pushed) obs_metrics_.items_pushed->add(1);
  incoming_.emplace_back(pushed_++, std::move(item));
}

std::optional<Bytes> ProcessExecutor::stream_try_pop() {
  util::MutexLock lock(stream_mutex_);
  if (!out_.ready()) return std::nullopt;
  const std::uint64_t seq = out_.next();
  Bytes out = out_.pop();
  if (config_.obs.tracer) {
    if (auto done = completed_at_.find(seq); done != completed_at_.end()) {
      const double vnow = virtual_now();
      obs::record_span(config_.obs.tracer, obs::SpanKind::kWait, "wait",
                       done->second, vnow - done->second, 0, seq);
      completed_at_.erase(done);
    }
  }
  return out;
}

void ProcessExecutor::stream_close() {
  util::MutexLock lock(stream_mutex_);
  closed_ = true;
}

core::RunReport ProcessExecutor::stream_finish() {
  if (!stream_active_) {
    throw std::logic_error("ProcessExecutor: no active stream to finish");
  }
  {
    util::MutexLock lock(stream_mutex_);
    if (!closed_) {
      throw std::logic_error(
          "ProcessExecutor: stream_close() before stream_finish()");
    }
  }
  controller_thread_.join();
  stream_active_ = false;
  {
    util::MutexLock lock(stream_mutex_);
    if (stream_error_) std::rethrow_exception(stream_error_);
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  core::RunReport report;
  // The controller thread is joined; move the O(items) metric series.
  core::finalize_stream_report(report, completed_, wall, config_.time_scale,
                               std::move(metrics_), controller_->take_epochs(),
                               std::move(initial_mapping_str_),
                               controller_mapping_.to_string());
  report.node_losses = node_losses_.load(std::memory_order_relaxed);
  report.respawns = respawns_.load(std::memory_order_relaxed);
  report.items_replayed = replays_.load(std::memory_order_relaxed);
  report.items_deduped = dedups_.load(std::memory_order_relaxed);
  report.recovery_times = recovery_times_;
  return report;
}

core::RunReport ProcessExecutor::run(std::vector<Bytes> inputs) {
  return core::run_stream_batch(*this, std::move(inputs));
}

util::Json ProcessExecutor::status() const {
  util::Json doc = util::Json::object();
  doc["substrate"] = "process";
  const double vnow = virtual_now();
  doc["virtual_time"] = vnow;
  doc["window"] = static_cast<std::uint64_t>(config_.window);
  const std::uint64_t admitted = admitted_.load(std::memory_order_relaxed);
  const std::uint64_t completed = completed_.load(std::memory_order_relaxed);
  doc["admitted"] = admitted;
  doc["completed"] = completed;
  doc["in_flight"] = admitted - completed;
  {
    util::MutexLock lock(stream_mutex_);
    doc["pushed"] = pushed_;
    doc["popped"] = out_.next();
    doc["closed"] = closed_;
    doc["buffered_out"] = static_cast<std::uint64_t>(out_.buffered());
  }
  if (recovery_on()) {
    util::Json recovery = util::Json::object();
    recovery["node_losses"] = node_losses_.load(std::memory_order_relaxed);
    recovery["respawns"] = respawns_.load(std::memory_order_relaxed);
    recovery["items_replayed"] = replays_.load(std::memory_order_relaxed);
    recovery["items_deduped"] = dedups_.load(std::memory_order_relaxed);
    recovery["journal_live"] = journal_live_.load(std::memory_order_relaxed);
    doc["recovery"] = std::move(recovery);
  }
  {
    util::MutexLock lock(status_mutex_);
    doc["mapping"] = status_mapping_;
    doc["workers"] = health_.to_json(vnow);
    util::Json pids = util::Json::array();
    for (const int pid : worker_pids_) pids.push_back(pid);
    doc["worker_pids"] = std::move(pids);
  }
  return doc;
}

std::vector<int> ProcessExecutor::worker_pids() const {
  util::MutexLock lock(status_mutex_);
  return worker_pids_;
}

}  // namespace gridpipe::proc
