#pragma once
// The worker-process event loop of the proc runtime. Runs in a forked
// child, never returns: every exit path goes through _exit so the child
// skips atexit handlers and duplicated stdio buffers inherited from the
// parent (flushing those twice is the classic fork+stdio bug).
//
// The child inherits everything it needs by fork: the stage functions,
// the grid (for effective_speed emulation), the initial routing table
// and the shared-memory ring mesh are plain copies of the parent's
// address space (the mesh pages are MAP_SHARED, so they are the *same*
// pages) — only live coordination crosses the socket.

#include <chrono>
#include <vector>

#include "core/dist_executor.hpp"  // core::DistStage: the serialized stage contract
#include "grid/grid.hpp"
#include "obs/flight.hpp"
#include "proc/shm_ring.hpp"
#include "proc/transport.hpp"
#include "recover/fault.hpp"
#include "sched/mapping.hpp"

namespace gridpipe::proc {

struct ChildContext {
  grid::NodeId node = 0;  ///< the grid node this process embodies
  const grid::Grid* grid = nullptr;
  const std::vector<core::DistStage>* stages = nullptr;
  sched::Mapping initial_mapping;
  double time_scale = 0.01;
  bool emulate_compute = true;
  /// Buffer per-task spans locally and ship them to the parent as
  /// kTelemetry frames (the parent holds the actual sinks). Because
  /// `start` below is shared across fork, child spans land on the
  /// parent's virtual time base unchanged.
  bool telemetry = false;
  /// The parent's run() start instant; steady_clock is CLOCK_MONOTONIC,
  /// so the copied time_point stays meaningful across fork and every
  /// process derives the same virtual clock.
  std::chrono::steady_clock::time_point start{};
  /// Shared-memory fast path for worker→worker hops (nullptr or an
  /// invalid mesh: every hop relays through the parent socket instead).
  const ShmRingMesh* rings = nullptr;
  /// Read end of this worker's doorbell pipe: a sibling writes one byte
  /// after pushing into a ring bound for us, so the poll loop wakes
  /// without spinning. -1 when rings are off.
  int doorbell_rd = -1;
  /// Write ends of every worker's doorbell, indexed by node.
  const std::vector<int>* doorbell_wr = nullptr;
  /// This worker's flight-recorder lane: a handle into the parent's
  /// MAP_SHARED mapping, so everything recorded here survives the
  /// child's death for the parent's post-mortem. Inert when disabled.
  obs::FlightRing flight;
  /// Virtual seconds between kHealth heartbeats (<= 0: none).
  double health_interval = 5.0;
  /// Fault-injection plan, consulted before each task runs (nullptr:
  /// none). Points into the parent's config; fork copies the pages, so
  /// the pointer stays valid in the child.
  const recover::FaultPlan* faults = nullptr;
  /// Which life of this node's worker this process is (0 = the original
  /// fleet fork; respawns count up). Kill points fire only in life 0 so
  /// a replayed item does not re-kill its replacement.
  std::uint32_t incarnation = 0;
};

/// Child event loop: poll(socket, doorbell) → (remap | task | shutdown),
/// with ring-borne tasks drained ahead of socket frames. Exits 0 on
/// kShutdown or parent EOF, 2 on any internal error (the parent reports
/// the status in its crash diagnostics).
[[noreturn]] void run_child_loop(FrameSocket socket, const ChildContext& ctx);

}  // namespace gridpipe::proc
