#include "comm/communicator.hpp"

#include <stdexcept>

namespace gridpipe::comm {

Communicator::Communicator(int size, const DelayModel* delays,
                           std::function<double()> virtual_now)
    : delays_(delays), virtual_now_(std::move(virtual_now)) {
  if (size <= 0) throw std::invalid_argument("Communicator: size <= 0");
  queues_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    queues_.push_back(std::make_unique<MessageQueue>());
  }
}

Communicator::~Communicator() { shutdown(); }

bool Communicator::send(int from, int to, int tag,
                        std::vector<std::byte> payload) {
  if (from < 0 || from >= size() || to < 0 || to >= size()) {
    throw std::out_of_range("Communicator::send: bad rank");
  }
  if (shutdown_.load()) return false;
  Message message;
  message.source = from;
  message.tag = tag;
  message.deliver_at = Clock::now();
  if (delays_) {
    const double now = virtual_now_ ? virtual_now_() : 0.0;
    message.deliver_at +=
        std::chrono::duration_cast<Clock::duration>(
            delays_->delay(from, to, payload.size(), now));
  }
  message.payload = std::move(payload);
  return queues_[static_cast<std::size_t>(to)]->push(std::move(message));
}

bool Communicator::send_n(int from, int to, int tag,
                          std::vector<std::vector<std::byte>> payloads) {
  if (from < 0 || from >= size() || to < 0 || to >= size()) {
    throw std::out_of_range("Communicator::send_n: bad rank");
  }
  if (shutdown_.load()) return false;
  if (payloads.empty()) return true;
  const auto base = Clock::now();
  const double now = (delays_ && virtual_now_) ? virtual_now_() : 0.0;
  std::vector<Message> batch;
  batch.reserve(payloads.size());
  for (auto& payload : payloads) {
    Message message;
    message.source = from;
    message.tag = tag;
    message.deliver_at = base;
    if (delays_) {
      message.deliver_at += std::chrono::duration_cast<Clock::duration>(
          delays_->delay(from, to, payload.size(), now));
    }
    message.payload = std::move(payload);
    batch.push_back(std::move(message));
  }
  return queues_[static_cast<std::size_t>(to)]->push_n(std::move(batch));
}

std::optional<Message> Communicator::recv(int me, int source, int tag) {
  if (me < 0 || me >= size()) {
    throw std::out_of_range("Communicator::recv: bad rank");
  }
  return queues_[static_cast<std::size_t>(me)]->pop(source, tag);
}

std::optional<Message> Communicator::try_recv(int me, int source, int tag) {
  if (me < 0 || me >= size()) {
    throw std::out_of_range("Communicator::try_recv: bad rank");
  }
  return queues_[static_cast<std::size_t>(me)]->try_pop(source, tag);
}

std::vector<Message> Communicator::recv_n(int me, std::size_t max_n,
                                          int source, int tag) {
  if (me < 0 || me >= size()) {
    throw std::out_of_range("Communicator::recv_n: bad rank");
  }
  return queues_[static_cast<std::size_t>(me)]->pop_n(max_n, source, tag);
}

std::vector<Message> Communicator::try_recv_n(int me, std::size_t max_n,
                                              int source, int tag) {
  if (me < 0 || me >= size()) {
    throw std::out_of_range("Communicator::try_recv_n: bad rank");
  }
  return queues_[static_cast<std::size_t>(me)]->try_pop_n(max_n, source, tag);
}

std::optional<Message> Communicator::recv_for(
    int me, std::chrono::duration<double> timeout, int source, int tag) {
  if (me < 0 || me >= size()) {
    throw std::out_of_range("Communicator::recv_for: bad rank");
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(timeout);
  return queues_[static_cast<std::size_t>(me)]->pop_until(deadline, source,
                                                          tag);
}

void Communicator::barrier() {
  util::MutexLock lock(barrier_mutex_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ == size()) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  while (barrier_generation_ == my_generation && !shutdown_.load()) {
    barrier_cv_.wait(barrier_mutex_);
  }
}

std::vector<std::byte> Communicator::broadcast(int me, int root,
                                               std::vector<std::byte> payload) {
  if (me == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(root, r, kBcastTag, payload);
    }
    return payload;
  }
  const auto message = recv(me, root, kBcastTag);
  return message ? message->payload : std::vector<std::byte>{};
}

std::vector<std::vector<std::byte>> Communicator::gather(
    int me, int root, std::vector<std::byte> payload) {
  if (me != root) {
    send(me, root, kGatherTag, std::move(payload));
    return {};
  }
  std::vector<std::vector<std::byte>> out(
      static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(root)] = std::move(payload);
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    const auto message = recv(root, r, kGatherTag);
    if (message) out[static_cast<std::size_t>(r)] = message->payload;
  }
  return out;
}

void Communicator::shutdown() {
  if (shutdown_.exchange(true)) return;
  for (auto& q : queues_) q->close();
  {
    // The notify must happen under barrier_mutex_: shutdown_ is part of
    // the barrier wait predicate but is not written under the waiter's
    // lock, so a bare notify could land between a waiter's predicate
    // check and its re-block and be lost — leaving barrier() stuck
    // forever on a communicator that is already shut down.
    util::MutexLock lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
}

}  // namespace gridpipe::comm
