#pragma once
// comm::wire — the one wire format shared by the message-passing
// runtimes. Two layers:
//
//  * Payload codecs: the task / mapping / scalar encodings that
//    DistributedExecutor historically carried privately. Both the
//    in-process DistributedExecutor and the process-per-node
//    proc::ProcessExecutor speak exactly these bytes, so a payload
//    captured from one substrate decodes on the other.
//  * Stream framing: a length-prefixed Frame envelope for byte-stream
//    transports (Unix-domain sockets, shared-memory rings). The
//    in-process communicator does not need it (its queues preserve
//    message boundaries); the byte-stream transports do.
//
// Hot-path composition: every payload codec has an `encode_*_into`
// variant that appends to a caller-supplied buffer, and begin_frame /
// end_frame bracket an in-place frame envelope, so one task hop writes
// [frame header][task header][stage payload] into a single buffer —
// typically one recycled through a BufferPool, making the steady state
// allocation-free. Decoders take std::span views into transport
// buffers, so reading a frame copies nothing until the payload actually
// has to outlive the buffer.
//
// All integers are fixed-width little-endian-as-memcpy'd (the runtimes
// never cross an endianness boundary: every peer is a fork of the same
// process or a thread in it). Every decoder bounds-checks and throws
// std::invalid_argument on truncated or malformed input — a byte stream
// from another process is untrusted enough to validate.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sched/mapping.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::comm::wire {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;

// -------------------------------------------------------- buffer pool

/// Thread-safe free-list of reusable byte buffers. acquire() hands out
/// an empty buffer whose capacity survives from its previous life, so a
/// steady-state encode loop stops allocating once buffers have grown to
/// the working payload size.
///
/// Lifetime rules: a buffer obtained from acquire() is owned by the
/// caller until release()d (or simply dropped — releasing is an
/// optimization, never a correctness requirement). Any Bytes vector may
/// be release()d into a pool, not only ones it handed out. Buffers whose
/// capacity exceeds `max_retained_bytes`, and buffers beyond
/// `max_buffers`, are freed instead of pooled so one giant payload
/// cannot pin memory forever.
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_buffers = 64,
                      std::size_t max_retained_bytes = std::size_t{1} << 20)
      : max_buffers_(max_buffers), max_retained_(max_retained_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer (size 0), with whatever capacity its previous use
  /// left behind. Falls back to a fresh buffer when the pool is empty.
  Bytes acquire();

  /// Returns a buffer to the pool (cleared lazily on the next acquire).
  void release(Bytes&& buffer);

  /// Buffers currently pooled (for tests / introspection).
  std::size_t pooled() const;

 private:
  mutable util::Mutex mutex_;
  std::vector<Bytes> free_ GRIDPIPE_GUARDED_BY(mutex_);
  const std::size_t max_buffers_;
  const std::size_t max_retained_;
};

// ----------------------------------------------------------- payloads

/// Task payload header size: [u64 item][u32 stage].
inline constexpr std::size_t kTaskHeaderBytes = 12;

/// Task payload: [u64 item][u32 stage][stage payload...].
Bytes encode_task(std::uint64_t item, std::uint32_t stage,
                  const Bytes& payload);
/// In-place variants: append to `out` (typically a pooled buffer that
/// already holds a frame header). The header-only form lets a caller
/// write the stage payload directly after it.
void encode_task_into(Bytes& out, std::uint64_t item, std::uint32_t stage,
                      ByteSpan payload);
void encode_task_header_into(Bytes& out, std::uint64_t item,
                             std::uint32_t stage);

/// Zero-copy decoded task: `payload` views the input and is valid only
/// as long as the wire bytes it was decoded from.
struct TaskView {
  std::uint64_t item = 0;
  std::uint32_t stage = 0;
  ByteSpan payload;
};
/// Throws std::invalid_argument if shorter than the 12-byte header.
TaskView decode_task(ByteSpan wire);
/// Copying legacy form (kept for byte-compat tests and callers that
/// need an owning payload).
void decode_task(const Bytes& wire, std::uint64_t& item, std::uint32_t& stage,
                 Bytes& payload);

/// Routing table: [u32 num_stages]([u32 num_replicas][u32 node]*)*.
Bytes encode_mapping(const sched::Mapping& mapping);
void encode_mapping_into(Bytes& out, const sched::Mapping& mapping);
/// Throws std::invalid_argument on truncation or absurd counts.
sched::Mapping decode_mapping(ByteSpan wire);

/// One IEEE double (speed observations).
Bytes encode_f64(double value);
void encode_f64_into(Bytes& out, double value);
/// Throws std::invalid_argument unless exactly 8 bytes.
double decode_f64(ByteSpan wire);

// ------------------------------------------------------------ framing

/// Frame kinds mirror the DistributedExecutor message tags 1:1 (same
/// values), so the two substrates stay one vocabulary.
enum class FrameKind : std::uint32_t {
  kTask = 1,       ///< task payload; `node` = destination worker on relays
  kResult = 2,     ///< finished item (task payload with stage = num_stages)
  kRemap = 3,      ///< mapping payload, broadcast controller → workers
  kShutdown = 4,   ///< empty payload
  kSpeedObs = 5,   ///< f64 payload; `node` = observing worker
  kTelemetry = 6,  ///< obs telemetry batch; `node` = reporting worker
  kHealth = 7,     ///< obs health record; `node` = reporting worker
};

const char* to_string(FrameKind kind);

/// Forward compatibility: kinds above kHealth up to this bound are
/// reserved for future protocol revisions. FrameReader silently skips
/// such frames (their length prefix still delimits them) instead of
/// failing, so an old reader survives a newer writer; anything above
/// the band is treated as stream corruption and throws.
inline constexpr std::uint32_t kMaxReservedKind = 15;

/// Refuse to allocate for garbage length prefixes: no legitimate frame
/// carries more than this much payload.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;  // 64 MB

/// Frame envelope header size: [u32 payload length][u32 kind][u32 node].
inline constexpr std::size_t kFrameHeaderBytes = 12;

struct Frame {
  FrameKind kind = FrameKind::kShutdown;
  /// Worker-node argument; meaning depends on kind (destination for
  /// relayed kTask, source for kSpeedObs, unused otherwise).
  std::uint32_t node = 0;
  Bytes payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Envelope: [u32 payload length][u32 kind][u32 node][payload...].
Bytes encode_frame(const Frame& frame);
/// Appends a whole frame to `out` (one composition, no temporary).
void encode_frame_into(Bytes& out, const Frame& frame);

/// In-place frame bracketing: begin_frame appends the header with a
/// placeholder length and returns its offset; the caller then appends
/// the payload bytes directly (encode_*_into and friends) and
/// end_frame patches the length prefix. end_frame throws
/// std::invalid_argument if the payload outgrew kMaxFramePayload.
std::size_t begin_frame(Bytes& out, FrameKind kind, std::uint32_t node);
void end_frame(Bytes& out, std::size_t frame_offset);

/// Zero-copy decoded frame: `payload` views the reader's buffer and is
/// valid only until the next feed() on that reader.
struct FrameView {
  FrameKind kind = FrameKind::kShutdown;
  std::uint32_t node = 0;
  ByteSpan payload;
};

/// Incremental decoder for a byte stream: feed() arbitrary chunks, then
/// pop complete frames with next() / next_view(). A frame split across
/// reads simply stays pending until the rest arrives; a malformed
/// header (oversized length, kind outside the reserved band) throws
/// std::invalid_argument; a complete frame with a reserved-but-unknown
/// kind is skipped and counted.
class FrameReader {
 public:
  void feed(const std::byte* data, std::size_t n);

  /// Next complete frame (payload copied out), or nullopt if more bytes
  /// are needed.
  std::optional<Frame> next();

  /// Zero-copy variant: the returned payload views this reader's buffer
  /// and is invalidated by the next feed() (which may compact). Views
  /// from consecutive next_view() calls remain valid together.
  std::optional<FrameView> next_view();

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered() const noexcept { return buffer_.size() - read_; }

  /// Complete frames dropped because their kind is reserved/unknown.
  std::uint64_t skipped_unknown() const noexcept { return skipped_; }

 private:
  Bytes buffer_;
  std::size_t read_ = 0;  ///< consumed prefix of buffer_
  std::uint64_t skipped_ = 0;
};

}  // namespace gridpipe::comm::wire
