#pragma once
// comm::wire — the one wire format shared by the message-passing
// runtimes. Two layers:
//
//  * Payload codecs: the task / mapping / scalar encodings that
//    DistributedExecutor historically carried privately. Both the
//    in-process DistributedExecutor and the process-per-node
//    proc::ProcessExecutor speak exactly these bytes, so a payload
//    captured from one substrate decodes on the other.
//  * Stream framing: a length-prefixed Frame envelope for byte-stream
//    transports (Unix-domain sockets). The in-process communicator does
//    not need it (its queues preserve message boundaries); the socket
//    transport does.
//
// All integers are fixed-width little-endian-as-memcpy'd (the runtimes
// never cross an endianness boundary: every peer is a fork of the same
// process or a thread in it). Every decoder bounds-checks and throws
// std::invalid_argument on truncated or malformed input — a byte stream
// from another process is untrusted enough to validate.

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/mapping.hpp"

namespace gridpipe::comm::wire {

using Bytes = std::vector<std::byte>;

// ----------------------------------------------------------- payloads

/// Task payload: [u64 item][u32 stage][stage payload...].
Bytes encode_task(std::uint64_t item, std::uint32_t stage,
                  const Bytes& payload);
/// Throws std::invalid_argument if shorter than the 12-byte header.
void decode_task(const Bytes& wire, std::uint64_t& item, std::uint32_t& stage,
                 Bytes& payload);

/// Routing table: [u32 num_stages]([u32 num_replicas][u32 node]*)*.
Bytes encode_mapping(const sched::Mapping& mapping);
/// Throws std::invalid_argument on truncation or absurd counts.
sched::Mapping decode_mapping(const Bytes& wire);

/// One IEEE double (speed observations).
Bytes encode_f64(double value);
/// Throws std::invalid_argument unless exactly 8 bytes.
double decode_f64(const Bytes& wire);

// ------------------------------------------------------------ framing

/// Frame kinds mirror the DistributedExecutor message tags 1:1 (same
/// values), so the two substrates stay one vocabulary.
enum class FrameKind : std::uint32_t {
  kTask = 1,       ///< task payload; `node` = destination worker on relays
  kResult = 2,     ///< finished item (task payload with stage = num_stages)
  kRemap = 3,      ///< mapping payload, broadcast controller → workers
  kShutdown = 4,   ///< empty payload
  kSpeedObs = 5,   ///< f64 payload; `node` = observing worker
  kTelemetry = 6,  ///< obs telemetry batch; `node` = reporting worker
};

const char* to_string(FrameKind kind);

/// Forward compatibility: kinds above kTelemetry up to this bound are
/// reserved for future protocol revisions. FrameReader silently skips
/// such frames (their length prefix still delimits them) instead of
/// failing, so an old reader survives a newer writer; anything above
/// the band is treated as stream corruption and throws.
inline constexpr std::uint32_t kMaxReservedKind = 15;

/// Refuse to allocate for garbage length prefixes: no legitimate frame
/// carries more than this much payload.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;  // 64 MB

struct Frame {
  FrameKind kind = FrameKind::kShutdown;
  /// Worker-node argument; meaning depends on kind (destination for
  /// relayed kTask, source for kSpeedObs, unused otherwise).
  std::uint32_t node = 0;
  Bytes payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Envelope: [u32 payload length][u32 kind][u32 node][payload...].
Bytes encode_frame(const Frame& frame);

/// Incremental decoder for a byte stream: feed() arbitrary chunks, then
/// pop complete frames with next(). A frame split across reads simply
/// stays pending until the rest arrives; a malformed header (oversized
/// length, kind outside the reserved band) throws std::invalid_argument
/// from next(); a complete frame with a reserved-but-unknown kind is
/// skipped and counted.
class FrameReader {
 public:
  void feed(const std::byte* data, std::size_t n);

  /// Next complete frame, or nullopt if more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered() const noexcept { return buffer_.size() - read_; }

  /// Complete frames dropped because their kind is reserved/unknown.
  std::uint64_t skipped_unknown() const noexcept { return skipped_; }

 private:
  Bytes buffer_;
  std::size_t read_ = 0;  ///< consumed prefix of buffer_
  std::uint64_t skipped_ = 0;
};

}  // namespace gridpipe::comm::wire
