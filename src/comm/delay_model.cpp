#include "comm/delay_model.hpp"

#include <stdexcept>

namespace gridpipe::comm {

GridDelayModel::GridDelayModel(const grid::Grid& grid,
                               std::vector<grid::NodeId> rank_to_node,
                               double time_scale)
    : grid_(grid),
      rank_to_node_(std::move(rank_to_node)),
      time_scale_(time_scale) {
  if (time_scale <= 0.0) {
    throw std::invalid_argument("GridDelayModel: time_scale <= 0");
  }
  for (const grid::NodeId n : rank_to_node_) {
    if (n >= grid_.num_nodes()) {
      throw std::invalid_argument("GridDelayModel: rank mapped to bad node");
    }
  }
}

grid::NodeId GridDelayModel::node_of(int rank) const {
  if (rank < 0 || static_cast<std::size_t>(rank) >= rank_to_node_.size()) {
    throw std::out_of_range("GridDelayModel::node_of");
  }
  return rank_to_node_[static_cast<std::size_t>(rank)];
}

std::chrono::duration<double> GridDelayModel::delay(int from_rank, int to_rank,
                                                    std::size_t bytes,
                                                    double virtual_now) const {
  const grid::NodeId a = node_of(from_rank);
  const grid::NodeId b = node_of(to_rank);
  const double t = grid_.transfer_time(a, b, static_cast<double>(bytes),
                                       virtual_now);
  return std::chrono::duration<double>(t * time_scale_);
}

}  // namespace gridpipe::comm
