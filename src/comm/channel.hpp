#pragma once
// Thread-safe message queue with MPI-style matched receives.
//
// Each rank owns one MessageQueue; senders enqueue, the owner dequeues
// with optional (source, tag) filters. Messages carry a delivery deadline
// so the communicator can emulate link latency without dedicated delivery
// threads: a receive does not match a message before its deliver_at time.
// FIFO is preserved per (source, tag) pair — the MPI non-overtaking rule.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace gridpipe::comm {

using Clock = std::chrono::steady_clock;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  Clock::time_point deliver_at{};  ///< emulated arrival time
};

class MessageQueue {
 public:
  explicit MessageQueue(std::size_t capacity = 1024);

  /// Blocks while the queue is full. Returns false if closed.
  bool push(Message message);

  /// Blocks until a matching, delivered message is available or the queue
  /// is closed and drained. A message "matches" when (source, tag) agree
  /// with the filters (kAnySource / kAnyTag are wildcards).
  std::optional<Message> pop(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking variant; std::nullopt if no delivered match right now.
  std::optional<Message> try_pop(int source = kAnySource, int tag = kAnyTag);

  /// Like pop() but gives up at `deadline`; std::nullopt on timeout or
  /// close-and-drained.
  std::optional<Message> pop_until(Clock::time_point deadline,
                                   int source = kAnySource,
                                   int tag = kAnyTag);

  /// Wakes all waiters; subsequent pushes fail, pops drain then fail.
  void close();
  bool closed() const;

  std::size_t size() const;

 private:
  bool matches(const Message& m, int source, int tag) const noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }
  /// Index of the first delivered match, or npos. Caller holds the lock.
  std::size_t find_match(int source, int tag, Clock::time_point now) const;
  /// Earliest future deliver_at among matches (for timed waits).
  std::optional<Clock::time_point> next_delivery(int source, int tag) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Message> messages_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace gridpipe::comm
