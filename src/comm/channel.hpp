#pragma once
// Thread-safe message queue with MPI-style matched receives.
//
// Each rank owns one MessageQueue; senders enqueue, the owner dequeues
// with optional (source, tag) filters. Messages carry a delivery deadline
// so the communicator can emulate link latency without dedicated delivery
// threads: a receive does not match a message before its deliver_at time.
//
// Storage is one FIFO bucket per (source, tag) pair rather than a single
// scanned deque: only bucket heads are match candidates, which both
// enforces the MPI non-overtaking rule strictly (an undelivered head
// blocks later messages of the same pair) and makes a filtered pop O(1)
// for an exact (source, tag) and O(#pairs) for wildcards — independent of
// queue depth. Wildcard receives pick the delivered head with the lowest
// arrival sequence number, preserving global arrival order across pairs.
//
// Batched push_n/pop_n move whole trains of messages under a single lock
// acquisition; the executors use them to drain worker queues without
// paying one mutex round-trip per item.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::comm {

using Clock = std::chrono::steady_clock;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  Clock::time_point deliver_at{};  ///< emulated arrival time
};

class MessageQueue {
 public:
  explicit MessageQueue(std::size_t capacity = 1024);

  /// Blocks while the queue is full. Returns false if closed.
  bool push(Message message);

  /// Pushes a whole batch under one lock acquisition, blocking for
  /// capacity as needed. Returns false if the queue closed before every
  /// message was enqueued (the remainder is dropped).
  bool push_n(std::vector<Message> batch);

  /// Blocks until a matching, delivered message is available or the queue
  /// is closed and drained. A message "matches" when (source, tag) agree
  /// with the filters (kAnySource / kAnyTag are wildcards).
  std::optional<Message> pop(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking variant; std::nullopt if no delivered match right now.
  std::optional<Message> try_pop(int source = kAnySource, int tag = kAnyTag);

  /// Like pop() but gives up at `deadline`; std::nullopt on timeout or
  /// close-and-drained.
  std::optional<Message> pop_until(Clock::time_point deadline,
                                   int source = kAnySource,
                                   int tag = kAnyTag);

  /// Blocks like pop() for the first message, then keeps draining
  /// delivered matches — all under one lock acquisition — until `max_n`
  /// messages are taken or none remain deliverable. Empty result means
  /// closed-and-drained, except `max_n == 0`, which returns empty
  /// immediately even on a live queue — clamp computed batch sizes to
  /// >= 1 before using empty as a termination signal.
  std::vector<Message> pop_n(std::size_t max_n, int source = kAnySource,
                             int tag = kAnyTag);

  /// Non-blocking batch drain; may return fewer than `max_n` (or none).
  std::vector<Message> try_pop_n(std::size_t max_n, int source = kAnySource,
                                 int tag = kAnyTag);

  /// Wakes all waiters; subsequent pushes fail, pops drain remaining
  /// *delivered* messages then fail.
  void close();
  bool closed() const;

  std::size_t size() const;

 private:
  struct Stamped {
    Message msg;
    std::uint64_t seq = 0;  ///< global arrival order, for wildcard pops
  };
  struct Bucket {
    std::deque<Stamped> fifo;
  };

  static bool matches(const Message& m, int source, int tag) noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }
  static std::uint64_t key(int source, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  /// Bucket for (source, tag), via a one-entry cache: ping-pong traffic
  /// hits the same pair every time, and unordered_map never invalidates
  /// mapped references (buckets are never erased), so the cached pointer
  /// stays valid across rehashes.
  Bucket& bucket_for_locked(int source, int tag) GRIDPIPE_REQUIRES(mutex_);
  void insert_locked(Message message) GRIDPIPE_REQUIRES(mutex_);
  /// Bucket whose head matches the filters and is delivered; among several
  /// the one with the lowest sequence number (global FIFO). nullptr if none.
  Bucket* find_ready_locked(int source, int tag, Clock::time_point now)
      GRIDPIPE_REQUIRES(mutex_);
  /// Earliest deliver_at among matching bucket heads (for timed waits).
  /// Only heads count: an undelivered head blocks its bucket.
  std::optional<Clock::time_point> next_delivery_locked(int source,
                                                        int tag) const
      GRIDPIPE_REQUIRES(mutex_);
  Message take_head_locked(Bucket& bucket) GRIDPIPE_REQUIRES(mutex_);
  void drain_ready_locked(std::vector<Message>& out, std::size_t max_n,
                          int source, int tag, Clock::time_point now)
      GRIDPIPE_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  util::CondVar not_full_;
  util::CondVar not_empty_;
  std::unordered_map<std::uint64_t, Bucket> buckets_
      GRIDPIPE_GUARDED_BY(mutex_);
  std::uint64_t cached_key_ GRIDPIPE_GUARDED_BY(mutex_) = 0;
  Bucket* cached_bucket_ GRIDPIPE_GUARDED_BY(mutex_) = nullptr;
  std::size_t size_ GRIDPIPE_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_seq_ GRIDPIPE_GUARDED_BY(mutex_) = 0;
  const std::size_t capacity_;
  bool closed_ GRIDPIPE_GUARDED_BY(mutex_) = false;
};

}  // namespace gridpipe::comm
