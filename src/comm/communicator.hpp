#pragma once
// An MPI-flavoured in-process communicator: N ranks exchanging tagged
// messages over per-rank queues, with optional link-delay emulation and a
// small set of collectives. Stands in for MPICH-G2 in the threaded
// runtime; the MPI non-overtaking guarantee holds per (source, tag).

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>

#include "comm/channel.hpp"
#include "comm/delay_model.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::comm {

class Communicator {
 public:
  /// `delays` may be nullptr (zero delay). `virtual_now` supplies the
  /// virtual time used for congestion lookups; defaults to 0.
  explicit Communicator(int size, const DelayModel* delays = nullptr,
                        std::function<double()> virtual_now = {});
  ~Communicator();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int size() const noexcept { return static_cast<int>(queues_.size()); }

  /// Point-to-point send; blocks only if the destination queue is full.
  /// Returns false if the communicator was shut down.
  bool send(int from, int to, int tag, std::vector<std::byte> payload);

  /// Sends a train of same-tag messages to one destination with a single
  /// lock acquisition on its queue. Per-message link delays still apply,
  /// so a large payload delays the ones queued behind it (the link
  /// serializes). Returns false if shut down mid-batch.
  bool send_n(int from, int to, int tag,
              std::vector<std::vector<std::byte>> payloads);

  /// Blocking receive with optional source/tag filters.
  std::optional<Message> recv(int me, int source = kAnySource,
                              int tag = kAnyTag);
  std::optional<Message> try_recv(int me, int source = kAnySource,
                                  int tag = kAnyTag);

  /// Blocking batch receive: waits for one delivered match, then drains up
  /// to `max_n` under the same lock. Empty result means shut down, except
  /// `max_n == 0`, which returns empty immediately on a live queue — clamp
  /// computed batch sizes to >= 1 (the executors do) before using empty as
  /// a termination signal.
  std::vector<Message> recv_n(int me, std::size_t max_n,
                              int source = kAnySource, int tag = kAnyTag);
  /// Non-blocking batch drain of whatever is already delivered.
  std::vector<Message> try_recv_n(int me, std::size_t max_n,
                                  int source = kAnySource, int tag = kAnyTag);

  /// Blocking receive that gives up after `timeout`.
  std::optional<Message> recv_for(int me, std::chrono::duration<double> timeout,
                                  int source = kAnySource, int tag = kAnyTag);

  /// Typed helpers for trivially copyable values.
  template <typename T>
  bool send_value(int from, int to, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> payload(sizeof(T));
    std::memcpy(payload.data(), &value, sizeof(T));
    return send(from, to, tag, std::move(payload));
  }
  template <typename T>
  static T decode(const Message& message) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (message.payload.size() != sizeof(T)) {
      throw std::invalid_argument("Communicator::decode: size mismatch");
    }
    T value;
    std::memcpy(&value, message.payload.data(), sizeof(T));
    return value;
  }

  /// Sense-reversing barrier across all ranks.
  void barrier();

  /// Rank `root` sends `payload` to every other rank (tag kBcastTag);
  /// non-roots receive and return it.
  std::vector<std::byte> broadcast(int me, int root,
                                   std::vector<std::byte> payload = {});

  /// Every rank contributes a payload; root receives them ordered by rank
  /// and returns the list (empty vector on non-roots).
  std::vector<std::vector<std::byte>> gather(int me, int root,
                                             std::vector<std::byte> payload);

  /// Closes all queues and wakes every blocked rank.
  void shutdown();
  bool shut_down() const noexcept { return shutdown_.load(); }

  static constexpr int kBcastTag = -1000;
  static constexpr int kGatherTag = -1001;

 private:
  std::vector<std::unique_ptr<MessageQueue>> queues_;
  const DelayModel* delays_;
  std::function<double()> virtual_now_;
  std::atomic<bool> shutdown_{false};

  // Central barrier state.
  util::Mutex barrier_mutex_;
  util::CondVar barrier_cv_;
  int barrier_waiting_ GRIDPIPE_GUARDED_BY(barrier_mutex_) = 0;
  std::uint64_t barrier_generation_ GRIDPIPE_GUARDED_BY(barrier_mutex_) = 0;
};

}  // namespace gridpipe::comm
