#include "comm/channel.hpp"

#include <algorithm>

namespace gridpipe::comm {

MessageQueue::MessageQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

MessageQueue::Bucket& MessageQueue::bucket_for_locked(int source, int tag) {
  const std::uint64_t k = key(source, tag);
  if (cached_bucket_ && cached_key_ == k) return *cached_bucket_;
  cached_bucket_ = &buckets_[k];
  cached_key_ = k;
  return *cached_bucket_;
}

void MessageQueue::insert_locked(Message message) {
  Bucket& bucket = bucket_for_locked(message.source, message.tag);
  bucket.fifo.push_back(Stamped{std::move(message), next_seq_++});
  ++size_;
}

MessageQueue::Bucket* MessageQueue::find_ready_locked(int source, int tag,
                                                      Clock::time_point now) {
  if (source != kAnySource && tag != kAnyTag) {
    const std::uint64_t k = key(source, tag);
    Bucket* bucket = nullptr;
    if (cached_bucket_ && cached_key_ == k) {
      bucket = cached_bucket_;
    } else {
      const auto it = buckets_.find(k);
      if (it == buckets_.end()) return nullptr;
      bucket = &it->second;
      cached_bucket_ = bucket;
      cached_key_ = k;
    }
    if (bucket->fifo.empty()) return nullptr;
    return bucket->fifo.front().msg.deliver_at <= now ? bucket : nullptr;
  }
  Bucket* best = nullptr;
  std::uint64_t best_seq = 0;
  for (auto& [k, bucket] : buckets_) {
    if (bucket.fifo.empty()) continue;
    const Stamped& head = bucket.fifo.front();
    if (!matches(head.msg, source, tag) || head.msg.deliver_at > now) continue;
    if (!best || head.seq < best_seq) {
      best = &bucket;
      best_seq = head.seq;
    }
  }
  return best;
}

std::optional<Clock::time_point> MessageQueue::next_delivery_locked(
    int source, int tag) const {
  std::optional<Clock::time_point> earliest;
  if (source != kAnySource && tag != kAnyTag) {
    const auto it = buckets_.find(key(source, tag));
    if (it != buckets_.end() && !it->second.fifo.empty()) {
      earliest = it->second.fifo.front().msg.deliver_at;
    }
    return earliest;
  }
  for (const auto& [k, bucket] : buckets_) {
    if (bucket.fifo.empty()) continue;
    const Stamped& head = bucket.fifo.front();
    if (!matches(head.msg, source, tag)) continue;
    if (!earliest || head.msg.deliver_at < *earliest) {
      earliest = head.msg.deliver_at;
    }
  }
  return earliest;
}

Message MessageQueue::take_head_locked(Bucket& bucket) {
  // Producers are notified once per pop/drain operation by the caller,
  // not per message — a 64-message drain must not wake blocked pushers
  // 64 times under the held mutex.
  Message out = std::move(bucket.fifo.front().msg);
  bucket.fifo.pop_front();
  --size_;
  // Empty buckets are kept: the (source, tag) vocabulary is bounded by
  // ranks × tags, and reusing the node avoids an allocation per message
  // on ping-pong traffic.
  return out;
}

void MessageQueue::drain_ready_locked(std::vector<Message>& out,
                                      std::size_t max_n, int source, int tag,
                                      Clock::time_point now) {
  if (source != kAnySource && tag != kAnyTag) {
    // Exact pair: drain one bucket front-to-back, no repeated lookups.
    const auto it = buckets_.find(key(source, tag));
    if (it == buckets_.end()) return;
    Bucket& bucket = it->second;
    while (out.size() < max_n && !bucket.fifo.empty() &&
           bucket.fifo.front().msg.deliver_at <= now) {
      out.push_back(take_head_locked(bucket));
    }
    return;
  }
  // Wildcard: k-way merge over bucket heads by arrival seq — one O(#pairs)
  // scan per drain plus O(log #pairs) per message, instead of re-running
  // find_ready_locked's full scan for every message taken. All messages
  // in a bucket share one (source, tag), so the match is checked once per
  // bucket; only delivery must be re-checked when a new head surfaces.
  const auto cmp = [](const std::pair<std::uint64_t, Bucket*>& a,
                      const std::pair<std::uint64_t, Bucket*>& b) {
    return a.first > b.first;  // min-heap on seq
  };
  std::vector<std::pair<std::uint64_t, Bucket*>> heap;
  for (auto& [k, bucket] : buckets_) {
    if (bucket.fifo.empty()) continue;
    const Stamped& head = bucket.fifo.front();
    if (!matches(head.msg, source, tag) || head.msg.deliver_at > now) continue;
    heap.emplace_back(head.seq, &bucket);
  }
  std::make_heap(heap.begin(), heap.end(), cmp);
  while (out.size() < max_n && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    Bucket& bucket = *heap.back().second;
    heap.pop_back();
    out.push_back(take_head_locked(bucket));
    if (!bucket.fifo.empty() &&
        bucket.fifo.front().msg.deliver_at <= now) {
      heap.emplace_back(bucket.fifo.front().seq, &bucket);
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
}

bool MessageQueue::push(Message message) {
  util::MutexLock lock(mutex_);
  while (!closed_ && size_ >= capacity_) not_full_.wait(mutex_);
  if (closed_) return false;
  insert_locked(std::move(message));
  not_empty_.notify_all();
  return true;
}

bool MessageQueue::push_n(std::vector<Message> batch) {
  util::MutexLock lock(mutex_);
  bool inserted = false;
  for (Message& message : batch) {
    if (size_ >= capacity_) {
      // Let consumers see what we queued so far, or we deadlock waiting
      // for capacity they can only free after being woken.
      if (inserted) not_empty_.notify_all();
      inserted = false;
      while (!closed_ && size_ >= capacity_) not_full_.wait(mutex_);
    }
    if (closed_) return false;
    insert_locked(std::move(message));
    inserted = true;
  }
  if (inserted) not_empty_.notify_all();
  return !closed_;
}

std::optional<Message> MessageQueue::pop(int source, int tag) {
  util::MutexLock lock(mutex_);
  for (;;) {
    if (Bucket* bucket = find_ready_locked(source, tag, Clock::now())) {
      Message out = take_head_locked(*bucket);
      not_full_.notify_all();
      return out;
    }
    if (closed_) return std::nullopt;
    // Wait for a new message or for the next matching delivery deadline.
    if (const auto deadline = next_delivery_locked(source, tag)) {
      not_empty_.wait_until(mutex_, *deadline);
    } else {
      not_empty_.wait(mutex_);
    }
  }
}

std::optional<Message> MessageQueue::pop_until(Clock::time_point deadline,
                                               int source, int tag) {
  util::MutexLock lock(mutex_);
  for (;;) {
    const auto now = Clock::now();
    if (Bucket* bucket = find_ready_locked(source, tag, now)) {
      Message out = take_head_locked(*bucket);
      not_full_.notify_all();
      return out;
    }
    if (closed_ || now >= deadline) return std::nullopt;
    auto wake = deadline;
    if (const auto next = next_delivery_locked(source, tag)) {
      wake = std::min(wake, *next);
    }
    not_empty_.wait_until(mutex_, wake);
  }
}

std::optional<Message> MessageQueue::try_pop(int source, int tag) {
  util::MutexLock lock(mutex_);
  Bucket* bucket = find_ready_locked(source, tag, Clock::now());
  if (!bucket) return std::nullopt;
  Message out = take_head_locked(*bucket);
  not_full_.notify_all();
  return out;
}

std::vector<Message> MessageQueue::pop_n(std::size_t max_n, int source,
                                         int tag) {
  std::vector<Message> out;
  if (max_n == 0) return out;
  util::MutexLock lock(mutex_);
  for (;;) {
    drain_ready_locked(out, max_n, source, tag, Clock::now());
    if (!out.empty() || closed_) {
      if (!out.empty()) not_full_.notify_all();
      return out;
    }
    if (const auto deadline = next_delivery_locked(source, tag)) {
      not_empty_.wait_until(mutex_, *deadline);
    } else {
      not_empty_.wait(mutex_);
    }
  }
}

std::vector<Message> MessageQueue::try_pop_n(std::size_t max_n, int source,
                                             int tag) {
  std::vector<Message> out;
  if (max_n == 0) return out;
  util::MutexLock lock(mutex_);
  drain_ready_locked(out, max_n, source, tag, Clock::now());
  if (!out.empty()) not_full_.notify_all();
  return out;
}

void MessageQueue::close() {
  util::MutexLock lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool MessageQueue::closed() const {
  util::MutexLock lock(mutex_);
  return closed_;
}

std::size_t MessageQueue::size() const {
  util::MutexLock lock(mutex_);
  return size_;
}

}  // namespace gridpipe::comm
