#include "comm/channel.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridpipe::comm {

MessageQueue::MessageQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool MessageQueue::push(Message message) {
  std::unique_lock lock(mutex_);
  not_full_.wait(lock,
                 [this] { return closed_ || messages_.size() < capacity_; });
  if (closed_) return false;
  messages_.push_back(std::move(message));
  not_empty_.notify_all();
  return true;
}

std::size_t MessageQueue::find_match(int source, int tag,
                                     Clock::time_point now) const {
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    if (matches(messages_[i], source, tag) &&
        messages_[i].deliver_at <= now) {
      return i;
    }
  }
  return npos;
}

std::optional<Clock::time_point> MessageQueue::next_delivery(int source,
                                                             int tag) const {
  std::optional<Clock::time_point> earliest;
  for (const Message& m : messages_) {
    if (matches(m, source, tag)) {
      if (!earliest || m.deliver_at < *earliest) earliest = m.deliver_at;
    }
  }
  return earliest;
}

std::optional<Message> MessageQueue::pop(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    const std::size_t i = find_match(source, tag, Clock::now());
    if (i != npos) {
      Message out = std::move(messages_[i]);
      messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(i));
      not_full_.notify_all();
      return out;
    }
    if (closed_) return std::nullopt;
    // Wait for a new message or for the next matching delivery deadline.
    if (const auto deadline = next_delivery(source, tag)) {
      not_empty_.wait_until(lock, *deadline);
    } else {
      not_empty_.wait(lock);
    }
  }
}

std::optional<Message> MessageQueue::pop_until(Clock::time_point deadline,
                                               int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    const auto now = Clock::now();
    const std::size_t i = find_match(source, tag, now);
    if (i != npos) {
      Message out = std::move(messages_[i]);
      messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(i));
      not_full_.notify_all();
      return out;
    }
    if (closed_ || now >= deadline) return std::nullopt;
    auto wake = deadline;
    if (const auto next = next_delivery(source, tag)) {
      wake = std::min(wake, *next);
    }
    not_empty_.wait_until(lock, wake);
  }
}

std::optional<Message> MessageQueue::try_pop(int source, int tag) {
  std::unique_lock lock(mutex_);
  const std::size_t i = find_match(source, tag, Clock::now());
  if (i == npos) return std::nullopt;
  Message out = std::move(messages_[i]);
  messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(i));
  not_full_.notify_all();
  return out;
}

void MessageQueue::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool MessageQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t MessageQueue::size() const {
  std::lock_guard lock(mutex_);
  return messages_.size();
}

}  // namespace gridpipe::comm
