#include "comm/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace gridpipe::comm::wire {

namespace {

// resize+memcpy instead of insert(end, p, p+sizeof): the iterator-range
// form trips GCC 12's -Wstringop-overflow false positive (PR105329) at
// -O3.
template <class T>
void append_pod(Bytes& out, T v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(v));
  std::memcpy(out.data() + off, &v, sizeof(v));
}

template <class T>
T read_pod(const Bytes& in, std::size_t& off) {
  if (in.size() - off < sizeof(T)) {
    throw std::invalid_argument("wire: truncated input");
  }
  T v;
  std::memcpy(&v, in.data() + off, sizeof(v));
  off += sizeof(v);
  return v;
}

}  // namespace

Bytes encode_task(std::uint64_t item, std::uint32_t stage,
                  const Bytes& payload) {
  Bytes out;
  out.reserve(12 + payload.size());
  append_pod(out, item);
  append_pod(out, stage);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void decode_task(const Bytes& wire, std::uint64_t& item, std::uint32_t& stage,
                 Bytes& payload) {
  if (wire.size() < 12) throw std::invalid_argument("decode_task: short");
  std::size_t off = 0;
  item = read_pod<std::uint64_t>(wire, off);
  stage = read_pod<std::uint32_t>(wire, off);
  payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(off), wire.end());
}

Bytes encode_mapping(const sched::Mapping& mapping) {
  Bytes out;
  append_pod(out, static_cast<std::uint32_t>(mapping.num_stages()));
  for (std::size_t i = 0; i < mapping.num_stages(); ++i) {
    const auto& reps = mapping.replicas(i);
    append_pod(out, static_cast<std::uint32_t>(reps.size()));
    for (const grid::NodeId n : reps) {
      append_pod(out, static_cast<std::uint32_t>(n));
    }
  }
  return out;
}

sched::Mapping decode_mapping(const Bytes& wire) {
  std::size_t off = 0;
  const auto ns = read_pod<std::uint32_t>(wire, off);
  // Each stage needs at least its replica count on the wire; anything
  // claiming more stages than remaining bytes could hold is garbage.
  if (ns > (wire.size() - off) / sizeof(std::uint32_t)) {
    throw std::invalid_argument("decode_mapping: stage count exceeds input");
  }
  std::vector<std::vector<grid::NodeId>> assignment(ns);
  for (std::uint32_t i = 0; i < ns; ++i) {
    const auto reps = read_pod<std::uint32_t>(wire, off);
    if (reps > (wire.size() - off) / sizeof(std::uint32_t)) {
      throw std::invalid_argument("decode_mapping: replica count exceeds input");
    }
    assignment[i].reserve(reps);
    for (std::uint32_t r = 0; r < reps; ++r) {
      assignment[i].push_back(read_pod<std::uint32_t>(wire, off));
    }
  }
  return sched::Mapping(std::move(assignment));
}

Bytes encode_f64(double value) {
  Bytes out;
  append_pod(out, value);
  return out;
}

double decode_f64(const Bytes& wire) {
  if (wire.size() != sizeof(double)) {
    throw std::invalid_argument("decode_f64: size mismatch");
  }
  std::size_t off = 0;
  return read_pod<double>(wire, off);
}

const char* to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kTask:     return "task";
    case FrameKind::kResult:   return "result";
    case FrameKind::kRemap:    return "remap";
    case FrameKind::kShutdown: return "shutdown";
    case FrameKind::kSpeedObs: return "speed-obs";
    case FrameKind::kTelemetry: return "telemetry";
  }
  return "?";
}

namespace {

bool valid_kind(std::uint32_t raw) {
  return raw >= static_cast<std::uint32_t>(FrameKind::kTask) &&
         raw <= static_cast<std::uint32_t>(FrameKind::kTelemetry);
}

constexpr std::size_t kHeaderBytes = 12;

}  // namespace

Bytes encode_frame(const Frame& frame) {
  // Reject at the sender what the receiver would reject anyway: an
  // oversized payload becomes an attributable error here instead of a
  // child _exit after the fact, and a > 4 GB payload cannot silently
  // wrap the u32 length prefix and desynchronize the stream.
  if (frame.payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("encode_frame: payload exceeds frame limit");
  }
  Bytes out;
  out.reserve(kHeaderBytes + frame.payload.size());
  append_pod(out, static_cast<std::uint32_t>(frame.payload.size()));
  append_pod(out, static_cast<std::uint32_t>(frame.kind));
  append_pod(out, frame.node);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

void FrameReader::feed(const std::byte* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow without bound on a long-lived connection.
  if (read_ > 4096 && read_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(read_));
    read_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<Frame> FrameReader::next() {
  while (buffered() >= kHeaderBytes) {
    std::size_t off = read_;
    const auto length = read_pod<std::uint32_t>(buffer_, off);
    const auto raw_kind = read_pod<std::uint32_t>(buffer_, off);
    const auto node = read_pod<std::uint32_t>(buffer_, off);
    if (length > kMaxFramePayload) {
      throw std::invalid_argument("FrameReader: frame length exceeds limit");
    }
    if (!valid_kind(raw_kind)) {
      // A kind inside the reserved band is a well-delimited frame from a
      // newer protocol: consume and skip it. Anything else is corruption.
      if (raw_kind == 0 || raw_kind > kMaxReservedKind) {
        throw std::invalid_argument("FrameReader: unknown frame kind");
      }
      if (buffered() < kHeaderBytes + length) return std::nullopt;
      read_ = off + length;
      ++skipped_;
      continue;
    }
    if (buffered() < kHeaderBytes + length) return std::nullopt;

    Frame frame;
    frame.kind = static_cast<FrameKind>(raw_kind);
    frame.node = node;
    frame.payload.assign(
        buffer_.begin() + static_cast<std::ptrdiff_t>(off),
        buffer_.begin() + static_cast<std::ptrdiff_t>(off + length));
    read_ = off + length;
    return frame;
  }
  return std::nullopt;
}

}  // namespace gridpipe::comm::wire
