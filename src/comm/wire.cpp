#include "comm/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace gridpipe::comm::wire {

namespace {

// resize+memcpy instead of insert(end, p, p+sizeof): the iterator-range
// form trips GCC 12's -Wstringop-overflow false positive (PR105329) at
// -O3.
template <class T>
void append_pod(Bytes& out, T v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(v));
  std::memcpy(out.data() + off, &v, sizeof(v));
}

void append_bytes(Bytes& out, ByteSpan bytes) {
  if (bytes.empty()) return;
  const std::size_t off = out.size();
  out.resize(off + bytes.size());
  std::memcpy(out.data() + off, bytes.data(), bytes.size());
}

template <class T>
T read_pod(ByteSpan in, std::size_t& off) {
  if (in.size() - off < sizeof(T)) {
    throw std::invalid_argument("wire: truncated input");
  }
  T v;
  std::memcpy(&v, in.data() + off, sizeof(v));
  off += sizeof(v);
  return v;
}

}  // namespace

// -------------------------------------------------------- buffer pool

Bytes BufferPool::acquire() {
  {
    util::MutexLock lock(mutex_);
    if (!free_.empty()) {
      Bytes buffer = std::move(free_.back());
      free_.pop_back();
      buffer.clear();
      return buffer;
    }
  }
  return Bytes{};
}

void BufferPool::release(Bytes&& buffer) {
  if (buffer.capacity() == 0 || buffer.capacity() > max_retained_) return;
  util::MutexLock lock(mutex_);
  if (free_.size() >= max_buffers_) return;  // drop: the dtor frees it
  free_.push_back(std::move(buffer));
}

std::size_t BufferPool::pooled() const {
  util::MutexLock lock(mutex_);
  return free_.size();
}

// ----------------------------------------------------------- payloads

Bytes encode_task(std::uint64_t item, std::uint32_t stage,
                  const Bytes& payload) {
  Bytes out;
  out.reserve(kTaskHeaderBytes + payload.size());
  encode_task_into(out, item, stage, payload);
  return out;
}

void encode_task_into(Bytes& out, std::uint64_t item, std::uint32_t stage,
                      ByteSpan payload) {
  encode_task_header_into(out, item, stage);
  append_bytes(out, payload);
}

void encode_task_header_into(Bytes& out, std::uint64_t item,
                             std::uint32_t stage) {
  append_pod(out, item);
  append_pod(out, stage);
}

TaskView decode_task(ByteSpan wire) {
  if (wire.size() < kTaskHeaderBytes) {
    throw std::invalid_argument("decode_task: short");
  }
  TaskView view;
  std::size_t off = 0;
  view.item = read_pod<std::uint64_t>(wire, off);
  view.stage = read_pod<std::uint32_t>(wire, off);
  view.payload = wire.subspan(off);
  return view;
}

void decode_task(const Bytes& wire, std::uint64_t& item, std::uint32_t& stage,
                 Bytes& payload) {
  const TaskView view = decode_task(ByteSpan(wire));
  item = view.item;
  stage = view.stage;
  payload.assign(view.payload.begin(), view.payload.end());
}

Bytes encode_mapping(const sched::Mapping& mapping) {
  Bytes out;
  encode_mapping_into(out, mapping);
  return out;
}

void encode_mapping_into(Bytes& out, const sched::Mapping& mapping) {
  append_pod(out, static_cast<std::uint32_t>(mapping.num_stages()));
  for (std::size_t i = 0; i < mapping.num_stages(); ++i) {
    const auto& reps = mapping.replicas(i);
    append_pod(out, static_cast<std::uint32_t>(reps.size()));
    for (const grid::NodeId n : reps) {
      append_pod(out, static_cast<std::uint32_t>(n));
    }
  }
}

sched::Mapping decode_mapping(ByteSpan wire) {
  std::size_t off = 0;
  const auto ns = read_pod<std::uint32_t>(wire, off);
  // Each stage needs at least its replica count on the wire; anything
  // claiming more stages than remaining bytes could hold is garbage.
  if (ns > (wire.size() - off) / sizeof(std::uint32_t)) {
    throw std::invalid_argument("decode_mapping: stage count exceeds input");
  }
  std::vector<std::vector<grid::NodeId>> assignment(ns);
  for (std::uint32_t i = 0; i < ns; ++i) {
    const auto reps = read_pod<std::uint32_t>(wire, off);
    if (reps > (wire.size() - off) / sizeof(std::uint32_t)) {
      throw std::invalid_argument("decode_mapping: replica count exceeds input");
    }
    assignment[i].reserve(reps);
    for (std::uint32_t r = 0; r < reps; ++r) {
      assignment[i].push_back(read_pod<std::uint32_t>(wire, off));
    }
  }
  return sched::Mapping(std::move(assignment));
}

Bytes encode_f64(double value) {
  Bytes out;
  append_pod(out, value);
  return out;
}

void encode_f64_into(Bytes& out, double value) { append_pod(out, value); }

double decode_f64(ByteSpan wire) {
  if (wire.size() != sizeof(double)) {
    throw std::invalid_argument("decode_f64: size mismatch");
  }
  std::size_t off = 0;
  return read_pod<double>(wire, off);
}

const char* to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kTask:     return "task";
    case FrameKind::kResult:   return "result";
    case FrameKind::kRemap:    return "remap";
    case FrameKind::kShutdown: return "shutdown";
    case FrameKind::kSpeedObs: return "speed-obs";
    case FrameKind::kTelemetry: return "telemetry";
    case FrameKind::kHealth:   return "health";
  }
  return "?";
}

namespace {

bool valid_kind(std::uint32_t raw) {
  return raw >= static_cast<std::uint32_t>(FrameKind::kTask) &&
         raw <= static_cast<std::uint32_t>(FrameKind::kHealth);
}

}  // namespace

Bytes encode_frame(const Frame& frame) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  encode_frame_into(out, frame);
  return out;
}

void encode_frame_into(Bytes& out, const Frame& frame) {
  // Reject at the sender what the receiver would reject anyway: an
  // oversized payload becomes an attributable error here instead of a
  // child _exit after the fact, and a > 4 GB payload cannot silently
  // wrap the u32 length prefix and desynchronize the stream.
  const std::size_t off = begin_frame(out, frame.kind, frame.node);
  append_bytes(out, frame.payload);
  end_frame(out, off);
}

std::size_t begin_frame(Bytes& out, FrameKind kind, std::uint32_t node) {
  const std::size_t off = out.size();
  append_pod(out, std::uint32_t{0});  // length, patched by end_frame
  append_pod(out, static_cast<std::uint32_t>(kind));
  append_pod(out, node);
  return off;
}

void end_frame(Bytes& out, std::size_t frame_offset) {
  const std::size_t payload = out.size() - frame_offset - kFrameHeaderBytes;
  if (payload > kMaxFramePayload) {
    throw std::invalid_argument("end_frame: payload exceeds frame limit");
  }
  const auto length = static_cast<std::uint32_t>(payload);
  std::memcpy(out.data() + frame_offset, &length, sizeof(length));
}

void FrameReader::feed(const std::byte* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow without bound on a long-lived connection.
  if (read_ > 4096 && read_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(read_));
    read_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<Frame> FrameReader::next() {
  const auto view = next_view();
  if (!view) return std::nullopt;
  Frame frame;
  frame.kind = view->kind;
  frame.node = view->node;
  frame.payload.assign(view->payload.begin(), view->payload.end());
  return frame;
}

std::optional<FrameView> FrameReader::next_view() {
  while (buffered() >= kFrameHeaderBytes) {
    std::size_t off = read_;
    const ByteSpan whole(buffer_);
    const auto length = read_pod<std::uint32_t>(whole, off);
    const auto raw_kind = read_pod<std::uint32_t>(whole, off);
    const auto node = read_pod<std::uint32_t>(whole, off);
    if (length > kMaxFramePayload) {
      throw std::invalid_argument("FrameReader: frame length exceeds limit");
    }
    if (!valid_kind(raw_kind)) {
      // A kind inside the reserved band is a well-delimited frame from a
      // newer protocol: consume and skip it. Anything else is corruption.
      if (raw_kind == 0 || raw_kind > kMaxReservedKind) {
        throw std::invalid_argument("FrameReader: unknown frame kind");
      }
      if (buffered() < kFrameHeaderBytes + length) return std::nullopt;
      read_ = off + length;
      ++skipped_;
      continue;
    }
    if (buffered() < kFrameHeaderBytes + length) return std::nullopt;

    FrameView view;
    view.kind = static_cast<FrameKind>(raw_kind);
    view.node = node;
    view.payload = whole.subspan(off, length);
    read_ = off + length;
    return view;
  }
  return std::nullopt;
}

}  // namespace gridpipe::comm::wire
