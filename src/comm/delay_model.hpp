#pragma once
// Maps communicator ranks onto grid nodes and converts modeled link
// transfer times into real (scaled) delays, so the threaded runtime
// experiences the same network the simulator models.

#include <chrono>
#include <vector>

#include "grid/grid.hpp"

namespace gridpipe::comm {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Real-time delay to apply to a message of `bytes` from rank a to b.
  virtual std::chrono::duration<double> delay(int from_rank, int to_rank,
                                              std::size_t bytes,
                                              double virtual_now) const = 0;
};

/// No delays (plain shared-memory communicator).
class ZeroDelayModel final : public DelayModel {
 public:
  std::chrono::duration<double> delay(int, int, std::size_t,
                                      double) const override {
    return std::chrono::duration<double>(0.0);
  }
};

/// Grid-backed delays: rank r lives on node rank_to_node[r]; transfer time
/// comes from the grid's link model at the given virtual time, scaled by
/// `time_scale` (virtual seconds → real seconds).
class GridDelayModel final : public DelayModel {
 public:
  GridDelayModel(const grid::Grid& grid, std::vector<grid::NodeId> rank_to_node,
                 double time_scale = 1.0);

  std::chrono::duration<double> delay(int from_rank, int to_rank,
                                      std::size_t bytes,
                                      double virtual_now) const override;

  grid::NodeId node_of(int rank) const;
  double time_scale() const noexcept { return time_scale_; }

 private:
  const grid::Grid& grid_;
  std::vector<grid::NodeId> rank_to_node_;
  double time_scale_;
};

}  // namespace gridpipe::comm
