#pragma once
// AdaptivePipeline — the library façade and the paper's pattern.
//
// Usage:
//   auto grid = gridpipe::grid::heterogeneous_cluster({1.0, 2.0, 1.0}, ...);
//   gridpipe::core::PipelineSpec spec;
//   spec.stage("parse", parse_fn, /*work=*/0.1)
//       .stage("compute", compute_fn, /*work=*/0.4)
//       .stage("encode", encode_fn, /*work=*/0.1);
//   gridpipe::core::AdaptivePipeline pipeline(grid, std::move(spec), {});
//   auto report = pipeline.run(items);          // threaded, adaptive
//   auto planned = pipeline.plan();             // initial mapping only
//   auto simulated = pipeline.simulate(...);    // virtual-time rehearsal

#include "core/executor.hpp"
#include "sim/drivers.hpp"

namespace gridpipe::core {

struct AdaptivePipelineOptions {
  /// executor.adapt carries the shared control-loop knobs (mapper,
  /// policy, pin_first_stage, max_total_replicas, trigger, ...); plan()
  /// and run() both honor them.
  ExecutorConfig executor{};
};

class AdaptivePipeline {
 public:
  AdaptivePipeline(const grid::Grid& grid, PipelineSpec spec,
                   AdaptivePipelineOptions options = {});

  /// The mapping the scheduler picks for the deployment-time (t = 0)
  /// resource state.
  sched::MapperResult plan() const;

  /// Runs the stream on the threaded runtime with adaptation enabled
  /// (per options.executor.epoch). Blocking; returns ordered outputs.
  RunReport run(std::vector<std::any> inputs);

  /// Rehearses the same pipeline in the discrete-event simulator.
  sim::RunResult simulate(const sim::SimConfig& sim_config,
                          const sim::DriverOptions& driver_options) const;

  const sched::PipelineProfile& profile() const noexcept { return profile_; }
  const grid::Grid& grid() const noexcept { return grid_; }

 private:
  const grid::Grid& grid_;
  PipelineSpec spec_;
  sched::PipelineProfile profile_;
  AdaptivePipelineOptions options_;
};

}  // namespace gridpipe::core
