#pragma once
// AdaptivePipeline — the library façade and the paper's pattern: one
// pipeline description, any substrate, adaptation transparent to the
// caller. A thin veneer over rt::make_runtime.
//
// Usage:
//   auto grid = gridpipe::grid::heterogeneous_cluster({1.0, 2.0, 1.0}, ...);
//   gridpipe::core::PipelineSpec spec;
//   spec.stage<int, int>("parse", parse_fn, /*work=*/0.1)
//       .stage<int, int>("compute", compute_fn, /*work=*/0.4)
//       .stage<int, int>("encode", encode_fn, /*work=*/0.1);
//   gridpipe::core::AdaptivePipeline pipeline(grid, std::move(spec), {});
//   auto report  = pipeline.run(items);                   // threads
//   auto distrep = pipeline.run(rt::RuntimeKind::kDist, items);
//   auto session = pipeline.open(rt::RuntimeKind::kProcess);  // streaming
//   auto planned = pipeline.plan();                       // mapping only
//   auto simmed  = pipeline.simulate(...);                // DES rehearsal

#include "rt/runtime.hpp"

namespace gridpipe::core {

struct AdaptivePipelineOptions {
  /// runtime.adapt carries the shared control-loop knobs (mapper,
  /// policy, pin_first_stage, max_total_replicas, trigger, ...); plan(),
  /// run() and open() all honor them on every substrate.
  rt::RuntimeOptions runtime{};
};

class AdaptivePipeline {
 public:
  AdaptivePipeline(const grid::Grid& grid, PipelineSpec spec,
                   AdaptivePipelineOptions options = {});

  /// The mapping the scheduler picks for the deployment-time (t = 0)
  /// resource state.
  sched::MapperResult plan() const;

  /// Runs the stream on the threaded runtime with adaptation enabled
  /// (per options.runtime.adapt). Blocking; returns ordered outputs.
  RunReport run(std::vector<std::any> inputs);

  /// Runs the same stream on any substrate via rt::make_runtime.
  RunReport run(rt::RuntimeKind kind, std::vector<std::any> inputs);

  /// Opens a streaming session on any substrate. The session is
  /// self-contained (it may outlive this pipeline); the grid must
  /// outlive the session.
  std::unique_ptr<rt::Session> open(
      rt::RuntimeKind kind = rt::RuntimeKind::kThreads) const;

  /// Rehearses the same pipeline in the discrete-event simulator with
  /// explicit driver/arrival knobs (the classic experiment entry point;
  /// run(kSim, ...) covers the common case).
  sim::RunResult simulate(const sim::SimConfig& sim_config,
                          const sim::DriverOptions& driver_options) const;

  const sched::PipelineProfile& profile() const noexcept { return profile_; }
  const grid::Grid& grid() const noexcept { return grid_; }

 private:
  const grid::Grid& grid_;
  PipelineSpec spec_;
  sched::PipelineProfile profile_;
  AdaptivePipelineOptions options_;
};

}  // namespace gridpipe::core
