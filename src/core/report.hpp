#pragma once
// Result of a pipeline run on any substrate (threads, dist, process, or
// the simulator session's virtual-time rehearsal).

#include <any>
#include <string>
#include <vector>

#include "control/epoch_record.hpp"
#include "obs/metrics.hpp"
#include "sim/metrics.hpp"

namespace gridpipe::core {

struct RunReport {
  /// Outputs ordered by input index (the skeleton restores stream order).
  /// Filled by the blocking run() entry points; streaming sessions hand
  /// outputs out incrementally through Session::try_pop instead, and
  /// their report() leaves this empty.
  std::vector<std::any> outputs;
  std::uint64_t items = 0;
  double wall_seconds = 0.0;     ///< real elapsed time
  double virtual_seconds = 0.0;  ///< wall / time_scale (sim: makespan)
  double throughput = 0.0;       ///< items per *virtual* second
  std::size_t remap_count = 0;
  std::vector<sim::RemapEvent> remaps;
  /// One record per adaptation epoch (empty when adaptation is off) —
  /// the same timeline the simulator's RunResult exposes.
  std::vector<control::EpochRecord> epochs;
  std::string initial_mapping;
  std::string final_mapping;
  /// Mean observed service time per stage (virtual seconds); empty on
  /// substrates that do not observe per-stage service centrally.
  std::vector<double> mean_service;
  /// The run's full metric series (latency percentiles, throughput
  /// timeline, completion times) — populated on every substrate.
  sim::SimMetrics metrics;
  /// Uniform counters/gauges/histograms snapshot from the session's
  /// obs::MetricsRegistry; empty when observability is off. The same
  /// names appear on every substrate (see obs::names).
  obs::MetricsSnapshot obs_metrics;

  // Fault-tolerance accounting (all zero unless the substrate ran with
  // recovery enabled and something actually died).
  std::uint64_t node_losses = 0;    ///< worker deaths detected
  std::uint64_t respawns = 0;       ///< replacements successfully forked
  std::uint64_t items_replayed = 0; ///< journal re-admissions
  std::uint64_t items_deduped = 0;  ///< duplicate deliveries dropped
  /// Virtual seconds per recovery window (death detected → every item
  /// in flight at that moment delivered). One entry per window.
  std::vector<double> recovery_times;

  /// One-paragraph human-readable summary.
  std::string summary() const;
};

/// Shared epilogue of every streaming runtime: derives all timing /
/// remap / epoch fields from the run's metrics. Outputs are not touched
/// here — sessions hand them out through try_pop, and the run() wrappers
/// collect them afterwards. One implementation, so the substrates'
/// reports cannot drift apart.
void finalize_stream_report(RunReport& report, std::uint64_t items,
                            double wall_seconds, double time_scale,
                            sim::SimMetrics metrics,
                            std::vector<control::EpochRecord> epochs,
                            std::string initial_mapping,
                            std::string final_mapping);

/// The one batch wrapper over the executors' shared streaming
/// primitives: begin → push all → close → finish → drain the ordered
/// outputs into the report. Every executor's run() delegates here so
/// the batch semantics cannot drift between substrates.
template <class Executor, class Item>
RunReport run_stream_batch(Executor& executor, std::vector<Item> inputs) {
  if (inputs.empty()) return {};
  executor.stream_begin();
  for (Item& item : inputs) executor.stream_push(std::move(item));
  executor.stream_close();
  RunReport report = executor.stream_finish();
  report.outputs.reserve(report.items);
  while (auto out = executor.stream_try_pop()) {
    report.outputs.emplace_back(std::move(*out));
  }
  return report;
}

}  // namespace gridpipe::core
