#pragma once
// Result of a threaded-runtime pipeline run.

#include <any>
#include <string>
#include <vector>

#include "control/epoch_record.hpp"
#include "sim/metrics.hpp"

namespace gridpipe::core {

struct RunReport {
  /// Outputs ordered by input index (the skeleton restores stream order).
  std::vector<std::any> outputs;
  std::uint64_t items = 0;
  double wall_seconds = 0.0;     ///< real elapsed time
  double virtual_seconds = 0.0;  ///< wall / time_scale
  double throughput = 0.0;       ///< items per *virtual* second
  std::size_t remap_count = 0;
  std::vector<sim::RemapEvent> remaps;
  /// One record per adaptation epoch (empty when adaptation is off) —
  /// the same timeline the simulator's RunResult exposes.
  std::vector<control::EpochRecord> epochs;
  std::string initial_mapping;
  std::string final_mapping;
  /// Mean observed service time per stage (virtual seconds).
  std::vector<double> mean_service;

  /// One-paragraph human-readable summary.
  std::string summary() const;
};

/// Shared epilogue of the message-passing runtimes (DistributedExecutor
/// and proc::ProcessExecutor): sorts `done` back into input order,
/// moves the payloads into outputs, and derives every timing / remap /
/// epoch field — one implementation, so the two substrates' reports
/// cannot drift apart.
void finalize_bytes_report(
    RunReport& report,
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> done,
    double wall_seconds, double time_scale, const sim::SimMetrics& metrics,
    std::vector<control::EpochRecord> epochs, std::string final_mapping);

}  // namespace gridpipe::core
