#include "core/dist_executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/wire.hpp"

namespace gridpipe::core {

namespace {

std::vector<grid::NodeId> rank_map(const grid::Grid& grid) {
  // Worker rank n lives on node n; the controller (last rank) sits on
  // node 0, standing in for the submission host.
  std::vector<grid::NodeId> map;
  for (grid::NodeId n = 0; n < grid.num_nodes(); ++n) map.push_back(n);
  map.push_back(0);
  return map;
}

}  // namespace

DistributedExecutor::DistributedExecutor(const grid::Grid& grid,
                                         std::vector<DistStage> stages,
                                         sched::Mapping initial_mapping,
                                         DistExecutorConfig config)
    : grid_(grid),
      stages_(std::move(stages)),
      initial_mapping_(std::move(initial_mapping)),
      config_(config),
      delays_(grid, rank_map(grid), config.time_scale),
      comm_(static_cast<int>(grid.num_nodes()) + 1, &delays_,
            [this] { return virtual_now(); }) {
  if (stages_.empty()) {
    throw std::invalid_argument("DistributedExecutor: no stages");
  }
  initial_mapping_.validate(grid_.num_nodes());
  if (initial_mapping_.num_stages() != stages_.size()) {
    throw std::invalid_argument("DistributedExecutor: mapping mismatch");
  }
  if (config_.time_scale <= 0.0) {
    throw std::invalid_argument("DistributedExecutor: time_scale <= 0");
  }
  if (config_.window == 0) {
    config_.window = std::max<std::size_t>(4, 2 * stages_.size());
  }
  if (config_.drain_batch == 0) config_.drain_batch = 1;
  start_ = std::chrono::steady_clock::now();
  profile_ = profile();
  controller_ = make_controller();
}

std::unique_ptr<control::AdaptationController>
DistributedExecutor::make_controller() {
  return std::make_unique<control::AdaptationController>(
      grid_, profile_, config_.adapt,
      static_cast<control::AdaptationHost&>(*this));
}

sched::PipelineProfile profile_from_stages(
    const std::vector<DistStage>& stages) {
  sched::PipelineProfile p;
  p.msg_bytes.push_back(stages.front().out_bytes);  // input ≈ first msg
  for (const DistStage& s : stages) {
    p.stage_work.push_back(s.work);
    p.msg_bytes.push_back(s.out_bytes);
    p.state_bytes.push_back(s.state_bytes);
  }
  return p;
}

sched::PipelineProfile DistributedExecutor::profile() const {
  return profile_from_stages(stages_);
}

double DistributedExecutor::virtual_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
             .count() /
         config_.time_scale;
}

Bytes DistributedExecutor::encode_task(std::uint64_t item,
                                       std::uint32_t stage,
                                       const Bytes& payload) {
  return comm::wire::encode_task(item, stage, payload);
}

void DistributedExecutor::decode_task(const Bytes& wire, std::uint64_t& item,
                                      std::uint32_t& stage, Bytes& payload) {
  comm::wire::decode_task(wire, item, stage, payload);
}

Bytes DistributedExecutor::encode_mapping(const sched::Mapping& mapping) {
  return comm::wire::encode_mapping(mapping);
}

sched::Mapping DistributedExecutor::decode_mapping(const Bytes& wire) {
  return comm::wire::decode_mapping(wire);
}

void DistributedExecutor::worker_loop(int rank) {
  RoutingTable routing{initial_mapping_,
                       sched::ReplicaRouter(stages_.size())};
  const auto node = static_cast<grid::NodeId>(rank);

  for (;;) {
    // Drain the rank's queue in batches: one lock acquisition per train of
    // delivered messages instead of one per message.
    auto batch = comm_.recv_n(rank, config_.drain_batch);
    if (batch.empty()) return;  // queue closed and drained

    // Control messages jump the task queue: apply the newest kRemap in
    // the batch before executing anything (routing is eventually
    // consistent, so applying it a few tasks early is strictly fresher),
    // and honor a kShutdown immediately — the controller only sends it
    // once every result is in, so no task in this batch still matters.
    const comm::Message* last_remap = nullptr;
    for (const comm::Message& message : batch) {
      if (message.tag == kShutdown) return;
      if (message.tag == kRemap) last_remap = &message;
    }
    // Each remap fully overwrites the previous one, so only the newest in
    // the batch needs decoding.
    if (last_remap) {
      routing.mapping = decode_mapping(last_remap->payload);
      routing.router.reset(stages_.size());
    }

    for (comm::Message& message : batch) {
      if (message.tag != kTask) continue;  // handled or unknown above

      std::uint64_t item;
      std::uint32_t stage;
      Bytes payload;
      decode_task(message.payload, item, stage, payload);

      const auto t0 = std::chrono::steady_clock::now();
      const double v0 = virtual_now();
      Bytes out = stages_[stage].fn(payload);
      if (config_.emulate_compute) {
        const double service =
            stages_[stage].work / grid_.effective_speed(node, v0);
        std::this_thread::sleep_until(
            t0 +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(service * config_.time_scale)));
      }
      const double duration =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count() /
          config_.time_scale;

      // Report the observed speed to the controller's monitor.
      if (duration > 0.0) {
        comm_.send_value(rank, controller_rank(), kSpeedObs,
                         stages_[stage].work / duration);
      }

      if (stage + 1 == stages_.size()) {
        comm_.send(rank, controller_rank(), kResult,
                   encode_task(item, stage + 1, out));
      } else {
        const grid::NodeId dst = routing.pick(stage + 1);
        comm_.send(rank, static_cast<int>(dst), kTask,
                   encode_task(item, stage + 1, out));
      }
    }
  }
}

sched::Mapping DistributedExecutor::deployed_mapping() const {
  return controller_mapping_;
}

void DistributedExecutor::record_probes(double) {
  // Observations arrive as kSpeedObs messages; nothing to probe here.
}

void DistributedExecutor::apply_remap(const sched::Mapping& to,
                                      double pause_virtual) {
  metrics_.on_remap(virtual_now(), pause_virtual,
                    controller_mapping_.to_string(), to.to_string());
  controller_mapping_ = to;
  controller_router_.reset(stages_.size());
  const Bytes wire = encode_mapping(controller_mapping_);
  for (int rank = 0; rank < controller_rank(); ++rank) {
    comm_.send(controller_rank(), rank, kRemap, wire);
  }
}

void DistributedExecutor::controller_loop(
    std::vector<Bytes>& inputs,
    std::vector<std::pair<std::uint64_t, Bytes>>& done) {
  const int me = controller_rank();
  auto pick_first_stage = [&] {
    return controller_router_.pick(controller_mapping_, 0);
  };
  auto admit = [&](std::uint64_t index) {
    comm_.send(me, static_cast<int>(pick_first_stage()), kTask,
               encode_task(index, 0, inputs[index]));
  };
  // Initial wave: group by destination and push each group with one lock
  // acquisition on the destination queue.
  {
    const auto wave = std::min<std::uint64_t>(config_.window, total_items_);
    std::vector<std::vector<Bytes>> per_dst(grid_.num_nodes());
    for (std::uint64_t i = 0; i < wave; ++i) {
      const std::uint64_t index = next_input_++;
      per_dst[pick_first_stage()].push_back(encode_task(index, 0,
                                                        inputs[index]));
    }
    for (std::size_t dst = 0; dst < per_dst.size(); ++dst) {
      if (per_dst[dst].empty()) continue;
      comm_.send_n(me, static_cast<int>(dst), kTask, std::move(per_dst[dst]));
    }
  }

  const double epoch = config_.adapt.epoch;
  double next_epoch = epoch;

  while (done.size() < total_items_) {
    // Wait at most until the next adaptation point (50 ms real otherwise).
    double wait_real = 0.05;
    if (epoch > 0.0) {
      wait_real = std::max(1e-3, (next_epoch - virtual_now()) *
                                     config_.time_scale);
    }
    auto handle = [&](comm::Message& message) {
      if (message.tag == kResult) {
        std::uint64_t item;
        std::uint32_t stage;
        Bytes payload;
        decode_task(message.payload, item, stage, payload);
        metrics_.on_item_completed(item, virtual_now(), 0.0);
        done.emplace_back(item, std::move(payload));
        if (next_input_ < total_items_) admit(next_input_++);
      } else if (message.tag == kSpeedObs) {
        controller_->record_observation(
            {monitor::SensorKind::kNodeSpeed,
             static_cast<std::uint32_t>(message.source), 0},
            comm::Communicator::decode<double>(message));
      }
    };
    auto message =
        comm_.recv_for(me, std::chrono::duration<double>(wait_real));
    if (message) {
      handle(*message);
      // Results tend to arrive in bursts; drain whatever else is already
      // delivered under a single lock acquisition.
      for (comm::Message& m : comm_.try_recv_n(me, config_.drain_batch)) {
        handle(m);
      }
    }
    if (epoch > 0.0 && virtual_now() >= next_epoch) {
      controller_->run_epoch();
      next_epoch += epoch;
    }
  }

  for (int rank = 0; rank < me; ++rank) {
    comm_.send(me, rank, kShutdown, {});
  }
}

RunReport DistributedExecutor::run(std::vector<Bytes> inputs) {
  RunReport report;
  if (inputs.empty()) return report;

  // Fresh controller per run: the virtual clock restarts at 0, so gate
  // snapshots, hysteresis streaks and registry timestamps from a
  // previous run would all be stale.
  controller_ = make_controller();

  total_items_ = inputs.size();
  next_input_ = 0;
  controller_mapping_ = initial_mapping_;
  controller_router_.reset(stages_.size());
  metrics_ = sim::SimMetrics{};  // time series restart with the clock
  start_ = std::chrono::steady_clock::now();
  report.initial_mapping = initial_mapping_.to_string();

  std::vector<std::pair<std::uint64_t, Bytes>> done;
  done.reserve(inputs.size());

  std::vector<std::thread> workers;
  for (int rank = 0; rank < controller_rank(); ++rank) {
    workers.emplace_back([this, rank] { worker_loop(rank); });
  }
  controller_loop(inputs, done);
  for (auto& t : workers) t.join();

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  finalize_bytes_report(report, std::move(done), wall, config_.time_scale,
                        metrics_, controller_->take_epochs(),
                        controller_mapping_.to_string());
  return report;
}

}  // namespace gridpipe::core
