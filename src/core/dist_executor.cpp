#include "core/dist_executor.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "comm/wire.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace gridpipe::core {

namespace {

std::vector<grid::NodeId> rank_map(const grid::Grid& grid) {
  // Worker rank n lives on node n; the controller (last rank) sits on
  // node 0, standing in for the submission host.
  std::vector<grid::NodeId> map;
  for (grid::NodeId n = 0; n < grid.num_nodes(); ++n) map.push_back(n);
  map.push_back(0);
  return map;
}

}  // namespace

DistributedExecutor::DistributedExecutor(const grid::Grid& grid,
                                         std::vector<DistStage> stages,
                                         sched::Mapping initial_mapping,
                                         DistExecutorConfig config)
    : grid_(grid),
      stages_(std::move(stages)),
      initial_mapping_(std::move(initial_mapping)),
      config_(config),
      delays_(grid, rank_map(grid), config.time_scale),
      comm_(static_cast<int>(grid.num_nodes()) + 1, &delays_,
            [this] { return virtual_now(); }) {
  if (stages_.empty()) {
    throw std::invalid_argument("DistributedExecutor: no stages");
  }
  initial_mapping_.validate(grid_.num_nodes());
  if (initial_mapping_.num_stages() != stages_.size()) {
    throw std::invalid_argument("DistributedExecutor: mapping mismatch");
  }
  if (config_.time_scale <= 0.0) {
    throw std::invalid_argument("DistributedExecutor: time_scale <= 0");
  }
  if (config_.window == 0) {
    config_.window = std::max<std::size_t>(4, 2 * stages_.size());
  }
  if (config_.drain_batch == 0) config_.drain_batch = 1;
  start_ = std::chrono::steady_clock::now();
  profile_ = profile();
  obs_metrics_.bind(config_.obs.metrics);
  controller_ = make_controller();
  try {
    flight_ = obs::FlightRecorder(grid_.num_nodes() + 1,
                                  config_.flight_events);
  } catch (const std::runtime_error&) {
    // mmap failure: run without the forensic ring (every handle inert).
  }
  ctl_flight_ = flight_.ring(0);
}

DistributedExecutor::~DistributedExecutor() {
  if (stream_active_) {
    try {
      stream_close();
      stream_finish();
    } catch (...) {
      // Destructor best-effort teardown.
    }
  }
}

std::unique_ptr<control::AdaptationController>
DistributedExecutor::make_controller() {
  return std::make_unique<control::AdaptationController>(
      grid_, profile_, config_.adapt,
      static_cast<control::AdaptationHost&>(*this),
      control::AdaptationController::Mode::kPolicy, config_.obs);
}

BytesStageFn bytes_stage_fn(std::function<Bytes(Bytes)> fn) {
  return [fn = std::move(fn)](ByteSpan in, Bytes& out) {
    const Bytes result = fn(Bytes(in.begin(), in.end()));
    const std::size_t off = out.size();
    out.resize(off + result.size());
    if (!result.empty()) {
      std::memcpy(out.data() + off, result.data(), result.size());
    }
  };
}

sched::PipelineProfile profile_from_stages(
    const std::vector<DistStage>& stages) {
  sched::PipelineProfile p;
  p.msg_bytes.push_back(stages.front().out_bytes);  // input ≈ first msg
  for (const DistStage& s : stages) {
    p.stage_work.push_back(s.work);
    p.msg_bytes.push_back(s.out_bytes);
    p.state_bytes.push_back(s.state_bytes);
  }
  return p;
}

sched::PipelineProfile DistributedExecutor::profile() const {
  return profile_from_stages(stages_);
}

double DistributedExecutor::virtual_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
             .count() /
         config_.time_scale;
}

Bytes DistributedExecutor::encode_task(std::uint64_t item,
                                       std::uint32_t stage,
                                       const Bytes& payload) {
  return comm::wire::encode_task(item, stage, payload);
}

void DistributedExecutor::decode_task(const Bytes& wire, std::uint64_t& item,
                                      std::uint32_t& stage, Bytes& payload) {
  comm::wire::decode_task(wire, item, stage, payload);
}

Bytes DistributedExecutor::encode_mapping(const sched::Mapping& mapping) {
  return comm::wire::encode_mapping(mapping);
}

sched::Mapping DistributedExecutor::decode_mapping(const Bytes& wire) {
  return comm::wire::decode_mapping(wire);
}

void DistributedExecutor::worker_loop(int rank) {
  try {
    worker_loop_impl(rank);
  } catch (...) {
    // A throwing stage function (or a malformed payload) ends the
    // stream: capture the first error; the controller loop notices it
    // within one poll tick and shuts the fleet down, and
    // stream_finish() rethrows it to the caller.
    util::MutexLock lock(stream_mutex_);
    if (!stream_error_) stream_error_ = std::current_exception();
  }
}

void DistributedExecutor::worker_loop_impl(int rank) {
  RoutingTable routing{initial_mapping_,
                       sched::ReplicaRouter(stages_.size())};
  const auto node = static_cast<grid::NodeId>(rank);
  // Single writer for this lane: this thread is rank `rank`'s only one.
  obs::FlightRing flight = flight_.ring(1 + static_cast<std::size_t>(rank));

  // Worker-side telemetry is buffered locally and shipped to the
  // controller rank as kTelemetry messages after each drained batch —
  // the sinks themselves live on the controller side, so one trace file
  // covers every rank on the shared virtual clock.
  const bool telemetry = config_.obs.any();
  obs::TelemetryBatch spans;
  std::uint64_t executed = 0;
  const auto flush_telemetry = [&] {
    if (!telemetry) return;
    if (executed) spans.counters.push_back({"stage_executions", executed});
    executed = 0;
    if (spans.empty()) return;
    comm_.send(rank, controller_rank(), kTelemetry,
               obs::encode_telemetry(spans));
    spans = obs::TelemetryBatch{};
  };

  for (;;) {
    // Drain the rank's queue in batches: one lock acquisition per train of
    // delivered messages instead of one per message.
    auto batch = comm_.recv_n(rank, config_.drain_batch);
    if (batch.empty()) {
      flush_telemetry();
      return;  // queue closed and drained
    }

    // Control messages jump the task queue: apply the newest kRemap in
    // the batch before executing anything (routing is eventually
    // consistent, so applying it a few tasks early is strictly fresher),
    // and honor a kShutdown immediately — the controller only sends it
    // once every result is in, so no task in this batch still matters.
    const comm::Message* last_remap = nullptr;
    bool shutdown = false;
    for (const comm::Message& message : batch) {
      if (message.tag == kShutdown) shutdown = true;
      if (message.tag == kRemap) last_remap = &message;
    }
    if (shutdown) {
      flush_telemetry();
      return;
    }
    // Each remap fully overwrites the previous one, so only the newest in
    // the batch needs decoding.
    if (last_remap) {
      routing.mapping = decode_mapping(last_remap->payload);
      routing.router.reset(stages_.size());
    }

    for (comm::Message& message : batch) {
      if (message.tag != kTask) continue;  // handled or unknown above

      const comm::wire::TaskView task =
          comm::wire::decode_task(comm::wire::ByteSpan(message.payload));
      const std::uint64_t item = task.item;
      const std::uint32_t stage = task.stage;

      const auto t0 = std::chrono::steady_clock::now();
      const double v0 = virtual_now();
      flight.record(obs::FlightKind::kTaskStart, v0, stage, item);
      // Compose the next hop in one pooled buffer: the task header goes
      // first, then the stage function appends its output right after —
      // no fresh vector anywhere on the path.
      Bytes out = pool_.acquire();
      comm::wire::encode_task_header_into(out, item, stage + 1);
      stages_[stage].fn(task.payload, out);
      if (config_.emulate_compute) {
        const double service =
            stages_[stage].work / grid_.effective_speed(node, v0);
        std::this_thread::sleep_until(
            t0 +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(service * config_.time_scale)));
      }
      const double duration =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count() /
          config_.time_scale;
      flight.record(obs::FlightKind::kTaskDone, v0 + duration, stage, item,
                    std::bit_cast<std::uint64_t>(duration));

      // Report the observed speed to the controller's monitor.
      if (duration > 0.0) {
        Bytes obs = pool_.acquire();
        comm::wire::encode_f64_into(obs, stages_[stage].work / duration);
        comm_.send(rank, controller_rank(), kSpeedObs, std::move(obs));
      }

      if (telemetry) {
        ++executed;
        obs::TraceEvent span;
        span.name = stages_[stage].name;
        span.kind = obs::SpanKind::kStage;
        span.start = v0;
        span.duration = duration;
        span.tid = static_cast<std::uint32_t>(1 + node);
        span.item = item;
        span.stage = stage;
        spans.events.push_back(std::move(span));
      }

      if (stage + 1 == stages_.size()) {
        comm_.send(rank, controller_rank(), kResult, std::move(out));
      } else {
        const grid::NodeId dst = routing.pick(stage + 1);
        if (telemetry) {
          const double v_send = virtual_now();
          obs::TraceEvent hop;
          hop.name = "hop";
          hop.kind = obs::SpanKind::kWire;
          hop.start = v_send;
          hop.duration = grid_.transfer_time(node, dst,
                                             stages_[stage].out_bytes, v_send);
          hop.tid = static_cast<std::uint32_t>(1 + dst);
          hop.item = item;
          hop.stage = stage + 1;
          spans.events.push_back(std::move(hop));
        }
        comm_.send(rank, static_cast<int>(dst), kTask, std::move(out));
      }
      // The input payload is fully consumed (the view died with the fn
      // call); recycle its buffer.
      pool_.release(std::move(message.payload));
    }
    flush_telemetry();
  }
}

sched::Mapping DistributedExecutor::deployed_mapping() const {
  return controller_mapping_;
}

void DistributedExecutor::record_probes(double) {
  // Observations arrive as kSpeedObs messages; nothing to probe here.
}

void DistributedExecutor::apply_remap(const sched::Mapping& to,
                                      double pause_virtual) {
  ctl_flight_.record(obs::FlightKind::kRemap, virtual_now());
  metrics_.on_remap(virtual_now(), pause_virtual,
                    controller_mapping_.to_string(), to.to_string());
  controller_mapping_ = to;
  controller_router_.reset(stages_.size());
  {
    util::MutexLock lock(stream_mutex_);
    status_mapping_ = controller_mapping_.to_string();
  }
  const Bytes wire = encode_mapping(controller_mapping_);
  for (int rank = 0; rank < controller_rank(); ++rank) {
    comm_.send(controller_rank(), rank, kRemap, wire);
  }
}

void DistributedExecutor::controller_loop() {
  const int me = controller_rank();
  // Pushed-but-not-admitted items, in input order (local to the
  // controller thread; stream_push only touches incoming_).
  std::deque<std::pair<std::uint64_t, Bytes>> pending;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;

  auto admit = [&](std::uint64_t index, Bytes payload) {
    const grid::NodeId dst = controller_router_.pick(controller_mapping_, 0);
    Bytes wire = pool_.acquire();
    comm::wire::encode_task_into(wire, index, 0, payload);
    comm_.send(me, static_cast<int>(dst), kTask, std::move(wire));
    pool_.release(std::move(payload));
    const double vnow = virtual_now();
    admit_time_[index] = vnow;
    ctl_flight_.record(obs::FlightKind::kAdmit, vnow, 0, index);
    obs::record_span(config_.obs.tracer, obs::SpanKind::kAdmit, "admit", vnow,
                     0.0, 0, index);
    ++admitted;
    if (admitted - completed >= config_.window) {
      // The credit window just filled: the next push will queue.
      ctl_flight_.record(obs::FlightKind::kCredit, vnow, 0,
                         admitted - completed, config_.window);
    }
  };

  const double epoch = config_.adapt.epoch;
  double next_epoch = epoch;

  auto handle = [&](comm::Message& message) {
    if (message.tag == kResult) {
      const comm::wire::TaskView task =
          comm::wire::decode_task(comm::wire::ByteSpan(message.payload));
      const std::uint64_t item = task.item;
      double created_at = 0.0;
      if (auto it = admit_time_.find(item); it != admit_time_.end()) {
        created_at = it->second;
        admit_time_.erase(it);
      }
      const double vnow = virtual_now();
      metrics_.on_item_completed(item, vnow, created_at);
      obs::record_span(config_.obs.tracer, obs::SpanKind::kItem, "item",
                       created_at, vnow - created_at, 0, item);
      if (obs_metrics_.items_completed) {
        obs_metrics_.items_completed->add(1);
        obs_metrics_.item_latency->record(vnow - created_at);
      }
      ++completed;
      ctl_flight_.record(obs::FlightKind::kComplete, vnow, 0, item);
      // The output crosses the API boundary, so it must own its bytes:
      // one copy out of the wire buffer, then the buffer recycles.
      Bytes payload(task.payload.begin(), task.payload.end());
      {
        util::MutexLock lock(stream_mutex_);
        out_buffer_.emplace(item, std::move(payload));
        if (config_.obs.tracer) completed_at_.emplace(item, vnow);
        ++completed_count_;
      }
      pool_.release(std::move(message.payload));
    } else if (message.tag == kSpeedObs) {
      controller_->record_observation(
          {monitor::SensorKind::kNodeSpeed,
           static_cast<std::uint32_t>(message.source), 0},
          comm::wire::decode_f64(comm::wire::ByteSpan(message.payload)));
      pool_.release(std::move(message.payload));
    } else if (message.tag == kTelemetry) {
      obs::apply_telemetry(obs::decode_telemetry(message.payload),
                           config_.obs);
      pool_.release(std::move(message.payload));
    }
  };

  for (;;) {
    // Take ownership of freshly pushed items, then admit under the
    // credit window.
    bool done = false;
    {
      util::MutexLock lock(stream_mutex_);
      while (!incoming_.empty()) {
        pending.push_back(std::move(incoming_.front()));
        incoming_.pop_front();
      }
      done = (closed_ && completed == pushed_) || stream_error_ != nullptr;
      status_admitted_ = admitted;
    }
    while (!pending.empty() && admitted - completed < config_.window) {
      auto entry = std::move(pending.front());
      pending.pop_front();
      admit(entry.first, std::move(entry.second));
    }
    if (done) break;

    // Wait at most until the next adaptation point, capped at 50 ms real
    // either way: nothing wakes recv_for on a stream_push/stream_close,
    // so the cap is what bounds the latency of noticing one.
    double wait_real = 0.05;
    if (epoch > 0.0) {
      wait_real = std::clamp((next_epoch - virtual_now()) * config_.time_scale,
                             1e-3, 0.05);
    }
    auto message =
        comm_.recv_for(me, std::chrono::duration<double>(wait_real));
    if (message) {
      handle(*message);
      // Results tend to arrive in bursts; drain whatever else is already
      // delivered under a single lock acquisition.
      for (comm::Message& m : comm_.try_recv_n(me, config_.drain_batch)) {
        handle(m);
      }
    }
    if (epoch > 0.0 && virtual_now() >= next_epoch) {
      const control::EpochRecord record = controller_->run_epoch();
      ctl_flight_.record(
          obs::FlightKind::kEpoch, record.time,
          (record.decided ? 1u : 0u) | (record.remapped ? 2u : 0u));
      next_epoch += epoch;
    }
  }

  ctl_flight_.record(obs::FlightKind::kClose, virtual_now());
  for (int rank = 0; rank < me; ++rank) {
    comm_.send(me, rank, kShutdown, {});
  }
}

void DistributedExecutor::stream_begin() {
  if (stream_active_) {
    throw std::logic_error("DistributedExecutor: a stream is already active");
  }
  // Fresh controller per stream: the virtual clock restarts at 0, so gate
  // snapshots, hysteresis streaks and registry timestamps from a
  // previous stream would all be stale.
  controller_ = make_controller();

  {
    util::MutexLock lock(stream_mutex_);
    incoming_.clear();
    out_buffer_.clear();
    completed_at_.clear();
    next_out_ = 0;
    pushed_ = 0;
    completed_count_ = 0;
    closed_ = false;
    stream_error_ = nullptr;
    status_mapping_ = initial_mapping_.to_string();
    status_admitted_ = 0;
  }
  admit_time_.clear();
  controller_mapping_ = initial_mapping_;
  controller_router_.reset(stages_.size());
  metrics_ = sim::SimMetrics{};  // time series restart with the clock
  start_ = std::chrono::steady_clock::now();
  initial_mapping_str_ = initial_mapping_.to_string();
  stream_active_ = true;

  for (int rank = 0; rank < controller_rank(); ++rank) {
    worker_threads_.emplace_back([this, rank] { worker_loop(rank); });
  }
  controller_thread_ = std::thread([this] { controller_loop(); });
}

void DistributedExecutor::stream_push(Bytes item) {
  util::MutexLock lock(stream_mutex_);
  if (!stream_active_ || closed_) {
    throw std::logic_error("DistributedExecutor: push on a closed stream");
  }
  incoming_.emplace_back(pushed_++, std::move(item));
  if (obs_metrics_.items_pushed) obs_metrics_.items_pushed->add(1);
}

std::optional<Bytes> DistributedExecutor::stream_try_pop() {
  util::MutexLock lock(stream_mutex_);
  auto it = out_buffer_.find(next_out_);
  if (it == out_buffer_.end()) return std::nullopt;
  Bytes out = std::move(it->second);
  out_buffer_.erase(it);
  if (config_.obs.tracer) {
    if (auto done = completed_at_.find(next_out_);
        done != completed_at_.end()) {
      obs::record_span(config_.obs.tracer, obs::SpanKind::kWait, "wait",
                       done->second, virtual_now() - done->second, 0,
                       next_out_);
      completed_at_.erase(done);
    }
  }
  ++next_out_;
  return out;
}

void DistributedExecutor::stream_close() {
  util::MutexLock lock(stream_mutex_);
  closed_ = true;
}

RunReport DistributedExecutor::stream_finish() {
  if (!stream_active_) {
    throw std::logic_error("DistributedExecutor: no active stream to finish");
  }
  {
    util::MutexLock lock(stream_mutex_);
    if (!closed_) {
      throw std::logic_error(
          "DistributedExecutor: stream_close() before stream_finish()");
    }
  }
  controller_thread_.join();
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
  if (config_.obs.any()) {
    // Workers flush their final telemetry on kShutdown, after the
    // controller loop has stopped receiving; collect the stragglers now
    // that every rank is joined so the trace covers the whole stream.
    for (comm::Message& m :
         comm_.try_recv_n(controller_rank(), std::size_t(-1))) {
      if (m.tag == kTelemetry) {
        obs::apply_telemetry(obs::decode_telemetry(m.payload), config_.obs);
      }
    }
  }
  stream_active_ = false;
  {
    util::MutexLock lock(stream_mutex_);
    if (stream_error_) std::rethrow_exception(stream_error_);
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::uint64_t items = 0;
  {
    util::MutexLock lock(stream_mutex_);
    items = completed_count_;
  }
  RunReport report;
  // The controller thread is joined; move the O(items) metric series.
  finalize_stream_report(report, items, wall, config_.time_scale,
                         std::move(metrics_), controller_->take_epochs(),
                         std::move(initial_mapping_str_),
                         controller_mapping_.to_string());
  return report;
}

util::Json DistributedExecutor::status() const {
  util::Json doc = util::Json::object();
  doc["substrate"] = "dist";
  doc["virtual_time"] = virtual_now();
  doc["window"] = static_cast<std::uint64_t>(config_.window);
  util::MutexLock lock(stream_mutex_);
  doc["mapping"] = status_mapping_;
  doc["pushed"] = pushed_;
  doc["admitted"] = status_admitted_;
  doc["completed"] = completed_count_;
  doc["in_flight"] =
      status_admitted_ - std::min(completed_count_, status_admitted_);
  doc["buffered_out"] = static_cast<std::uint64_t>(out_buffer_.size());
  doc["next_out"] = next_out_;
  doc["closed"] = closed_;
  return doc;
}

RunReport DistributedExecutor::run(std::vector<Bytes> inputs) {
  return run_stream_batch(*this, std::move(inputs));
}

}  // namespace gridpipe::core
