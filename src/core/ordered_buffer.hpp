#pragma once
// core::OrderedDedupBuffer — the reorder buffer every streaming session
// drains its outputs through, now with seq-keyed duplicate rejection.
//
// Results arrive keyed by the item's admission sequence number, in
// whatever order the pipeline completes them, and leave in seq order
// through try_pop. Under fault-tolerant replay the same seq can
// legitimately complete twice (the replay raced the original past the
// crash); insert() rejects anything at a seq that was already delivered
// or is already buffered, so downstream consumers observe exactly-once,
// in-order delivery no matter how many times an item was executed.
//
// Not internally synchronized — callers hold their stream mutex, same
// as the map it replaces.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace gridpipe::core {

class OrderedDedupBuffer {
 public:
  using Bytes = std::vector<std::byte>;

  /// Buffers `payload` for seq. Returns false (and drops the payload)
  /// when seq was already delivered or is already buffered — i.e. this
  /// delivery is a duplicate.
  bool insert(std::uint64_t seq, Bytes payload) {
    if (seq < next_ || !buffered_.emplace(seq, std::move(payload)).second) {
      return false;
    }
    return true;
  }

  /// True when the next in-order item is ready to pop.
  bool ready() const {
    const auto it = buffered_.begin();
    return it != buffered_.end() && it->first == next_;
  }

  /// Pops the next in-order payload; call only when ready().
  Bytes pop() {
    auto it = buffered_.begin();
    Bytes out = std::move(it->second);
    buffered_.erase(it);
    ++next_;
    return out;
  }

  /// Seq the consumer will receive next (== items delivered so far).
  std::uint64_t next() const noexcept { return next_; }
  std::size_t buffered() const noexcept { return buffered_.size(); }
  bool empty() const noexcept { return buffered_.empty(); }

  void reset() {
    buffered_.clear();
    next_ = 0;
  }

 private:
  std::map<std::uint64_t, Bytes> buffered_;
  std::uint64_t next_ = 0;
};

}  // namespace gridpipe::core
