#pragma once
// Per-stage wire codecs: how a typed item crosses a serialization
// boundary. In-process runtimes (sim, threads) move std::any values and
// never need one; the serialized runtimes (dist, process) must turn every
// item into bytes on each hop, so a typed stage carries an encoder for
// its output type and a decoder for its input type.
//
// Codec<T> is the customization point: specialize it (or satisfy the
// built-ins below) with
//     static Bytes encode(const T&);
//     static T decode(const Bytes&);
// Built-ins cover Bytes (identity), all arithmetic types (fixed-width
// memcpy — the runtimes never cross an endianness boundary, see
// comm/wire.hpp) and std::string. ItemCodec type-erases a Codec<T> so
// core::PipelineSpec can store codecs without being a template.

#include <any>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

namespace gridpipe::core {

using Bytes = std::vector<std::byte>;

template <class T>
struct Codec;  // primary: specialize for your type

template <>
struct Codec<Bytes> {
  static Bytes encode(const Bytes& v) { return v; }
  static Bytes decode(const Bytes& wire) { return wire; }
};

template <class T>
  requires std::is_arithmetic_v<T>
struct Codec<T> {
  static Bytes encode(const T& v) {
    Bytes wire(sizeof(T));
    std::memcpy(wire.data(), &v, sizeof(T));
    return wire;
  }
  static T decode(const Bytes& wire) {
    if (wire.size() != sizeof(T)) {
      throw std::invalid_argument(
          "Codec: arithmetic payload of " + std::to_string(wire.size()) +
          " bytes, expected " + std::to_string(sizeof(T)));
    }
    T v;
    std::memcpy(&v, wire.data(), sizeof(T));
    return v;
  }
};

template <>
struct Codec<std::string> {
  static Bytes encode(const std::string& v) {
    Bytes wire(v.size());
    std::memcpy(wire.data(), v.data(), v.size());
    return wire;
  }
  static std::string decode(const Bytes& wire) {
    return std::string(reinterpret_cast<const char*>(wire.data()),
                       wire.size());
  }
};

/// Satisfied by any T with a usable Codec<T> specialization.
template <class T>
concept WireCodable = requires(const T& v, const Bytes& wire) {
  { Codec<T>::encode(v) } -> std::same_as<Bytes>;
  { Codec<T>::decode(wire) } -> std::same_as<T>;
};

namespace detail {
/// Human-readable name for error messages (typeid names are mangled on
/// GCC/Clang; spell out the common cases).
template <class T>
std::string codec_type_name() {
  if constexpr (std::is_same_v<T, Bytes>) return "Bytes";
  else if constexpr (std::is_same_v<T, std::string>) return "std::string";
  else if constexpr (std::is_same_v<T, int>) return "int";
  else if constexpr (std::is_same_v<T, unsigned>) return "unsigned";
  else if constexpr (std::is_same_v<T, long>) return "long";
  else if constexpr (std::is_same_v<T, long long>) return "long long";
  else if constexpr (std::is_same_v<T, unsigned long>) return "unsigned long";
  else if constexpr (std::is_same_v<T, unsigned long long>) return "unsigned long long";
  else if constexpr (std::is_same_v<T, float>) return "float";
  else if constexpr (std::is_same_v<T, double>) return "double";
  else return typeid(T).name();
}
}  // namespace detail

/// A type-erased Codec<T>: what PipelineSpec stores per stage. Invalid
/// (default-constructed) on untyped std::any stages.
class ItemCodec {
 public:
  ItemCodec() = default;

  template <class T>
    requires WireCodable<T>
  static ItemCodec of() {
    ItemCodec codec;
    codec.type_ = &typeid(T);
    codec.type_name_ = detail::codec_type_name<T>();
    codec.encode_ = [](const std::any& v) {
      return Codec<T>::encode(std::any_cast<const T&>(v));
    };
    codec.decode_ = [](const Bytes& wire) {
      return std::any(Codec<T>::decode(wire));
    };
    return codec;
  }

  explicit operator bool() const noexcept { return type_ != nullptr; }
  const std::type_info* type() const noexcept { return type_; }
  const std::string& type_name() const noexcept { return type_name_; }

  Bytes encode(const std::any& v) const { return encode_(v); }
  std::any decode(const Bytes& wire) const { return decode_(wire); }

 private:
  const std::type_info* type_ = nullptr;
  std::string type_name_;
  std::function<Bytes(const std::any&)> encode_;
  std::function<std::any(const Bytes&)> decode_;
};

}  // namespace gridpipe::core
