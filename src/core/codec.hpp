#pragma once
// Per-stage wire codecs: how a typed item crosses a serialization
// boundary. In-process runtimes (sim, threads) move std::any values and
// never need one; the serialized runtimes (dist, process) must turn every
// item into bytes on each hop, so a typed stage carries an encoder for
// its output type and a decoder for its input type.
//
// Codec<T> is the customization point: specialize it (or satisfy the
// built-ins below) with
//     static Bytes encode(const T&);
//     static T decode(ByteSpan);           // or decode(const Bytes&)
//     static void encode_into(const T&, Bytes&);   // optional
// Built-ins cover Bytes (identity), all arithmetic types (fixed-width
// memcpy — the runtimes never cross an endianness boundary, see
// comm/wire.hpp) and std::string. A span-based decode lets the
// serialized runtimes hand the codec a view into a transport buffer
// without copying; encode_into appends into a pooled buffer so the hot
// path composes header + payload with zero fresh allocations. Codecs
// that only provide the legacy Bytes-based decode (or no encode_into)
// still work — the dispatch helpers below fall back to a copy.
// ItemCodec type-erases a Codec<T> so core::PipelineSpec can store
// codecs without being a template.

#include <any>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

namespace gridpipe::core {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;

template <class T>
struct Codec;  // primary: specialize for your type

template <>
struct Codec<Bytes> {
  static Bytes encode(const Bytes& v) { return v; }
  static void encode_into(const Bytes& v, Bytes& out) {
    const std::size_t off = out.size();
    out.resize(off + v.size());
    if (!v.empty()) std::memcpy(out.data() + off, v.data(), v.size());
  }
  static Bytes decode(ByteSpan wire) {
    return Bytes(wire.begin(), wire.end());
  }
};

template <class T>
  requires std::is_arithmetic_v<T>
struct Codec<T> {
  static Bytes encode(const T& v) {
    Bytes wire(sizeof(T));
    std::memcpy(wire.data(), &v, sizeof(T));
    return wire;
  }
  static void encode_into(const T& v, Bytes& out) {
    const std::size_t off = out.size();
    out.resize(off + sizeof(T));
    std::memcpy(out.data() + off, &v, sizeof(T));
  }
  static T decode(ByteSpan wire) {
    if (wire.size() != sizeof(T)) {
      throw std::invalid_argument(
          "Codec: arithmetic payload of " + std::to_string(wire.size()) +
          " bytes, expected " + std::to_string(sizeof(T)));
    }
    T v;
    std::memcpy(&v, wire.data(), sizeof(T));
    return v;
  }
};

template <>
struct Codec<std::string> {
  static Bytes encode(const std::string& v) {
    Bytes wire(v.size());
    std::memcpy(wire.data(), v.data(), v.size());
    return wire;
  }
  static void encode_into(const std::string& v, Bytes& out) {
    const std::size_t off = out.size();
    out.resize(off + v.size());
    if (!v.empty()) std::memcpy(out.data() + off, v.data(), v.size());
  }
  static std::string decode(ByteSpan wire) {
    return std::string(reinterpret_cast<const char*>(wire.data()),
                       wire.size());
  }
};

namespace detail {

/// Decode dispatch: prefer the zero-copy span overload, fall back to
/// the legacy Bytes-based one (with a copy) for older specializations.
template <class T>
concept SpanDecodable = requires(ByteSpan wire) {
  { Codec<T>::decode(wire) } -> std::same_as<T>;
};
template <class T>
concept BytesDecodable = requires(const Bytes& wire) {
  { Codec<T>::decode(wire) } -> std::same_as<T>;
};
template <class T>
concept AppendEncodable = requires(const T& v, Bytes& out) {
  Codec<T>::encode_into(v, out);
};

template <class T>
T codec_decode(ByteSpan wire) {
  if constexpr (SpanDecodable<T>) {
    return Codec<T>::decode(wire);
  } else {
    return Codec<T>::decode(Bytes(wire.begin(), wire.end()));
  }
}

template <class T>
void codec_encode_into(const T& v, Bytes& out) {
  if constexpr (AppendEncodable<T>) {
    Codec<T>::encode_into(v, out);
  } else {
    const Bytes wire = Codec<T>::encode(v);
    const std::size_t off = out.size();
    out.resize(off + wire.size());
    if (!wire.empty()) std::memcpy(out.data() + off, wire.data(), wire.size());
  }
}

}  // namespace detail

/// Satisfied by any T with a usable Codec<T> specialization.
template <class T>
concept WireCodable = requires(const T& v) {
  { Codec<T>::encode(v) } -> std::same_as<Bytes>;
} && (detail::SpanDecodable<T> || detail::BytesDecodable<T>);

namespace detail {
/// Human-readable name for error messages (typeid names are mangled on
/// GCC/Clang; spell out the common cases).
template <class T>
std::string codec_type_name() {
  if constexpr (std::is_same_v<T, Bytes>) return "Bytes";
  else if constexpr (std::is_same_v<T, std::string>) return "std::string";
  else if constexpr (std::is_same_v<T, int>) return "int";
  else if constexpr (std::is_same_v<T, unsigned>) return "unsigned";
  else if constexpr (std::is_same_v<T, long>) return "long";
  else if constexpr (std::is_same_v<T, long long>) return "long long";
  else if constexpr (std::is_same_v<T, unsigned long>) return "unsigned long";
  else if constexpr (std::is_same_v<T, unsigned long long>) return "unsigned long long";
  else if constexpr (std::is_same_v<T, float>) return "float";
  else if constexpr (std::is_same_v<T, double>) return "double";
  else return typeid(T).name();
}
}  // namespace detail

/// A type-erased Codec<T>: what PipelineSpec stores per stage. Invalid
/// (default-constructed) on untyped std::any stages.
class ItemCodec {
 public:
  ItemCodec() = default;

  template <class T>
    requires WireCodable<T>
  static ItemCodec of() {
    ItemCodec codec;
    codec.type_ = &typeid(T);
    codec.type_name_ = detail::codec_type_name<T>();
    codec.encode_ = [](const std::any& v) {
      return Codec<T>::encode(std::any_cast<const T&>(v));
    };
    codec.encode_into_ = [](const std::any& v, Bytes& out) {
      detail::codec_encode_into<T>(std::any_cast<const T&>(v), out);
    };
    codec.decode_ = [](ByteSpan wire) {
      return std::any(detail::codec_decode<T>(wire));
    };
    return codec;
  }

  explicit operator bool() const noexcept { return type_ != nullptr; }
  const std::type_info* type() const noexcept { return type_; }
  const std::string& type_name() const noexcept { return type_name_; }

  Bytes encode(const std::any& v) const { return encode_(v); }
  /// Appends the encoding to `out` without a temporary buffer.
  void encode_into(const std::any& v, Bytes& out) const {
    encode_into_(v, out);
  }
  std::any decode(ByteSpan wire) const { return decode_(wire); }

 private:
  const std::type_info* type_ = nullptr;
  std::string type_name_;
  std::function<Bytes(const std::any&)> encode_;
  std::function<void(const std::any&, Bytes&)> encode_into_;
  std::function<std::any(ByteSpan)> decode_;
};

}  // namespace gridpipe::core
