#include "core/adaptive_pipeline.hpp"

namespace gridpipe::core {

AdaptivePipeline::AdaptivePipeline(const grid::Grid& grid, PipelineSpec spec,
                                   AdaptivePipelineOptions options)
    : grid_(grid),
      spec_(std::move(spec)),
      profile_(spec_.to_profile()),
      options_(std::move(options)) {}

sched::MapperResult AdaptivePipeline::plan() const {
  const control::AdaptationConfig& adapt = options_.runtime.adapt;
  const sched::PerfModel model(adapt.model);
  const sched::ResourceEstimate est =
      sched::ResourceEstimate::from_grid(grid_, 0.0);
  return control::choose_mapping(model, profile_, est, adapt.mapper,
                                 adapt.pin_first_stage,
                                 adapt.max_total_replicas);
}

RunReport AdaptivePipeline::run(std::vector<std::any> inputs) {
  return run(rt::RuntimeKind::kThreads, std::move(inputs));
}

RunReport AdaptivePipeline::run(rt::RuntimeKind kind,
                                std::vector<std::any> inputs) {
  return rt::make_runtime(kind, grid_, spec_, options_.runtime)
      ->run(std::move(inputs));
}

std::unique_ptr<rt::Session> AdaptivePipeline::open(
    rt::RuntimeKind kind) const {
  return rt::make_runtime(kind, grid_, spec_, options_.runtime)->open();
}

sim::RunResult AdaptivePipeline::simulate(
    const sim::SimConfig& sim_config,
    const sim::DriverOptions& driver_options) const {
  return sim::run_pipeline(grid_, profile_, sim_config, driver_options);
}

}  // namespace gridpipe::core
