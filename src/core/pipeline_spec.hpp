#pragma once
// The public pipeline-skeleton description: an ordered list of stages,
// each a user function plus cost annotations the scheduler needs. This is
// the eSkel-style "Pipeline1for1" contract: every stage consumes one item
// and produces exactly one item.

#include <any>
#include <functional>
#include <string>
#include <vector>

#include "sched/perf_model.hpp"

namespace gridpipe::core {

/// A stage transform. Items are type-erased; each stage must accept the
/// std::any produced by its predecessor.
using StageFn = std::function<std::any(std::any)>;

struct StageSpec {
  std::string name;
  StageFn fn;
  /// Cost annotations (same units as grid node speeds / bytes):
  double work = 1.0;         ///< work units per item
  double out_bytes = 1024;   ///< bytes of the item this stage emits
  double state_bytes = 0.0;  ///< migratable stage state (remap cost)
};

class PipelineSpec {
 public:
  /// Fluent builder: returns *this for chaining.
  PipelineSpec& stage(std::string name, StageFn fn, double work = 1.0,
                      double out_bytes = 1024, double state_bytes = 0.0);

  std::size_t num_stages() const noexcept { return stages_.size(); }
  const StageSpec& at(std::size_t i) const;
  const std::vector<StageSpec>& stages() const noexcept { return stages_; }

  /// Bytes of the initial input items (edge 0 of the profile).
  PipelineSpec& input_bytes(double bytes);

  /// Derives the scheduler profile from the annotations.
  sched::PipelineProfile to_profile() const;

  /// Runs the whole pipeline inline on one item (reference semantics for
  /// tests and for computing expected outputs).
  std::any run_inline(std::any item) const;

  /// Throws std::invalid_argument if the spec is unusable.
  void validate() const;

 private:
  std::vector<StageSpec> stages_;
  double input_bytes_ = 1024;
};

}  // namespace gridpipe::core
