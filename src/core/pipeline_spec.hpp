#pragma once
// The public pipeline-skeleton description: an ordered list of stages,
// each a user function plus cost annotations the scheduler needs. This is
// the eSkel-style "Pipeline1for1" contract: every stage consumes one item
// and produces exactly one item.
//
// Stages come in two flavours:
//  * untyped — stage(name, StageFn, ...): items are std::any end to end.
//    Runs on the in-process runtimes (sim, threads) only.
//  * typed   — stage<In, Out>(name, fn, ...): the builder wraps the
//    function and records Codec<In>/Codec<Out> wire codecs, so the same
//    spec also runs on the serialized runtimes (dist, process).
// One spec, built once, runs unmodified on every substrate behind
// rt::make_runtime.

#include <any>
#include <functional>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "sched/perf_model.hpp"

namespace gridpipe::core {

/// A stage transform. Items are type-erased; each stage must accept the
/// std::any produced by its predecessor.
using StageFn = std::function<std::any(std::any)>;

struct StageSpec {
  std::string name;
  StageFn fn;
  /// Cost annotations (same units as grid node speeds / bytes):
  double work = 1.0;         ///< work units per item
  double out_bytes = 1024;   ///< bytes of the item this stage emits
  double state_bytes = 0.0;  ///< migratable stage state (remap cost)
  /// Wire codecs for the stage's input/output types. Invalid on untyped
  /// stages, which only the in-process runtimes can execute.
  ItemCodec in_codec;
  ItemCodec out_codec;
};

class PipelineSpec {
 public:
  /// Fluent builder, untyped (std::any passthrough): returns *this.
  PipelineSpec& stage(std::string name, StageFn fn, double work = 1.0,
                      double out_bytes = 1024, double state_bytes = 0.0);

  /// Fluent builder, typed: `fn` is In -> Out and both types carry a
  /// Codec<T>, so the stage also runs on the serialized runtimes.
  template <class In, class Out, class Fn>
    requires WireCodable<In> && WireCodable<Out> &&
             std::is_invocable_r_v<Out, Fn, In>
  PipelineSpec& stage(std::string name, Fn fn, double work = 1.0,
                      double out_bytes = 1024, double state_bytes = 0.0) {
    StageFn erased = [f = std::move(fn),
                      stage_name = name](std::any item) -> std::any {
      In* in = std::any_cast<In>(&item);
      if (!in) {
        throw std::invalid_argument(
            "stage '" + stage_name + "' expects " +
            detail::codec_type_name<In>() + " items but received " +
            std::string(item.type().name()));
      }
      return std::any(f(std::move(*in)));
    };
    return add_stage({std::move(name), std::move(erased), work, out_bytes,
                      state_bytes, ItemCodec::of<In>(), ItemCodec::of<Out>()});
  }

  std::size_t num_stages() const noexcept { return stages_.size(); }
  const StageSpec& at(std::size_t i) const;
  const std::vector<StageSpec>& stages() const noexcept { return stages_; }

  /// Bytes of the initial input items (edge 0 of the profile).
  PipelineSpec& input_bytes(double bytes);

  /// Derives the scheduler profile from the annotations.
  sched::PipelineProfile to_profile() const;

  /// Runs the whole pipeline inline on one item (reference semantics for
  /// tests and for computing expected outputs).
  std::any run_inline(std::any item) const;

  /// Throws std::invalid_argument (naming the offending stage) if the
  /// spec is unusable anywhere: empty pipeline, null stage function,
  /// zero/negative/NaN work, negative byte annotations, or a typed-stage
  /// chain whose adjacent item types disagree.
  void validate() const;

  /// validate() plus the serialized-runtime requirements: every stage
  /// must be typed (carry wire codecs). `runtime_name` labels the error
  /// ("dist", "process").
  void validate_for_wire(const std::string& runtime_name) const;

 private:
  PipelineSpec& add_stage(StageSpec stage);

  std::vector<StageSpec> stages_;
  double input_bytes_ = 1024;
};

}  // namespace gridpipe::core
