#include "core/executor.hpp"

#include <algorithm>
#include <bit>

namespace gridpipe::core {

namespace {
std::chrono::steady_clock::duration to_real(double virtual_seconds,
                                            double time_scale) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(virtual_seconds * time_scale));
}
}  // namespace

Executor::Executor(const grid::Grid& grid, PipelineSpec spec,
                   sched::Mapping initial_mapping, ExecutorConfig config)
    : grid_(grid),
      spec_(std::move(spec)),
      profile_(spec_.to_profile()),
      config_(config),
      mapping_(std::move(initial_mapping)),
      rng_(config.seed) {
  mapping_.validate(grid_.num_nodes());
  if (mapping_.num_stages() != spec_.num_stages()) {
    throw std::invalid_argument("Executor: mapping/spec stage mismatch");
  }
  if (config_.time_scale <= 0.0) {
    throw std::invalid_argument("Executor: time_scale <= 0");
  }
  if (config_.window == 0) {
    config_.window = std::max<std::size_t>(4, 2 * spec_.num_stages());
  }
  if (config_.drain_batch == 0) config_.drain_batch = 1;
  router_.reset(spec_.num_stages());
  for (std::size_t n = 0; n < grid_.num_nodes(); ++n) {
    workers_.push_back(std::make_unique<NodeWorker>());
  }
  obs_metrics_.bind(config_.obs.metrics);
  controller_ = make_controller();
  try {
    flight_ = obs::FlightRecorder(grid_.num_nodes() + 1,
                                  config_.flight_events);
  } catch (const std::runtime_error&) {
    // mmap failure: run without the forensic ring (every handle inert).
  }
  {
    util::MutexLock lock(routing_mutex_);
    ctl_flight_ = flight_.ring(0);
  }
}

Executor::~Executor() {
  if (stream_active_) {
    try {
      stream_close();
      stream_finish();
    } catch (...) {
      // Destructor best-effort teardown; the stream's items had already
      // been accepted, so draining them is the only safe exit.
    }
  }
}

std::unique_ptr<control::AdaptationController> Executor::make_controller() {
  return std::make_unique<control::AdaptationController>(
      grid_, profile_, config_.adapt,
      static_cast<control::AdaptationHost&>(*this),
      control::AdaptationController::Mode::kPolicy, config_.obs);
}

double Executor::virtual_now() const {
  return std::chrono::duration<double>(Clock::now() - start_).count() /
         config_.time_scale;
}

sched::Mapping Executor::deployed_mapping() const {
  util::MutexLock lock(routing_mutex_);
  return mapping_;
}

grid::NodeId Executor::pick_replica_locked(std::size_t stage) {
  return router_.pick(mapping_, stage);
}

void Executor::admit_locked(std::uint64_t index, std::any payload) {
  RtTask task;
  task.stage = 0;
  task.item = index;
  task.payload = std::move(payload);
  task.deliver_at = Clock::now();
  ++admitted_;
  const double vnow = virtual_now();
  admit_time_[index] = vnow;
  ctl_flight_.record(obs::FlightKind::kAdmit, vnow, 0, index);
  if (admitted_ - completed_count_.load() >= config_.window) {
    // The credit window just filled: the next push will queue.
    ctl_flight_.record(obs::FlightKind::kCredit, vnow, 0,
                       admitted_ - completed_count_.load(), config_.window);
  }
  obs::record_span(config_.obs.tracer, obs::SpanKind::kAdmit, "admit", vnow,
                   0.0, 0, index);
  const grid::NodeId node = pick_replica_locked(0);
  NodeWorker& w = *workers_[node];
  {
    util::MutexLock node_lock(w.mutex);
    w.queue.push_back(std::move(task));
  }
  w.cv.notify_one();
}

std::vector<Executor::RtTask> Executor::next_tasks(grid::NodeId node,
                                                   std::size_t max_n,
                                                   std::uint64_t& gen_out) {
  NodeWorker& w = *workers_[node];
  std::vector<RtTask> out;
  util::MutexLock lock(w.mutex);
  for (;;) {
    // Snapshot the remap generation at extraction time, under w.mutex:
    // a remap that fully completed while this worker was blocked has
    // already redistributed the queue, so the batch taken below reflects
    // it and must not trigger a spurious mid-batch requeue.
    gen_out = remap_gen_.load(std::memory_order_acquire);
    if (done_.load()) return out;
    const auto now = Clock::now();
    const auto freeze = Clock::time_point(
        Clock::duration(freeze_until_.load(std::memory_order_acquire)));
    if (now >= freeze) {
      // Take every deliverable task in FIFO order, up to max_n, with one
      // stable compaction pass over the queue.
      auto keep = w.queue.begin();
      for (auto it = w.queue.begin(); it != w.queue.end(); ++it) {
        if (out.size() < max_n && it->deliver_at <= now) {
          out.push_back(std::move(*it));
        } else {
          if (keep != it) *keep = std::move(*it);
          ++keep;
        }
      }
      w.queue.erase(keep, w.queue.end());
      if (!out.empty()) return out;
    }
    // Sleep until something could change: a wakeup, the freeze end, or
    // the earliest pending delivery.
    auto deadline = Clock::time_point::max();
    if (freeze > now) deadline = freeze;
    for (const RtTask& t : w.queue) {
      deadline = std::min(deadline, std::max(t.deliver_at, freeze));
    }
    if (deadline == Clock::time_point::max()) {
      w.cv.wait(w.mutex);
    } else {
      w.cv.wait_until(w.mutex, deadline);
    }
  }
}

void Executor::worker_loop(grid::NodeId node) {
  try {
    worker_loop_impl(node);
  } catch (...) {
    // A throwing stage function ends the stream: capture the first
    // error (Session::report rethrows it), stop every worker, and wake
    // the controller out of its completion wait. stream_error_ is
    // stored under result_mutex_ before the notify, so the controller's
    // predicate cannot miss it.
    {
      util::MutexLock lock(result_mutex_);
      if (!stream_error_) stream_error_ = std::current_exception();
    }
    result_cv_.notify_all();
    signal_done();
  }
}

void Executor::worker_loop_impl(grid::NodeId node) {
  // Single writer for this lane: this thread is the only one ever
  // executing tasks for `node` while the stream is live.
  obs::FlightRing flight = flight_.ring(1 + node);
  for (;;) {
    std::uint64_t gen = 0;
    auto tasks = next_tasks(node, config_.drain_batch, gen);
    if (tasks.empty()) return;

    for (std::size_t i = 0; i < tasks.size(); ++i) {
      // A remap that lands mid-batch reclaims the unprocessed remainder.
      // apply_remap cannot see tasks held in this local vector, so hand
      // them to requeue_per_mapping, which routes them under
      // routing_mutex_: either before apply_remap's drain (it
      // redistributes them) or after (they go straight to the new
      // mapping). The generation check catches remaps whose freeze
      // window already expired.
      if (i > 0) {
        const auto freeze = Clock::time_point(
            Clock::duration(freeze_until_.load(std::memory_order_acquire)));
        if (remap_gen_.load(std::memory_order_acquire) != gen ||
            Clock::now() < freeze) {
          std::vector<RtTask> rest;
          rest.reserve(tasks.size() - i);
          std::move(tasks.begin() + static_cast<std::ptrdiff_t>(i),
                    tasks.end(), std::back_inserter(rest));
          requeue_per_mapping(std::move(rest));
          break;
        }
      }
      RtTask& task = tasks[i];
      const auto t0 = Clock::now();
      const double v0 = virtual_now();
      flight.record(obs::FlightKind::kTaskStart, v0,
                    static_cast<std::uint32_t>(task.stage), task.item);
      std::any result = spec_.at(task.stage).fn(std::move(task.payload));

      if (config_.emulate_compute) {
        const double service_virtual =
            profile_.stage_work[task.stage] / grid_.effective_speed(node, v0);
        std::this_thread::sleep_until(
            t0 + to_real(service_virtual, config_.time_scale));
      }
      const double duration_virtual =
          std::chrono::duration<double>(Clock::now() - t0).count() /
          config_.time_scale;
      flight.record(obs::FlightKind::kTaskDone, v0 + duration_virtual,
                    static_cast<std::uint32_t>(task.stage), task.item,
                    std::bit_cast<std::uint64_t>(duration_virtual));

      {
        util::MutexLock lock(metrics_mutex_);
        metrics_.on_service(task.stage, duration_virtual);
      }
      obs::record_span(config_.obs.tracer, obs::SpanKind::kStage,
                       spec_.at(task.stage).name.c_str(), v0, duration_virtual,
                       static_cast<std::uint32_t>(1 + node), task.item,
                       static_cast<std::uint32_t>(task.stage));
      if (obs_metrics_.stage_service) {
        obs_metrics_.stage_service->record(duration_virtual);
      }
      if (duration_virtual > 0.0) {
        controller_->record_observation(
            {monitor::SensorKind::kNodeSpeed, node, 0},
            profile_.stage_work[task.stage] / duration_virtual);
      }

      task.payload = std::move(result);
      route_onward(node, std::move(task));
    }
  }
}

void Executor::requeue_per_mapping(std::vector<RtTask> tasks) {
  // Lock order: routing, then node — same nesting as apply_remap.
  // Reverse iteration + push_front keeps the remainder's order and puts
  // it at queue fronts (the old handback's placement): these are the
  // oldest in-flight items, already delayed by the remap, and must not
  // queue behind admissions that arrived while they were held.
  util::MutexLock routing_lock(routing_mutex_);
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
    const grid::NodeId node = pick_replica_locked(it->stage);
    NodeWorker& w = *workers_[node];
    {
      util::MutexLock node_lock(w.mutex);
      w.queue.push_front(std::move(*it));
    }
    w.cv.notify_one();
  }
}

void Executor::route_onward(grid::NodeId from, RtTask task) {
  const std::size_t next_stage = task.stage + 1;
  if (next_stage == spec_.num_stages()) {
    complete_item(task.item, std::move(task.payload));
    return;
  }
  grid::NodeId dst;
  {
    util::MutexLock lock(routing_mutex_);
    dst = pick_replica_locked(next_stage);
  }
  const double vnow = virtual_now();
  const double delay_virtual =
      grid_.transfer_time(from, dst, profile_.msg_bytes[next_stage], vnow);
  obs::record_span(config_.obs.tracer, obs::SpanKind::kWire, "hop", vnow,
                   delay_virtual, static_cast<std::uint32_t>(1 + dst),
                   task.item, static_cast<std::uint32_t>(next_stage));
  task.stage = next_stage;
  task.deliver_at = Clock::now() + to_real(delay_virtual, config_.time_scale);
  NodeWorker& w = *workers_[dst];
  {
    util::MutexLock node_lock(w.mutex);
    w.queue.push_back(std::move(task));
  }
  w.cv.notify_one();
}

void Executor::complete_item(std::uint64_t item, std::any output) {
  double created_at = 0.0;
  {
    util::MutexLock lock(routing_mutex_);
    if (auto it = admit_time_.find(item); it != admit_time_.end()) {
      created_at = it->second;
      admit_time_.erase(it);
    }
  }
  const double vnow = virtual_now();
  {
    util::MutexLock lock(metrics_mutex_);
    metrics_.on_item_completed(item, vnow, created_at);
  }
  obs::record_span(config_.obs.tracer, obs::SpanKind::kItem, "item",
                   created_at, vnow - created_at, 0, item);
  if (obs_metrics_.items_completed) {
    obs_metrics_.items_completed->add(1);
    obs_metrics_.item_latency->record(vnow - created_at);
  }
  {
    util::MutexLock lock(result_mutex_);
    out_buffer_.emplace(item, std::move(output));
    if (config_.obs.tracer) completed_at_.emplace(item, vnow);
    completed_count_.fetch_add(1);
  }
  // Wake the controller (completion predicate) and any output poller.
  result_cv_.notify_all();
  // A completion frees one unit of in-flight credit: admit the oldest
  // pending push, if any.
  util::MutexLock lock(routing_mutex_);
  ctl_flight_.record(obs::FlightKind::kComplete, vnow, 0, item);
  while (!pending_.empty() &&
         admitted_ - completed_count_.load() < config_.window) {
    auto entry = std::move(pending_.front());
    pending_.pop_front();
    admit_locked(entry.first, std::move(entry.second));
  }
}

void Executor::record_probes(double vnow) {
  if (!config_.monitor_all) return;
  for (grid::NodeId n = 0; n < grid_.num_nodes(); ++n) {
    const double noise = std::max(0.1, 1.0 + 0.02 * util::normal(rng_, 0, 1));
    controller_->record_observation(
        {monitor::SensorKind::kNodeSpeed, n, 0},
        std::max(1e-9, grid_.effective_speed(n, vnow) * noise));
  }
  for (grid::NodeId a = 0; a < grid_.num_nodes(); ++a) {
    for (grid::NodeId b = 0; b < grid_.num_nodes(); ++b) {
      if (a == b) continue;
      const double noise = std::max(0.1, 1.0 + 0.02 * util::normal(rng_, 0, 1));
      controller_->record_observation(
          {monitor::SensorKind::kLinkInflation, a, b},
          std::max(0.01,
                   (1.0 + grid_.link(a, b).congestion_at(vnow)) * noise));
    }
  }
}

void Executor::apply_remap(const sched::Mapping& to, double pause_virtual) {
  // Lock order: routing, then nodes in id order (route_onward uses the
  // same routing -> node order, never the reverse while holding a node).
  util::MutexLock routing_lock(routing_mutex_);
  const auto now = Clock::now();
  const auto freeze_end = now + to_real(pause_virtual, config_.time_scale);
  freeze_until_.store(freeze_end.time_since_epoch().count(),
                      std::memory_order_release);

  sim::RemapEvent event;
  event.time = virtual_now();
  event.pause = pause_virtual;
  event.from = mapping_.to_string();
  event.to = to.to_string();
  ctl_flight_.record(obs::FlightKind::kRemap, event.time);
  {
    util::MutexLock lock(metrics_mutex_);
    metrics_.on_remap(std::move(event));
  }

  // Seqlock-style generation: bump before draining and again after
  // redistributing. A worker batch extracted at any point that this
  // remap's drain could miss — before the first bump, or between the
  // bumps while its queue had not been drained yet — snapshots a
  // generation that differs from the final value, so its mid-batch check
  // reclaims the remainder. Only a batch extracted after the second bump
  // snapshots the final generation, and by then redistribution is done.
  remap_gen_.fetch_add(1, std::memory_order_release);

  // Drain all queues, switch the mapping, redistribute.
  std::vector<RtTask> pending;
  for (auto& worker : workers_) {
    util::MutexLock node_lock(worker->mutex);
    std::move(worker->queue.begin(), worker->queue.end(),
              std::back_inserter(pending));
    worker->queue.clear();
  }
  std::sort(pending.begin(), pending.end(),
            [](const RtTask& a, const RtTask& b) { return a.item < b.item; });
  mapping_ = to;
  router_.reset(spec_.num_stages());
  for (RtTask& task : pending) {
    const grid::NodeId node = pick_replica_locked(task.stage);
    NodeWorker& w = *workers_[node];
    util::MutexLock node_lock(w.mutex);
    w.queue.push_back(std::move(task));
  }
  remap_gen_.fetch_add(1, std::memory_order_release);  // second seqlock bump
  for (auto& worker : workers_) worker->cv.notify_all();
}

void Executor::signal_done() {
  done_.store(true);
  for (auto& worker : workers_) {
    util::MutexLock node_lock(worker->mutex);
    worker->cv.notify_all();
  }
}

void Executor::controller_loop() {
  if (config_.adapt.epoch <= 0.0) {
    // No adaptation: just wait for end-of-stream.
    util::MutexLock lock(result_mutex_);
    while (!stream_done_locked()) result_cv_.wait(result_mutex_);
    return;
  }
  const auto epoch_real = to_real(config_.adapt.epoch, config_.time_scale);

  for (;;) {
    {
      const auto deadline = Clock::now() + epoch_real;
      util::MutexLock lock(result_mutex_);
      bool stream_done = false;
      while (!(stream_done = stream_done_locked())) {
        if (result_cv_.wait_until(result_mutex_, deadline) ==
            std::cv_status::timeout) {
          stream_done = stream_done_locked();
          break;
        }
      }
      if (stream_done) return;
    }
    const control::EpochRecord record = controller_->run_epoch();
    {
      // Lane 0 has multiple potential writers (pushers, workers, this
      // thread); routing_mutex_ serializes them all.
      util::MutexLock lock(routing_mutex_);
      ctl_flight_.record(
          obs::FlightKind::kEpoch, record.time,
          (record.decided ? 1u : 0u) | (record.remapped ? 2u : 0u));
    }
  }
}

void Executor::stream_begin() {
  if (stream_active_) {
    throw std::logic_error("Executor: a stream is already active");
  }
  // Fresh controller per stream: the virtual clock restarts at 0, so gate
  // snapshots, hysteresis streaks and registry timestamps from a
  // previous stream would all be stale.
  controller_ = make_controller();

  {
    util::MutexLock lock(result_mutex_);
    out_buffer_.clear();
    completed_at_.clear();
    next_out_ = 0;
    completed_count_.store(0);
    stream_error_ = nullptr;
  }
  done_.store(false);
  freeze_until_.store(0);
  {
    // Metrics restart with the virtual clock (their time series require
    // monotonic timestamps).
    util::MutexLock lock(metrics_mutex_);
    metrics_ = sim::SimMetrics{};
  }
  {
    util::MutexLock lock(routing_mutex_);
    pending_.clear();
    admit_time_.clear();
    admitted_ = 0;
    pushed_.store(0);
    closed_.store(false);
    initial_mapping_str_ = mapping_.to_string();
  }
  start_ = Clock::now();
  stream_active_ = true;

  threads_.reserve(workers_.size());
  for (grid::NodeId n = 0; n < workers_.size(); ++n) {
    threads_.emplace_back([this, n] { worker_loop(n); });
  }
  controller_thread_ = std::thread([this] { controller_loop(); });
}

void Executor::stream_push(std::any item) {
  util::MutexLock lock(routing_mutex_);
  if (!stream_active_ || closed_.load()) {
    throw std::logic_error("Executor: push on a closed stream");
  }
  const std::uint64_t index = pushed_.fetch_add(1);
  if (obs_metrics_.items_pushed) obs_metrics_.items_pushed->add(1);
  if (admitted_ - completed_count_.load() < config_.window) {
    admit_locked(index, std::move(item));
  } else {
    pending_.emplace_back(index, std::move(item));
  }
}

std::optional<std::any> Executor::stream_try_pop() {
  util::MutexLock lock(result_mutex_);
  auto it = out_buffer_.find(next_out_);
  if (it == out_buffer_.end()) return std::nullopt;
  std::any out = std::move(it->second);
  out_buffer_.erase(it);
  if (config_.obs.tracer) {
    if (auto done = completed_at_.find(next_out_);
        done != completed_at_.end()) {
      const double vnow = virtual_now();
      obs::record_span(config_.obs.tracer, obs::SpanKind::kWait, "wait",
                       done->second, vnow - done->second, 0, next_out_);
      completed_at_.erase(done);
    }
  }
  ++next_out_;
  return out;
}

void Executor::stream_close() {
  {
    util::MutexLock lock(routing_mutex_);
    ctl_flight_.record(obs::FlightKind::kClose, virtual_now());
  }
  // closed_ participates in the controller's completion predicate, so
  // the store must happen under result_mutex_: otherwise the controller
  // can read closed_ == false in the predicate, miss this notify while
  // still between predicate and re-block, and sleep forever (no further
  // completion will ever notify again).
  util::MutexLock lock(result_mutex_);
  closed_.store(true);
  result_cv_.notify_all();
}

RunReport Executor::stream_finish() {
  if (!stream_active_) {
    throw std::logic_error("Executor: no active stream to finish");
  }
  if (!closed_.load()) {
    throw std::logic_error("Executor: stream_close() before stream_finish()");
  }
  controller_thread_.join();

  signal_done();
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  stream_active_ = false;
  {
    util::MutexLock lock(result_mutex_);
    if (stream_error_) std::rethrow_exception(stream_error_);
  }

  const double wall =
      std::chrono::duration<double>(Clock::now() - start_).count();
  sim::SimMetrics metrics_taken;
  {
    // Every thread is joined by now; the lock is only for form. Move,
    // don't copy — the metric series are O(items). stream_begin resets
    // the moved-from member.
    util::MutexLock lock(metrics_mutex_);
    metrics_taken = std::move(metrics_);
  }
  std::string final_mapping;
  {
    util::MutexLock lock(routing_mutex_);
    final_mapping = mapping_.to_string();
  }
  RunReport report;
  finalize_stream_report(report, completed_count_.load(), wall,
                         config_.time_scale, std::move(metrics_taken),
                         controller_->take_epochs(),
                         std::move(initial_mapping_str_),
                         std::move(final_mapping));
  return report;
}

util::Json Executor::status() const {
  util::Json doc = util::Json::object();
  doc["substrate"] = "threads";
  doc["virtual_time"] = virtual_now();
  doc["window"] = static_cast<std::uint64_t>(config_.window);
  std::uint64_t admitted = 0;
  {
    util::MutexLock lock(routing_mutex_);
    admitted = admitted_;
    doc["mapping"] = mapping_.to_string();
    doc["pushed"] = pushed_.load();
    doc["admitted"] = admitted_;
    doc["pending"] = static_cast<std::uint64_t>(pending_.size());
    doc["closed"] = closed_.load();
  }
  // completed_count_ is read after admitted_, so clamp: completions that
  // landed between the two reads must not underflow in_flight.
  const std::uint64_t completed = completed_count_.load();
  doc["completed"] = completed;
  doc["in_flight"] = admitted - std::min(completed, admitted);
  {
    util::MutexLock lock(result_mutex_);
    doc["buffered_out"] = static_cast<std::uint64_t>(out_buffer_.size());
    doc["next_out"] = next_out_;
  }
  util::Json workers = util::Json::array();
  for (std::size_t n = 0; n < workers_.size(); ++n) {
    util::Json w = util::Json::object();
    w["node"] = static_cast<std::uint64_t>(n);
    {
      util::MutexLock lock(workers_[n]->mutex);
      w["queue_depth"] =
          static_cast<std::uint64_t>(workers_[n]->queue.size());
    }
    workers.push_back(std::move(w));
  }
  doc["workers"] = std::move(workers);
  return doc;
}

RunReport Executor::run(std::vector<std::any> inputs) {
  return run_stream_batch(*this, std::move(inputs));
}

}  // namespace gridpipe::core
