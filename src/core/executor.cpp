#include "core/executor.hpp"

#include <algorithm>

namespace gridpipe::core {

namespace {
std::chrono::steady_clock::duration to_real(double virtual_seconds,
                                            double time_scale) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(virtual_seconds * time_scale));
}
}  // namespace

Executor::Executor(const grid::Grid& grid, PipelineSpec spec,
                   sched::Mapping initial_mapping, ExecutorConfig config)
    : grid_(grid),
      spec_(std::move(spec)),
      profile_(spec_.to_profile()),
      config_(config),
      mapping_(std::move(initial_mapping)),
      rng_(config.seed) {
  mapping_.validate(grid_.num_nodes());
  if (mapping_.num_stages() != spec_.num_stages()) {
    throw std::invalid_argument("Executor: mapping/spec stage mismatch");
  }
  if (config_.time_scale <= 0.0) {
    throw std::invalid_argument("Executor: time_scale <= 0");
  }
  if (config_.window == 0) {
    config_.window = std::max<std::size_t>(4, 2 * spec_.num_stages());
  }
  if (config_.drain_batch == 0) config_.drain_batch = 1;
  router_.reset(spec_.num_stages());
  for (std::size_t n = 0; n < grid_.num_nodes(); ++n) {
    workers_.push_back(std::make_unique<NodeWorker>());
  }
  controller_ = make_controller();
}

std::unique_ptr<control::AdaptationController> Executor::make_controller() {
  return std::make_unique<control::AdaptationController>(
      grid_, profile_, config_.adapt,
      static_cast<control::AdaptationHost&>(*this));
}

double Executor::virtual_now() const {
  return std::chrono::duration<double>(Clock::now() - start_).count() /
         config_.time_scale;
}

sched::Mapping Executor::deployed_mapping() const {
  std::lock_guard lock(routing_mutex_);
  return mapping_;
}

grid::NodeId Executor::pick_replica_locked(std::size_t stage) {
  return router_.pick(mapping_, stage);
}

void Executor::admit_locked(std::uint64_t index) {
  RtTask task;
  task.stage = 0;
  task.item = index;
  task.payload = (*inputs_)[index];
  task.deliver_at = Clock::now();
  const grid::NodeId node = pick_replica_locked(0);
  {
    std::lock_guard node_lock(workers_[node]->mutex);
    workers_[node]->queue.push_back(std::move(task));
  }
  workers_[node]->cv.notify_one();
}

std::vector<Executor::RtTask> Executor::next_tasks(grid::NodeId node,
                                                   std::size_t max_n,
                                                   std::uint64_t& gen_out) {
  NodeWorker& w = *workers_[node];
  std::vector<RtTask> out;
  std::unique_lock lock(w.mutex);
  for (;;) {
    // Snapshot the remap generation at extraction time, under w.mutex:
    // a remap that fully completed while this worker was blocked has
    // already redistributed the queue, so the batch taken below reflects
    // it and must not trigger a spurious mid-batch requeue.
    gen_out = remap_gen_.load(std::memory_order_acquire);
    if (done_.load()) return out;
    const auto now = Clock::now();
    const auto freeze = Clock::time_point(
        Clock::duration(freeze_until_.load(std::memory_order_acquire)));
    if (now >= freeze) {
      // Take every deliverable task in FIFO order, up to max_n, with one
      // stable compaction pass over the queue.
      auto keep = w.queue.begin();
      for (auto it = w.queue.begin(); it != w.queue.end(); ++it) {
        if (out.size() < max_n && it->deliver_at <= now) {
          out.push_back(std::move(*it));
        } else {
          if (keep != it) *keep = std::move(*it);
          ++keep;
        }
      }
      w.queue.erase(keep, w.queue.end());
      if (!out.empty()) return out;
    }
    // Sleep until something could change: a wakeup, the freeze end, or
    // the earliest pending delivery.
    auto deadline = Clock::time_point::max();
    if (freeze > now) deadline = freeze;
    for (const RtTask& t : w.queue) {
      deadline = std::min(deadline, std::max(t.deliver_at, freeze));
    }
    if (deadline == Clock::time_point::max()) {
      w.cv.wait(lock);
    } else {
      w.cv.wait_until(lock, deadline);
    }
  }
}

void Executor::worker_loop(grid::NodeId node) {
  for (;;) {
    std::uint64_t gen = 0;
    auto tasks = next_tasks(node, config_.drain_batch, gen);
    if (tasks.empty()) return;

    for (std::size_t i = 0; i < tasks.size(); ++i) {
      // A remap that lands mid-batch reclaims the unprocessed remainder.
      // apply_remap cannot see tasks held in this local vector, so hand
      // them to requeue_per_mapping, which routes them under
      // routing_mutex_: either before apply_remap's drain (it
      // redistributes them) or after (they go straight to the new
      // mapping). The generation check catches remaps whose freeze
      // window already expired.
      if (i > 0) {
        const auto freeze = Clock::time_point(
            Clock::duration(freeze_until_.load(std::memory_order_acquire)));
        if (remap_gen_.load(std::memory_order_acquire) != gen ||
            Clock::now() < freeze) {
          std::vector<RtTask> rest;
          rest.reserve(tasks.size() - i);
          std::move(tasks.begin() + static_cast<std::ptrdiff_t>(i),
                    tasks.end(), std::back_inserter(rest));
          requeue_per_mapping(std::move(rest));
          break;
        }
      }
      RtTask& task = tasks[i];
      const auto t0 = Clock::now();
      const double v0 = virtual_now();
      std::any result = spec_.at(task.stage).fn(std::move(task.payload));

      if (config_.emulate_compute) {
        const double service_virtual =
            profile_.stage_work[task.stage] / grid_.effective_speed(node, v0);
        std::this_thread::sleep_until(
            t0 + to_real(service_virtual, config_.time_scale));
      }
      const double duration_virtual =
          std::chrono::duration<double>(Clock::now() - t0).count() /
          config_.time_scale;

      {
        std::lock_guard lock(metrics_mutex_);
        metrics_.on_service(task.stage, duration_virtual);
      }
      if (duration_virtual > 0.0) {
        controller_->record_observation(
            {monitor::SensorKind::kNodeSpeed, node, 0},
            profile_.stage_work[task.stage] / duration_virtual);
      }

      task.payload = std::move(result);
      route_onward(node, std::move(task));
    }
  }
}

void Executor::requeue_per_mapping(std::vector<RtTask> tasks) {
  // Lock order: routing, then node — same nesting as apply_remap.
  // Reverse iteration + push_front keeps the remainder's order and puts
  // it at queue fronts (the old handback's placement): these are the
  // oldest in-flight items, already delayed by the remap, and must not
  // queue behind admissions that arrived while they were held.
  std::lock_guard routing_lock(routing_mutex_);
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
    const grid::NodeId node = pick_replica_locked(it->stage);
    NodeWorker& w = *workers_[node];
    {
      std::lock_guard node_lock(w.mutex);
      w.queue.push_front(std::move(*it));
    }
    w.cv.notify_one();
  }
}

void Executor::route_onward(grid::NodeId from, RtTask task) {
  const std::size_t next_stage = task.stage + 1;
  if (next_stage == spec_.num_stages()) {
    complete_item(task.item, std::move(task.payload));
    return;
  }
  grid::NodeId dst;
  {
    std::lock_guard lock(routing_mutex_);
    dst = pick_replica_locked(next_stage);
  }
  const double delay_virtual = grid_.transfer_time(
      from, dst, profile_.msg_bytes[next_stage], virtual_now());
  task.stage = next_stage;
  task.deliver_at = Clock::now() + to_real(delay_virtual, config_.time_scale);
  {
    std::lock_guard node_lock(workers_[dst]->mutex);
    workers_[dst]->queue.push_back(std::move(task));
  }
  workers_[dst]->cv.notify_one();
}

void Executor::complete_item(std::uint64_t item, std::any output) {
  {
    std::lock_guard lock(metrics_mutex_);
    metrics_.on_item_completed(item, virtual_now(), 0.0);
  }
  bool all_done = false;
  {
    std::lock_guard lock(result_mutex_);
    completed_.emplace_back(item, std::move(output));
    all_done = completed_.size() == total_items_;
  }
  if (all_done) {
    result_cv_.notify_all();
    return;
  }
  // Admit the next input under the credit window.
  std::lock_guard lock(routing_mutex_);
  if (inputs_ && next_input_ < inputs_->size()) {
    admit_locked(next_input_++);
  }
}

void Executor::record_probes(double vnow) {
  if (!config_.monitor_all) return;
  for (grid::NodeId n = 0; n < grid_.num_nodes(); ++n) {
    const double noise = std::max(0.1, 1.0 + 0.02 * util::normal(rng_, 0, 1));
    controller_->record_observation(
        {monitor::SensorKind::kNodeSpeed, n, 0},
        std::max(1e-9, grid_.effective_speed(n, vnow) * noise));
  }
  for (grid::NodeId a = 0; a < grid_.num_nodes(); ++a) {
    for (grid::NodeId b = 0; b < grid_.num_nodes(); ++b) {
      if (a == b) continue;
      const double noise = std::max(0.1, 1.0 + 0.02 * util::normal(rng_, 0, 1));
      controller_->record_observation(
          {monitor::SensorKind::kLinkInflation, a, b},
          std::max(0.01,
                   (1.0 + grid_.link(a, b).congestion_at(vnow)) * noise));
    }
  }
}

void Executor::apply_remap(const sched::Mapping& to, double pause_virtual) {
  // Lock order: routing, then nodes in id order (route_onward uses the
  // same routing -> node order, never the reverse while holding a node).
  std::lock_guard routing_lock(routing_mutex_);
  const auto now = Clock::now();
  const auto freeze_end = now + to_real(pause_virtual, config_.time_scale);
  freeze_until_.store(freeze_end.time_since_epoch().count(),
                      std::memory_order_release);

  sim::RemapEvent event;
  event.time = virtual_now();
  event.pause = pause_virtual;
  event.from = mapping_.to_string();
  event.to = to.to_string();
  {
    std::lock_guard lock(metrics_mutex_);
    metrics_.on_remap(std::move(event));
  }

  // Seqlock-style generation: bump before draining and again after
  // redistributing. A worker batch extracted at any point that this
  // remap's drain could miss — before the first bump, or between the
  // bumps while its queue had not been drained yet — snapshots a
  // generation that differs from the final value, so its mid-batch check
  // reclaims the remainder. Only a batch extracted after the second bump
  // snapshots the final generation, and by then redistribution is done.
  remap_gen_.fetch_add(1, std::memory_order_release);

  // Drain all queues, switch the mapping, redistribute.
  std::vector<RtTask> pending;
  for (auto& worker : workers_) {
    std::lock_guard node_lock(worker->mutex);
    std::move(worker->queue.begin(), worker->queue.end(),
              std::back_inserter(pending));
    worker->queue.clear();
  }
  std::sort(pending.begin(), pending.end(),
            [](const RtTask& a, const RtTask& b) { return a.item < b.item; });
  mapping_ = to;
  router_.reset(spec_.num_stages());
  for (RtTask& task : pending) {
    const grid::NodeId node = pick_replica_locked(task.stage);
    std::lock_guard node_lock(workers_[node]->mutex);
    workers_[node]->queue.push_back(std::move(task));
  }
  remap_gen_.fetch_add(1, std::memory_order_release);  // second seqlock bump
  for (auto& worker : workers_) worker->cv.notify_all();
}

void Executor::controller_loop() {
  if (config_.adapt.epoch <= 0.0) {
    // No adaptation: just wait for completion.
    std::unique_lock lock(result_mutex_);
    result_cv_.wait(lock, [this] { return completed_.size() == total_items_; });
    return;
  }
  const auto epoch_real = to_real(config_.adapt.epoch, config_.time_scale);

  for (;;) {
    {
      std::unique_lock lock(result_mutex_);
      if (result_cv_.wait_for(lock, epoch_real, [this] {
            return completed_.size() == total_items_;
          })) {
        return;
      }
    }
    controller_->run_epoch();
  }
}

RunReport Executor::run(std::vector<std::any> inputs) {
  RunReport report;
  if (inputs.empty()) return report;

  // Fresh controller per run: the virtual clock restarts at 0, so gate
  // snapshots, hysteresis streaks and registry timestamps from a
  // previous run would all be stale.
  controller_ = make_controller();

  total_items_ = inputs.size();
  completed_.clear();
  completed_.reserve(inputs.size());
  done_.store(false);
  freeze_until_.store(0);
  {
    // Metrics restart with the virtual clock (their time series require
    // monotonic timestamps).
    std::lock_guard lock(metrics_mutex_);
    metrics_ = sim::SimMetrics{};
  }
  start_ = Clock::now();

  std::string initial_mapping_str;
  {
    std::lock_guard lock(routing_mutex_);
    inputs_ = &inputs;
    next_input_ = 0;
    initial_mapping_str = mapping_.to_string();
    const std::uint64_t first_wave =
        std::min<std::uint64_t>(config_.window, inputs.size());
    for (std::uint64_t i = 0; i < first_wave; ++i) admit_locked(next_input_++);
  }

  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (grid::NodeId n = 0; n < workers_.size(); ++n) {
    threads.emplace_back([this, n] { worker_loop(n); });
  }

  controller_loop();

  done_.store(true);
  for (auto& worker : workers_) worker->cv.notify_all();
  for (auto& thread : threads) thread.join();

  const double wall = std::chrono::duration<double>(Clock::now() - start_).count();
  {
    std::lock_guard lock(result_mutex_);
    std::sort(completed_.begin(), completed_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    report.outputs.reserve(completed_.size());
    for (auto& [id, payload] : completed_) {
      report.outputs.push_back(std::move(payload));
    }
  }
  {
    std::lock_guard lock(metrics_mutex_);
    report.remap_count = metrics_.remaps().size();
    report.remaps = metrics_.remaps();
    for (std::size_t s = 0; s < spec_.num_stages(); ++s) {
      report.mean_service.push_back(
          s < metrics_.service_stages() && metrics_.service_time(s).count()
              ? metrics_.service_time(s).mean()
              : 0.0);
    }
  }
  report.epochs = controller_->take_epochs();
  report.items = report.outputs.size();
  report.wall_seconds = wall;
  report.virtual_seconds = wall / config_.time_scale;
  report.throughput = report.virtual_seconds > 0.0
                          ? static_cast<double>(report.items) /
                                report.virtual_seconds
                          : 0.0;
  report.initial_mapping = std::move(initial_mapping_str);
  {
    std::lock_guard lock(routing_mutex_);
    report.final_mapping = mapping_.to_string();
    inputs_ = nullptr;
  }
  return report;
}

}  // namespace gridpipe::core
