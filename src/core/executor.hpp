#pragma once
// The threaded runtime: executes a PipelineSpec on emulated grid nodes.
//
// Each grid node is a worker thread. Stage service is emulated by running
// the user function and then stretching the stage to its modeled duration
// (work / effective_speed, scaled by time_scale), so a laptop reproduces
// the timing behaviour of a heterogeneous, dynamically loaded grid — the
// manual heterogeneity emulation the reproduction bands call for.
// Transfers are emulated with delivery deadlines derived from the grid's
// link model. The adaptation epochs (run on the caller's thread) delegate
// to the shared control::AdaptationController; the Executor implements
// its AdaptationHost interface (virtual_now / deployed_mapping /
// apply_remap / record_probes).
//
// Output order: the skeleton restores input order before returning
// (Pipeline1for1 semantics).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "control/adaptation_controller.hpp"
#include "core/pipeline_spec.hpp"
#include "core/report.hpp"
#include "sched/replica_router.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace gridpipe::core {

struct ExecutorConfig {
  /// Real seconds per virtual second (0.05 = 20× faster than modeled).
  double time_scale = 0.05;
  /// Max items in flight (0 = auto: 2·Ns, min 4).
  std::size_t window = 0;
  /// Shared control-loop knobs. adapt.epoch = 0 (the live-runtime
  /// default) disables adaptation.
  control::AdaptationConfig adapt{.epoch = 0.0};
  /// Stretch stage execution to the modeled duration. When false the user
  /// function's real cost is the service time (dedicated-cluster mode).
  bool emulate_compute = true;
  /// Record NWS-style probe observations for every node/link each epoch.
  bool monitor_all = true;
  /// Max deliverable tasks a worker takes per queue-lock acquisition.
  std::size_t drain_batch = 8;
  std::uint64_t seed = 1;
};

class Executor : private control::AdaptationHost {
 public:
  Executor(const grid::Grid& grid, PipelineSpec spec,
           sched::Mapping initial_mapping, ExecutorConfig config);

  /// Blocking: pushes every input through the pipeline and returns the
  /// ordered outputs plus runtime statistics. Not reentrant.
  RunReport run(std::vector<std::any> inputs);

 private:
  using Clock = std::chrono::steady_clock;

  struct RtTask {
    std::size_t stage = 0;
    std::uint64_t item = 0;
    std::any payload;
    Clock::time_point deliver_at{};
  };
  struct NodeWorker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<RtTask> queue;
  };

  // control::AdaptationHost (called from the controller epoch loop).
  double virtual_now() const override;
  sched::Mapping deployed_mapping() const override;
  void apply_remap(const sched::Mapping& to, double pause_virtual) override;
  void record_probes(double vnow) override;

  /// Builds the per-run controller (fresh gate/policy/registry state;
  /// the virtual clock restarts with every run()).
  std::unique_ptr<control::AdaptationController> make_controller();

  void worker_loop(grid::NodeId node);
  /// Pops up to `max_n` deliverable tasks in FIFO order with a single
  /// lock acquisition, honoring delivery deadlines and the remap freeze;
  /// empty when the run is over. `gen_out` receives the remap generation
  /// observed at extraction time (see worker_loop's mid-batch check).
  std::vector<RtTask> next_tasks(grid::NodeId node, std::size_t max_n,
                                 std::uint64_t& gen_out);
  /// Routes a reclaimed batch remainder through the *current* mapping.
  /// Serializes against apply_remap on routing_mutex_, so the tasks
  /// either land in queues before its drain (and get redistributed) or
  /// are routed per the new mapping.
  void requeue_per_mapping(std::vector<RtTask> tasks);
  void route_onward(grid::NodeId from, RtTask task);
  void complete_item(std::uint64_t item, std::any output);
  void admit_locked(std::uint64_t index);  // caller holds routing_mutex_
  void controller_loop();
  grid::NodeId pick_replica_locked(std::size_t stage);

  const grid::Grid& grid_;
  PipelineSpec spec_;
  sched::PipelineProfile profile_;
  ExecutorConfig config_;

  // Routing state (mapping, round-robin, admission) — one mutex.
  mutable std::mutex routing_mutex_;
  sched::Mapping mapping_;
  sched::ReplicaRouter router_;
  std::vector<std::any>* inputs_ = nullptr;
  std::uint64_t next_input_ = 0;

  std::vector<std::unique_ptr<NodeWorker>> workers_;
  std::atomic<bool> done_{false};
  std::atomic<Clock::rep> freeze_until_{0};
  /// Bumped twice per apply_remap (seqlock-style: before the queue drain
  /// and after redistribution); lets a worker holding a drained batch
  /// detect any concurrent or completed remap even after the freeze
  /// window has already expired.
  std::atomic<std::uint64_t> remap_gen_{0};
  Clock::time_point start_{};

  // Results.
  std::mutex result_mutex_;
  std::condition_variable result_cv_;
  std::vector<std::pair<std::uint64_t, std::any>> completed_;
  std::uint64_t total_items_ = 0;

  // Monitoring / adaptation: the shared controller owns the registry and
  // the decision loop; workers feed observations through it.
  std::unique_ptr<control::AdaptationController> controller_;
  std::mutex metrics_mutex_;
  sim::SimMetrics metrics_;
  util::Xoshiro256 rng_;
};

}  // namespace gridpipe::core
