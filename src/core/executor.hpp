#pragma once
// The threaded runtime: executes a PipelineSpec on emulated grid nodes.
//
// Each grid node is a worker thread. Stage service is emulated by running
// the user function and then stretching the stage to its modeled duration
// (work / effective_speed, scaled by time_scale), so a laptop reproduces
// the timing behaviour of a heterogeneous, dynamically loaded grid — the
// manual heterogeneity emulation the reproduction bands call for.
// Transfers are emulated with delivery deadlines derived from the grid's
// link model. The adaptation epochs (run on a dedicated controller
// thread) delegate to the shared control::AdaptationController; the
// Executor implements its AdaptationHost interface (virtual_now /
// deployed_mapping / apply_remap / record_probes).
//
// The runtime is natively streaming: stream_begin() starts the workers
// and controller, stream_push() admits items under the credit window
// (excess queues until completions free credit), stream_try_pop() hands
// outputs back in input order (Pipeline1for1 semantics), stream_close()
// marks end-of-stream and stream_finish() joins everything and returns
// the RunReport. The batch run() entry point is a thin wrapper over one
// stream. One stream at a time; rt::make_runtime wraps all of this
// behind the uniform Session interface.

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "control/adaptation_controller.hpp"
#include "core/pipeline_spec.hpp"
#include "core/report.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "sched/replica_router.hpp"
#include "sim/metrics.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::core {

struct ExecutorConfig {
  /// Real seconds per virtual second (0.05 = 20× faster than modeled).
  double time_scale = 0.05;
  /// Max items in flight (0 = auto: 2·Ns, min 4).
  std::size_t window = 0;
  /// Shared control-loop knobs. adapt.epoch = 0 (the live-runtime
  /// default) disables adaptation.
  control::AdaptationConfig adapt{.epoch = 0.0};
  /// Stretch stage execution to the modeled duration. When false the user
  /// function's real cost is the service time (dedicated-cluster mode).
  bool emulate_compute = true;
  /// Record NWS-style probe observations for every node/link each epoch.
  bool monitor_all = true;
  /// Max deliverable tasks a worker takes per queue-lock acquisition.
  std::size_t drain_batch = 8;
  std::uint64_t seed = 1;
  /// Telemetry sinks (both nullable = observability off). The pointed-to
  /// tracer/registry must outlive the executor.
  obs::Sinks obs{};
  /// Flight-recorder ring size per lane (0 disables the forensic ring).
  std::size_t flight_events = obs::kDefaultFlightEvents;
};

class Executor : private control::AdaptationHost {
 public:
  Executor(const grid::Grid& grid, PipelineSpec spec,
           sched::Mapping initial_mapping, ExecutorConfig config);
  ~Executor() override;

  /// Blocking convenience wrapper over one stream: pushes every input,
  /// closes, and returns the ordered outputs plus runtime statistics.
  /// Not reentrant.
  RunReport run(std::vector<std::any> inputs);

  // Streaming session primitives (one stream at a time; rt::Session
  // wraps them). Lifecycle: begin -> push*/try_pop* -> close -> finish.
  void stream_begin();
  /// Throws std::logic_error after stream_close().
  void stream_push(std::any item);
  /// Next output in input order, or nullopt if it has not completed yet.
  /// Remains callable after stream_finish() to drain leftovers.
  std::optional<std::any> stream_try_pop();
  void stream_close();
  /// Blocks until every pushed item completed, joins the workers and
  /// controller, and returns the report (outputs stay poppable).
  RunReport stream_finish();

  /// Point-in-time introspection snapshot (queue/credit/mapping state);
  /// safe to call from any thread while a stream is live.
  util::Json status() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct RtTask {
    std::size_t stage = 0;
    std::uint64_t item = 0;
    std::any payload;
    Clock::time_point deliver_at{};
  };
  struct NodeWorker {
    util::Mutex mutex;
    util::CondVar cv;
    std::deque<RtTask> queue GRIDPIPE_GUARDED_BY(mutex);
  };

  // control::AdaptationHost (called from the controller epoch loop).
  double virtual_now() const override;
  sched::Mapping deployed_mapping() const override;
  void apply_remap(const sched::Mapping& to, double pause_virtual) override;
  void record_probes(double vnow) override;

  /// Builds the per-stream controller (fresh gate/policy/registry state;
  /// the virtual clock restarts with every stream).
  std::unique_ptr<control::AdaptationController> make_controller();

  void worker_loop(grid::NodeId node);
  /// Pops up to `max_n` deliverable tasks in FIFO order with a single
  /// lock acquisition, honoring delivery deadlines and the remap freeze;
  /// empty when the stream is over. `gen_out` receives the remap
  /// generation observed at extraction time (see worker_loop's mid-batch
  /// check).
  std::vector<RtTask> next_tasks(grid::NodeId node, std::size_t max_n,
                                 std::uint64_t& gen_out);
  /// Routes a reclaimed batch remainder through the *current* mapping.
  /// Serializes against apply_remap on routing_mutex_, so the tasks
  /// either land in queues before its drain (and get redistributed) or
  /// are routed per the new mapping.
  void requeue_per_mapping(std::vector<RtTask> tasks);
  void route_onward(grid::NodeId from, RtTask task);
  void complete_item(std::uint64_t item, std::any output);
  void admit_locked(std::uint64_t index, std::any payload)
      GRIDPIPE_REQUIRES(routing_mutex_);
  void controller_loop();
  /// Body of worker_loop; a stage exception escaping it is captured into
  /// stream_error_ and ends the stream.
  void worker_loop_impl(grid::NodeId node);
  bool stream_done_locked() const GRIDPIPE_REQUIRES(result_mutex_) {
    return stream_error_ != nullptr ||
           (closed_.load() && completed_count_.load() == pushed_.load());
  }
  grid::NodeId pick_replica_locked(std::size_t stage)
      GRIDPIPE_REQUIRES(routing_mutex_);
  /// Stores done_ and wakes every worker out of its queue wait. The
  /// notify happens under each worker's mutex: done_ is the one wait
  /// predicate not written under the waiter's lock (it is a single flag
  /// shared by N per-worker mutexes), so a bare notify could land in a
  /// worker's window between its done_ check and its cv wait and be
  /// lost forever.
  void signal_done();

  const grid::Grid& grid_;
  PipelineSpec spec_;
  sched::PipelineProfile profile_;
  ExecutorConfig config_;

  // Routing state (mapping, round-robin, admission) — one mutex.
  mutable util::Mutex routing_mutex_;
  sched::Mapping mapping_ GRIDPIPE_GUARDED_BY(routing_mutex_);
  sched::ReplicaRouter router_ GRIDPIPE_GUARDED_BY(routing_mutex_);
  /// Pushed items waiting for in-flight credit, in input order.
  std::deque<std::pair<std::uint64_t, std::any>> pending_
      GRIDPIPE_GUARDED_BY(routing_mutex_);
  /// Virtual admission time per in-flight item (for latency metrics).
  std::map<std::uint64_t, double> admit_time_
      GRIDPIPE_GUARDED_BY(routing_mutex_);
  std::uint64_t admitted_ GRIDPIPE_GUARDED_BY(routing_mutex_) = 0;
  /// Written under routing_mutex_; atomic so the controller's completion
  /// predicate (held under result_mutex_) can read them.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<bool> closed_{false};

  std::vector<std::unique_ptr<NodeWorker>> workers_;
  std::vector<std::thread> threads_;
  std::thread controller_thread_;
  bool stream_active_ = false;
  std::string initial_mapping_str_;
  std::atomic<bool> done_{false};
  std::atomic<Clock::rep> freeze_until_{0};
  /// Bumped twice per apply_remap (seqlock-style: before the queue drain
  /// and after redistribution); lets a worker holding a drained batch
  /// detect any concurrent or completed remap even after the freeze
  /// window has already expired.
  std::atomic<std::uint64_t> remap_gen_{0};
  Clock::time_point start_{};

  // Results: outputs buffered by input index until popped.
  mutable util::Mutex result_mutex_;
  util::CondVar result_cv_;
  std::map<std::uint64_t, std::any> out_buffer_
      GRIDPIPE_GUARDED_BY(result_mutex_);
  /// Virtual completion time per buffered output; populated only when
  /// tracing (feeds the ordered-buffer wait span on pop).
  std::map<std::uint64_t, double> completed_at_
      GRIDPIPE_GUARDED_BY(result_mutex_);
  std::uint64_t next_out_ GRIDPIPE_GUARDED_BY(result_mutex_) = 0;
  /// Written under result_mutex_; atomic so the admission path (under
  /// routing_mutex_) can read the in-flight count without result_mutex_.
  std::atomic<std::uint64_t> completed_count_{0};
  /// First stage exception; ends the stream and is rethrown by
  /// stream_finish().
  std::exception_ptr stream_error_ GRIDPIPE_GUARDED_BY(result_mutex_);

  // Monitoring / adaptation: the shared controller owns the registry and
  // the decision loop; workers feed observations through it.
  std::unique_ptr<control::AdaptationController> controller_;
  util::Mutex metrics_mutex_;
  sim::SimMetrics metrics_ GRIDPIPE_GUARDED_BY(metrics_mutex_);
  /// Pre-resolved obs handles (all null when config_.obs.metrics is).
  obs::StandardMetrics obs_metrics_;
  util::Xoshiro256 rng_;

  /// Always-on forensic flight recorder. Lane 0 is the control lane
  /// (admissions, completions, credit, remaps, epochs) — its writers run
  /// on pusher, worker and controller threads, so every lane-0 record
  /// happens under routing_mutex_ to honor the single-writer ring
  /// contract. Lane 1 + n is worker thread n (single writer by
  /// construction).
  obs::FlightRecorder flight_;
  obs::FlightRing ctl_flight_ GRIDPIPE_GUARDED_BY(routing_mutex_);
};

}  // namespace gridpipe::core
