#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

namespace gridpipe::core {

void finalize_bytes_report(
    RunReport& report,
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> done,
    double wall_seconds, double time_scale, const sim::SimMetrics& metrics,
    std::vector<control::EpochRecord> epochs, std::string final_mapping) {
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  report.outputs.reserve(done.size());
  for (auto& [id, payload] : done) {
    report.outputs.emplace_back(std::move(payload));
  }
  report.items = report.outputs.size();
  report.wall_seconds = wall_seconds;
  report.virtual_seconds = wall_seconds / time_scale;
  report.throughput =
      report.virtual_seconds > 0.0
          ? static_cast<double>(report.items) / report.virtual_seconds
          : 0.0;
  report.remap_count = metrics.remaps().size();
  report.remaps = metrics.remaps();
  report.epochs = std::move(epochs);
  report.final_mapping = std::move(final_mapping);
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os << items << " items in " << util::format_double(virtual_seconds, 3)
     << " virtual s (" << util::format_double(wall_seconds, 3)
     << " wall s), throughput " << util::format_double(throughput, 3)
     << " items/s, " << remap_count << " remap(s), mapping "
     << initial_mapping;
  if (final_mapping != initial_mapping) os << " -> " << final_mapping;
  return os.str();
}

}  // namespace gridpipe::core
