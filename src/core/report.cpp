#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

namespace gridpipe::core {

void finalize_stream_report(RunReport& report, std::uint64_t items,
                            double wall_seconds, double time_scale,
                            sim::SimMetrics metrics,
                            std::vector<control::EpochRecord> epochs,
                            std::string initial_mapping,
                            std::string final_mapping) {
  report.items = items;
  report.wall_seconds = wall_seconds;
  report.virtual_seconds = wall_seconds / time_scale;
  report.throughput =
      report.virtual_seconds > 0.0
          ? static_cast<double>(report.items) / report.virtual_seconds
          : 0.0;
  report.remap_count = metrics.remaps().size();
  report.remaps = metrics.remaps();
  report.mean_service.clear();
  for (std::size_t s = 0; s < metrics.service_stages(); ++s) {
    report.mean_service.push_back(
        metrics.service_time(s).count() ? metrics.service_time(s).mean() : 0.0);
  }
  report.metrics = std::move(metrics);
  report.epochs = std::move(epochs);
  report.initial_mapping = std::move(initial_mapping);
  report.final_mapping = std::move(final_mapping);
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os << items << " items in " << util::format_double(virtual_seconds, 3)
     << " virtual s (" << util::format_double(wall_seconds, 3)
     << " wall s), throughput " << util::format_double(throughput, 3)
     << " items/s, " << remap_count << " remap(s), mapping "
     << initial_mapping;
  if (final_mapping != initial_mapping) os << " -> " << final_mapping;
  if (node_losses > 0) {
    os << "; recovered from " << node_losses << " worker loss(es) ("
       << respawns << " respawn(s), " << items_replayed << " replayed, "
       << items_deduped << " deduped";
    if (!recovery_times.empty()) {
      double worst = 0.0;
      for (const double t : recovery_times) worst = std::max(worst, t);
      os << ", worst window " << util::format_double(worst, 3)
         << " virtual s";
    }
    os << ")";
  }
  return os.str();
}

}  // namespace gridpipe::core
