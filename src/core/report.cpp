#include "core/report.hpp"

#include <sstream>

#include "util/table.hpp"

namespace gridpipe::core {

std::string RunReport::summary() const {
  std::ostringstream os;
  os << items << " items in " << util::format_double(virtual_seconds, 3)
     << " virtual s (" << util::format_double(wall_seconds, 3)
     << " wall s), throughput " << util::format_double(throughput, 3)
     << " items/s, " << remap_count << " remap(s), mapping "
     << initial_mapping;
  if (final_mapping != initial_mapping) os << " -> " << final_mapping;
  return os.str();
}

}  // namespace gridpipe::core
