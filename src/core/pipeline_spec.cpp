#include "core/pipeline_spec.hpp"

#include <stdexcept>

namespace gridpipe::core {

PipelineSpec& PipelineSpec::stage(std::string name, StageFn fn, double work,
                                  double out_bytes, double state_bytes) {
  if (!fn) throw std::invalid_argument("PipelineSpec::stage: null function");
  if (work <= 0.0) throw std::invalid_argument("PipelineSpec::stage: work <= 0");
  if (out_bytes < 0.0 || state_bytes < 0.0) {
    throw std::invalid_argument("PipelineSpec::stage: negative bytes");
  }
  stages_.push_back({std::move(name), std::move(fn), work, out_bytes,
                     state_bytes});
  return *this;
}

const StageSpec& PipelineSpec::at(std::size_t i) const {
  if (i >= stages_.size()) throw std::out_of_range("PipelineSpec::at");
  return stages_[i];
}

PipelineSpec& PipelineSpec::input_bytes(double bytes) {
  if (bytes < 0.0) throw std::invalid_argument("input_bytes: negative");
  input_bytes_ = bytes;
  return *this;
}

sched::PipelineProfile PipelineSpec::to_profile() const {
  validate();
  sched::PipelineProfile profile;
  profile.stage_work.reserve(stages_.size());
  profile.msg_bytes.reserve(stages_.size() + 1);
  profile.state_bytes.reserve(stages_.size());
  profile.msg_bytes.push_back(input_bytes_);
  for (const StageSpec& s : stages_) {
    profile.stage_work.push_back(s.work);
    profile.msg_bytes.push_back(s.out_bytes);
    profile.state_bytes.push_back(s.state_bytes);
  }
  return profile;
}

std::any PipelineSpec::run_inline(std::any item) const {
  validate();
  for (const StageSpec& s : stages_) item = s.fn(std::move(item));
  return item;
}

void PipelineSpec::validate() const {
  if (stages_.empty()) {
    throw std::invalid_argument("PipelineSpec: no stages");
  }
}

}  // namespace gridpipe::core
