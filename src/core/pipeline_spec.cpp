#include "core/pipeline_spec.hpp"

#include <stdexcept>

namespace gridpipe::core {

namespace {
std::string stage_label(const StageSpec& s, std::size_t i) {
  return "stage '" + s.name + "' (#" + std::to_string(i) + ")";
}
}  // namespace

PipelineSpec& PipelineSpec::add_stage(StageSpec stage) {
  if (!stage.fn) {
    throw std::invalid_argument("PipelineSpec::stage: null function");
  }
  if (!(stage.work > 0.0)) {
    throw std::invalid_argument("PipelineSpec::stage: work must be > 0");
  }
  if (stage.out_bytes < 0.0 || stage.state_bytes < 0.0) {
    throw std::invalid_argument("PipelineSpec::stage: negative bytes");
  }
  stages_.push_back(std::move(stage));
  return *this;
}

PipelineSpec& PipelineSpec::stage(std::string name, StageFn fn, double work,
                                  double out_bytes, double state_bytes) {
  return add_stage(
      {std::move(name), std::move(fn), work, out_bytes, state_bytes, {}, {}});
}

const StageSpec& PipelineSpec::at(std::size_t i) const {
  if (i >= stages_.size()) throw std::out_of_range("PipelineSpec::at");
  return stages_[i];
}

PipelineSpec& PipelineSpec::input_bytes(double bytes) {
  if (bytes < 0.0) throw std::invalid_argument("input_bytes: negative");
  input_bytes_ = bytes;
  return *this;
}

sched::PipelineProfile PipelineSpec::to_profile() const {
  validate();
  sched::PipelineProfile profile;
  profile.stage_work.reserve(stages_.size());
  profile.msg_bytes.reserve(stages_.size() + 1);
  profile.state_bytes.reserve(stages_.size());
  profile.msg_bytes.push_back(input_bytes_);
  for (const StageSpec& s : stages_) {
    profile.stage_work.push_back(s.work);
    profile.msg_bytes.push_back(s.out_bytes);
    profile.state_bytes.push_back(s.state_bytes);
  }
  return profile;
}

std::any PipelineSpec::run_inline(std::any item) const {
  validate();
  for (const StageSpec& s : stages_) item = s.fn(std::move(item));
  return item;
}

void PipelineSpec::validate() const {
  if (stages_.empty()) {
    throw std::invalid_argument(
        "PipelineSpec: pipeline has no stages; add at least one with "
        "stage(...) before running it");
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageSpec& s = stages_[i];
    if (!s.fn) {
      throw std::invalid_argument("PipelineSpec: " + stage_label(s, i) +
                                  " has a null function");
    }
    if (!(s.work > 0.0)) {
      throw std::invalid_argument(
          "PipelineSpec: " + stage_label(s, i) +
          " has non-positive work (" + std::to_string(s.work) +
          "); every stage needs work > 0 for the scheduler's cost model");
    }
    if (s.out_bytes < 0.0 || s.state_bytes < 0.0) {
      throw std::invalid_argument("PipelineSpec: " + stage_label(s, i) +
                                  " has negative byte annotations");
    }
    // Typed chains must agree where both sides declare a type; a typed
    // stage next to an untyped one is legal (std::any flows in-process).
    if (i > 0 && stages_[i - 1].out_codec && s.in_codec &&
        *stages_[i - 1].out_codec.type() != *s.in_codec.type()) {
      throw std::invalid_argument(
          "PipelineSpec: " + stage_label(stages_[i - 1], i - 1) +
          " outputs " + stages_[i - 1].out_codec.type_name() + " but " +
          stage_label(s, i) + " expects " + s.in_codec.type_name());
    }
  }
}

void PipelineSpec::validate_for_wire(const std::string& runtime_name) const {
  validate();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageSpec& s = stages_[i];
    if (!s.in_codec || !s.out_codec) {
      throw std::invalid_argument(
          "PipelineSpec: " + stage_label(s, i) +
          " has no wire codec, but the '" + runtime_name +
          "' runtime serializes every item; declare the stage with the "
          "typed builder stage<In, Out>(...) using Codec<T>-encodable "
          "types, or run on an in-process runtime (sim, threads)");
    }
  }
}

}  // namespace gridpipe::core
