#pragma once
// DistributedExecutor — the pipeline skeleton implemented purely over the
// message-passing substrate, mirroring the eSkel-on-MPI architecture the
// paper's implementation layer assumes.
//
// Topology: rank n (0 ≤ n < num_nodes) is a worker pinned to grid node n;
// rank num_nodes is the controller. All coordination is by message:
//
//   controller → worker   kTask      (item id, stage, payload bytes)
//   worker → worker       kTask      (next-stage hop, link-delayed)
//   worker → controller   kResult    (finished item + output)
//   worker → controller   kSpeedObs  (observed node speed sample)
//   controller → worker   kRemap     (serialized routing table)
//   controller → worker   kShutdown
//
// Workers hold a local copy of the routing table; kRemap updates arrive
// asynchronously. Because every worker owns every stage function, a hop
// routed with a momentarily stale table still executes correctly — the
// item merely lands on a suboptimal node for that hop (eventual
// consistency, no barrier needed).
//
// The adaptation epochs run on the controller rank and delegate to the
// shared control::AdaptationController; this class implements its
// AdaptationHost interface, where apply_remap broadcasts kRemap.
//
// Items are byte vectors (a distributed skeleton must serialize), so the
// stage interface here is Bytes → Bytes; rt::make_runtime bridges typed
// items through the spec's per-stage Codec<T> wire codecs.
//
// The runtime is natively streaming: the controller rank runs on a
// dedicated thread, stream_push() enqueues items it admits under the
// credit window, stream_try_pop() returns outputs in input order, and
// run() is a batch wrapper over one stream.

#include <atomic>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/wire.hpp"
#include "control/adaptation_controller.hpp"
#include "core/codec.hpp"
#include "core/report.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "sched/replica_router.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::core {

/// The serialized stage contract: read the input payload from a view
/// into the transport buffer, append the output to `out` (a pooled
/// buffer that already holds the next hop's wire header). Appending —
/// rather than returning a fresh Bytes — is what keeps the steady-state
/// hop allocation-free.
using BytesStageFn = std::function<void(ByteSpan in, Bytes& out)>;

struct DistStage {
  std::string name;
  BytesStageFn fn;
  double work = 1.0;
  double out_bytes = 1024;
  double state_bytes = 0.0;
};

/// Adapts a legacy Bytes → Bytes function to the append contract (one
/// copy per call; fine for tests and examples, not the hot path).
BytesStageFn bytes_stage_fn(std::function<Bytes(Bytes)> fn);

/// Scheduler profile derived from a Bytes → Bytes stage vector — the one
/// approximation (input bytes ≈ first stage's message size) every
/// substrate consuming DistStage must share, so their mapping decisions
/// stay comparable. Used by DistributedExecutor and proc::ProcessExecutor.
sched::PipelineProfile profile_from_stages(const std::vector<DistStage>& stages);

struct DistExecutorConfig {
  double time_scale = 0.01;  ///< real seconds per virtual second
  std::size_t window = 0;    ///< in-flight credit (0 = auto)
  /// Shared control-loop knobs. adapt.epoch = 0 (the live-runtime
  /// default) disables adaptation.
  control::AdaptationConfig adapt{.epoch = 0.0};
  bool emulate_compute = true;
  /// Max messages a rank drains per queue-lock acquisition.
  std::size_t drain_batch = 16;
  /// Telemetry sinks (both nullable = observability off). Workers ship
  /// their spans to the controller rank as kTelemetry messages; the
  /// sinks themselves are only ever touched from the controller side.
  obs::Sinks obs{};
  /// Flight-recorder ring size per lane (0 disables the forensic ring).
  std::size_t flight_events = obs::kDefaultFlightEvents;
};

class DistributedExecutor : private control::AdaptationHost {
 public:
  DistributedExecutor(const grid::Grid& grid, std::vector<DistStage> stages,
                      sched::Mapping initial_mapping,
                      DistExecutorConfig config);
  ~DistributedExecutor() override;

  /// Blocking convenience wrapper over one stream: pushes every input,
  /// closes, returns ordered outputs. Not reentrant.
  RunReport run(std::vector<Bytes> inputs);

  // Streaming session primitives (one stream at a time; rt::Session
  // wraps them). Lifecycle: begin -> push*/try_pop* -> close -> finish.
  void stream_begin();
  void stream_push(Bytes item);
  std::optional<Bytes> stream_try_pop();
  void stream_close();
  RunReport stream_finish();

  /// Point-in-time introspection snapshot (queue/credit/mapping state);
  /// safe to call from any thread while a stream is live.
  util::Json status() const;

  sched::PipelineProfile profile() const;

  // Message tags (public for tests). Mirror comm::wire::FrameKind 1:1.
  static constexpr int kTask = 1;
  static constexpr int kResult = 2;
  static constexpr int kRemap = 3;
  static constexpr int kShutdown = 4;
  static constexpr int kSpeedObs = 5;
  static constexpr int kTelemetry = 6;

  /// Wire format helpers (public for tests); thin delegates to the
  /// shared comm::wire codec, so the proc runtime speaks the same bytes.
  static Bytes encode_task(std::uint64_t item, std::uint32_t stage,
                           const Bytes& payload);
  static void decode_task(const Bytes& wire, std::uint64_t& item,
                          std::uint32_t& stage, Bytes& payload);
  static Bytes encode_mapping(const sched::Mapping& mapping);
  static sched::Mapping decode_mapping(const Bytes& wire);

 private:
  struct RoutingTable {
    // Guarded copy per worker; only the owning worker touches it outside
    // of construction.
    sched::Mapping mapping;
    sched::ReplicaRouter router;
    grid::NodeId pick(std::size_t stage) { return router.pick(mapping, stage); }
  };

  // control::AdaptationHost (called from the controller rank's epochs).
  double virtual_now() const override;
  sched::Mapping deployed_mapping() const override;
  void apply_remap(const sched::Mapping& to, double pause_virtual) override;
  void record_probes(double vnow) override;  // no-op: kSpeedObs feeds it

  /// Builds the per-stream controller (fresh gate/policy/registry state;
  /// the virtual clock restarts with every stream).
  std::unique_ptr<control::AdaptationController> make_controller();

  void worker_loop(int rank);
  /// Body of worker_loop; a stage exception escaping it is captured into
  /// stream_error_ and ends the stream.
  void worker_loop_impl(int rank);
  /// The controller rank's event loop: admits pushed items under the
  /// credit window, collects results into the output buffer, feeds speed
  /// observations, runs the adaptation epochs, and broadcasts kShutdown
  /// once the stream is closed and drained (or a worker failed).
  void controller_loop();

  int controller_rank() const noexcept {
    return static_cast<int>(grid_.num_nodes());
  }

  const grid::Grid& grid_;
  std::vector<DistStage> stages_;
  sched::Mapping initial_mapping_;
  DistExecutorConfig config_;

  comm::GridDelayModel delays_;
  comm::Communicator comm_;
  /// Shared free-list for hop/obs/admission buffers: workers and the
  /// controller compose messages into pooled buffers and release
  /// consumed payloads back, so a steady-state hop allocates nothing.
  /// (Internally synchronized; no GUARDED_BY needed.)
  comm::wire::BufferPool pool_;
  std::chrono::steady_clock::time_point start_{};

  // Controller-side state (touched only by the controller thread while a
  // stream is live).
  sched::PipelineProfile profile_;
  std::unique_ptr<control::AdaptationController> controller_;
  sched::Mapping controller_mapping_;
  sched::ReplicaRouter controller_router_;
  sim::SimMetrics metrics_;

  // Stream state shared between the pushing/popping caller and the
  // controller thread.
  mutable util::Mutex stream_mutex_;
  std::deque<std::pair<std::uint64_t, Bytes>> incoming_
      GRIDPIPE_GUARDED_BY(stream_mutex_);
  std::map<std::uint64_t, Bytes> out_buffer_
      GRIDPIPE_GUARDED_BY(stream_mutex_);
  /// Virtual completion time per buffered output; populated only when
  /// tracing (feeds the ordered-buffer wait span on pop).
  std::map<std::uint64_t, double> completed_at_
      GRIDPIPE_GUARDED_BY(stream_mutex_);
  std::uint64_t next_out_ GRIDPIPE_GUARDED_BY(stream_mutex_) = 0;
  std::uint64_t pushed_ GRIDPIPE_GUARDED_BY(stream_mutex_) = 0;
  std::uint64_t completed_count_ GRIDPIPE_GUARDED_BY(stream_mutex_) = 0;
  bool closed_ GRIDPIPE_GUARDED_BY(stream_mutex_) = false;
  /// First stage exception; ends the stream and is rethrown by
  /// stream_finish().
  std::exception_ptr stream_error_ GRIDPIPE_GUARDED_BY(stream_mutex_);
  /// Virtual admission time per in-flight item (controller thread only;
  /// for latency metrics).
  std::map<std::uint64_t, double> admit_time_;
  /// Deployed-mapping string for status(): controller_mapping_ itself is
  /// controller-thread-only, so remaps mirror it here under the lock.
  std::string status_mapping_ GRIDPIPE_GUARDED_BY(stream_mutex_);
  std::uint64_t status_admitted_ GRIDPIPE_GUARDED_BY(stream_mutex_) = 0;

  std::vector<std::thread> worker_threads_;
  std::thread controller_thread_;
  bool stream_active_ = false;
  std::string initial_mapping_str_;
  /// Pre-resolved obs handles (all null when config_.obs.metrics is).
  obs::StandardMetrics obs_metrics_;

  /// Always-on forensic flight recorder: lane 0 is the controller rank
  /// (its thread is the sole writer — admissions, completions, remaps,
  /// epochs all run there), lane 1 + n is worker rank n.
  obs::FlightRecorder flight_;
  obs::FlightRing ctl_flight_;
};

}  // namespace gridpipe::core
