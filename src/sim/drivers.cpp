#include "sim/drivers.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

namespace gridpipe::sim {

const char* to_string(DriverKind kind) {
  switch (kind) {
    case DriverKind::kStaticNaive:   return "static-naive";
    case DriverKind::kStaticOptimal: return "static-optimal";
    case DriverKind::kAdaptive:      return "adaptive";
    case DriverKind::kOracle:        return "oracle";
  }
  return "?";
}

sched::MapperResult choose_mapping(const sched::PerfModel& model,
                                   const sched::PipelineProfile& profile,
                                   const sched::ResourceEstimate& est,
                                   MapperKind mapper, bool pin_first_stage,
                                   std::size_t max_total_replicas) {
  sched::MapperResult base;
  bool have_base = false;

  const std::size_t ns = profile.num_stages();
  const std::size_t np = est.num_nodes;
  const double space =
      std::pow(static_cast<double>(np),
               static_cast<double>(pin_first_stage ? ns - 1 : ns));

  auto run_exhaustive = [&]() -> bool {
    sched::ExhaustiveOptions opts;
    opts.pin_first_stage = pin_first_stage;
    const sched::ExhaustiveMapper ex(model, opts);
    if (auto result = ex.best(profile, est)) {
      base = std::move(*result);
      return true;
    }
    return false;
  };
  auto run_dp = [&]() -> bool {
    const sched::DpContiguousMapper dp(model);
    if (auto result = dp.best(profile, est)) {
      base = std::move(*result);
      return true;
    }
    return false;
  };

  switch (mapper) {
    case MapperKind::kExhaustive:
      have_base = run_exhaustive();
      break;
    case MapperKind::kDpContiguous:
      have_base = run_dp();
      break;
    case MapperKind::kGreedy:
      base = sched::GreedyMapper(model).best(profile, est);
      have_base = true;
      break;
    case MapperKind::kLocalSearch:
      base = sched::LocalSearchMapper(model).best(profile, est);
      have_base = true;
      break;
    case MapperKind::kAuto:
      // Exhaustive only for small spaces: the adaptation loop re-runs the
      // mapper every epoch, so per-decision cost matters.
      if (space <= 2'000.0) have_base = run_exhaustive();
      if (!have_base && np <= 12 && !model.options().network_serialization) {
        have_base = run_dp();
      }
      if (!have_base) {
        base = sched::LocalSearchMapper(model).best(profile, est);
        have_base = true;
      }
      break;
  }
  if (!have_base) {
    throw std::runtime_error(
        "choose_mapping: selected mapper refused the instance");
  }

  if (max_total_replicas > ns) {
    // The single-mapping optimum often folds stages onto few nodes (the
    // fewer-nodes tie-break), which strands the greedy replica search at
    // a colocation bottleneck. Improve from a spread seed as well and
    // keep the better result.
    sched::MapperResult folded = sched::improve_with_replication(
        model, profile, est, base.mapping, max_total_replicas);
    const sched::Mapping spread_seed =
        sched::Mapping::round_robin(ns, np);
    sched::MapperResult spread = sched::improve_with_replication(
        model, profile, est, spread_seed, max_total_replicas);
    return spread.breakdown.throughput >
                   folded.breakdown.throughput * (1.0 + 1e-9)
               ? spread
               : folded;
  }
  return base;
}

namespace {

/// Shared epoch loop state for the adaptive and oracle drivers.
struct AdaptationLoop {
  const grid::Grid& grid;
  const sched::PipelineProfile& profile;
  const DriverOptions& options;
  sched::PerfModel model;
  sched::AdaptationPolicy policy;
  monitor::MonitoringRegistry* registry;
  PipelineSim* sim = nullptr;
  std::vector<EpochRecord>* epochs = nullptr;
  sched::ResourceChangeGate gate{0.25};
  double last_decision_time = 0.0;

  AdaptationLoop(const grid::Grid& g, const sched::PipelineProfile& p,
                 const DriverOptions& o, monitor::MonitoringRegistry* reg)
      : grid(g),
        profile(p),
        options(o),
        model(o.model),
        policy(model, o.policy),
        registry(reg),
        gate(o.change_threshold) {}

  void schedule_next() {
    sim->simulator().after(options.epoch, [this] { on_epoch(); });
  }

  void on_epoch() {
    if (sim->finished()) return;
    const double now = sim->simulator().now();

    sched::ResourceEstimate est =
        options.driver == DriverKind::kOracle
            ? sched::ResourceEstimate::from_grid(grid, now)
            : sched::ResourceEstimate::from_monitor(*registry, grid);

    // kOnChange: skip the (expensive) mapping search on quiet epochs.
    if (options.trigger == AdaptationTrigger::kOnChange &&
        gate.has_snapshot() && !gate.changed(est) &&
        now - last_decision_time < options.max_staleness) {
      EpochRecord record;
      record.time = now;
      epochs->push_back(record);
      schedule_next();
      return;
    }
    gate.accept(est);
    last_decision_time = now;

    const sched::MapperResult candidate =
        choose_mapping(model, profile, est, options.mapper,
                       options.pin_first_stage, options.max_total_replicas);

    EpochRecord record;
    record.time = now;
    record.decided = true;
    record.deployed_estimate = model.throughput(profile, est, sim->mapping());
    record.candidate_estimate = candidate.breakdown.throughput;

    if (options.driver == DriverKind::kOracle) {
      // Upper bound: free remap whenever the model sees any improvement.
      if (!(candidate.mapping == sim->mapping()) &&
          record.candidate_estimate > record.deployed_estimate * (1.0 + 1e-9)) {
        sim->apply_mapping(candidate.mapping, 0.0);
        record.remapped = true;
      }
    } else {
      sched::AdaptationDecision decision =
          policy.decide(profile, est, sim->mapping(), candidate.mapping);
      if (decision.remap) {
        sim->apply_mapping(candidate.mapping, decision.migration_pause);
        policy.notify_remapped();
        record.remapped = true;
      }
    }
    epochs->push_back(record);
    schedule_next();
  }
};

}  // namespace

RunResult run_pipeline(const grid::Grid& grid,
                       const sched::PipelineProfile& profile,
                       const SimConfig& sim_config,
                       const DriverOptions& options) {
  profile.validate();
  const sched::PerfModel model(options.model);
  const sched::ResourceEstimate at_deploy =
      sched::ResourceEstimate::from_grid(grid, 0.0);

  sched::Mapping initial;
  if (options.driver == DriverKind::kStaticNaive) {
    initial = sched::Mapping::block(profile.num_stages(), grid.num_nodes());
  } else {
    initial = choose_mapping(model, profile, at_deploy, options.mapper,
                             options.pin_first_stage,
                             options.max_total_replicas)
                  .mapping;
  }

  monitor::MonitoringRegistry registry(options.registry);
  const bool adaptive = options.driver == DriverKind::kAdaptive ||
                        options.driver == DriverKind::kOracle;

  PipelineSim sim(grid, profile, initial, sim_config,
                  adaptive ? &registry : nullptr);

  RunResult result;
  result.initial_mapping = initial;

  std::unique_ptr<AdaptationLoop> loop;
  if (adaptive) {
    loop = std::make_unique<AdaptationLoop>(
        grid, profile, options,
        options.driver == DriverKind::kAdaptive ? &registry : nullptr);
    loop->sim = &sim;
    loop->epochs = &result.epochs;
    loop->schedule_next();
  }

  sim.start();
  if (std::isfinite(options.horizon)) {
    sim.simulator().run_until(options.horizon);
  } else {
    sim.simulator().run();
  }

  result.metrics = sim.metrics();
  result.final_mapping = sim.mapping();
  result.remap_count = sim.metrics().remaps().size();
  result.makespan = sim.metrics().makespan();
  result.mean_throughput = sim.metrics().mean_throughput();
  return result;
}

}  // namespace gridpipe::sim
