#include "sim/drivers.hpp"

#include <cmath>
#include <memory>

namespace gridpipe::sim {

const char* to_string(DriverKind kind) {
  switch (kind) {
    case DriverKind::kStaticNaive:   return "static-naive";
    case DriverKind::kStaticOptimal: return "static-optimal";
    case DriverKind::kAdaptive:      return "adaptive";
    case DriverKind::kOracle:        return "oracle";
  }
  return "?";
}

namespace {

/// AdaptationHost over the DES: virtual time is the event queue's clock,
/// remaps go straight into PipelineSim, and probes arrive passively (the
/// sim feeds the controller's registry itself), so record_probes is a
/// no-op.
class SimHost final : public control::AdaptationHost {
 public:
  explicit SimHost(PipelineSim& sim) : sim_(sim) {}

  double virtual_now() const override { return sim_.simulator().now(); }
  sched::Mapping deployed_mapping() const override { return sim_.mapping(); }
  void apply_remap(const sched::Mapping& to, double pause) override {
    sim_.apply_mapping(to, pause);
  }
  void record_probes(double) override {}

 private:
  PipelineSim& sim_;
};

}  // namespace

RunResult run_pipeline(const grid::Grid& grid,
                       const sched::PipelineProfile& profile,
                       const SimConfig& sim_config,
                       const DriverOptions& options) {
  profile.validate();
  const control::AdaptationConfig& adapt = options.adapt;
  const sched::PerfModel model(adapt.model);
  const sched::ResourceEstimate at_deploy =
      sched::ResourceEstimate::from_grid(grid, 0.0);

  sched::Mapping initial;
  if (options.driver == DriverKind::kStaticNaive) {
    initial = sched::Mapping::block(profile.num_stages(), grid.num_nodes());
  } else {
    initial = choose_mapping(model, profile, at_deploy, adapt.mapper,
                             adapt.pin_first_stage, adapt.max_total_replicas)
                  .mapping;
  }

  const bool adaptive = options.driver == DriverKind::kAdaptive ||
                        options.driver == DriverKind::kOracle;

  // One controller per run; the sim feeds its registry passively, so the
  // oracle run (which never reads the monitor) skips the wiring.
  struct Loop {
    PipelineSim& sim;
    SimHost host;
    control::AdaptationController controller;
    double epoch;

    Loop(const grid::Grid& g, const sched::PipelineProfile& p,
         const control::AdaptationConfig& config, PipelineSim& s,
         control::AdaptationController::Mode mode, obs::Sinks obs)
        : sim(s), host(s), controller(g, p, config, host, mode, obs),
          epoch(config.epoch) {}

    void schedule_next() {
      sim.simulator().after(epoch, [this] { on_epoch(); });
    }
    void on_epoch() {
      if (sim.finished()) return;
      controller.run_epoch();
      schedule_next();
    }
  };

  PipelineSim sim(grid, profile, initial, sim_config, nullptr);
  std::unique_ptr<Loop> loop;
  if (adaptive) {
    const auto mode = options.driver == DriverKind::kOracle
                          ? control::AdaptationController::Mode::kOracle
                          : control::AdaptationController::Mode::kPolicy;
    loop = std::make_unique<Loop>(grid, profile, adapt, sim, mode,
                                  options.obs);
    // Both adaptive and oracle runs attach the registry: the oracle never
    // reads it, but keeping the sim's probe schedule (and thus its RNG
    // stream) identical across modes preserves the historical behaviour.
    sim.attach_registry(&loop->controller.registry());
    loop->schedule_next();
  }

  RunResult result;
  result.initial_mapping = initial;

  sim.start();
  if (std::isfinite(options.horizon)) {
    sim.simulator().run_until(options.horizon);
  } else {
    sim.simulator().run();
  }

  result.metrics = sim.metrics();
  result.final_mapping = sim.mapping();
  if (loop) result.epochs = loop->controller.take_epochs();
  result.remap_count = sim.metrics().remaps().size();
  result.makespan = sim.metrics().makespan();
  result.mean_throughput = sim.metrics().mean_throughput();
  return result;
}

}  // namespace gridpipe::sim
