#pragma once
// End-to-end experiment drivers: wire a Grid, a PipelineProfile and a
// policy together and run a full stream through PipelineSim.
//
//  kStaticNaive   — block mapping, never changes (the "no scheduler"
//                   baseline).
//  kStaticOptimal — best mapping for the deployment-time (t = 0) resource
//                   state, never changes (the paper's non-adaptive
//                   competitor: a good initial schedule that goes stale).
//  kAdaptive      — the contribution: epochs of monitor → forecast → map
//                   → gate → live remap with migration cost.
//  kOracle        — upper bound: ground-truth estimates every epoch,
//                   free instantaneous remaps, no gates.
//
// The epoch decision loop itself lives in control::AdaptationController;
// this driver implements its AdaptationHost over PipelineSim and owns the
// event-queue scheduling of the epochs.

#include <limits>

#include "control/adaptation_controller.hpp"
#include "sim/pipeline_sim.hpp"

namespace gridpipe::sim {

enum class DriverKind { kStaticNaive, kStaticOptimal, kAdaptive, kOracle };

// The mapper/trigger vocabulary and the mapping-selection entry point are
// shared with the live runtimes; re-export them under the historical
// sim:: names.
using control::AdaptationTrigger;
using control::EpochRecord;
using control::MapperKind;
using control::choose_mapping;
using control::to_string;

const char* to_string(DriverKind kind);

struct DriverOptions {
  DriverKind driver = DriverKind::kAdaptive;
  /// The shared control-loop knobs (mapper, epoch, policy, model,
  /// registry, replication budget, trigger).
  control::AdaptationConfig adapt{};
  double horizon = std::numeric_limits<double>::infinity();
  /// Telemetry sinks for the controller's epoch/phase spans (the sim's
  /// own item/stage spans ride on SimConfig::obs).
  obs::Sinks obs{};
};

struct RunResult {
  SimMetrics metrics;
  sched::Mapping initial_mapping;
  sched::Mapping final_mapping;
  std::vector<EpochRecord> epochs;
  std::size_t remap_count = 0;
  double makespan = 0.0;
  double mean_throughput = 0.0;
};

/// Runs one full stream and returns the result. Deterministic in
/// (grid, profile, sim_config.seed, options).
RunResult run_pipeline(const grid::Grid& grid,
                       const sched::PipelineProfile& profile,
                       const SimConfig& sim_config,
                       const DriverOptions& options);

}  // namespace gridpipe::sim
