#pragma once
// End-to-end experiment drivers: wire a Grid, a PipelineProfile and a
// policy together and run a full stream through PipelineSim.
//
//  kStaticNaive   — block mapping, never changes (the "no scheduler"
//                   baseline).
//  kStaticOptimal — best mapping for the deployment-time (t = 0) resource
//                   state, never changes (the paper's non-adaptive
//                   competitor: a good initial schedule that goes stale).
//  kAdaptive      — the contribution: epochs of monitor → forecast → map
//                   → gate → live remap with migration cost.
//  kOracle        — upper bound: ground-truth estimates every epoch,
//                   free instantaneous remaps, no gates.

#include <limits>

#include "sched/adaptation_policy.hpp"
#include "sched/dp_contiguous.hpp"
#include "sched/exhaustive.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "sim/pipeline_sim.hpp"

namespace gridpipe::sim {

enum class DriverKind { kStaticNaive, kStaticOptimal, kAdaptive, kOracle };
enum class MapperKind { kAuto, kExhaustive, kDpContiguous, kGreedy, kLocalSearch };

/// When does the adaptive driver run a full mapping decision?
///  kEveryEpoch — at every epoch tick (the baseline pattern).
///  kOnChange   — only when the ResourceChangeGate reports a significant
///                move since the last decision, or max_staleness elapsed;
///                quiet epochs cost one estimate build and no search.
enum class AdaptationTrigger { kEveryEpoch, kOnChange };

const char* to_string(DriverKind kind);

struct DriverOptions {
  DriverKind driver = DriverKind::kAdaptive;
  MapperKind mapper = MapperKind::kAuto;
  double epoch = 10.0;     ///< seconds between adaptation decisions
  double horizon = std::numeric_limits<double>::infinity();
  sched::AdaptationOptions policy{};
  sched::PerfModelOptions model{};
  monitor::RegistryOptions registry{};
  /// Pin stage 0 to profile.source_node during mapping search.
  bool pin_first_stage = false;
  /// If > num_stages, the mapper may replicate stages up to this total
  /// replica budget (0 = replication disabled).
  std::size_t max_total_replicas = 0;

  AdaptationTrigger trigger = AdaptationTrigger::kEveryEpoch;
  /// kOnChange: relative resource move that counts as significant.
  double change_threshold = 0.25;
  /// kOnChange: force a full decision after this many seconds without one.
  double max_staleness = 120.0;
};

/// One adaptation decision point (diagnostics for benches).
struct EpochRecord {
  double time = 0.0;
  double deployed_estimate = 0.0;   ///< modeled thr of deployed mapping
  double candidate_estimate = 0.0;  ///< modeled thr of best candidate
  bool decided = false;             ///< a full mapping search ran
  bool remapped = false;
};

struct RunResult {
  SimMetrics metrics;
  sched::Mapping initial_mapping;
  sched::Mapping final_mapping;
  std::vector<EpochRecord> epochs;
  std::size_t remap_count = 0;
  double makespan = 0.0;
  double mean_throughput = 0.0;
};

/// Single mapping decision with the configured mapper (kAuto picks
/// exhaustive for small spaces, then DP, then local search) and optional
/// replication improvement.
sched::MapperResult choose_mapping(const sched::PerfModel& model,
                                   const sched::PipelineProfile& profile,
                                   const sched::ResourceEstimate& est,
                                   MapperKind mapper, bool pin_first_stage,
                                   std::size_t max_total_replicas);

/// Runs one full stream and returns the result. Deterministic in
/// (grid, profile, sim_config.seed, options).
RunResult run_pipeline(const grid::Grid& grid,
                       const sched::PipelineProfile& profile,
                       const SimConfig& sim_config,
                       const DriverOptions& options);

}  // namespace gridpipe::sim
