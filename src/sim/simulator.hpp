#pragma once
// The virtual-time discrete-event engine. Single-threaded and
// deterministic: events fire in (time, insertion) order and may schedule
// further events.

#include "sim/event_queue.hpp"

namespace gridpipe::sim {

class Simulator {
 public:
  double now() const noexcept { return now_; }

  /// Schedules `fn` at absolute virtual time t (must be >= now()).
  void at(double t, EventFn fn);
  /// Schedules `fn` after `dt` seconds of virtual time (dt >= 0).
  void after(double dt, EventFn fn) { at(now_ + dt, std::move(fn)); }

  /// Processes events until the queue is empty or stop() is called.
  void run();
  /// Processes events with time <= t, then advances now() to t.
  void run_until(double t);
  /// Halts run()/run_until() after the current event returns.
  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }

  std::size_t events_processed() const noexcept { return processed_; }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  bool stopped_ = false;
  std::size_t processed_ = 0;
};

}  // namespace gridpipe::sim
