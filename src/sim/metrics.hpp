#pragma once
// Metrics collected during a simulated (or emulated) pipeline run.

#include <cstdint>
#include <string>
#include <vector>

#include "sched/mapping.hpp"
#include "util/stats.hpp"

namespace gridpipe::sim {

/// One executed remap.
struct RemapEvent {
  double time = 0.0;
  double pause = 0.0;  ///< migration freeze charged (s)
  std::string from;    ///< mapping tuples (textual, for reports)
  std::string to;
};

/// Not internally synchronized: the DES host is single-threaded, and the
/// live runtimes feed it from worker and controller threads. Owners hold
/// an instance as a member declared GRIDPIPE_GUARDED_BY a metrics mutex
/// (see core::Executor::metrics_), which makes every unlocked access a
/// compile error under clang -Wthread-safety.
class SimMetrics {
 public:
  void on_item_created(std::uint64_t id, double t);
  void on_item_completed(std::uint64_t id, double t, double created_at);
  void on_remap(RemapEvent event);
  /// Convenience for the live runtimes' apply_remap hooks.
  void on_remap(double time, double pause, std::string from, std::string to) {
    on_remap(RemapEvent{time, pause, std::move(from), std::move(to)});
  }
  void on_service(std::size_t stage, double duration);

  std::uint64_t items_created() const noexcept { return created_; }
  std::uint64_t items_completed() const noexcept { return completed_; }
  /// Virtual time of the last completion (the stream makespan).
  double makespan() const noexcept { return makespan_; }
  /// completed / makespan; 0 before the first completion.
  double mean_throughput() const noexcept;

  const util::RunningStats& latency() const noexcept { return latency_; }
  /// Raw per-item end-to-end latencies, completion order.
  const std::vector<double>& latencies() const noexcept { return latencies_; }
  /// Latency percentile (p in [0,100]); 0 when no completions.
  double latency_percentile(double p) const {
    return util::percentile(latencies_, p);
  }
  const util::TimeSeries& completions() const noexcept { return completions_; }
  const std::vector<RemapEvent>& remaps() const noexcept { return remaps_; }
  const util::RunningStats& service_time(std::size_t stage) const;
  /// Number of stages that have recorded at least one service.
  std::size_t service_stages() const noexcept {
    return per_stage_service_.size();
  }

  /// Throughput (items/s) in fixed windows over [0, horizon).
  std::vector<double> throughput_timeline(double window, double horizon) const {
    return completions_.rate_per_window(window, horizon);
  }

 private:
  std::uint64_t created_ = 0;
  std::uint64_t completed_ = 0;
  double makespan_ = 0.0;
  util::RunningStats latency_;
  std::vector<double> latencies_;
  util::TimeSeries completions_;
  std::vector<RemapEvent> remaps_;
  std::vector<util::RunningStats> per_stage_service_;
};

}  // namespace gridpipe::sim
