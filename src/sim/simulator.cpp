#include "sim/simulator.hpp"

#include <stdexcept>

namespace gridpipe::sim {

void Simulator::at(double t, EventFn fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::at: time in the past");
  }
  queue_.push(t, std::move(fn));
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    EventQueue::Event event = queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
}

void Simulator::run_until(double t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= t) {
    EventQueue::Event event = queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace gridpipe::sim
